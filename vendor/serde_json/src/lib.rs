//! Offline stand-in for `serde_json`.
//!
//! Serialises the stub [`serde::Value`] tree to JSON text and parses it
//! back. Numbers are printed with Rust's shortest-roundtrip `{:?}` `f64`
//! formatting, so every `f32` (and every integer up to 2^53) survives a
//! round trip bit-exactly.

pub use serde::Value;

/// Error produced by serialisation or parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serialises `value` to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialises `value` to two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any stub-deserialisable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { s: s.as_bytes(), i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error(format!("trailing characters at offset {}", p.i)));
    }
    Ok(T::from_value(&v)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if !n.is_finite() {
                return Err(Error(format!("non-finite number {n} is not valid JSON")));
            }
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n:?}"));
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (k, (key, item)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.i
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at offset {}", self.i)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {other:?} at offset {}",
                self.i
            ))),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.i += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|e| Error(e.to_string()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| Error(format!("bad number `{text}`: {e}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.s[self.i..];
            let Some(&c) = rest.first() else {
                return Err(Error("unterminated string".into()));
            };
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or_else(|| {
                        Error("unterminated escape".into())
                    })?;
                    self.i += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| Error(e.to_string()))?;
                            self.i += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let text = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|e| Error(e.to_string()))?;
                    let ch = text.chars().next().expect("non-empty");
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, got {other:?} at offset {}",
                        self.i
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, got {other:?} at offset {}",
                        self.i
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&1.5f32).unwrap(), "1.5");
        assert_eq!(from_str::<f32>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<bool>("false").unwrap(), false);
        assert_eq!(to_string(&"a\"b".to_string()).unwrap(), r#""a\"b""#);
        assert_eq!(from_str::<String>(r#""a\"b""#).unwrap(), "a\"b");
    }

    #[test]
    fn f32_bit_exact_roundtrip() {
        for &x in &[std::f32::consts::PI, 1.0e-8, -123.456789, 3.4e38, 1e-38] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1.0f32, 2.0], vec![3.0]];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f32>>>(&s).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_string(), vec![1usize, 2]);
        let s = to_string_pretty(&m).unwrap();
        assert!(s.contains("\"k\""));
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, Vec<usize>>>(&s).unwrap(),
            m
        );
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<f32>("1.5garbage").is_err());
        assert!(from_str::<Vec<f32>>("[1,").is_err());
        assert!(from_str::<bool>("yes").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<f32> = from_str(" [ 1.0 ,\n 2.0 ] ").unwrap();
        assert_eq!(v, vec![1.0, 2.0]);
    }
}
