//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro, range and `prop::collection::vec` strategies,
//! [`strategy::Strategy::prop_map`], [`test_runner::TestRunner`] and the
//! `prop_assert*` macros. Cases are generated from a deterministic seeded
//! RNG; there is **no shrinking** — a failing case panics with the values
//! embedded in the assertion message.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRunner;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Proptest-compatible entry point: a (non-shrinking) value tree.
        fn new_tree(&self, runner: &mut TestRunner) -> Result<JustTree<Self::Value>, String> {
            Ok(JustTree(self.generate(runner)))
        }

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// A generated value; `current` yields it. No shrinking is performed.
    pub trait ValueTree {
        /// The carried type.
        type Value;

        /// The current (only) value of the tree.
        fn current(&self) -> Self::Value;
    }

    /// Trivial single-value tree.
    pub struct JustTree<T>(pub T);

    impl<T: Clone> ValueTree for JustTree<T> {
        type Value = T;

        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, runner: &mut TestRunner) -> U {
            (self.f)(self.inner.generate(runner))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, runner: &mut TestRunner) -> S::Value {
            (**self).generate(runner)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    use rand::Rng;
                    runner.rng().gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    use rand::Rng;
                    runner.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Constant strategy (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }
}

pub mod test_runner {
    //! The per-test case driver.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration; only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic case driver holding the RNG all strategies draw from.
    pub struct TestRunner {
        rng: StdRng,
        cases: u32,
    }

    impl TestRunner {
        /// Runner with the given config and the fixed default seed.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner {
                rng: StdRng::seed_from_u64(0x70726f70_74657374),
                cases: config.cases,
            }
        }

        /// Proptest-compatible deterministic constructor.
        pub fn deterministic() -> Self {
            Self::new(ProptestConfig::default())
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The RNG strategies should draw from.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// Length specification for [`vec`]: a fixed size or a size range.
    pub trait IntoLenRange {
        /// Inclusive `(min, max)` length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec length range");
            (self.start, self.end - 1)
        }
    }

    impl IntoLenRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S> {
        let (min, max) = len.bounds();
        VecStrategy { element, min, max }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            use rand::Rng;
            let len = runner.rng().gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the `use proptest::prelude::*;` sites expect.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` module alias used as `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests. Each function runs its body over `cases`
/// random assignments of its `name in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __runner = $crate::test_runner::TestRunner::new(__config);
            for __case in 0..__runner.cases() {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __runner);
                )+
                $body
            }
        }
    )*};
}

/// Skips the current case when the assumption does not hold. The
/// [`proptest!`] expansion runs each case directly inside the case loop,
/// so `continue` moves on to the next random assignment.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Asserting macro that reports the failing condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "proptest case failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs(
            x in 0usize..10,
            f in -1.0f32..1.0,
            v in prop::collection::vec(0u64..100, 1..=5),
        ) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() <= 5);
            prop_assert!(v.iter().all(|&e| e < 100));
        }
    }

    #[test]
    fn prop_map_and_new_tree() {
        use crate::strategy::ValueTree;
        let strat = (1usize..4).prop_map(|n| vec![0.0f32; n]);
        let mut runner = crate::test_runner::TestRunner::deterministic();
        let v = strat.new_tree(&mut runner).unwrap().current();
        assert!(!v.is_empty() && v.len() < 4);
    }

    #[test]
    fn deterministic_across_runners() {
        use rand::Rng;
        let mut a = crate::test_runner::TestRunner::deterministic();
        let mut b = crate::test_runner::TestRunner::deterministic();
        let va: Vec<u64> = (0..8).map(|_| a.rng().gen_range(0u64..1000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.rng().gen_range(0u64..1000)).collect();
        assert_eq!(va, vb);
    }
}
