//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal self-describing serialisation layer with the same *spelling* as
//! serde: `#[derive(Serialize, Deserialize)]` plus `serde_json::to_string`
//! / `from_str`. Instead of serde's visitor architecture, both traits go
//! through an owned [`Value`] tree — adequate for the checkpoint/config/
//! result types this workspace round-trips, and formats compatibly with
//! serde_json's externally-tagged enum encoding.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A self-describing data tree, the interchange point between
/// [`Serialize`]/[`Deserialize`] impls and data formats (`serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any number; stored as `f64` (exact for every `f32`/small integer
    /// this workspace serialises).
    Num(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Key-value map in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Map lookup that produces a descriptive [`Error`] when missing.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error(format!("missing field `{key}`")))
    }
}

/// Deserialisation error (also reused by the derive for malformed input).
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the self-describing [`Value`] tree.
pub trait Serialize {
    /// Serialises `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction from the self-describing [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`], validating shape and fields.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(Error(format!(
                        "expected number for {}, got {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_num!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(Deserialize::from_value).collect(),
            other => Err(Error(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected map, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(f32::from_value(&3.5f32.to_value()).unwrap(), 3.5);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        let s = "hi".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f32, -2.5, 3.25];
        assert_eq!(Vec::<f32>::from_value(&v.to_value()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1usize);
        m.insert("b".to_string(), 2usize);
        assert_eq!(
            BTreeMap::<String, usize>::from_value(&m.to_value()).unwrap(),
            m
        );
        assert_eq!(Option::<f32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn field_lookup_errors() {
        let v = Value::Map(vec![("x".into(), Value::Num(1.0))]);
        assert!(v.field("x").is_ok());
        assert!(v.field("y").is_err());
        assert!(Vec::<f32>::from_value(&Value::Bool(true)).is_err());
    }
}
