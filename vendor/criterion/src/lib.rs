//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches compile against
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_with_input`, `Bencher::iter`) with a simple wall-clock
//! measurement: warm up briefly, then report the best mean ns/iter over a
//! few measurement batches. No statistics, plots or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement batches.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` with an input value attached to the ID.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&id.0, self.sample_size, |b| f(b, input));
    }

    /// Benchmarks a closure under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().0, self.sample_size, f);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Timing handle passed to the measured closure.
pub struct Bencher {
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Measures `f`, storing the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up & batch sizing: grow the batch until it runs ≥ ~2 ms.
        let mut batch = 1u64;
        let warm_target = Duration::from_millis(2);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= warm_target || batch >= 1 << 20 {
                let measured = dt.as_secs_f64() * 1e9 / batch as f64;
                let best = self.ns_per_iter.get_or_insert(measured);
                if measured < *best {
                    *best = measured;
                }
                return;
            }
            batch *= 2;
        }
    }
}

fn run_bench<F>(name: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut best: Option<f64> = None;
    for _ in 0..sample_size.max(2) {
        let mut b = Bencher { ns_per_iter: None };
        f(&mut b);
        if let Some(ns) = b.ns_per_iter {
            best = Some(match best {
                Some(prev) => prev.min(ns),
                None => ns,
            });
        }
    }
    match best {
        Some(ns) => println!("  {name}: {ns:.1} ns/iter"),
        None => println!("  {name}: no measurement (closure never called iter)"),
    }
}

/// Collects benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("sum", 64), &64usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }
}
