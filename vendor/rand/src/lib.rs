//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand`'s API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), [`Rng::gen_range`] over
//! integer and float ranges, and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through SplitMix64. Its value
//! stream differs from upstream `rand`'s `StdRng` (ChaCha12) — every
//! consumer in this workspace only relies on determinism-per-seed and
//! statistical quality, not on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniform `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample a uniform value from an RNG.
pub trait SampleRange<T> {
    /// Draws one uniform sample; panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Rejection loop guards against rounding up to the excluded
                // end bound; it virtually never iterates more than once.
                loop {
                    let v = self.start + (self.end - self.start) * $unit(rng.next_u64());
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * $unit(rng.next_u64())
            }
        }
    )*};
}

/// Uniform `f32` in `[0, 1)` from the top 24 bits.
fn unit_f32(x: u64) -> f32 {
    (x >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

float_sample_range!(f32 => unit_f32, f64 => unit_f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator, seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use super::RngCore;

    /// In-place uniform shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<f32> = (0..32).map(|_| a.gen_range(-1.0f32..1.0)).collect();
        let vb: Vec<f32> = (0..32).map(|_| b.gen_range(-1.0f32..1.0)).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<f32> = (0..32).map(|_| c.gen_range(-1.0f32..1.0)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(-0.5f32..0.25);
            assert!((-0.5..0.25).contains(&x));
            let n = r.gen_range(3usize..6);
            assert!((3..6).contains(&n));
            let m = r.gen_range(0u64..=4);
            assert!(m <= 4);
        }
    }

    #[test]
    fn float_mean_is_plausible() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
