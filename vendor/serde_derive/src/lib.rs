//! Derive macros for the offline `serde` stand-in.
//!
//! Parses the derive input by hand (no `syn`/`quote` available offline) and
//! supports exactly the shapes this workspace serialises:
//!
//! * structs with named fields (any visibility),
//! * unit structs and tuple structs,
//! * enums whose variants are units or tuples,
//! * `#[serde(default)]` on named struct fields — a missing key
//!   deserialises to `Default::default()` instead of erroring, so report
//!   schemas can grow fields without breaking older baselines.
//!
//! Generics, named-field enum variants and other `#[serde(...)]`
//! attributes are rejected or ignored rather than silently mis-handled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named struct field: its name, and whether `#[serde(default)]`
/// lets a missing key fall back to `Default::default()`.
struct Field {
    name: String,
    default: bool,
}

/// The shape of a derive input, reduced to what codegen needs.
enum Item {
    /// Struct with named fields.
    Struct { name: String, fields: Vec<Field> },
    /// Tuple struct with `arity` unnamed fields (0 covers unit structs).
    TupleStruct { name: String, arity: usize },
    /// Enum of `(variant name, tuple arity)`; arity 0 is a unit variant.
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips attributes (`#[...]`, including expanded `///` docs) and
/// visibility (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#[...]`
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Counts the top-level comma-separated items in a token sequence,
/// treating `<...>` nesting as opaque. Returns 0 for an empty sequence.
fn count_top_level_items(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut items = 1usize;
    let mut saw_tokens_since_comma = false;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                saw_tokens_since_comma = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                saw_tokens_since_comma = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                items += 1;
                saw_tokens_since_comma = false;
            }
            _ => saw_tokens_since_comma = true,
        }
    }
    if !saw_tokens_since_comma {
        // Trailing comma: the last "item" was empty.
        items -= 1;
    }
    items
}

/// True when the attribute body tokens (the part inside `#[...]`) spell
/// `serde(default)`.
fn is_serde_default(attr: &TokenTree) -> bool {
    let TokenTree::Group(g) = attr else { return false };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match inner.as_slice() {
        [TokenTree::Ident(id), TokenTree::Group(args)]
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            let args: Vec<TokenTree> = args.stream().into_iter().collect();
            matches!(args.as_slice(),
                [TokenTree::Ident(a)] if a.to_string() == "default")
        }
        _ => false,
    }
}

/// Parses named-struct body tokens into field names.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Collect attributes ourselves (instead of skip_attrs_and_vis) so
        // `#[serde(default)]` is seen before it is skipped.
        let mut default = false;
        loop {
            match (tokens.get(i), tokens.get(i + 1)) {
                (Some(TokenTree::Punct(p)), Some(attr)) if p.as_char() == '#' => {
                    default |= is_serde_default(attr);
                    i += 2;
                }
                (Some(TokenTree::Ident(id)), _) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{name}`, found {other:?}")),
        }
        // Swallow the type up to the next top-level comma.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Parses enum body tokens into `(variant, arity)` pairs.
fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<(String, usize)>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        let mut arity = 0usize;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                arity = count_top_level_items(&inner);
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "variant `{name}` has named fields, unsupported by the serde stub"
                ));
            }
            _ => {}
        }
        // Skip discriminant (`= expr`) if present, then the separating comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push((name, arity));
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "`{name}` is generic, unsupported by the serde stub derive"
            ));
        }
    }
    match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Item::Struct {
                name,
                fields: parse_named_fields(&inner)?,
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Item::TupleStruct {
                name,
                arity: count_top_level_items(&inner),
            })
        }
        ("struct", _) => Ok(Item::TupleStruct { name, arity: 0 }),
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Ok(Item::Enum {
                name,
                variants: parse_variants(&inner)?,
            })
        }
        _ => Err(format!("cannot parse derive input for `{name}`")),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = match arity {
                0 => "::serde::Value::Null".to_string(),
                1 => "::serde::Serialize::to_value(&self.0)".to_string(),
                n => {
                    let items: String = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k}),"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{items}])")
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    1 => format!(
                        "{name}::{v}(a0) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::to_value(a0))]),"
                    ),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("a{k}")).collect();
                        let items: String = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b}),"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Seq(vec![{items}]))]),",
                            binds.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let (name, default) = (&f.name, f.default);
                    if default {
                        format!(
                            "{name}: match v.get(\"{name}\") {{\n\
                                 ::std::option::Option::Some(x) => \
                                     ::serde::Deserialize::from_value(x)?,\n\
                                 ::std::option::Option::None => \
                                     ::std::default::Default::default(),\n\
                             }},"
                        )
                    } else {
                        format!(
                            "{name}: ::serde::Deserialize::from_value(v.field(\"{name}\")?)?,"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = match arity {
                0 => format!("::std::result::Result::Ok({name})"),
                1 => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                n => {
                    let items: String = (0..*n)
                        .map(|k| {
                            format!("::serde::Deserialize::from_value(&items[{k}])?,")
                        })
                        .collect();
                    format!(
                        "match v {{\n\
                             ::serde::Value::Seq(items) if items.len() == {n} => \
                                 ::std::result::Result::Ok({name}({items})),\n\
                             other => ::std::result::Result::Err(::serde::Error(format!(\n\
                                 \"expected {n}-element sequence for {name}, got {{other:?}}\"))),\n\
                         }}"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, a)| *a == 0)
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|(_, a)| *a > 0)
                .map(|(v, arity)| match arity {
                    1 => format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(payload)?)),"
                    ),
                    n => {
                        let items: String = (0..*n)
                            .map(|k| {
                                format!("::serde::Deserialize::from_value(&items[{k}])?,")
                            })
                            .collect();
                        format!(
                            "\"{v}\" => match payload {{\n\
                                 ::serde::Value::Seq(items) if items.len() == {n} => \
                                     ::std::result::Result::Ok({name}::{v}({items})),\n\
                                 other => ::std::result::Result::Err(::serde::Error(format!(\n\
                                     \"bad payload for {name}::{v}: {{other:?}}\"))),\n\
                             }},"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error(format!(\n\
                                     \"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, payload) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {payload_arms}\n\
                                     other => ::std::result::Result::Err(::serde::Error(format!(\n\
                                         \"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::Error(format!(\n\
                                 \"expected {name}, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Derives the stub `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derives the stub `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}
