//! Golden regression: a fully seeded quick pipeline run must reproduce
//! the committed numbers bit-for-bit. The parallel kernel layer is
//! deterministic by construction, so the goldens hold for any
//! `METALORA_THREADS` setting (CI runs this file at 1 and 4 threads).
//!
//! After an *intentional* numeric change, regenerate with
//! `cargo test --test integration_golden -- --nocapture` and copy the
//! printed `GOLDEN_*` block over the constants below.

use metalora::config::ExperimentConfig;
use metalora::methods::Method;
use metalora::table1::{run_table1, Table1Options};
use metalora::{pipeline, Arch};

const SEED: u64 = 42;

/// Pretrain per-epoch losses followed by the adapt-phase mean loss,
/// as exact f64 bit patterns (quick config: 2 + 1 records).
const GOLDEN_LOSSES: [u64; 3] = [
    0x40036d6900000000, // 2.4284229278564453
    0x4001083ba0000000, // 2.1290199756622314
    0x4000841480000000, // 2.0644922256469727
];

/// Probe mean accuracy for K = 5 and K = 10, as exact f32 bit patterns.
const GOLDEN_ACCS: [u32; 2] = [
    0x3ea00000, // 0.3125
    0x3ea00000, // 0.3125
];

/// One seeded quick run: ResNet pretrain → Meta-LoRA TR adapt → probe.
/// Returns the K=5 / K=10 probe accuracies.
fn run_pipeline() -> [f32; 2] {
    let cfg = ExperimentConfig::quick();
    let net = pipeline::pretrain(&cfg, Arch::ResNet, SEED).unwrap();
    let adapted = pipeline::adapt(net, Method::MetaLoraTr, &cfg, SEED).unwrap();
    let probe = pipeline::probe(&adapted, &cfg, SEED).unwrap();
    [
        probe.mean_accuracy(5).unwrap(),
        probe.mean_accuracy(10).unwrap(),
    ]
}

#[test]
fn golden_quick_pipeline() {
    // Reference run with every collector off.
    metalora_obs::set_enabled(false);
    metalora_obs::trace::set_enabled(false);
    metalora_obs::reset();
    let accs_off = run_pipeline();

    // Observed run with every collector on — spans, counters, the event
    // timeline, per-group health probes at stride 1 AND the live metrics
    // registry under the logical clock. Numerics must not move by a
    // single bit.
    metalora_obs::set_enabled(true);
    metalora_obs::trace::set_enabled(true);
    metalora_obs::health::set_sample_stride(1);
    metalora_obs::registry::set_enabled(true);
    metalora_obs::window::set_clock(metalora_obs::window::ClockMode::Logical);
    metalora_obs::reset();
    let accs_on = run_pipeline();
    let epochs = metalora_obs::metrics::snapshot();
    let spans = metalora_obs::span::snapshot();
    let counters = metalora_obs::counters::snapshot();
    let health = metalora_obs::health::snapshot();
    let (trace_events, trace_dropped) = metalora_obs::trace::snapshot();
    let chrome = metalora_obs::trace::to_chrome_json(&trace_events);
    metalora_obs::set_enabled(false);
    metalora_obs::trace::set_enabled(false);
    metalora_obs::health::set_sample_stride(0);
    metalora_obs::registry::set_enabled(false);
    metalora_obs::window::set_clock(metalora_obs::window::ClockMode::Monotonic);
    metalora_obs::reset();

    for (k, (on, off)) in [5usize, 10].into_iter().zip(accs_on.iter().zip(&accs_off)) {
        assert_eq!(
            on.to_bits(),
            off.to_bits(),
            "K={k}: instrumentation changed the numerics ({on} vs {off})"
        );
    }

    // The observed run produced the expected records.
    let losses: Vec<f64> = epochs.iter().map(|e| e.loss).collect();
    assert_eq!(
        epochs.iter().map(|e| e.phase.as_str()).collect::<Vec<_>>(),
        ["pretrain/epoch", "pretrain/epoch", "adapt/MetaLoraTr"],
    );
    for e in &epochs {
        assert!(e.loss.is_finite() && e.loss > 0.0, "{e:?}");
        assert!((0.0..=1.0).contains(&e.accuracy), "{e:?}");
        assert!(e.grad_norm.is_finite() && e.grad_norm >= 0.0, "{e:?}");
    }
    let span_paths: Vec<&str> = spans.iter().map(|(p, _)| p.as_str()).collect();
    for expect in ["pretrain", "adapt/MetaLoraTr", "probe/MetaLoraTr"] {
        assert!(span_paths.contains(&expect), "missing span {expect:?} in {span_paths:?}");
    }
    let calls_of = |k: metalora_obs::counters::Kernel| {
        counters.kernels.iter().find(|s| s.kernel == k.name()).map_or(0, |s| s.calls)
    };
    assert!(calls_of(metalora_obs::counters::Kernel::Matmul) > 0);
    assert!(calls_of(metalora_obs::counters::Kernel::Conv) > 0);
    assert!(calls_of(metalora_obs::counters::Kernel::Knn) > 0);
    assert!(counters.peak_tensor_bytes > 0);

    // Health probes fired for both the optimizer and seed generation,
    // phase-stamped from the span stack, with finite norms and no
    // non-finite sentinels anywhere in the run.
    assert!(!health.is_empty(), "no health records at stride 1");
    assert!(
        health.iter().any(|h| h.phase.starts_with("pretrain")),
        "no pretrain health records: {:?}",
        health.iter().map(|h| h.phase.as_str()).collect::<Vec<_>>()
    );
    assert!(
        health.iter().any(|h| h.phase.starts_with("adapt/MetaLoraTr")),
        "no adapt health records"
    );
    assert!(health.iter().any(|h| h.group == "mapping/seed"), "no seed-generation probes");
    for h in &health {
        assert_eq!((h.nan_count, h.inf_count), (0, 0), "non-finite values in {h:?}");
        assert!(h.weight_norm.is_finite() && h.weight_norm >= 0.0, "{h:?}");
        if h.group != "mapping/seed" {
            assert!(h.grad_norm.is_finite() && h.grad_norm >= 0.0, "{h:?}");
        }
    }

    // The timeline recorded begin/end pairs and exports as valid Chrome
    // trace JSON (what `TRACE_table1.json` carries).
    assert!(!trace_events.is_empty(), "tracing enabled but no events");
    assert_eq!(trace_dropped, 0, "quick run must fit the default ring");
    let v: serde_json::Value = serde_json::from_str(&chrome).unwrap();
    let serde_json::Value::Seq(events) = v.field("traceEvents").unwrap() else {
        panic!("traceEvents is not an array");
    };
    assert_eq!(events.len(), trace_events.len());
    for e in events {
        match e.field("ph").unwrap() {
            serde_json::Value::Str(ph) => assert!(ph == "B" || ph == "E", "bad phase {ph:?}"),
            other => panic!("ph is not a string: {other:?}"),
        }
        assert!(matches!(e.field("name").unwrap(), serde_json::Value::Str(_)));
        assert!(matches!(e.field("ts").unwrap(), serde_json::Value::Num(_)));
        assert!(matches!(e.field("tid").unwrap(), serde_json::Value::Num(_)));
    }

    // Regeneration aid: printed only under --nocapture.
    println!("const GOLDEN_LOSSES: [u64; {}] = [", losses.len());
    for l in &losses {
        println!("    0x{:016x}, // {l:?}", l.to_bits());
    }
    println!("];");
    println!("const GOLDEN_ACCS: [u32; 2] = [");
    for a in &accs_on {
        println!("    0x{:08x}, // {a:?}", a.to_bits());
    }
    println!("];");

    // The committed goldens.
    assert_eq!(losses.len(), GOLDEN_LOSSES.len());
    for (i, (l, g)) in losses.iter().zip(&GOLDEN_LOSSES).enumerate() {
        assert_eq!(
            l.to_bits(),
            *g,
            "loss[{i}] drifted: got {l:?} (0x{:016x}), golden 0x{g:016x}",
            l.to_bits()
        );
    }
    for (i, (a, g)) in accs_on.iter().zip(&GOLDEN_ACCS).enumerate() {
        assert_eq!(
            a.to_bits(),
            *g,
            "acc[{i}] drifted: got {a:?} (0x{:08x}), golden 0x{g:08x}",
            a.to_bits()
        );
    }
}

/// Full quick-scale Table I grid with instrumentation on: the run report
/// must serialise to valid JSON carrying per-phase spans, per-kernel
/// counters and per-epoch metrics, and land on disk as `RUNLOG_*.json`.
/// Slow (the whole 5-method × 2-backbone grid), so nightly-only.
#[test]
#[ignore = "slow: full quick-scale table1 grid; run via --include-ignored"]
fn runlog_captures_full_table1_grid() {
    metalora_obs::set_enabled(true);
    metalora_obs::reset();
    let mut cfg = ExperimentConfig::quick();
    cfg.probe_rounds = 1;
    run_table1(&Table1Options::new(cfg, vec![0])).unwrap();

    let report = metalora_obs::report::RunReport::capture("table1_grid_test");
    metalora_obs::set_enabled(false);
    metalora_obs::reset();

    // Valid JSON with the full schema.
    let json = report.to_json();
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    for key in [
        "schema_version",
        "name",
        "spans",
        "kernels",
        "dispatch",
        "memory",
        "workspace",
        "health",
        "trace",
        "telemetry",
        "epochs",
    ] {
        assert!(v.field(key).is_ok(), "missing key {key:?}");
    }

    // Every phase of every method shows up in the span tree, with ordered
    // duration quantiles…
    let span_paths: Vec<String> = report.spans.iter().map(|s| s.path.clone()).collect();
    for s in &report.spans {
        assert!(
            s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns,
            "quantiles out of order for {}: {} {} {}",
            s.path,
            s.p50_ns,
            s.p95_ns,
            s.p99_ns
        );
    }
    for m in ["Original", "Lora", "MultiLora", "MetaLoraCp", "MetaLoraTr"] {
        assert!(
            span_paths.iter().any(|p| p == &format!("adapt/{m}")),
            "no adapt span for {m}: {span_paths:?}"
        );
        assert!(span_paths.iter().any(|p| p == &format!("probe/{m}")));
    }
    // …and the epochs sink saw both pretraining and adaptation.
    let phases: Vec<&str> = report.epochs.iter().map(|e| e.phase.as_str()).collect();
    assert!(phases.contains(&"pretrain/epoch"));
    assert!(phases.contains(&"adapt/MetaLoraTr"));

    // Kernel counters moved, and wall time was accounted per phase.
    assert!(report.counters.kernels.iter().any(|k| k.kernel == "matmul" && k.flops > 0));
    assert!(report.counters.dispatch_parallel + report.counters.dispatch_serial > 0);
    assert!(report.counters.peak_tensor_bytes > 0);
    assert!(report.epochs.iter().all(|e| e.wall_s >= 0.0));

    // The writer puts a well-named file on disk.
    let dir = std::env::temp_dir();
    let path = report.write_to(&dir).unwrap();
    assert!(path.file_name().unwrap().to_str().unwrap().starts_with("RUNLOG_"));
    let on_disk = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(on_disk, json);

    // The human summary mentions each section.
    let table = report.summary_table();
    for needle in ["span", "kernel", "epoch"] {
        assert!(
            table.to_lowercase().contains(needle),
            "summary table missing {needle:?}:\n{table}"
        );
    }
}
