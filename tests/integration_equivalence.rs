//! Cross-crate numerical identities: the mathematical claims behind the
//! paper's figures, verified at moderate scale.

use metalora::nn::{Conv2d, Ctx, Linear, Module};
use metalora::peft::meta::{MetaLoraCpConv, MetaLoraCpLinear, MetaLoraTrConv, MetaLoraTrLinear};
use metalora::peft::{ConvLora, LoraConfig};
use metalora::tensor::conv::{conv2d, conv2d_via_dummy, ConvSpec};
use metalora::tensor::decomp::{cp_als, tr_svd};
use metalora::tensor::einsum::einsum;
use metalora::tensor::{approx_eq, contract, init, max_rel_err, ops, Tensor};
use metalora_autograd::Graph;

/// Fig. 1 — pairwise contraction (Eq. 1) agrees with the naive sum and
/// with the einsum reference across several wiring patterns.
#[test]
fn fig1_contraction_identities() {
    let mut rng = init::rng(1);
    let a = init::uniform(&[4, 6, 5], -1.0, 1.0, &mut rng);
    let b = init::uniform(&[5, 6, 3], -1.0, 1.0, &mut rng);
    let fast = contract::contract(&a, &b, &[2, 1], &[0, 1]).unwrap();
    let naive = contract::contract_naive(&a, &b, &[2, 1], &[0, 1]).unwrap();
    let es = einsum("ikj,jkm->im", &[&a, &b]).unwrap();
    assert!(approx_eq(&fast, &naive, 1e-4));
    assert!(approx_eq(&fast, &es, 1e-4));
}

/// Fig. 2 — convolution as a tensor network with dummy tensors equals the
/// im2col path across stride/padding settings and scales.
#[test]
fn fig2_dummy_tensor_convolution() {
    let mut rng = init::rng(2);
    for (hw, k, s, p) in [(12, 3, 1, 1), (16, 5, 2, 2), (9, 1, 1, 0), (10, 3, 3, 1)] {
        let spec = ConvSpec::new(k, s, p).unwrap();
        let x = init::uniform(&[2, 4, hw, hw], -1.0, 1.0, &mut rng);
        let w = init::uniform(&[k, k, 4, 6], -1.0, 1.0, &mut rng);
        let direct = conv2d(&x, &w, spec, spec).unwrap();
        let tn = conv2d_via_dummy(&x, &w, spec, spec).unwrap();
        assert!(
            approx_eq(&direct, &tn, 1e-3),
            "hw={hw} k={k} s={s} p={p}: err {}",
            max_rel_err(&direct, &tn)
        );
    }
}

/// Fig. 3 — Conv-LoRA's factored execution (small conv → 1×1 conv)
/// equals convolving with the materialised Δ𝒲 of Eq. 5.
#[test]
fn fig3_conv_lora_factorisation() {
    let mut rng = init::rng(3);
    for (stride, rank) in [(1usize, 2usize), (2, 4), (1, 1)] {
        let base = Conv2d::new_no_bias("c", 4, 6, 3, stride, 1, &mut rng).unwrap();
        let spec = base.spec();
        let cl = ConvLora::new(
            "c",
            Box::new(base),
            LoraConfig { rank, alpha: 2.0 },
            &mut rng,
        )
        .unwrap();
        cl.b.set_value(init::uniform(&[rank, 6], -0.5, 0.5, &mut rng));
        let x = init::uniform(&[2, 4, 10, 10], -1.0, 1.0, &mut rng);

        let mut g = Graph::inference();
        let xv = g.input(x.clone());
        let y = cl.forward(&mut g, xv, &Ctx::none()).unwrap();
        let dims = g.dims(y);
        // Subtract the base to isolate the factored delta.
        let mut g2 = Graph::inference();
        let xv2 = g2.input(x.clone());
        let w = g2.input(cl.delta_weight().unwrap());
        let full = g2.conv2d(xv2, w, spec, spec).unwrap();
        let full_v = g2.value(full);
        assert_eq!(dims, full_v.dims().to_vec());

        // Factored delta from forward − base forward.
        let base_out = {
            let mut g3 = Graph::inference();
            let xv3 = g3.input(x);
            // base params are inside cl; re-run with zeroed B to get base.
            let saved = cl.b.value();
            cl.b.set_value(Tensor::zeros(saved.dims()));
            let yb = cl.forward(&mut g3, xv3, &Ctx::none()).unwrap();
            cl.b.set_value(saved);
            g3.value(yb)
        };
        let factored = ops::sub(&g.value(y), &base_out).unwrap();
        assert!(
            approx_eq(&factored, &full_v, 1e-3),
            "stride={stride} rank={rank}: err {}",
            max_rel_err(&factored, &full_v)
        );
    }
}

/// Eq. 6 — the MetaLoRA-CP factored forward equals contracting
/// `Λ ×₁ A ×₂ B ×₃ c` for dense and convolutional layers.
#[test]
fn eq6_metalora_cp_consistency() {
    let mut rng = init::rng(4);
    let base = Linear::new("fc", 8, 5, &mut rng);
    let m = MetaLoraCpLinear::new(
        "fc",
        Box::new(base),
        LoraConfig { rank: 3, alpha: 3.0 },
        &mut rng,
    );
    m.b.set_value(init::uniform(&[3, 5], -0.7, 0.7, &mut rng));
    let c = init::uniform(&[3], -1.0, 1.0, &mut rng);
    let dw = m.delta_weight_for(&c).unwrap();
    let oracle = einsum("ir,ro,r->io", &[&m.a.value(), &m.b.value(), &c]).unwrap();
    assert!(approx_eq(&dw, &ops::scale(&oracle, 1.0), 1e-4));

    let basec = Conv2d::new_no_bias("c", 3, 4, 3, 1, 1, &mut rng).unwrap();
    let mc = MetaLoraCpConv::new(
        "c",
        Box::new(basec),
        LoraConfig { rank: 2, alpha: 2.0 },
        &mut rng,
    )
    .unwrap();
    mc.b.set_value(init::uniform(&[2, 4], -0.7, 0.7, &mut rng));
    let c = init::uniform(&[2], -1.0, 1.0, &mut rng);
    let dw = mc.delta_weight_for(&c).unwrap();
    assert_eq!(dw.dims(), &[3, 3, 3, 4]);
    // Oracle via flattened einsum over the spatial+channel axis.
    let a3 = mc.a.value().reshaped(&[27, 2]).unwrap();
    let oracle = einsum("sr,ro,r->so", &[&a3, &mc.b.value(), &c]).unwrap();
    let oracle = ops::scale(&oracle, 1.0).reshape(&[3, 3, 3, 4]).unwrap();
    assert!(approx_eq(&dw, &oracle, 1e-4));
}

/// Eq. 7 — the MetaLoRA-TR factored forward equals the ring contraction
/// for dense and convolutional layers (checked against einsum).
#[test]
fn eq7_metalora_tr_consistency() {
    let mut rng = init::rng(5);
    let base = Linear::new("fc", 7, 4, &mut rng);
    let m = MetaLoraTrLinear::new(
        "fc",
        Box::new(base),
        LoraConfig { rank: 3, alpha: 3.0 },
        &mut rng,
    );
    m.b.set_value(init::uniform(&[3, 4, 3], -0.7, 0.7, &mut rng));
    let c = init::uniform(&[3, 3], -1.0, 1.0, &mut rng);
    let dw = m.delta_weight_for(&c).unwrap();
    let oracle = einsum("xiy,yoz,zx->io", &[&m.a.value(), &m.b.value(), &c]).unwrap();
    assert!(approx_eq(&dw, &ops::scale(&oracle, 1.0), 1e-4));

    // Per-sample forward agreement on a batch of 3 distinct seeds.
    let x = init::uniform(&[3, 7], -1.0, 1.0, &mut rng);
    let seeds = init::uniform(&[3, 9], -1.0, 1.0, &mut rng);
    let mut g = Graph::inference();
    let xv = g.input(x.clone());
    let sv = g.input(seeds.clone());
    let y = m.forward(&mut g, xv, &Ctx::with_seed(sv)).unwrap();
    let yv = g.value(y);
    for n in 0..3 {
        let cn = seeds.index_axis0(n).unwrap().reshape(&[3, 3]).unwrap();
        let dw = m.delta_weight_for(&cn).unwrap();
        let xn = x.index_axis0(n).unwrap().reshape(&[1, 7]).unwrap();
        let dy = ops::matmul(&xn, &dw).unwrap();
        // Base output for this row.
        let mut g2 = Graph::inference();
        let xnv = g2.input(xn);
        let yb = m.forward(&mut g2, xnv, &Ctx::none()).unwrap();
        let expect = ops::add(&g2.value(yb), &dy).unwrap();
        let got = yv.index_axis0(n).unwrap().reshape(&[1, 4]).unwrap();
        assert!(
            approx_eq(&got, &expect, 1e-3),
            "sample {n}: err {}",
            max_rel_err(&got, &expect)
        );
    }

    // Convolutional TR variant.
    let basec = Conv2d::new_no_bias("c", 2, 3, 3, 1, 1, &mut rng).unwrap();
    let mc = MetaLoraTrConv::new(
        "c",
        Box::new(basec),
        LoraConfig { rank: 2, alpha: 2.0 },
        &mut rng,
    )
    .unwrap();
    mc.b.set_value(init::uniform(&[2, 3, 2], -0.5, 0.5, &mut rng));
    let c = init::uniform(&[2, 2], -1.0, 1.0, &mut rng);
    let dw = mc.delta_weight_for(&c).unwrap();
    assert_eq!(dw.dims(), &[3, 3, 2, 3]);
}

/// Sec. II-D machinery — CP-ALS and TR-SVD reconstruct structured
/// tensors at moderate scale.
#[test]
fn decomposition_drivers_reconstruct() {
    let mut rng = init::rng(6);
    // CP: exact rank-3 target.
    let cp = metalora::tensor::decomp::CpFormat::random(&[8, 7, 6], 3, &mut rng).unwrap();
    let target = cp.reconstruct().unwrap();
    let rec = cp_als(&target, 3, 80, 1e-7, &mut rng).unwrap();
    let err = rec.relative_error(&target).unwrap();
    assert!(err < 0.08, "CP-ALS err {err}");

    // TR: exact rank-2 ring target.
    let tr = metalora::tensor::decomp::TrFormat::random(&[6, 7, 5], 2, &mut rng).unwrap();
    let target = tr.reconstruct().unwrap();
    let rec = tr_svd(&target, 4, 1e-7).unwrap();
    let err = rec.relative_error(&target).unwrap();
    assert!(err < 0.05, "TR-SVD err {err}");
}
