//! Checkpoint round-trip: save → load through the JSON file format must
//! reproduce every parameter and buffer bit-for-bit, and a restored model
//! must produce bitwise-identical forward outputs — for plain backbones
//! and for a LoRA-injected one.

use metalora::config::ExperimentConfig;
use metalora::nn::models::{Mixer, ResNet};
use metalora::nn::{Checkpoint, Ctx, Module};
use metalora::peft::inject;
use metalora::tensor::{init, Tensor};
use metalora_autograd::Graph;

/// Inference-mode forward on a fixed input.
fn forward(m: &dyn Module, x: &Tensor) -> Tensor {
    let mut g = Graph::inference();
    let xv = g.input(x.clone());
    let y = m.forward(&mut g, xv, &Ctx::none()).unwrap();
    g.value(y)
}

fn assert_bitwise(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.dims(), b.dims(), "{what}: shape");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x} vs {y})"
        );
    }
}

/// Save `src` to disk, load it back, apply into `dst`, then demand
/// bitwise-equal parameters, buffers, and forward outputs.
fn roundtrip(src: &dyn Module, dst: &dyn Module, x: &Tensor, tag: &str) {
    let path = std::env::temp_dir().join(format!("metalora_roundtrip_{tag}.json"));
    Checkpoint::capture(src).unwrap().save(&path).unwrap();
    let loaded = Checkpoint::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    loaded.apply(dst).unwrap();

    let (mut sp, mut dp) = (src.params(), dst.params());
    sp.extend(src.buffers());
    dp.extend(dst.buffers());
    assert_eq!(sp.len(), dp.len(), "{tag}: parameter count");
    for (a, b) in sp.iter().zip(&dp) {
        assert_eq!(a.name(), b.name(), "{tag}: parameter order");
        assert_bitwise(&a.value(), &b.value(), &format!("{tag}/{}", a.name()));
    }
    assert_bitwise(&forward(src, x), &forward(dst, x), &format!("{tag}: forward"));
}

#[test]
fn resnet_checkpoint_roundtrips_bitwise() {
    let cfg = ExperimentConfig::quick();
    let src = ResNet::new(&cfg.resnet(), &mut init::rng(1)).unwrap();
    let dst = ResNet::new(&cfg.resnet(), &mut init::rng(2)).unwrap();
    let x = init::uniform(&[2, 3, cfg.image_size, cfg.image_size], -1.0, 1.0, &mut init::rng(3));
    // Move the batch-norm running stats off their init so the buffers
    // carry real state through the file.
    let mut g = Graph::new();
    let xv = g.input(x.clone());
    src.forward(&mut g, xv, &Ctx::none()).unwrap();
    roundtrip(&src, &dst, &x, "resnet");
}

#[test]
fn mixer_checkpoint_roundtrips_bitwise() {
    let cfg = ExperimentConfig::quick();
    let src = Mixer::new(&cfg.mixer(), &mut init::rng(4)).unwrap();
    let dst = Mixer::new(&cfg.mixer(), &mut init::rng(5)).unwrap();
    let x = init::uniform(&[2, 3, cfg.image_size, cfg.image_size], -1.0, 1.0, &mut init::rng(6));
    roundtrip(&src, &dst, &x, "mixer");
}

#[test]
fn injected_lora_checkpoint_roundtrips_bitwise() {
    let cfg = ExperimentConfig::quick();
    let lora = cfg.lora_config();
    let mut src = ResNet::new(&cfg.resnet(), &mut init::rng(7)).unwrap();
    let inj = inject::lora_into_resnet(&mut src, lora, &mut init::rng(8)).unwrap();
    // Non-zero up-projections so the adapters actually shape the output.
    let mut rng = init::rng(9);
    for p in &inj.adapter_params {
        if p.name().contains("_b") {
            p.set_value(init::uniform(&p.dims(), -0.5, 0.5, &mut rng));
        }
    }
    let mut dst = ResNet::new(&cfg.resnet(), &mut init::rng(10)).unwrap();
    inject::lora_into_resnet(&mut dst, lora, &mut init::rng(11)).unwrap();
    let x = init::uniform(&[2, 3, cfg.image_size, cfg.image_size], -1.0, 1.0, &mut init::rng(12));
    roundtrip(&src, &dst, &x, "resnet_lora");
}

#[test]
fn partial_apply_warm_starts_injected_model_from_base_checkpoint() {
    let cfg = ExperimentConfig::quick();
    let base = ResNet::new(&cfg.resnet(), &mut init::rng(13)).unwrap();
    let n_base = base.params().len() + base.buffers().len();
    let ck = Checkpoint::capture(&base).unwrap();

    let mut injected = ResNet::new(&cfg.resnet(), &mut init::rng(14)).unwrap();
    inject::lora_into_resnet(&mut injected, cfg.lora_config(), &mut init::rng(15)).unwrap();
    // Strict apply must refuse (adapter params missing from the file)…
    assert!(ck.apply(&injected).is_err());
    // …while partial apply restores exactly the base set.
    assert_eq!(ck.apply_partial(&injected).unwrap(), n_base);
}
