//! PEFT adapters inside full backbones: freezing discipline, learning
//! behaviour and parameter-efficiency claims.

use metalora::autograd::Graph;
use metalora::nn::models::{Mixer, ResNet};
use metalora::nn::{Ctx, Module, Optimizer, Sgd};
use metalora::peft::meta::MetaFormat;
use metalora::peft::{inject, LoraConfig, ParamReport};
use metalora::tensor::{init, Tensor};
use metalora::ExperimentConfig;

fn quick_resnet(seed: u64) -> ResNet {
    let cfg = ExperimentConfig::quick();
    ResNet::new(&cfg.resnet(), &mut init::rng(seed)).unwrap()
}

fn quick_mixer(seed: u64) -> Mixer {
    let cfg = ExperimentConfig::quick();
    Mixer::new(&cfg.mixer(), &mut init::rng(seed)).unwrap()
}

fn batch(seed: u64, n: usize, size: usize) -> (Tensor, Vec<usize>) {
    let mut rng = init::rng(seed);
    let x = init::uniform(&[n, 3, size, size], 0.0, 1.0, &mut rng);
    let labels = (0..n).map(|i| i % 8).collect();
    (x, labels)
}

/// One training step on the adapter params; returns (before, after) loss.
fn one_step(model: &dyn Module, params: Vec<metalora::autograd::ParamRef>, seed: u64) -> (f32, f32) {
    let (x, labels) = batch(seed, 8, 16);
    let run = |model: &dyn Module| {
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let logits = model.forward(&mut g, xv, &Ctx::none()).unwrap();
        let loss = g.softmax_cross_entropy(logits, &labels).unwrap();
        (g, loss)
    };
    let (mut g, loss) = run(model);
    let before = g.value(loss).item().unwrap();
    g.backward(loss).unwrap();
    g.flush_grads();
    let mut opt = Sgd::new(params, 0.5);
    opt.step();
    let (g2, loss2) = run(model);
    (before, g2.value(loss2).item().unwrap())
}

#[test]
fn lora_step_reduces_loss_resnet() {
    let mut rng = init::rng(1);
    let mut net = quick_resnet(1);
    let inj = inject::lora_into_resnet(&mut net, LoraConfig::default(), &mut rng).unwrap();
    let (before, after) = one_step(&net, inj.adapter_params, 2);
    assert!(after < before, "{after} !< {before}");
}

#[test]
fn lora_step_reduces_loss_mixer() {
    let mut rng = init::rng(2);
    let mut net = quick_mixer(2);
    let inj = inject::lora_into_mixer(&mut net, LoraConfig::default(), &mut rng).unwrap();
    let (before, after) = one_step(&net, inj.adapter_params, 3);
    assert!(after < before, "{after} !< {before}");
}

#[test]
fn meta_cp_step_reduces_loss_resnet() {
    let mut rng = init::rng(3);
    let net = quick_resnet(3);
    let (meta, inj) =
        inject::meta_into_resnet(net, MetaFormat::Cp, LoraConfig::default(), 16, &mut rng)
            .unwrap();
    let (before, after) = one_step(&meta, inj.adapter_params, 4);
    assert!(after < before, "{after} !< {before}");
}

#[test]
fn meta_tr_step_reduces_loss_mixer() {
    let mut rng = init::rng(4);
    let net = quick_mixer(4);
    let (meta, inj) =
        inject::meta_into_mixer(net, MetaFormat::Tr, LoraConfig::default(), 16, &mut rng)
            .unwrap();
    let (before, after) = one_step(&meta, inj.adapter_params, 5);
    assert!(after < before, "{after} !< {before}");
}

#[test]
fn frozen_base_never_moves_under_adapter_training() {
    let mut rng = init::rng(5);
    let mut net = quick_resnet(5);
    let snapshot: Vec<Tensor> = net
        .params()
        .iter()
        .map(|p| p.value())
        .collect();
    let inj = inject::lora_into_resnet(&mut net, LoraConfig::default(), &mut rng).unwrap();
    for _ in 0..3 {
        one_step(&net, inj.adapter_params.clone(), 6);
    }
    let frozen_now: Vec<Tensor> = net
        .params()
        .iter()
        .filter(|p| !p.trainable())
        .map(|p| p.value())
        .collect();
    // Every original backbone tensor is still bit-identical somewhere in
    // the frozen set.
    for t in &snapshot {
        assert!(
            frozen_now
                .iter()
                .any(|u| metalora::tensor::approx_eq(t, u, 0.0)),
            "a frozen parameter moved"
        );
    }
}

#[test]
fn trainable_fraction_shrinks_with_backbone_growth() {
    // The "0.1–1%" claim scales with backbone size: the bigger net must
    // have a strictly smaller trainable fraction at fixed rank.
    let mut rng = init::rng(6);
    let small_cfg = ExperimentConfig::quick();
    let mut small = ResNet::new(&small_cfg.resnet(), &mut rng).unwrap();
    let std_cfg = ExperimentConfig::standard();
    let mut big = ResNet::new(&std_cfg.resnet(), &mut rng).unwrap();
    let lc = LoraConfig {
        rank: 2,
        alpha: 4.0,
    };
    inject::lora_into_resnet(&mut small, lc, &mut rng).unwrap();
    inject::lora_into_resnet(&mut big, lc, &mut rng).unwrap();
    let fs = ParamReport::of(&small).fraction();
    let fb = ParamReport::of(&big).fraction();
    assert!(fb < fs, "big {fb} !< small {fs}");
    assert!(fb < 0.2, "standard backbone adapter fraction {fb}");
}

#[test]
fn meta_seed_depends_on_input_shift() {
    // The generated seed must differ between identity and inverted views
    // of the same underlying content — the mechanism behind task-aware
    // adaptation.
    let mut rng = init::rng(7);
    let net = quick_resnet(7);
    let (meta, _) =
        inject::meta_into_resnet(net, MetaFormat::Cp, LoraConfig::default(), 16, &mut rng)
            .unwrap();
    let (x, _) = batch(8, 4, 16);
    let x_inv = metalora::tensor::ops::map(&x, |v| 1.0 - v);
    let mut g = Graph::inference();
    let a = g.input(x);
    let b = g.input(x_inv);
    let sa = meta.generate_seed(&mut g, a).unwrap();
    let sb = meta.generate_seed(&mut g, b).unwrap();
    assert!(!metalora::tensor::approx_eq(
        &g.value(sa),
        &g.value(sb),
        1e-4
    ));
}

#[test]
fn multi_lora_slots_specialise() {
    // Train slot 0 on one label mapping and slot 1 on a permuted mapping;
    // each slot should fit its own mapping better.
    let mut rng = init::rng(13);
    let mut net = quick_resnet(8);
    let inj = inject::multi_into_resnet(&mut net, 2, LoraConfig::default(), &mut rng).unwrap();
    let (x, labels) = batch(9, 8, 16);
    let permuted: Vec<usize> = labels.iter().map(|&l| (l + 4) % 8).collect();

    let mut opt = Sgd::new(inj.adapter_params.clone(), 0.4);
    for _ in 0..25 {
        for (slot, lab) in [(0usize, &labels), (1usize, &permuted)] {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let logits = net.forward(&mut g, xv, &Ctx::with_adapter(slot)).unwrap();
            let loss = g.softmax_cross_entropy(logits, lab).unwrap();
            g.backward(loss).unwrap();
            g.flush_grads();
            opt.step();
        }
    }
    let loss_with = |slot: usize, lab: &[usize]| {
        let mut g = Graph::inference();
        let xv = g.input(x.clone());
        let logits = net.forward(&mut g, xv, &Ctx::with_adapter(slot)).unwrap();
        let loss = g.softmax_cross_entropy(logits, lab).unwrap();
        g.value(loss).item().unwrap()
    };
    assert!(
        loss_with(0, &labels) < loss_with(1, &labels),
        "slot 0 should fit mapping 0 best"
    );
    assert!(
        loss_with(1, &permuted) < loss_with(0, &permuted),
        "slot 1 should fit mapping 1 best"
    );
}
