//! Data substrate integration: the synthetic task family is learnable,
//! shifts genuinely shift, and the KNN probe behaves sensibly on raw
//! pixels.

use metalora::data::dataset::generate;
use metalora::data::knn::{Distance, KnnClassifier};
use metalora::data::stats::welch_t_test;
use metalora::data::synth::NUM_CLASSES;
use metalora::data::task::TaskFamily;
use metalora::data::Shift;
use metalora::tensor::{init, ops, Tensor};

/// Flattens `[N, C, H, W]` images into `[N, C·H·W]` raw-pixel embeddings.
fn flatten(images: &Tensor) -> Tensor {
    let n = images.dims()[0];
    let d = images.len() / n;
    images.reshaped(&[n, d]).unwrap()
}

#[test]
fn raw_pixel_knn_beats_chance_on_base_task() {
    let mut rng = init::rng(1);
    let support = generate(Shift::Identity, 10, 16, &mut rng).unwrap();
    let query = generate(Shift::Identity, 4, 16, &mut rng).unwrap();
    let knn = KnnClassifier::fit(
        flatten(&support.images),
        support.labels.clone(),
        Distance::L2,
    )
    .unwrap();
    let acc = knn
        .accuracy(&flatten(&query.images), &query.labels, 5)
        .unwrap();
    let chance = 1.0 / NUM_CLASSES as f32;
    assert!(acc > 2.0 * chance, "raw-pixel KNN accuracy {acc}");
}

#[test]
fn shifts_degrade_raw_pixel_transfer() {
    // A probe fitted on identity images should classify identity queries
    // better than heavily shifted queries — i.e. the shifts are real
    // distribution shifts.
    let mut rng = init::rng(2);
    let support = generate(Shift::Identity, 12, 16, &mut rng).unwrap();
    let knn = KnnClassifier::fit(
        flatten(&support.images),
        support.labels.clone(),
        Distance::L2,
    )
    .unwrap();
    let acc_on = |shift: Shift, rng: &mut rand::rngs::StdRng| {
        let q = generate(shift, 6, 16, rng).unwrap();
        knn.accuracy(&flatten(&q.images), &q.labels, 5).unwrap()
    };
    let base = acc_on(Shift::Identity, &mut rng);
    let inverted = acc_on(Shift::Invert, &mut rng);
    assert!(
        inverted < base,
        "inversion should hurt raw-pixel transfer: {inverted} !< {base}"
    );
}

#[test]
fn task_family_covers_disjoint_pools() {
    let fam = TaskFamily::standard();
    let train_names: Vec<String> = fam.train.iter().map(|t| t.shift.name()).collect();
    let eval_names: Vec<String> = fam.eval.iter().map(|t| t.shift.name()).collect();
    for e in &eval_names {
        assert!(!train_names.contains(e), "eval shift {e} seen in training");
    }
    assert_eq!(train_names.len(), 12);
    assert_eq!(eval_names.len(), 6);
}

#[test]
fn every_task_is_generable_at_standard_size() {
    let fam = TaskFamily::standard();
    let mut rng = init::rng(3);
    for task in fam.train.iter().chain(&fam.eval) {
        let d = generate(task.shift, 1, 32, &mut rng).unwrap();
        assert_eq!(d.len(), NUM_CLASSES, "{}", task.name());
        assert!(!d.images.has_non_finite(), "{}", task.name());
        // Images stay in [0, 1].
        assert!(d.images.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}

#[test]
fn class_means_are_distinguishable() {
    // Within the base task, per-class mean images must differ — otherwise
    // the classification problem would be vacuous.
    let mut rng = init::rng(4);
    let d = generate(Shift::Identity, 20, 16, &mut rng).unwrap();
    let n = d.len();
    let dim = d.images.len() / n;
    let flat = d.images.reshaped(&[n, dim]).unwrap();
    let mut means: Vec<Tensor> = Vec::new();
    for class in 0..NUM_CLASSES {
        let idx: Vec<usize> = (0..n).filter(|&i| d.labels[i] == class).collect();
        let rows = metalora::nn::train::gather_rows(&flat, &idx).unwrap();
        means.push(ops::mean_axis(&rows, 0).unwrap());
    }
    for i in 0..NUM_CLASSES {
        for j in (i + 1)..NUM_CLASSES {
            let diff = ops::sub(&means[i], &means[j]).unwrap().norm();
            assert!(diff > 0.1, "classes {i} and {j} indistinguishable: {diff}");
        }
    }
}

#[test]
fn welch_test_on_accuracy_vectors() {
    // Realistic use: two accuracy samples with a visible gap are
    // significant; nearly identical ones are not.
    let better = [0.73, 0.71, 0.74, 0.72, 0.75, 0.73];
    let baseline = [0.67, 0.68, 0.66, 0.69, 0.67, 0.68];
    let r = welch_t_test(&better, &baseline).unwrap();
    assert!(r.significantly_greater(0.05), "p = {}", r.p);

    let same_a = [0.70, 0.71, 0.69, 0.72];
    let same_b = [0.71, 0.70, 0.72, 0.69];
    let r = welch_t_test(&same_a, &same_b).unwrap();
    assert!(!r.significantly_greater(0.05), "p = {}", r.p);
}
