//! End-to-end integration: the full Table I grid at quick scale.

use metalora::config::ExperimentConfig;
use metalora::methods::Method;
use metalora::table1::{run_table1, Table1Options};
use metalora::{pipeline, Arch};

#[test]
fn quick_table1_grid_produces_complete_table() {
    let mut cfg = ExperimentConfig::quick();
    cfg.probe_rounds = 1;
    let opts = Table1Options::new(cfg, vec![0]);
    let result = run_table1(&opts).unwrap();

    assert_eq!(result.methods.len(), 5);
    assert_eq!(result.archs, vec!["ResNet", "MLP-Mixer"]);
    assert_eq!(result.ks, vec![5, 10]);
    // Every cell filled, every accuracy a valid fraction.
    for (ai, _) in result.archs.iter().enumerate() {
        for (mi, m) in result.methods.iter().enumerate() {
            for &k in &[5usize, 10] {
                let mean = result.mean(ai, k, mi).unwrap();
                assert!((0.0..=1.0).contains(&mean), "{m} arch{ai} K={k}: {mean}");
            }
        }
    }
    // The rendered table mentions every method and column.
    let rendered = result.render();
    for m in &result.methods {
        assert!(rendered.contains(m.as_str()), "missing row {m}");
    }
    assert!(rendered.contains("ResNet K=5"));
    assert!(rendered.contains("MLP-Mixer K=10"));
}

#[test]
fn pipeline_is_reproducible_per_seed() {
    let cfg = ExperimentConfig::quick();
    let run = |seed: u64| {
        let net = pipeline::pretrain(&cfg, Arch::ResNet, seed).unwrap();
        let adapted = pipeline::adapt(net, Method::Lora, &cfg, seed).unwrap();
        let probe = pipeline::probe(&adapted, &cfg, seed).unwrap();
        probe.episodes(5).unwrap().to_vec()
    };
    assert_eq!(run(7), run(7), "same seed must reproduce exactly");
}

#[test]
fn adaptation_moves_adapter_weights() {
    let mut cfg = ExperimentConfig::quick();
    cfg.adapt_steps = 30;
    let net = pipeline::pretrain(&cfg, Arch::ResNet, 5).unwrap();
    let adapted = pipeline::adapt(net, Method::Lora, &cfg, 5).unwrap();
    // Every Conv-LoRA B starts at zero; training must move at least some.
    assert!(
        adapted
            .adapter_params
            .iter()
            .filter(|p| p.name().contains("_b"))
            .any(|p| p.value().norm() > 1e-6),
        "adapter up-projections never moved"
    );
    let probe = pipeline::probe(&adapted, &cfg, 5).unwrap();
    assert!(probe.mean_accuracy(5).unwrap() > 0.0);
}

#[test]
fn meta_methods_run_on_both_backbones() {
    let cfg = ExperimentConfig::quick();
    for arch in [Arch::ResNet, Arch::Mixer] {
        for method in [Method::MetaLoraCp, Method::MetaLoraTr] {
            let net = pipeline::pretrain(&cfg, arch, 11).unwrap();
            let adapted = pipeline::adapt(net, method, &cfg, 11).unwrap();
            let probe = pipeline::probe(&adapted, &cfg, 11).unwrap();
            for k in [5usize, 10] {
                assert!(
                    probe.mean_accuracy(k).is_some(),
                    "{arch:?} {method:?} K={k}"
                );
            }
            // The mapping net is part of the trainable set.
            assert!(adapted
                .adapter_params
                .iter()
                .any(|p| p.name().starts_with("mapping.")));
        }
    }
}

#[test]
fn param_reports_reflect_method() {
    let cfg = ExperimentConfig::quick();
    let net = pipeline::pretrain(&cfg, Arch::ResNet, 9).unwrap();
    let lora = pipeline::adapt(net, Method::Lora, &cfg, 9).unwrap();
    let r = lora.param_report();
    assert!(r.trainable > 0);
    assert!(r.trainable < r.total, "{r}");

    let net = pipeline::pretrain(&cfg, Arch::ResNet, 9).unwrap();
    let full = pipeline::adapt(net, Method::FullFineTune, &cfg, 9).unwrap();
    let rf = full.param_report();
    assert_eq!(rf.trainable, rf.total);
    assert!(r.fraction() < rf.fraction());
}

#[test]
fn multi_lora_routes_and_probes() {
    let cfg = ExperimentConfig::quick();
    let net = pipeline::pretrain(&cfg, Arch::Mixer, 13).unwrap();
    let adapted = pipeline::adapt(net, Method::MultiLora, &cfg, 13).unwrap();
    let probe = pipeline::probe(&adapted, &cfg, 13).unwrap();
    assert_eq!(
        probe.episodes(10).unwrap().len(),
        cfg.n_eval_tasks * cfg.probe_rounds
    );
}

#[test]
fn transformer_extension_pipeline_runs() {
    // The Sec. III-E extension: the full protocol on the Vision
    // Transformer backbone for every Table I method.
    let cfg = ExperimentConfig::quick();
    for method in [Method::Lora, Method::MultiLora, Method::MetaLoraTr] {
        let net = pipeline::pretrain(&cfg, Arch::Transformer, 21).unwrap();
        let adapted = pipeline::adapt(net, method, &cfg, 21).unwrap();
        let probe = pipeline::probe(&adapted, &cfg, 21).unwrap();
        assert!(
            probe.mean_accuracy(5).is_some(),
            "{method:?} on transformer"
        );
        assert!(!adapted.adapter_params.is_empty());
    }
}
