//! Training-loop helpers shared by the pretraining and adaptation phases.

use crate::module::{Ctx, Module};
use crate::optim::Optimizer;
use crate::Result;
use metalora_autograd::Graph;
use metalora_tensor::{ops, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Classification accuracy of logits `[N, C]` against integer labels.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    let pred = ops::argmax(logits)?;
    if pred.len() != labels.len() {
        return Err(metalora_tensor::TensorError::InvalidArgument(format!(
            "{} predictions vs {} labels",
            pred.len(),
            labels.len()
        )));
    }
    let correct = pred.iter().zip(labels).filter(|(a, b)| a == b).count();
    Ok(correct as f32 / labels.len().max(1) as f32)
}

/// Shuffled mini-batch index ranges over `n` samples.
pub fn batch_indices(n: usize, batch_size: usize, rng: &mut StdRng) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    order
        .chunks(batch_size.max(1))
        .map(|c| c.to_vec())
        .collect()
}

/// Gathers rows of a batched tensor (axis 0) by index.
pub fn gather_rows(x: &Tensor, idx: &[usize]) -> Result<Tensor> {
    let mut parts = Vec::with_capacity(idx.len());
    for &i in idx {
        parts.push(x.index_axis0(i)?);
    }
    Tensor::stack(&parts)
}

/// Gathers label entries by index.
pub fn gather_labels(labels: &[usize], idx: &[usize]) -> Vec<usize> {
    idx.iter().map(|&i| labels[i]).collect()
}

/// Running statistics of one epoch.
#[derive(Debug, Clone, Default)]
pub struct EpochStats {
    /// Mean loss over batches.
    pub loss: f32,
    /// Mean accuracy over batches.
    pub accuracy: f32,
    /// Number of batches processed.
    pub batches: usize,
}

/// Global L2 norm of the gradients accumulated on `params`.
pub fn grad_norm(params: &[metalora_autograd::ParamRef]) -> f64 {
    let mut sq = 0.0f64;
    for p in params {
        for &v in p.grad().data() {
            sq += v as f64 * v as f64;
        }
    }
    sq.sqrt()
}

/// Runs one supervised epoch of `model` on `(images, labels)` with
/// cross-entropy, updating through `opt`. Returns epoch statistics.
///
/// When `metalora_obs` instrumentation is enabled the epoch is also
/// pushed to the metrics sink (loss, accuracy, mean per-batch gradient
/// norm, wall time) under the current span path; observation never
/// changes the computation itself.
pub fn train_epoch(
    model: &dyn Module,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    opt: &mut dyn Optimizer,
    rng: &mut StdRng,
) -> Result<EpochStats> {
    let observing = metalora_obs::enabled();
    let t0 = observing.then(std::time::Instant::now);
    let mut grad_norm_sum = 0.0f64;
    let mut stats = EpochStats::default();
    for idx in batch_indices(labels.len(), batch_size, rng) {
        let xb = gather_rows(images, &idx)?;
        let yb = gather_labels(labels, &idx);
        let mut g = Graph::new();
        let x = g.input(xb);
        let logits = model.forward(&mut g, x, &Ctx::none())?;
        let loss = g.softmax_cross_entropy(logits, &yb)?;
        stats.loss += g.value(loss).item()?;
        stats.accuracy += accuracy(&g.value(logits), &yb)?;
        g.backward(loss)?;
        g.flush_grads();
        if observing {
            grad_norm_sum += grad_norm(&model.params());
        }
        opt.step();
        stats.batches += 1;
    }
    if stats.batches > 0 {
        stats.loss /= stats.batches as f32;
        stats.accuracy /= stats.batches as f32;
    }
    if let Some(t0) = t0 {
        let phase = metalora_obs::span::current_path();
        let phase = if phase.is_empty() { "train" } else { &phase };
        metalora_obs::metrics::record_epoch(
            phase,
            stats.loss as f64,
            stats.accuracy as f64,
            grad_norm_sum / stats.batches.max(1) as f64,
            t0.elapsed().as_secs_f64(),
        );
    }
    Ok(stats)
}

/// Evaluates classification accuracy of `model` on `(images, labels)`
/// in inference mode, batched to bound memory.
pub fn evaluate(
    model: &dyn Module,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<f32> {
    let n = labels.len();
    let mut correct = 0.0f32;
    let mut seen = 0usize;
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size.max(1)).min(n);
        let idx: Vec<usize> = (start..end).collect();
        let xb = gather_rows(images, &idx)?;
        let yb = gather_labels(labels, &idx);
        let mut g = Graph::inference();
        let x = g.input(xb);
        let logits = model.forward(&mut g, x, &Ctx::none())?;
        correct += accuracy(&g.value(logits), &yb)? * yb.len() as f32;
        seen += yb.len();
        start = end;
    }
    Ok(correct / seen.max(1) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{Mlp, MlpConfig};
    use crate::optim::Sgd;
    use metalora_tensor::init;

    #[test]
    fn accuracy_counts_matches() {
        let logits =
            Tensor::from_vec(vec![2.0, 1.0, 0.0, 0.0, 0.0, 3.0], &[2, 3]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 2]).unwrap(), 1.0);
        assert_eq!(accuracy(&logits, &[1, 2]).unwrap(), 0.5);
        assert!(accuracy(&logits, &[0]).is_err());
    }

    #[test]
    fn batch_indices_partition() {
        let mut rng = init::rng(1);
        let batches = batch_indices(10, 3, &mut rng);
        assert_eq!(batches.len(), 4);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn gather_rows_and_labels() {
        let x = Tensor::arange(0.0, 1.0, 6).reshape(&[3, 2]).unwrap();
        let g = gather_rows(&x, &[2, 0]).unwrap();
        assert_eq!(g.dims(), &[2, 2]);
        assert_eq!(g.data(), &[4.0, 5.0, 0.0, 1.0]);
        assert_eq!(gather_labels(&[7, 8, 9], &[2, 0]), vec![9, 7]);
    }

    #[test]
    fn train_epoch_learns_separable_data() {
        let mut rng = init::rng(5);
        // Two well-separated Gaussian blobs.
        let n = 40;
        let mut images = Tensor::zeros(&[n, 2]);
        let mut labels = vec![0usize; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let c = i % 2;
            labels[i] = c;
            let base = if c == 0 { -2.0 } else { 2.0 };
            let noise = init::normal(&[2], 0.0, 0.3, &mut rng);
            images.data_mut()[i * 2] = base + noise.data()[0];
            images.data_mut()[i * 2 + 1] = base + noise.data()[1];
        }
        let model = Mlp::new(
            "m",
            &MlpConfig {
                in_dim: 2,
                hidden: vec![8],
                out_dim: 2,
            },
            &mut rng,
        );
        let mut opt = Sgd::new(model.params(), 0.3);
        let mut last = EpochStats::default();
        for _ in 0..20 {
            last = train_epoch(&model, &images, &labels, 8, &mut opt, &mut rng).unwrap();
        }
        assert!(last.accuracy > 0.95, "train accuracy {}", last.accuracy);
        let eval = evaluate(&model, &images, &labels, 16).unwrap();
        assert!(eval > 0.95, "eval accuracy {eval}");
        assert_eq!(last.batches, 5);
    }
}
