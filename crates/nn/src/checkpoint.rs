//! Parameter checkpointing: capture a module's parameters by name,
//! restore them into a freshly built module, and persist them as JSON.
//!
//! Names come from each [`ParamRef`]'s hierarchical name, so a checkpoint
//! taken from a pretrained backbone restores into any architecturally
//! identical instance — including one that has since been PEFT-injected
//! (adapter parameters simply use their own names).

use crate::module::Module;
use crate::Result;
use metalora_autograd::ParamRef;
use metalora_tensor::{Tensor, TensorError};
use std::collections::BTreeMap;
use std::path::Path;

/// A named snapshot of parameter values.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Checkpoint {
    entries: BTreeMap<String, Tensor>,
}

impl Checkpoint {
    /// Captures every parameter **and buffer** (batch-norm running
    /// statistics) of a module. Errors if two entries share a name
    /// (checkpoints must be unambiguous).
    pub fn capture(module: &dyn Module) -> Result<Self> {
        let mut all = module.params();
        all.extend(module.buffers());
        Self::from_params(&all)
    }

    /// Captures an explicit parameter list.
    pub fn from_params(params: &[ParamRef]) -> Result<Self> {
        let mut entries = BTreeMap::new();
        for p in params {
            let name = p.name();
            if entries.insert(name.clone(), p.value()).is_some() {
                return Err(TensorError::InvalidArgument(format!(
                    "duplicate parameter name `{name}` in checkpoint"
                )));
            }
        }
        Ok(Checkpoint { entries })
    }

    /// Number of stored tensors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stored names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Looks up one tensor by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    /// Restores values into a module **strictly**: every module parameter
    /// and buffer must exist in the checkpoint with a matching shape, and
    /// every checkpoint entry must be consumed.
    pub fn apply(&self, module: &dyn Module) -> Result<()> {
        let mut params = module.params();
        params.extend(module.buffers());
        let mut used = 0usize;
        for p in &params {
            let name = p.name();
            let t = self.entries.get(&name).ok_or_else(|| {
                TensorError::InvalidArgument(format!(
                    "checkpoint missing parameter `{name}`"
                ))
            })?;
            if t.dims() != p.dims() {
                return Err(TensorError::ShapeMismatch {
                    op: "checkpoint apply",
                    lhs: t.dims().to_vec(),
                    rhs: p.dims(),
                });
            }
            let trainable = p.trainable();
            p.set_value(t.clone());
            p.set_trainable(trainable);
            used += 1;
        }
        if used != self.entries.len() {
            return Err(TensorError::InvalidArgument(format!(
                "checkpoint has {} entries but module consumed {used}",
                self.entries.len()
            )));
        }
        Ok(())
    }

    /// Restores values **partially**: parameters present in the checkpoint
    /// (by name, with matching shape) are loaded; everything else is left
    /// untouched. Returns how many parameters were loaded. Used to warm-
    /// start an injected model from its pretrained base checkpoint.
    pub fn apply_partial(&self, module: &dyn Module) -> Result<usize> {
        let mut loaded = 0usize;
        let mut params = module.params();
        params.extend(module.buffers());
        for p in params {
            if let Some(t) = self.entries.get(&p.name()) {
                if t.dims() != p.dims() {
                    return Err(TensorError::ShapeMismatch {
                        op: "checkpoint apply_partial",
                        lhs: t.dims().to_vec(),
                        rhs: p.dims(),
                    });
                }
                let trainable = p.trainable();
                p.set_value(t.clone());
                p.set_trainable(trainable);
                loaded += 1;
            }
        }
        Ok(loaded)
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> std::result::Result<String, std::io::Error> {
        serde_json::to_string(self).map_err(std::io::Error::other)
    }

    /// Parses from JSON.
    pub fn from_json(s: &str) -> std::result::Result<Self, std::io::Error> {
        serde_json::from_str(s).map_err(std::io::Error::other)
    }

    /// Writes the checkpoint to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::result::Result<(), std::io::Error> {
        std::fs::write(path, self.to_json()?)
    }

    /// Reads a checkpoint from a file.
    pub fn load(path: impl AsRef<Path>) -> std::result::Result<Self, std::io::Error> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{Mlp, MlpConfig};
    use metalora_tensor::init;

    fn mlp(seed: u64) -> Mlp {
        Mlp::new(
            "m",
            &MlpConfig {
                in_dim: 4,
                hidden: vec![6],
                out_dim: 3,
            },
            &mut init::rng(seed),
        )
    }

    #[test]
    fn capture_apply_roundtrip() {
        let a = mlp(1);
        let b = mlp(2); // different init
        let ck = Checkpoint::capture(&a).unwrap();
        assert_eq!(ck.len(), 4); // 2 layers × (weight + bias)
        assert!(!ck.is_empty());
        ck.apply(&b).unwrap();
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert!(metalora_tensor::approx_eq(&pa.value(), &pb.value(), 0.0));
        }
    }

    #[test]
    fn apply_preserves_trainable_flags() {
        let a = mlp(3);
        let b = mlp(4);
        b.set_trainable(false);
        Checkpoint::capture(&a).unwrap().apply(&b).unwrap();
        assert_eq!(b.num_trainable_params(), 0);
    }

    #[test]
    fn apply_rejects_missing_and_mismatched() {
        let a = mlp(5);
        let ck = Checkpoint::capture(&a).unwrap();
        let other = Mlp::new(
            "other", // different name prefix → missing entries
            &MlpConfig {
                in_dim: 4,
                hidden: vec![6],
                out_dim: 3,
            },
            &mut init::rng(6),
        );
        assert!(ck.apply(&other).is_err());
        let bigger = Mlp::new(
            "m",
            &MlpConfig {
                in_dim: 5, // shape mismatch
                hidden: vec![6],
                out_dim: 3,
            },
            &mut init::rng(7),
        );
        assert!(ck.apply(&bigger).is_err());
    }

    #[test]
    fn apply_partial_warm_starts_subset() {
        let a = mlp(8);
        let ck = Checkpoint::capture(&a).unwrap();
        let other = Mlp::new(
            "other",
            &MlpConfig {
                in_dim: 4,
                hidden: vec![6],
                out_dim: 3,
            },
            &mut init::rng(9),
        );
        // No shared names: 0 loaded, no error.
        assert_eq!(ck.apply_partial(&other).unwrap(), 0);
        // Same names: all loaded.
        let b = mlp(10);
        assert_eq!(ck.apply_partial(&b).unwrap(), 4);
    }

    #[test]
    fn checkpoint_includes_batch_norm_buffers() {
        use crate::layers::BatchNorm2d;
        use metalora_autograd::Graph;
        use crate::module::Ctx;

        let bn = BatchNorm2d::new("bn", 2);
        // Run one training forward so the running stats move off init.
        let mut g = Graph::new();
        let x = g.input(init::normal(&[4, 2, 3, 3], 5.0, 1.0, &mut init::rng(0)));
        bn.forward(&mut g, x, &Ctx::none()).unwrap();
        let (rm, rv) = bn.running_stats();

        let ck = Checkpoint::capture(&bn).unwrap();
        assert_eq!(ck.len(), 4, "gamma, beta + 2 buffers");
        // Restore into a fresh layer: stats must carry over.
        let fresh = BatchNorm2d::new("bn", 2);
        ck.apply(&fresh).unwrap();
        let (rm2, rv2) = fresh.running_stats();
        assert!(metalora_tensor::approx_eq(&rm, &rm2, 0.0));
        assert!(metalora_tensor::approx_eq(&rv, &rv2, 0.0));
    }

    #[test]
    fn duplicate_names_rejected() {
        let p = ParamRef::new("w", Tensor::zeros(&[1]));
        let q = ParamRef::new("w", Tensor::ones(&[1]));
        assert!(Checkpoint::from_params(&[p, q]).is_err());
    }

    #[test]
    fn json_and_file_roundtrip() {
        let a = mlp(11);
        let ck = Checkpoint::capture(&a).unwrap();
        let json = ck.to_json().unwrap();
        let back = Checkpoint::from_json(&json).unwrap();
        assert_eq!(back.names(), ck.names());
        assert!(back.get("m.fc0.weight").is_some());
        assert!(back.get("nope").is_none());

        let dir = std::env::temp_dir().join("metalora_ck_test.json");
        ck.save(&dir).unwrap();
        let loaded = Checkpoint::load(&dir).unwrap();
        assert_eq!(loaded.len(), ck.len());
        let _ = std::fs::remove_file(dir);
    }
}
