//! Module traits and the forward context that threads PEFT state through
//! a backbone.

use metalora_autograd::{Graph, ParamRef, Var};

use crate::Result;

/// Per-forward context consumed by adapted layers.
///
/// Plain layers ignore it. PEFT layers read:
/// * [`Ctx::seed`] — the parameter seed produced by the MetaLoRA mapping
///   net for the current batch (`c:[N, R]` for CP, `C:[N, R·R]` for TR,
///   as a graph [`Var`] so gradients flow back into the mapping net);
/// * [`Ctx::adapter`] — the adapter index a Multi-LoRA bank should apply.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ctx {
    /// Generated parameter seed for MetaLoRA layers.
    pub seed: Option<Var>,
    /// Selected adapter slot for Multi-LoRA banks.
    pub adapter: Option<usize>,
}

impl Ctx {
    /// Context with no PEFT state (plain forward).
    pub fn none() -> Self {
        Ctx::default()
    }

    /// Context carrying a generated seed.
    pub fn with_seed(seed: Var) -> Self {
        Ctx {
            seed: Some(seed),
            adapter: None,
        }
    }

    /// Context selecting a Multi-LoRA adapter slot.
    pub fn with_adapter(adapter: usize) -> Self {
        Ctx {
            seed: None,
            adapter: Some(adapter),
        }
    }
}

/// Anything with a forward pass and parameters.
pub trait Module {
    /// Runs the forward computation on the tape.
    fn forward(&self, g: &mut Graph, x: Var, ctx: &Ctx) -> Result<Var>;

    /// All parameters, including frozen ones.
    fn params(&self) -> Vec<ParamRef>;

    /// Non-gradient state that must persist with the model (e.g. batch
    /// norm running statistics). Never given to optimisers; captured by
    /// checkpoints. Default: none.
    fn buffers(&self) -> Vec<ParamRef> {
        Vec::new()
    }

    /// Total number of scalar parameters.
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Number of scalar parameters an optimiser would update.
    fn num_trainable_params(&self) -> usize {
        self.params()
            .iter()
            .filter(|p| p.trainable())
            .map(|p| p.len())
            .sum()
    }

    /// Freezes (`false`) or unfreezes (`true`) every parameter.
    fn set_trainable(&self, trainable: bool) {
        for p in self.params() {
            p.set_trainable(trainable);
        }
    }

    /// Clears every accumulated gradient.
    fn zero_grad(&self) {
        for p in self.params() {
            p.zero_grad();
        }
    }
}

/// A dense layer: maps `[N, I] → [N, O]`. Implemented by [`crate::Linear`]
/// and by every linear PEFT adapter.
pub trait LinearLike: Module {
    /// Input feature dimension `I`.
    fn in_features(&self) -> usize;
    /// Output feature dimension `O`.
    fn out_features(&self) -> usize;
}

/// A 2-D convolution layer: maps `[N, I, H, W] → [N, O, OH, OW]`.
/// Implemented by [`crate::Conv2d`] and every conv PEFT adapter.
pub trait ConvLike: Module {
    /// Input channels `I`.
    fn in_channels(&self) -> usize;
    /// Output channels `O`.
    fn out_channels(&self) -> usize;
    /// Square kernel extent `K`.
    fn kernel(&self) -> usize;
    /// Stride.
    fn stride(&self) -> usize;
    /// Padding.
    fn padding(&self) -> usize;
}

/// Boxed dense layer, the unit of PEFT injection.
pub type BoxLinear = Box<dyn LinearLike>;
/// Boxed convolution layer, the unit of PEFT injection.
pub type BoxConv = Box<dyn ConvLike>;

/// A classification backbone that can also expose its penultimate
/// embedding — the vector the KNN probe of Table I and the MetaLoRA
/// feature extractor consume.
pub trait Backbone: Module {
    /// Embedding of the input batch: `[N, feature_dim]`, before the
    /// classification head.
    fn features(&self, g: &mut Graph, x: Var, ctx: &Ctx) -> Result<Var>;

    /// Dimension of [`Backbone::features`].
    fn feature_dim(&self) -> usize;
}

/// Deduplicates parameters that appear multiple times (shared cells), by
/// identity. Keeps first occurrence order.
pub fn dedup_params(params: Vec<ParamRef>) -> Vec<ParamRef> {
    let mut seen = std::collections::HashSet::new();
    params
        .into_iter()
        .filter(|p| seen.insert(p.cell_id()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use metalora_tensor::Tensor;

    struct Toy {
        w: ParamRef,
    }

    impl Module for Toy {
        fn forward(&self, g: &mut Graph, x: Var, _ctx: &Ctx) -> Result<Var> {
            let w = g.bind(&self.w);
            g.matmul(x, w)
        }
        fn params(&self) -> Vec<ParamRef> {
            vec![self.w.clone()]
        }
    }

    #[test]
    fn module_default_helpers() {
        let m = Toy {
            w: ParamRef::new("w", Tensor::ones(&[3, 2])),
        };
        assert_eq!(m.num_params(), 6);
        assert_eq!(m.num_trainable_params(), 6);
        m.set_trainable(false);
        assert_eq!(m.num_trainable_params(), 0);
        m.set_trainable(true);
        m.params()[0].accumulate_grad(&Tensor::ones(&[3, 2]));
        m.zero_grad();
        assert_eq!(m.params()[0].grad().data(), &[0.0; 6]);
    }

    #[test]
    fn ctx_constructors() {
        let c = Ctx::none();
        assert!(c.seed.is_none() && c.adapter.is_none());
        let c = Ctx::with_adapter(3);
        assert_eq!(c.adapter, Some(3));
        let mut g = Graph::new();
        let v = g.input(Tensor::zeros(&[1]));
        let c = Ctx::with_seed(v);
        assert!(c.seed.is_some());
    }

    #[test]
    fn dedup_params_by_cell() {
        let p = ParamRef::new("a", Tensor::zeros(&[1]));
        let q = ParamRef::new("b", Tensor::zeros(&[1]));
        let out = dedup_params(vec![p.clone(), q.clone(), p.clone()]);
        assert_eq!(out.len(), 2);
        assert!(out[0].same_cell(&p));
        assert!(out[1].same_cell(&q));
    }
}
