//! MLP-Mixer (Tolstikhin et al. 2021) sized for the synthetic 32×32
//! experiments, with swappable dense layers for PEFT injection.

use crate::layers::{LayerNorm, Linear};
use crate::module::{dedup_params, Backbone, BoxLinear, Ctx, LinearLike, Module};
use crate::Result;
use metalora_autograd::{Graph, ParamRef, Var};
use metalora_tensor::TensorError;
use rand::rngs::StdRng;

/// Architecture hyper-parameters.
#[derive(Debug, Clone)]
pub struct MixerConfig {
    /// Input image channels.
    pub in_channels: usize,
    /// Input image side (square images).
    pub image_size: usize,
    /// Patch side; must divide `image_size`.
    pub patch_size: usize,
    /// Hidden (channel) dimension `D`.
    pub dim: usize,
    /// Token-mixing MLP hidden width.
    pub token_hidden: usize,
    /// Channel-mixing MLP hidden width.
    pub channel_hidden: usize,
    /// Number of mixer blocks.
    pub depth: usize,
    /// Classification head width.
    pub num_classes: usize,
}

impl Default for MixerConfig {
    fn default() -> Self {
        MixerConfig {
            in_channels: 3,
            image_size: 32,
            patch_size: 8,
            dim: 48,
            token_hidden: 32,
            channel_hidden: 96,
            depth: 2,
            num_classes: 8,
        }
    }
}

/// One mixer block: token-mixing MLP and channel-mixing MLP, each with a
/// pre-LayerNorm and a residual connection.
struct MixerBlock {
    ln_token: LayerNorm,
    token_fc1: BoxLinear,
    token_fc2: BoxLinear,
    ln_channel: LayerNorm,
    channel_fc1: BoxLinear,
    channel_fc2: BoxLinear,
}

impl MixerBlock {
    fn new(name: &str, tokens: usize, dim: usize, th: usize, ch: usize, rng: &mut StdRng) -> Self {
        MixerBlock {
            ln_token: LayerNorm::new(&format!("{name}.ln_token"), dim),
            token_fc1: Box::new(Linear::new(&format!("{name}.token_fc1"), tokens, th, rng)),
            token_fc2: Box::new(Linear::new(&format!("{name}.token_fc2"), th, tokens, rng)),
            ln_channel: LayerNorm::new(&format!("{name}.ln_channel"), dim),
            channel_fc1: Box::new(Linear::new(&format!("{name}.channel_fc1"), dim, ch, rng)),
            channel_fc2: Box::new(Linear::new(&format!("{name}.channel_fc2"), ch, dim, rng)),
        }
    }

    /// `x : [N, T, D]`.
    fn forward(&self, g: &mut Graph, x: Var, ctx: &Ctx, n: usize, t: usize, d: usize) -> Result<Var> {
        // --- token mixing: operate across T for each channel ---
        let y = self.ln_token.forward(g, x, ctx)?;
        let y = g.permute(y, &[0, 2, 1])?; // [N, D, T]
        let y = g.reshape(y, &[n * d, t])?;
        let y = self.token_fc1.forward(g, y, ctx)?;
        let y = g.gelu(y);
        let y = self.token_fc2.forward(g, y, ctx)?;
        let y = g.reshape(y, &[n, d, t])?;
        let y = g.permute(y, &[0, 2, 1])?; // [N, T, D]
        let x = g.add(x, y)?;

        // --- channel mixing: operate across D for each token ---
        let y = self.ln_channel.forward(g, x, ctx)?;
        let y = g.reshape(y, &[n * t, d])?;
        let y = self.channel_fc1.forward(g, y, ctx)?;
        let y = g.gelu(y);
        let y = self.channel_fc2.forward(g, y, ctx)?;
        let y = g.reshape(y, &[n, t, d])?;
        g.add(x, y)
    }

    fn params(&self) -> Vec<ParamRef> {
        let mut v = self.ln_token.params();
        v.extend(self.token_fc1.params());
        v.extend(self.token_fc2.params());
        v.extend(self.ln_channel.params());
        v.extend(self.channel_fc1.params());
        v.extend(self.channel_fc2.params());
        v
    }

    fn replace_linears(&mut self, f: &mut dyn FnMut(BoxLinear) -> BoxLinear) {
        for slot in [
            &mut self.token_fc1,
            &mut self.token_fc2,
            &mut self.channel_fc1,
            &mut self.channel_fc2,
        ] {
            let dummy: BoxLinear = Box::new(NullLinear);
            let old = std::mem::replace(slot, dummy);
            *slot = f(old);
        }
    }
}

/// Placeholder used only during replacement; never invoked.
struct NullLinear;

impl Module for NullLinear {
    fn forward(&self, _g: &mut Graph, _x: Var, _ctx: &Ctx) -> Result<Var> {
        unreachable!("NullLinear must never be invoked")
    }
    fn params(&self) -> Vec<ParamRef> {
        Vec::new()
    }
}

impl LinearLike for NullLinear {
    fn in_features(&self) -> usize {
        0
    }
    fn out_features(&self) -> usize {
        0
    }
}

/// The MLP-Mixer backbone: patch embedding → mixer blocks → token mean →
/// linear head.
pub struct Mixer {
    cfg: MixerConfig,
    patch_embed: Linear,
    blocks: Vec<MixerBlock>,
    ln_out: LayerNorm,
    head: Linear,
    tokens: usize,
}

impl Mixer {
    /// Builds a randomly initialised network. Errors if `patch_size` does
    /// not divide `image_size`.
    pub fn new(cfg: &MixerConfig, rng: &mut StdRng) -> Result<Self> {
        if !cfg.image_size.is_multiple_of(cfg.patch_size) {
            return Err(TensorError::InvalidArgument(format!(
                "patch size {} does not divide image size {}",
                cfg.patch_size, cfg.image_size
            )));
        }
        let side = cfg.image_size / cfg.patch_size;
        let tokens = side * side;
        let patch_dim = cfg.in_channels * cfg.patch_size * cfg.patch_size;
        let patch_embed = Linear::new("mixer.patch_embed", patch_dim, cfg.dim, rng);
        let blocks = (0..cfg.depth)
            .map(|i| {
                MixerBlock::new(
                    &format!("mixer.block{i}"),
                    tokens,
                    cfg.dim,
                    cfg.token_hidden,
                    cfg.channel_hidden,
                    rng,
                )
            })
            .collect();
        let ln_out = LayerNorm::new("mixer.ln_out", cfg.dim);
        let head = Linear::new("mixer.head", cfg.dim, cfg.num_classes, rng);
        Ok(Mixer {
            cfg: cfg.clone(),
            patch_embed,
            blocks,
            ln_out,
            head,
            tokens,
        })
    }

    /// Number of tokens `T`.
    pub fn num_tokens(&self) -> usize {
        self.tokens
    }

    /// Applies `f` to every mixing dense layer (4 per block) — the PEFT
    /// injection point. Patch embedding and head stay plain.
    pub fn replace_linears(&mut self, mut f: impl FnMut(BoxLinear) -> BoxLinear) {
        for b in &mut self.blocks {
            b.replace_linears(&mut f);
        }
    }

    /// Number of injectable dense layers.
    pub fn num_linears(&self) -> usize {
        4 * self.blocks.len()
    }

    /// Rearranges `[N, C, H, W]` into patch tokens `[N, T, C·P·P]`.
    fn patchify(&self, g: &mut Graph, x: Var, n: usize) -> Result<Var> {
        let (c, p) = (self.cfg.in_channels, self.cfg.patch_size);
        let side = self.cfg.image_size / p;
        // [N, C, H, W] → [N, C, side, P, side, P]
        let y = g.reshape(x, &[n, c, side, p, side, p])?;
        // → [N, side, side, C, P, P]
        let y = g.permute(y, &[0, 2, 4, 1, 3, 5])?;
        // → [N, T, C·P·P]
        g.reshape(y, &[n, side * side, c * p * p])
    }
}

impl Module for Mixer {
    fn forward(&self, g: &mut Graph, x: Var, ctx: &Ctx) -> Result<Var> {
        let f = self.features(g, x, ctx)?;
        self.head.forward(g, f, ctx)
    }

    fn params(&self) -> Vec<ParamRef> {
        let mut v = self.patch_embed.params();
        for b in &self.blocks {
            v.extend(b.params());
        }
        v.extend(self.ln_out.params());
        v.extend(self.head.params());
        dedup_params(v)
    }
}

impl Backbone for Mixer {
    fn features(&self, g: &mut Graph, x: Var, ctx: &Ctx) -> Result<Var> {
        let dims = g.dims(x);
        if dims.len() != 4
            || dims[1] != self.cfg.in_channels
            || dims[2] != self.cfg.image_size
            || dims[3] != self.cfg.image_size
        {
            return Err(TensorError::InvalidArgument(format!(
                "mixer expects [N, {}, {}, {}], got {dims:?}",
                self.cfg.in_channels, self.cfg.image_size, self.cfg.image_size
            )));
        }
        let n = dims[0];
        let (t, d) = (self.tokens, self.cfg.dim);
        let y = self.patchify(g, x, n)?;
        let y = g.reshape(y, &[n * t, self.cfg.in_channels * self.cfg.patch_size * self.cfg.patch_size])?;
        let y = self.patch_embed.forward(g, y, ctx)?;
        let mut y = g.reshape(y, &[n, t, d])?;
        for b in &self.blocks {
            y = b.forward(g, y, ctx, n, t, d)?;
        }
        let y = self.ln_out.forward(g, y, ctx)?;
        g.mean_axis(y, 1) // [N, D]
    }

    fn feature_dim(&self) -> usize {
        self.cfg.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metalora_tensor::init;

    fn tiny() -> (Mixer, StdRng) {
        let mut rng = init::rng(2);
        let cfg = MixerConfig {
            in_channels: 3,
            image_size: 16,
            patch_size: 4,
            dim: 12,
            token_hidden: 8,
            channel_hidden: 16,
            depth: 2,
            num_classes: 5,
        };
        let m = Mixer::new(&cfg, &mut rng).unwrap();
        (m, rng)
    }

    #[test]
    fn forward_shapes() {
        let (m, mut rng) = tiny();
        assert_eq!(m.num_tokens(), 16);
        let mut g = Graph::new();
        let x = g.input(init::uniform(&[2, 3, 16, 16], -1.0, 1.0, &mut rng));
        let logits = m.forward(&mut g, x, &Ctx::none()).unwrap();
        assert_eq!(g.dims(logits), vec![2, 5]);
    }

    #[test]
    fn features_shape_and_dim() {
        let (m, mut rng) = tiny();
        let mut g = Graph::new();
        let x = g.input(init::uniform(&[3, 3, 16, 16], -1.0, 1.0, &mut rng));
        let f = m.features(&mut g, x, &Ctx::none()).unwrap();
        assert_eq!(g.dims(f), vec![3, m.feature_dim()]);
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let (m, _) = tiny();
        let mut g = Graph::new();
        let x = g.input(metalora_tensor::Tensor::zeros(&[2, 3, 8, 8]));
        assert!(m.forward(&mut g, x, &Ctx::none()).is_err());
    }

    #[test]
    fn config_validation() {
        let mut rng = init::rng(0);
        let cfg = MixerConfig {
            image_size: 10,
            patch_size: 4,
            ..MixerConfig::default()
        };
        assert!(Mixer::new(&cfg, &mut rng).is_err());
    }

    #[test]
    fn replace_linears_visits_all_mixing_layers() {
        let (mut m, _) = tiny();
        assert_eq!(m.num_linears(), 8);
        let mut n = 0;
        m.replace_linears(|l| {
            n += 1;
            l
        });
        assert_eq!(n, 8);
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        let (m, mut rng) = tiny();
        let xv = init::uniform(&[4, 3, 16, 16], -1.0, 1.0, &mut rng);
        let labels = [0usize, 1, 2, 3];
        let run = |m: &Mixer| {
            let mut g = Graph::new();
            let x = g.input(xv.clone());
            let logits = m.forward(&mut g, x, &Ctx::none()).unwrap();
            let loss = g.softmax_cross_entropy(logits, &labels).unwrap();
            (g, loss)
        };
        let (mut g, loss) = run(&m);
        let before = g.value(loss).item().unwrap();
        g.backward(loss).unwrap();
        m.zero_grad();
        g.flush_grads();
        for p in m.params() {
            let gr = p.grad();
            p.update_value(|v| {
                for (a, &b) in v.data_mut().iter_mut().zip(gr.data()) {
                    *a -= 0.1 * b;
                }
            });
        }
        let (g2, loss2) = run(&m);
        assert!(g2.value(loss2).item().unwrap() < before);
    }

    #[test]
    fn patchify_preserves_pixels() {
        // A distinctive pixel lands in the right patch slot.
        let (m, _) = tiny();
        let mut img = metalora_tensor::Tensor::zeros(&[1, 3, 16, 16]);
        img.set(&[0, 1, 5, 9], 7.0).unwrap(); // patch row 1, col 2
        let mut g = Graph::new();
        let x = g.input(img);
        let y = m.patchify(&mut g, x, 1).unwrap();
        let v = g.value(y);
        assert_eq!(v.dims(), &[1, 16, 48]);
        // Token index: row 1 · 4 + col 2 = 6; inner: c=1, ph=1, pw=1 →
        // 1·16 + 1·4 + 1 = 21.
        assert_eq!(v.get(&[0, 6, 21]).unwrap(), 7.0);
        let total: f32 = v.data().iter().sum();
        assert_eq!(total, 7.0);
    }
}
