//! A plain multi-layer perceptron — used standalone and as the base of
//! the MetaLoRA parameter-space mapping net (Sec. III-B-2 of the paper).

use crate::layers::Linear;
use crate::module::{Backbone, Ctx, Module};
use crate::Result;
use metalora_autograd::{Graph, ParamRef, Var};
use rand::rngs::StdRng;

/// Architecture hyper-parameters.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Input width.
    pub in_dim: usize,
    /// Hidden widths (may be empty for a single linear map).
    pub hidden: Vec<usize>,
    /// Output width.
    pub out_dim: usize,
}

/// Fully connected network with GELU activations between layers.
pub struct Mlp {
    layers: Vec<Linear>,
    cfg: MlpConfig,
}

impl Mlp {
    /// Builds a randomly initialised MLP.
    pub fn new(name: &str, cfg: &MlpConfig, rng: &mut StdRng) -> Self {
        let mut widths = vec![cfg.in_dim];
        widths.extend_from_slice(&cfg.hidden);
        widths.push(cfg.out_dim);
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(&format!("{name}.fc{i}"), w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            cfg: cfg.clone(),
        }
    }

    /// Number of dense layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

impl Module for Mlp {
    fn forward(&self, g: &mut Graph, x: Var, ctx: &Ctx) -> Result<Var> {
        let mut y = x;
        let last = self.layers.len() - 1;
        for (i, l) in self.layers.iter().enumerate() {
            y = l.forward(g, y, ctx)?;
            if i != last {
                y = g.gelu(y);
            }
        }
        Ok(y)
    }

    fn params(&self) -> Vec<ParamRef> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }
}

impl Backbone for Mlp {
    fn features(&self, g: &mut Graph, x: Var, ctx: &Ctx) -> Result<Var> {
        // Penultimate activation (post-GELU); for a single-layer MLP the
        // input itself is the feature.
        let mut y = x;
        for l in &self.layers[..self.layers.len() - 1] {
            y = l.forward(g, y, ctx)?;
            y = g.gelu(y);
        }
        Ok(y)
    }

    fn feature_dim(&self) -> usize {
        self.cfg
            .hidden
            .last()
            .copied()
            .unwrap_or(self.cfg.in_dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metalora_tensor::{init, Tensor};

    #[test]
    fn forward_shapes_and_depth() {
        let mut rng = init::rng(1);
        let m = Mlp::new(
            "mlp",
            &MlpConfig {
                in_dim: 6,
                hidden: vec![10, 8],
                out_dim: 3,
            },
            &mut rng,
        );
        assert_eq!(m.depth(), 3);
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[5, 6]));
        let y = m.forward(&mut g, x, &Ctx::none()).unwrap();
        assert_eq!(g.dims(y), vec![5, 3]);
    }

    #[test]
    fn features_are_penultimate() {
        let mut rng = init::rng(2);
        let m = Mlp::new(
            "mlp",
            &MlpConfig {
                in_dim: 4,
                hidden: vec![7],
                out_dim: 2,
            },
            &mut rng,
        );
        assert_eq!(m.feature_dim(), 7);
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[3, 4]));
        let f = m.features(&mut g, x, &Ctx::none()).unwrap();
        assert_eq!(g.dims(f), vec![3, 7]);
    }

    #[test]
    fn single_layer_mlp() {
        let mut rng = init::rng(3);
        let m = Mlp::new(
            "mlp",
            &MlpConfig {
                in_dim: 4,
                hidden: vec![],
                out_dim: 2,
            },
            &mut rng,
        );
        assert_eq!(m.depth(), 1);
        assert_eq!(m.feature_dim(), 4);
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[1, 4]));
        let y = m.forward(&mut g, x, &Ctx::none()).unwrap();
        assert_eq!(g.dims(y), vec![1, 2]);
    }

    #[test]
    fn learns_xor_ish_separation() {
        // Tiny optimisation sanity: loss decreases over steps.
        let mut rng = init::rng(4);
        let m = Mlp::new(
            "mlp",
            &MlpConfig {
                in_dim: 2,
                hidden: vec![16],
                out_dim: 2,
            },
            &mut rng,
        );
        let x = Tensor::from_vec(
            vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0],
            &[4, 2],
        )
        .unwrap();
        let labels = [0usize, 1, 1, 0];
        let mut losses = Vec::new();
        for _ in 0..200 {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let logits = m.forward(&mut g, xv, &Ctx::none()).unwrap();
            let loss = g.softmax_cross_entropy(logits, &labels).unwrap();
            losses.push(g.value(loss).item().unwrap());
            g.backward(loss).unwrap();
            m.zero_grad();
            g.flush_grads();
            for p in m.params() {
                let gr = p.grad();
                p.update_value(|v| {
                    for (a, &b) in v.data_mut().iter_mut().zip(gr.data()) {
                        *a -= 0.5 * b;
                    }
                });
            }
        }
        assert!(
            losses.last().unwrap() < &0.1,
            "final loss {}",
            losses.last().unwrap()
        );
    }
}
