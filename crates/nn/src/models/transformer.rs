//! A small Vision Transformer — the extension the paper's Sec. III-E
//! sketches ("the framework's theoretical foundations suggest broader
//! applications in transformer architectures").
//!
//! Multi-head self-attention is built from the tape's `bmm`/`softmax`
//! ops; the attention projections `W_q/W_k/W_v/W_o` and the MLP layers
//! are swappable [`BoxLinear`]s, so every PEFT method in `metalora-peft`
//! (LoRA, Multi-LoRA, MetaLoRA CP/TR) injects into a transformer exactly
//! as it does into the Mixer.

use crate::layers::{LayerNorm, Linear};
use crate::module::{dedup_params, Backbone, BoxLinear, Ctx, LinearLike, Module};
use crate::Result;
use metalora_autograd::{Graph, ParamRef, Var};
use metalora_tensor::{init, TensorError};
use rand::rngs::StdRng;

/// Architecture hyper-parameters.
#[derive(Debug, Clone)]
pub struct TransformerConfig {
    /// Input image channels.
    pub in_channels: usize,
    /// Input image side (square images).
    pub image_size: usize,
    /// Patch side; must divide `image_size`.
    pub patch_size: usize,
    /// Embedding dimension `D`; must be divisible by `heads`.
    pub dim: usize,
    /// Number of attention heads.
    pub heads: usize,
    /// Feed-forward hidden width.
    pub mlp_hidden: usize,
    /// Number of encoder blocks.
    pub depth: usize,
    /// Classification head width.
    pub num_classes: usize,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        TransformerConfig {
            in_channels: 3,
            image_size: 32,
            patch_size: 8,
            dim: 48,
            heads: 4,
            mlp_hidden: 96,
            depth: 2,
            num_classes: 8,
        }
    }
}

/// One pre-norm encoder block: MHSA + MLP, both residual.
struct EncoderBlock {
    ln_attn: LayerNorm,
    wq: BoxLinear,
    wk: BoxLinear,
    wv: BoxLinear,
    wo: BoxLinear,
    ln_mlp: LayerNorm,
    fc1: BoxLinear,
    fc2: BoxLinear,
    heads: usize,
}

impl EncoderBlock {
    fn new(name: &str, dim: usize, heads: usize, hidden: usize, rng: &mut StdRng) -> Self {
        EncoderBlock {
            ln_attn: LayerNorm::new(&format!("{name}.ln_attn"), dim),
            wq: Box::new(Linear::new(&format!("{name}.wq"), dim, dim, rng)),
            wk: Box::new(Linear::new(&format!("{name}.wk"), dim, dim, rng)),
            wv: Box::new(Linear::new(&format!("{name}.wv"), dim, dim, rng)),
            wo: Box::new(Linear::new(&format!("{name}.wo"), dim, dim, rng)),
            ln_mlp: LayerNorm::new(&format!("{name}.ln_mlp"), dim),
            fc1: Box::new(Linear::new(&format!("{name}.fc1"), dim, hidden, rng)),
            fc2: Box::new(Linear::new(&format!("{name}.fc2"), hidden, dim, rng)),
            heads,
        }
    }

    /// Splits `[N·T, D]` into per-head batches `[N·h, T, dh]`.
    fn split_heads(&self, g: &mut Graph, x: Var, n: usize, t: usize, d: usize) -> Result<Var> {
        let h = self.heads;
        let dh = d / h;
        let y = g.reshape(x, &[n, t, h, dh])?;
        let y = g.permute(y, &[0, 2, 1, 3])?; // [N, h, T, dh]
        g.reshape(y, &[n * h, t, dh])
    }

    /// Inverse of [`EncoderBlock::split_heads`] back to `[N·T, D]`.
    fn merge_heads(&self, g: &mut Graph, x: Var, n: usize, t: usize, d: usize) -> Result<Var> {
        let h = self.heads;
        let dh = d / h;
        let y = g.reshape(x, &[n, h, t, dh])?;
        let y = g.permute(y, &[0, 2, 1, 3])?; // [N, T, h, dh]
        g.reshape(y, &[n * t, d])
    }

    /// `x : [N, T, D]`.
    fn forward(&self, g: &mut Graph, x: Var, ctx: &Ctx, n: usize, t: usize, d: usize) -> Result<Var> {
        let dh = d / self.heads;

        // --- multi-head self-attention ---
        let y = self.ln_attn.forward(g, x, ctx)?;
        let y2 = g.reshape(y, &[n * t, d])?;
        let q = self.wq.forward(g, y2, ctx)?;
        let k = self.wk.forward(g, y2, ctx)?;
        let v = self.wv.forward(g, y2, ctx)?;
        let q = self.split_heads(g, q, n, t, d)?;
        let k = self.split_heads(g, k, n, t, d)?;
        let v = self.split_heads(g, v, n, t, d)?;
        let kt = g.permute(k, &[0, 2, 1])?; // [N·h, dh, T]
        let scores = g.bmm(q, kt)?; // [N·h, T, T]
        let scores = g.scale(scores, 1.0 / (dh as f32).sqrt());
        let attn = g.softmax(scores)?;
        let ctxv = g.bmm(attn, v)?; // [N·h, T, dh]
        let merged = self.merge_heads(g, ctxv, n, t, d)?;
        let o = self.wo.forward(g, merged, ctx)?;
        let o = g.reshape(o, &[n, t, d])?;
        let x = g.add(x, o)?;

        // --- feed-forward ---
        let y = self.ln_mlp.forward(g, x, ctx)?;
        let y = g.reshape(y, &[n * t, d])?;
        let y = self.fc1.forward(g, y, ctx)?;
        let y = g.gelu(y);
        let y = self.fc2.forward(g, y, ctx)?;
        let y = g.reshape(y, &[n, t, d])?;
        g.add(x, y)
    }

    fn params(&self) -> Vec<ParamRef> {
        let mut v = self.ln_attn.params();
        for l in [&self.wq, &self.wk, &self.wv, &self.wo, &self.fc1, &self.fc2] {
            v.extend(l.params());
        }
        v.extend(self.ln_mlp.params());
        v
    }

    fn replace_linears(&mut self, f: &mut dyn FnMut(BoxLinear) -> BoxLinear) {
        for slot in [
            &mut self.wq,
            &mut self.wk,
            &mut self.wv,
            &mut self.wo,
            &mut self.fc1,
            &mut self.fc2,
        ] {
            let dummy: BoxLinear = Box::new(NullLinear);
            let old = std::mem::replace(slot, dummy);
            *slot = f(old);
        }
    }
}

/// Placeholder used only during replacement; never invoked.
struct NullLinear;

impl Module for NullLinear {
    fn forward(&self, _g: &mut Graph, _x: Var, _ctx: &Ctx) -> Result<Var> {
        unreachable!("NullLinear must never be invoked")
    }
    fn params(&self) -> Vec<ParamRef> {
        Vec::new()
    }
}

impl LinearLike for NullLinear {
    fn in_features(&self) -> usize {
        0
    }
    fn out_features(&self) -> usize {
        0
    }
}

/// The Vision-Transformer backbone: patch embedding + learned positional
/// embedding → encoder blocks → LayerNorm → token mean → linear head.
pub struct VisionTransformer {
    cfg: TransformerConfig,
    patch_embed: Linear,
    pos: ParamRef,
    blocks: Vec<EncoderBlock>,
    ln_out: LayerNorm,
    head: Linear,
    tokens: usize,
}

impl VisionTransformer {
    /// Builds a randomly initialised network. Errors if `patch_size` does
    /// not divide `image_size` or `heads` does not divide `dim`.
    pub fn new(cfg: &TransformerConfig, rng: &mut StdRng) -> Result<Self> {
        if !cfg.image_size.is_multiple_of(cfg.patch_size) {
            return Err(TensorError::InvalidArgument(format!(
                "patch size {} does not divide image size {}",
                cfg.patch_size, cfg.image_size
            )));
        }
        if !cfg.dim.is_multiple_of(cfg.heads) || cfg.heads == 0 {
            return Err(TensorError::InvalidArgument(format!(
                "heads {} must divide dim {}",
                cfg.heads, cfg.dim
            )));
        }
        let side = cfg.image_size / cfg.patch_size;
        let tokens = side * side;
        let patch_dim = cfg.in_channels * cfg.patch_size * cfg.patch_size;
        let patch_embed = Linear::new("vit.patch_embed", patch_dim, cfg.dim, rng);
        let pos = ParamRef::new(
            "vit.pos_embed",
            init::normal(&[tokens, cfg.dim], 0.0, 0.02, rng),
        );
        let blocks = (0..cfg.depth)
            .map(|i| {
                EncoderBlock::new(
                    &format!("vit.block{i}"),
                    cfg.dim,
                    cfg.heads,
                    cfg.mlp_hidden,
                    rng,
                )
            })
            .collect();
        let ln_out = LayerNorm::new("vit.ln_out", cfg.dim);
        let head = Linear::new("vit.head", cfg.dim, cfg.num_classes, rng);
        Ok(VisionTransformer {
            cfg: cfg.clone(),
            patch_embed,
            pos,
            blocks,
            ln_out,
            head,
            tokens,
        })
    }

    /// Number of tokens `T`.
    pub fn num_tokens(&self) -> usize {
        self.tokens
    }

    /// Applies `f` to every attention projection and MLP layer (6 per
    /// block) — the PEFT injection point. Patch embedding, positional
    /// embedding and head stay plain.
    pub fn replace_linears(&mut self, mut f: impl FnMut(BoxLinear) -> BoxLinear) {
        for b in &mut self.blocks {
            b.replace_linears(&mut f);
        }
    }

    /// Number of injectable dense layers.
    pub fn num_linears(&self) -> usize {
        6 * self.blocks.len()
    }

    /// Rearranges `[N, C, H, W]` into patch tokens `[N, T, C·P·P]`.
    fn patchify(&self, g: &mut Graph, x: Var, n: usize) -> Result<Var> {
        let (c, p) = (self.cfg.in_channels, self.cfg.patch_size);
        let side = self.cfg.image_size / p;
        let y = g.reshape(x, &[n, c, side, p, side, p])?;
        let y = g.permute(y, &[0, 2, 4, 1, 3, 5])?;
        g.reshape(y, &[n, side * side, c * p * p])
    }
}

impl Module for VisionTransformer {
    fn forward(&self, g: &mut Graph, x: Var, ctx: &Ctx) -> Result<Var> {
        let f = self.features(g, x, ctx)?;
        self.head.forward(g, f, ctx)
    }

    fn params(&self) -> Vec<ParamRef> {
        let mut v = self.patch_embed.params();
        v.push(self.pos.clone());
        for b in &self.blocks {
            v.extend(b.params());
        }
        v.extend(self.ln_out.params());
        v.extend(self.head.params());
        dedup_params(v)
    }
}

impl Backbone for VisionTransformer {
    fn features(&self, g: &mut Graph, x: Var, ctx: &Ctx) -> Result<Var> {
        let dims = g.dims(x);
        if dims.len() != 4
            || dims[1] != self.cfg.in_channels
            || dims[2] != self.cfg.image_size
            || dims[3] != self.cfg.image_size
        {
            return Err(TensorError::InvalidArgument(format!(
                "transformer expects [N, {}, {}, {}], got {dims:?}",
                self.cfg.in_channels, self.cfg.image_size, self.cfg.image_size
            )));
        }
        let n = dims[0];
        let (t, d) = (self.tokens, self.cfg.dim);
        let y = self.patchify(g, x, n)?;
        let y = g.reshape(y, &[n * t, self.cfg.in_channels * self.cfg.patch_size * self.cfg.patch_size])?;
        let y = self.patch_embed.forward(g, y, ctx)?;
        let mut y = g.reshape(y, &[n, t, d])?;
        // Learned positional embedding, broadcast over the batch.
        let pos = g.bind(&self.pos);
        y = g.add(y, pos)?;
        for b in &self.blocks {
            y = b.forward(g, y, ctx, n, t, d)?;
        }
        let y = self.ln_out.forward(g, y, ctx)?;
        g.mean_axis(y, 1)
    }

    fn feature_dim(&self) -> usize {
        self.cfg.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metalora_tensor::Tensor;

    fn tiny() -> (VisionTransformer, StdRng) {
        let mut rng = init::rng(3);
        let cfg = TransformerConfig {
            in_channels: 3,
            image_size: 16,
            patch_size: 4,
            dim: 16,
            heads: 2,
            mlp_hidden: 24,
            depth: 2,
            num_classes: 5,
        };
        let v = VisionTransformer::new(&cfg, &mut rng).unwrap();
        (v, rng)
    }

    #[test]
    fn forward_shapes() {
        let (m, mut rng) = tiny();
        assert_eq!(m.num_tokens(), 16);
        let mut g = Graph::new();
        let x = g.input(init::uniform(&[2, 3, 16, 16], -1.0, 1.0, &mut rng));
        let logits = m.forward(&mut g, x, &Ctx::none()).unwrap();
        assert_eq!(g.dims(logits), vec![2, 5]);
        let f = m.features(&mut g, x, &Ctx::none()).unwrap();
        assert_eq!(g.dims(f), vec![2, m.feature_dim()]);
    }

    #[test]
    fn config_validation() {
        let mut rng = init::rng(0);
        let bad_patch = TransformerConfig {
            image_size: 10,
            patch_size: 4,
            ..TransformerConfig::default()
        };
        assert!(VisionTransformer::new(&bad_patch, &mut rng).is_err());
        let bad_heads = TransformerConfig {
            dim: 48,
            heads: 5,
            ..TransformerConfig::default()
        };
        assert!(VisionTransformer::new(&bad_heads, &mut rng).is_err());
    }

    #[test]
    fn rejects_wrong_input_shape() {
        let (m, _) = tiny();
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 3, 8, 8]));
        assert!(m.forward(&mut g, x, &Ctx::none()).is_err());
    }

    #[test]
    fn replace_linears_visits_attention_and_mlp() {
        let (mut m, _) = tiny();
        assert_eq!(m.num_linears(), 12);
        let mut n = 0;
        m.replace_linears(|l| {
            n += 1;
            l
        });
        assert_eq!(n, 12);
    }

    #[test]
    fn positional_embedding_matters() {
        // Permuting patches must change the output (unlike the Mixer's
        // token mean over identical embeddings).
        let (m, mut rng) = tiny();
        let img = init::uniform(&[1, 3, 16, 16], -1.0, 1.0, &mut rng);
        // Horizontally flip the image → different patch arrangement.
        let mut flipped = Tensor::zeros(&[1, 3, 16, 16]);
        for c in 0..3 {
            for y in 0..16 {
                for x in 0..16 {
                    flipped
                        .set(&[0, c, y, 15 - x], img.get(&[0, c, y, x]).unwrap())
                        .unwrap();
                }
            }
        }
        let mut g = Graph::inference();
        let a = g.input(img);
        let b = g.input(flipped);
        let fa = m.features(&mut g, a, &Ctx::none()).unwrap();
        let fb = m.features(&mut g, b, &Ctx::none()).unwrap();
        assert!(!metalora_tensor::approx_eq(
            &g.value(fa),
            &g.value(fb),
            1e-4
        ));
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        let (m, mut rng) = tiny();
        let xv = init::uniform(&[4, 3, 16, 16], -1.0, 1.0, &mut rng);
        let labels = [0usize, 1, 2, 3];
        let run = |m: &VisionTransformer| {
            let mut g = Graph::new();
            let x = g.input(xv.clone());
            let logits = m.forward(&mut g, x, &Ctx::none()).unwrap();
            let loss = g.softmax_cross_entropy(logits, &labels).unwrap();
            (g, loss)
        };
        let (mut g, loss) = run(&m);
        let before = g.value(loss).item().unwrap();
        g.backward(loss).unwrap();
        m.zero_grad();
        g.flush_grads();
        for p in m.params() {
            let gr = p.grad();
            p.update_value(|v| {
                for (a, &b) in v.data_mut().iter_mut().zip(gr.data()) {
                    *a -= 0.1 * b;
                }
            });
        }
        let (g2, loss2) = run(&m);
        assert!(g2.value(loss2).item().unwrap() < before);
    }

    #[test]
    fn attention_rows_are_distributions() {
        // Internal check through the public surface: gradients flow and
        // the positional embedding receives gradient (it is bound).
        let (m, mut rng) = tiny();
        let mut g = Graph::new();
        let x = g.input(init::uniform(&[2, 3, 16, 16], -1.0, 1.0, &mut rng));
        let logits = m.forward(&mut g, x, &Ctx::none()).unwrap();
        let loss = g.softmax_cross_entropy(logits, &[0, 1]).unwrap();
        g.backward(loss).unwrap();
        m.zero_grad();
        g.flush_grads();
        assert!(m.pos.grad().norm() > 0.0, "pos embedding gets gradient");
    }
}
