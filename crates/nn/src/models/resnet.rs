//! A small residual network (He et al. 2016) sized for the synthetic
//! 32×32 experiments, with swappable convolutions for PEFT injection.

use crate::layers::{BatchNorm2d, Conv2d, Linear};
use crate::module::{dedup_params, Backbone, BoxConv, ConvLike, Ctx, Module};
use crate::Result;
use metalora_autograd::{Graph, ParamRef, Var};
use rand::rngs::StdRng;

/// Architecture hyper-parameters.
#[derive(Debug, Clone)]
pub struct ResNetConfig {
    /// Input image channels (3 for RGB).
    pub in_channels: usize,
    /// Channel width per stage; the stage count is `channels.len()`.
    pub channels: Vec<usize>,
    /// Residual blocks per stage.
    pub blocks_per_stage: usize,
    /// Classification head width.
    pub num_classes: usize,
}

impl Default for ResNetConfig {
    fn default() -> Self {
        // ~ResNet-8 for 32×32 inputs: stem + 3 stages × 1 block × 2 convs.
        ResNetConfig {
            in_channels: 3,
            channels: vec![16, 32, 64],
            blocks_per_stage: 1,
            num_classes: 8,
        }
    }
}

/// One basic residual block: conv–bn–relu–conv–bn plus a (possibly
/// projected) skip connection.
struct BasicBlock {
    conv1: BoxConv,
    bn1: BatchNorm2d,
    conv2: BoxConv,
    bn2: BatchNorm2d,
    /// 1×1 stride-matching projection when shape changes.
    down: Option<(BoxConv, BatchNorm2d)>,
}

impl BasicBlock {
    fn new(
        name: &str,
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        rng: &mut StdRng,
    ) -> Result<Self> {
        let conv1: BoxConv = Box::new(Conv2d::new_no_bias(
            &format!("{name}.conv1"),
            in_ch,
            out_ch,
            3,
            stride,
            1,
            rng,
        )?);
        let conv2: BoxConv = Box::new(Conv2d::new_no_bias(
            &format!("{name}.conv2"),
            out_ch,
            out_ch,
            3,
            1,
            1,
            rng,
        )?);
        let down = if stride != 1 || in_ch != out_ch {
            let proj: BoxConv = Box::new(Conv2d::new_no_bias(
                &format!("{name}.down"),
                in_ch,
                out_ch,
                1,
                stride,
                0,
                rng,
            )?);
            Some((proj, BatchNorm2d::new(&format!("{name}.down_bn"), out_ch)))
        } else {
            None
        };
        Ok(BasicBlock {
            conv1,
            bn1: BatchNorm2d::new(&format!("{name}.bn1"), out_ch),
            conv2,
            bn2: BatchNorm2d::new(&format!("{name}.bn2"), out_ch),
            down,
        })
    }

    fn forward(&self, g: &mut Graph, x: Var, ctx: &Ctx) -> Result<Var> {
        let y = self.conv1.forward(g, x, ctx)?;
        let y = self.bn1.forward(g, y, ctx)?;
        let y = g.relu(y);
        let y = self.conv2.forward(g, y, ctx)?;
        let y = self.bn2.forward(g, y, ctx)?;
        let skip = match &self.down {
            Some((proj, bn)) => {
                let s = proj.forward(g, x, ctx)?;
                bn.forward(g, s, ctx)?
            }
            None => x,
        };
        let y = g.add(y, skip)?;
        Ok(g.relu(y))
    }

    fn params(&self) -> Vec<ParamRef> {
        let mut v = self.conv1.params();
        v.extend(self.bn1.params());
        v.extend(self.conv2.params());
        v.extend(self.bn2.params());
        if let Some((proj, bn)) = &self.down {
            v.extend(proj.params());
            v.extend(bn.params());
        }
        v
    }

    fn buffers(&self) -> Vec<ParamRef> {
        let mut v = self.bn1.buffers();
        v.extend(self.bn2.buffers());
        if let Some((_, bn)) = &self.down {
            v.extend(bn.buffers());
        }
        v
    }

    fn replace_convs(&mut self, f: &mut dyn FnMut(BoxConv) -> BoxConv) {
        replace_box(&mut self.conv1, f);
        replace_box(&mut self.conv2, f);
        // The 1×1 projection is part of the skip path; standard LoRA
        // practice adapts the main convolutions only.
    }
}

fn replace_box(slot: &mut BoxConv, f: &mut dyn FnMut(BoxConv) -> BoxConv) {
    // Temporarily park a zero-size dummy to take ownership.
    let dummy: BoxConv = Box::new(NullConv);
    let old = std::mem::replace(slot, dummy);
    *slot = f(old);
}

/// Placeholder used only inside [`replace_box`]; never survives a call.
struct NullConv;

impl Module for NullConv {
    fn forward(&self, _g: &mut Graph, _x: Var, _ctx: &Ctx) -> Result<Var> {
        unreachable!("NullConv must never be invoked")
    }
    fn params(&self) -> Vec<ParamRef> {
        Vec::new()
    }
}

impl ConvLike for NullConv {
    fn in_channels(&self) -> usize {
        0
    }
    fn out_channels(&self) -> usize {
        0
    }
    fn kernel(&self) -> usize {
        0
    }
    fn stride(&self) -> usize {
        0
    }
    fn padding(&self) -> usize {
        0
    }
}

/// The ResNet backbone: stem conv → stages of basic blocks → global
/// average pool → linear head.
pub struct ResNet {
    stem: BoxConv,
    stem_bn: BatchNorm2d,
    blocks: Vec<BasicBlock>,
    head: Linear,
    feature_dim: usize,
}

impl ResNet {
    /// Builds a randomly initialised network.
    pub fn new(cfg: &ResNetConfig, rng: &mut StdRng) -> Result<Self> {
        assert!(!cfg.channels.is_empty(), "ResNet needs at least one stage");
        let stem: BoxConv = Box::new(Conv2d::new_no_bias(
            "resnet.stem",
            cfg.in_channels,
            cfg.channels[0],
            3,
            1,
            1,
            rng,
        )?);
        let stem_bn = BatchNorm2d::new("resnet.stem_bn", cfg.channels[0]);
        let mut blocks = Vec::new();
        let mut in_ch = cfg.channels[0];
        for (s, &ch) in cfg.channels.iter().enumerate() {
            for b in 0..cfg.blocks_per_stage {
                let stride = if s > 0 && b == 0 { 2 } else { 1 };
                blocks.push(BasicBlock::new(
                    &format!("resnet.stage{s}.block{b}"),
                    in_ch,
                    ch,
                    stride,
                    rng,
                )?);
                in_ch = ch;
            }
        }
        let feature_dim = *cfg.channels.last().expect("non-empty");
        let head = Linear::new("resnet.head", feature_dim, cfg.num_classes, rng);
        Ok(ResNet {
            stem,
            stem_bn,
            blocks,
            head,
            feature_dim,
        })
    }

    /// Applies `f` to every main-path convolution (stem and block convs),
    /// replacing each layer — the PEFT injection point.
    pub fn replace_convs(&mut self, mut f: impl FnMut(BoxConv) -> BoxConv) {
        replace_box(&mut self.stem, &mut f);
        for b in &mut self.blocks {
            b.replace_convs(&mut f);
        }
    }

    /// Number of injectable convolutions.
    pub fn num_convs(&self) -> usize {
        1 + 2 * self.blocks.len()
    }
}

impl Module for ResNet {
    fn forward(&self, g: &mut Graph, x: Var, ctx: &Ctx) -> Result<Var> {
        let f = self.features(g, x, ctx)?;
        self.head.forward(g, f, ctx)
    }

    fn params(&self) -> Vec<ParamRef> {
        let mut v = self.stem.params();
        v.extend(self.stem_bn.params());
        for b in &self.blocks {
            v.extend(b.params());
        }
        v.extend(self.head.params());
        dedup_params(v)
    }

    fn buffers(&self) -> Vec<ParamRef> {
        let mut v = self.stem_bn.buffers();
        for b in &self.blocks {
            v.extend(b.buffers());
        }
        dedup_params(v)
    }
}

impl Backbone for ResNet {
    fn features(&self, g: &mut Graph, x: Var, ctx: &Ctx) -> Result<Var> {
        let y = self.stem.forward(g, x, ctx)?;
        let y = self.stem_bn.forward(g, y, ctx)?;
        let mut y = g.relu(y);
        for b in &self.blocks {
            y = b.forward(g, y, ctx)?;
        }
        g.global_avg_pool2d(y)
    }

    fn feature_dim(&self) -> usize {
        self.feature_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metalora_tensor::init;

    fn tiny() -> (ResNet, StdRng) {
        let mut rng = init::rng(1);
        let cfg = ResNetConfig {
            in_channels: 3,
            channels: vec![4, 8],
            blocks_per_stage: 1,
            num_classes: 5,
        };
        let net = ResNet::new(&cfg, &mut rng).unwrap();
        (net, rng)
    }

    #[test]
    fn forward_shapes() {
        let (net, mut rng) = tiny();
        let mut g = Graph::new();
        let x = g.input(init::uniform(&[2, 3, 16, 16], -1.0, 1.0, &mut rng));
        let logits = net.forward(&mut g, x, &Ctx::none()).unwrap();
        assert_eq!(g.dims(logits), vec![2, 5]);
        let f = {
            let mut g = Graph::new();
            let x = g.input(init::uniform(&[2, 3, 16, 16], -1.0, 1.0, &mut rng));
            let f = net.features(&mut g, x, &Ctx::none()).unwrap();
            g.dims(f)
        };
        assert_eq!(f, vec![2, net.feature_dim()]);
        assert_eq!(net.feature_dim(), 8);
    }

    #[test]
    fn param_count_is_plausible_and_deduped() {
        let (net, _) = tiny();
        let n = net.num_params();
        // Stem 3·3·3·4 + blocks + head — should be a few thousand.
        assert!(n > 500 && n < 50_000, "n = {n}");
        let ids: Vec<usize> = net.params().iter().map(|p| p.cell_id()).collect();
        let mut uniq = ids.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(ids.len(), uniq.len(), "params must be unique");
    }

    #[test]
    fn num_convs_counts_replaceable_layers() {
        let (net, _) = tiny();
        assert_eq!(net.num_convs(), 1 + 2 * 2);
        let mut seen = 0;
        let mut net = net;
        net.replace_convs(|c| {
            seen += 1;
            c
        });
        assert_eq!(seen, 5);
    }

    #[test]
    fn downsample_projection_exists_only_on_stage_change() {
        let (net, _) = tiny();
        assert!(net.blocks[0].down.is_none(), "stage 0 keeps identity skip");
        assert!(net.blocks[1].down.is_some(), "stage 1 projects");
    }

    #[test]
    fn gradient_reaches_stem() {
        let (net, mut rng) = tiny();
        let mut g = Graph::new();
        let x = g.input(init::uniform(&[2, 3, 8, 8], -1.0, 1.0, &mut rng));
        let logits = net.forward(&mut g, x, &Ctx::none()).unwrap();
        let loss = g.softmax_cross_entropy(logits, &[0, 3]).unwrap();
        g.backward(loss).unwrap();
        net.zero_grad();
        g.flush_grads();
        let stem_w = &net.stem.params()[0];
        assert!(stem_w.grad().norm() > 0.0, "stem received gradient");
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        let (net, mut rng) = tiny();
        let xv = init::uniform(&[4, 3, 8, 8], -1.0, 1.0, &mut rng);
        let labels = [0usize, 1, 2, 3];
        let run = |net: &ResNet| {
            let mut g = Graph::new();
            let x = g.input(xv.clone());
            let logits = net.forward(&mut g, x, &Ctx::none()).unwrap();
            let loss = g.softmax_cross_entropy(logits, &labels).unwrap();
            (g, loss)
        };
        let (mut g, loss) = run(&net);
        let before = g.value(loss).item().unwrap();
        g.backward(loss).unwrap();
        net.zero_grad();
        g.flush_grads();
        for p in net.params() {
            let gr = p.grad();
            p.update_value(|v| {
                for (a, &b) in v.data_mut().iter_mut().zip(gr.data()) {
                    *a -= 0.05 * b;
                }
            });
        }
        let (g2, loss2) = run(&net);
        let after = g2.value(loss2).item().unwrap();
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn trainable_count_respects_freezing() {
        let (net, _) = tiny();
        let total = net.num_trainable_params();
        net.set_trainable(false);
        assert_eq!(net.num_trainable_params(), 0);
        net.set_trainable(true);
        assert_eq!(net.num_trainable_params(), total);
    }
}
