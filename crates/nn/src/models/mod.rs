//! Backbones: the small ResNet and MLP-Mixer of Table I, plus a plain MLP.

mod mixer;
mod mlp;
mod resnet;
mod transformer;

pub use mixer::{Mixer, MixerConfig};
pub use mlp::{Mlp, MlpConfig};
pub use resnet::{ResNet, ResNetConfig};
pub use transformer::{TransformerConfig, VisionTransformer};
