//! Forward-only layer math on plain tensors — no autograd tape.
//!
//! Each helper is the tape-free twin of the corresponding
//! [`crate::Module::forward`] path: it issues the **exact same sequence of
//! `ops::` calls** the graph op would (which are themselves thin wrappers
//! over these functions), so the output is bitwise identical to a
//! training-mode forward through [`metalora_autograd::Graph`] — at zero
//! tape overhead (no node pushes, no `Rc` traffic, no gradient buffers).
//!
//! This is the substrate of the multi-tenant serving engine
//! (`metalora-serve`): adapters there hold value snapshots (`Tensor`, not
//! `ParamRef`, which is `Rc`-based and not `Send`) and forward through
//! these helpers from any thread.

use crate::Result;
use metalora_autograd::gelu_fwd;
use metalora_tensor::conv::{self, ConvSpec};
use metalora_tensor::{ops, Bf16Buf, Tensor};

/// Dense layer `x·W (+ b)` for `x:[N,I]`, `w:[I,O]`, `bias:[O]` — the
/// tape-free twin of [`crate::Linear`]'s forward (matmul, then broadcast
/// bias add).
pub fn linear(x: &Tensor, w: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    let y = ops::matmul(x, w)?;
    match bias {
        Some(b) => ops::add(&y, b),
        None => Ok(y),
    }
}

/// Convolution `x * W (+ b)` for `x:[N,C,H,W]`, `w:[KH,KW,C,O]`,
/// `bias:[O]` — the tape-free twin of [`crate::Conv2d`]'s forward
/// (same im2col production path, then the bias broadcast as `[O,1,1]`).
pub fn conv2d(x: &Tensor, w: &Tensor, bias: Option<&Tensor>, spec: ConvSpec) -> Result<Tensor> {
    let y = conv::conv2d(x, w, spec, spec)?;
    match bias {
        Some(b) => {
            let o = w.dims()[3];
            let b = b.reshaped(&[o, 1, 1])?;
            ops::add(&y, &b)
        }
        None => Ok(y),
    }
}

/// [`linear`] against a bf16 weight snapshot: the weights stream at half
/// the bytes through `ops::matmul_bf16_weights` (widened exactly at GEMM
/// pack time, f32 accumulation throughout), so the result is **bitwise**
/// `linear(x, &w.widen(), bias)` — the only deviation from a pure-f32
/// forward is the one-time RNE rounding taken when `w` was snapshot
/// (relative ≤ 2⁻⁸ per weight).
pub fn linear_bf16(x: &Tensor, w: &Bf16Buf, bias: Option<&Tensor>) -> Result<Tensor> {
    let y = ops::matmul_bf16_weights(x, w)?;
    match bias {
        Some(b) => ops::add(&y, b),
        None => Ok(y),
    }
}

/// [`conv2d`] against a bf16 kernel snapshot. Conv kernels are tiny next
/// to the im2col activations, so this widens the kernel up front (exact)
/// and runs the f32 conv — the storage saving is the point (snapshots,
/// caches), not the kernel's streaming bytes. Bitwise
/// `conv2d(x, &w.widen(), bias, spec)`.
pub fn conv2d_bf16(
    x: &Tensor,
    w: &Bf16Buf,
    bias: Option<&Tensor>,
    spec: ConvSpec,
) -> Result<Tensor> {
    conv2d(x, &w.widen(), bias, spec)
}

/// GELU (tanh approximation) — applies the same scalar function as
/// [`metalora_autograd::Graph::gelu`].
pub fn gelu(x: &Tensor) -> Tensor {
    ops::map(x, gelu_fwd)
}

/// tanh — the twin of [`metalora_autograd::Graph::tanh`].
pub fn tanh(x: &Tensor) -> Tensor {
    ops::map(x, f32::tanh)
}

/// ReLU — the twin of [`metalora_autograd::Graph::relu`].
pub fn relu(x: &Tensor) -> Tensor {
    ops::map(x, |v| v.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Ctx, Linear, Module};
    use metalora_autograd::Graph;
    use metalora_tensor::init;

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn linear_matches_tape_forward_bitwise() {
        let mut rng = init::rng(11);
        let layer = Linear::new("fc", 7, 5, &mut rng);
        let x = init::uniform(&[4, 7], -1.0, 1.0, &mut rng);

        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let yv = layer.forward(&mut g, xv, &Ctx::none()).unwrap();
        let y_tape = g.value(yv);

        let y = linear(
            &x,
            &layer.weight().value(),
            layer.bias().map(|b| b.value()).as_ref(),
        )
        .unwrap();
        assert_eq!(bits(&y), bits(&y_tape));
    }

    #[test]
    fn linear_no_bias_matches() {
        let mut rng = init::rng(12);
        let layer = Linear::new_no_bias("fc", 6, 3, &mut rng);
        let x = init::uniform(&[2, 6], -1.0, 1.0, &mut rng);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let yv = layer.forward(&mut g, xv, &Ctx::none()).unwrap();
        let y_tape = g.value(yv);
        let y = linear(&x, &layer.weight().value(), None).unwrap();
        assert_eq!(bits(&y), bits(&y_tape));
    }

    #[test]
    fn conv2d_matches_tape_forward_bitwise() {
        let mut rng = init::rng(13);
        let layer = Conv2d::new("c", 3, 4, 3, 1, 1, &mut rng).unwrap();
        let x = init::uniform(&[2, 3, 6, 6], -1.0, 1.0, &mut rng);

        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let yv = layer.forward(&mut g, xv, &Ctx::none()).unwrap();
        let y_tape = g.value(yv);

        let y = conv2d(
            &x,
            &layer.weight().value(),
            layer.bias().map(|b| b.value()).as_ref(),
            layer.spec(),
        )
        .unwrap();
        assert_eq!(bits(&y), bits(&y_tape));
    }

    #[test]
    fn linear_bf16_is_bitwise_linear_on_widened_weights() {
        let mut rng = init::rng(15);
        let layer = Linear::new("fc", 9, 6, &mut rng);
        let x = init::uniform(&[5, 9], -1.0, 1.0, &mut rng);
        let w16 = Bf16Buf::from_tensor(&layer.weight().value());
        let bias = layer.bias().map(|b| b.value());
        let got = linear_bf16(&x, &w16, bias.as_ref()).unwrap();
        let expect = linear(&x, &w16.widen(), bias.as_ref()).unwrap();
        assert_eq!(bits(&got), bits(&expect));
        // And vs the f32 weights the snapshot came from, the error is the
        // storage rounding only: bounded by 2^-8 relative per weight,
        // accumulated over the k=9 contraction.
        let f32_out = linear(&x, &layer.weight().value(), bias.as_ref()).unwrap();
        let worst = got
            .data()
            .iter()
            .zip(f32_out.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(worst <= 9.0 * 2.0f32.powi(-8), "worst abs err {worst}");
    }

    #[test]
    fn conv2d_bf16_is_bitwise_conv2d_on_widened_kernel() {
        let mut rng = init::rng(16);
        let layer = Conv2d::new("c", 3, 4, 3, 1, 1, &mut rng).unwrap();
        let x = init::uniform(&[2, 3, 5, 5], -1.0, 1.0, &mut rng);
        let w16 = Bf16Buf::from_tensor(&layer.weight().value());
        let bias = layer.bias().map(|b| b.value());
        let got = conv2d_bf16(&x, &w16, bias.as_ref(), layer.spec()).unwrap();
        let expect = conv2d(&x, &w16.widen(), bias.as_ref(), layer.spec()).unwrap();
        assert_eq!(bits(&got), bits(&expect));
    }

    #[test]
    fn activations_match_graph_ops_bitwise() {
        let mut rng = init::rng(14);
        let x = init::uniform(&[3, 9], -3.0, 3.0, &mut rng);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let ge = g.gelu(xv);
        let th = g.tanh(xv);
        let re = g.relu(xv);
        assert_eq!(bits(&gelu(&x)), bits(&g.value(ge)));
        assert_eq!(bits(&tanh(&x)), bits(&g.value(th)));
        assert_eq!(bits(&relu(&x)), bits(&g.value(re)));
    }
}
