//! Forward-only layer math on plain tensors — no autograd tape.
//!
//! Each helper is the tape-free twin of the corresponding
//! [`crate::Module::forward`] path: it issues the **exact same sequence of
//! `ops::` calls** the graph op would (which are themselves thin wrappers
//! over these functions), so the output is bitwise identical to a
//! training-mode forward through [`metalora_autograd::Graph`] — at zero
//! tape overhead (no node pushes, no `Rc` traffic, no gradient buffers).
//!
//! This is the substrate of the multi-tenant serving engine
//! (`metalora-serve`): adapters there hold value snapshots (`Tensor`, not
//! `ParamRef`, which is `Rc`-based and not `Send`) and forward through
//! these helpers from any thread.

use crate::Result;
use metalora_autograd::gelu_fwd;
use metalora_tensor::conv::{self, ConvSpec};
use metalora_tensor::ops::Activation;
use metalora_tensor::{ops, Bf16Buf, Tensor};

/// Dense layer `act(x·W (+ b))` for `x:[N,I]`, `w:[I,O]`, `bias:[O]`.
///
/// The single linear epilogue entry: every bias add and activation in
/// this module funnels through here into the tensor crate's shared
/// [`ops::Epilogue`], which applies them **inside** the GEMM's store
/// (one output pass) when fusion is on, or as the legacy separate
/// broadcast-add/map passes when it is off — bitwise identical either
/// way, and to a tape forward through [`metalora_autograd::Graph`].
pub fn linear_act(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    act: Option<Activation>,
) -> Result<Tensor> {
    ops::matmul_bias_act(x, w, bias, act)
}

/// Dense layer `x·W (+ b)` for `x:[N,I]`, `w:[I,O]`, `bias:[O]` — the
/// tape-free twin of [`crate::Linear`]'s forward. Routes through
/// [`linear_act`] with no activation.
pub fn linear(x: &Tensor, w: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    linear_act(x, w, bias, None)
}

/// Convolution `act(x * W (+ b))` for `x:[N,C,H,W]`, `w:[KH,KW,C,O]`,
/// `bias:[O]` — the conv twin of [`linear_act`]: the per-channel bias
/// and activation ride the production GEMM's store (fused) or run as
/// the legacy `[O,1,1]` broadcast add + map passes (unfused).
pub fn conv2d_act(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    act: Option<Activation>,
    spec: ConvSpec,
) -> Result<Tensor> {
    conv::conv2d_bias_act(x, w, bias, act, spec, spec)
}

/// Convolution `x * W (+ b)` — the tape-free twin of [`crate::Conv2d`]'s
/// forward. Routes through [`conv2d_act`] with no activation.
pub fn conv2d(x: &Tensor, w: &Tensor, bias: Option<&Tensor>, spec: ConvSpec) -> Result<Tensor> {
    conv2d_act(x, w, bias, None, spec)
}

/// [`linear_act`] against a bf16 weight snapshot: the weights stream at
/// half the bytes (widened exactly at GEMM pack time, f32 accumulation
/// throughout), so the result is **bitwise**
/// `linear_act(x, &w.widen(), bias, act)` — the only deviation from a
/// pure-f32 forward is the one-time RNE rounding taken when `w` was
/// snapshot (relative ≤ 2⁻⁸ per weight).
pub fn linear_bf16_act(
    x: &Tensor,
    w: &Bf16Buf,
    bias: Option<&Tensor>,
    act: Option<Activation>,
) -> Result<Tensor> {
    ops::matmul_bf16_weights_bias_act(x, w, bias, act)
}

/// [`linear`] against a bf16 weight snapshot. Routes through
/// [`linear_bf16_act`] with no activation.
pub fn linear_bf16(x: &Tensor, w: &Bf16Buf, bias: Option<&Tensor>) -> Result<Tensor> {
    linear_bf16_act(x, w, bias, None)
}

/// [`conv2d_act`] against a bf16 kernel snapshot. Conv kernels are tiny
/// next to the im2col activations, so this widens the kernel up front
/// (exact) and runs the f32 conv — the storage saving is the point
/// (snapshots, caches), not the kernel's streaming bytes. Bitwise
/// `conv2d_act(x, &w.widen(), bias, act, spec)`.
pub fn conv2d_bf16_act(
    x: &Tensor,
    w: &Bf16Buf,
    bias: Option<&Tensor>,
    act: Option<Activation>,
    spec: ConvSpec,
) -> Result<Tensor> {
    conv2d_act(x, &w.widen(), bias, act, spec)
}

/// [`conv2d`] against a bf16 kernel snapshot. Routes through
/// [`conv2d_bf16_act`] with no activation.
pub fn conv2d_bf16(
    x: &Tensor,
    w: &Bf16Buf,
    bias: Option<&Tensor>,
    spec: ConvSpec,
) -> Result<Tensor> {
    conv2d_bf16_act(x, w, bias, None, spec)
}

/// GELU (tanh approximation) — applies the same scalar function as
/// [`metalora_autograd::Graph::gelu`] and the fused
/// [`Activation::Gelu`] epilogue (all three share
/// [`metalora_tensor::ops::gelu`]).
pub fn gelu(x: &Tensor) -> Tensor {
    ops::map(x, gelu_fwd)
}

/// tanh — the twin of [`metalora_autograd::Graph::tanh`].
pub fn tanh(x: &Tensor) -> Tensor {
    ops::map(x, f32::tanh)
}

/// ReLU — the twin of [`metalora_autograd::Graph::relu`].
pub fn relu(x: &Tensor) -> Tensor {
    ops::map(x, |v| v.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conv2d, Ctx, Linear, Module};
    use metalora_autograd::Graph;
    use metalora_tensor::init;

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn linear_matches_tape_forward_bitwise() {
        let mut rng = init::rng(11);
        let layer = Linear::new("fc", 7, 5, &mut rng);
        let x = init::uniform(&[4, 7], -1.0, 1.0, &mut rng);

        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let yv = layer.forward(&mut g, xv, &Ctx::none()).unwrap();
        let y_tape = g.value(yv);

        let y = linear(
            &x,
            &layer.weight().value(),
            layer.bias().map(|b| b.value()).as_ref(),
        )
        .unwrap();
        assert_eq!(bits(&y), bits(&y_tape));
    }

    #[test]
    fn linear_no_bias_matches() {
        let mut rng = init::rng(12);
        let layer = Linear::new_no_bias("fc", 6, 3, &mut rng);
        let x = init::uniform(&[2, 6], -1.0, 1.0, &mut rng);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let yv = layer.forward(&mut g, xv, &Ctx::none()).unwrap();
        let y_tape = g.value(yv);
        let y = linear(&x, &layer.weight().value(), None).unwrap();
        assert_eq!(bits(&y), bits(&y_tape));
    }

    #[test]
    fn conv2d_matches_tape_forward_bitwise() {
        let mut rng = init::rng(13);
        let layer = Conv2d::new("c", 3, 4, 3, 1, 1, &mut rng).unwrap();
        let x = init::uniform(&[2, 3, 6, 6], -1.0, 1.0, &mut rng);

        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let yv = layer.forward(&mut g, xv, &Ctx::none()).unwrap();
        let y_tape = g.value(yv);

        let y = conv2d(
            &x,
            &layer.weight().value(),
            layer.bias().map(|b| b.value()).as_ref(),
            layer.spec(),
        )
        .unwrap();
        assert_eq!(bits(&y), bits(&y_tape));
    }

    #[test]
    fn linear_bf16_is_bitwise_linear_on_widened_weights() {
        let mut rng = init::rng(15);
        let layer = Linear::new("fc", 9, 6, &mut rng);
        let x = init::uniform(&[5, 9], -1.0, 1.0, &mut rng);
        let w16 = Bf16Buf::from_tensor(&layer.weight().value());
        let bias = layer.bias().map(|b| b.value());
        let got = linear_bf16(&x, &w16, bias.as_ref()).unwrap();
        let expect = linear(&x, &w16.widen(), bias.as_ref()).unwrap();
        assert_eq!(bits(&got), bits(&expect));
        // And vs the f32 weights the snapshot came from, the error is the
        // storage rounding only: bounded by 2^-8 relative per weight,
        // accumulated over the k=9 contraction.
        let f32_out = linear(&x, &layer.weight().value(), bias.as_ref()).unwrap();
        let worst = got
            .data()
            .iter()
            .zip(f32_out.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(worst <= 9.0 * 2.0f32.powi(-8), "worst abs err {worst}");
    }

    #[test]
    fn conv2d_bf16_is_bitwise_conv2d_on_widened_kernel() {
        let mut rng = init::rng(16);
        let layer = Conv2d::new("c", 3, 4, 3, 1, 1, &mut rng).unwrap();
        let x = init::uniform(&[2, 3, 5, 5], -1.0, 1.0, &mut rng);
        let w16 = Bf16Buf::from_tensor(&layer.weight().value());
        let bias = layer.bias().map(|b| b.value());
        let got = conv2d_bf16(&x, &w16, bias.as_ref(), layer.spec()).unwrap();
        let expect = conv2d(&x, &w16.widen(), bias.as_ref(), layer.spec()).unwrap();
        assert_eq!(bits(&got), bits(&expect));
    }

    #[test]
    fn linear_act_is_bitwise_linear_then_activation() {
        let mut rng = init::rng(17);
        let layer = Linear::new("fc", 7, 5, &mut rng);
        let x = init::uniform(&[4, 7], -1.0, 1.0, &mut rng);
        let w = layer.weight().value();
        let bias = layer.bias().map(|b| b.value());
        let fused = linear_act(&x, &w, bias.as_ref(), Some(Activation::Gelu)).unwrap();
        let sep = gelu(&linear(&x, &w, bias.as_ref()).unwrap());
        assert_eq!(bits(&fused), bits(&sep));
        let fused = linear_act(&x, &w, bias.as_ref(), Some(Activation::Tanh)).unwrap();
        let sep = tanh(&linear(&x, &w, bias.as_ref()).unwrap());
        assert_eq!(bits(&fused), bits(&sep));
    }

    #[test]
    fn linear_bf16_act_is_bitwise_widened_linear_act() {
        let mut rng = init::rng(18);
        let layer = Linear::new("fc", 9, 6, &mut rng);
        let x = init::uniform(&[5, 9], -1.0, 1.0, &mut rng);
        let w16 = Bf16Buf::from_tensor(&layer.weight().value());
        let bias = layer.bias().map(|b| b.value());
        let got = linear_bf16_act(&x, &w16, bias.as_ref(), Some(Activation::Gelu)).unwrap();
        let expect = linear_act(&x, &w16.widen(), bias.as_ref(), Some(Activation::Gelu)).unwrap();
        assert_eq!(bits(&got), bits(&expect));
    }

    #[test]
    fn conv2d_act_is_bitwise_conv_then_relu() {
        let mut rng = init::rng(19);
        let layer = Conv2d::new("c", 3, 4, 3, 1, 1, &mut rng).unwrap();
        let x = init::uniform(&[2, 3, 6, 6], -1.0, 1.0, &mut rng);
        let w = layer.weight().value();
        let bias = layer.bias().map(|b| b.value());
        let fused =
            conv2d_act(&x, &w, bias.as_ref(), Some(Activation::Relu), layer.spec()).unwrap();
        let sep = relu(&conv2d(&x, &w, bias.as_ref(), layer.spec()).unwrap());
        assert_eq!(bits(&fused), bits(&sep));
    }

    #[test]
    fn activations_match_graph_ops_bitwise() {
        let mut rng = init::rng(14);
        let x = init::uniform(&[3, 9], -3.0, 3.0, &mut rng);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let ge = g.gelu(xv);
        let th = g.tanh(xv);
        let re = g.relu(xv);
        assert_eq!(bits(&gelu(&x)), bits(&g.value(ge)));
        assert_eq!(bits(&tanh(&x)), bits(&g.value(th)));
        assert_eq!(bits(&relu(&x)), bits(&g.value(re)));
    }
}
