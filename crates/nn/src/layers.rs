//! Basic layers: Linear, Conv2d, BatchNorm2d, LayerNorm.

use crate::module::{ConvLike, Ctx, LinearLike, Module};
use crate::Result;
use metalora_autograd::{Graph, ParamRef, Var};
use metalora_tensor::conv::ConvSpec;
use metalora_tensor::{init, ops, Tensor, TensorError};
use rand::rngs::StdRng;

/// Dense layer `y = x·W + b` with `W:[I, O]`.
pub struct Linear {
    weight: ParamRef,
    bias: Option<ParamRef>,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// He-initialised dense layer with bias.
    pub fn new(name: &str, in_features: usize, out_features: usize, rng: &mut StdRng) -> Self {
        let w = init::he_normal(&[in_features, out_features], in_features, rng);
        Linear {
            weight: ParamRef::new(format!("{name}.weight"), w),
            bias: Some(ParamRef::new(
                format!("{name}.bias"),
                Tensor::zeros(&[out_features]),
            )),
            in_features,
            out_features,
        }
    }

    /// Dense layer without bias.
    pub fn new_no_bias(
        name: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut StdRng,
    ) -> Self {
        let mut l = Self::new(name, in_features, out_features, rng);
        l.bias = None;
        l
    }

    /// The weight parameter (shared cell).
    pub fn weight(&self) -> &ParamRef {
        &self.weight
    }

    /// The bias parameter, if present.
    pub fn bias(&self) -> Option<&ParamRef> {
        self.bias.as_ref()
    }

    /// Tape-free inference forward with an optional fused activation:
    /// snapshots the current parameter values and routes through
    /// [`crate::infer::linear_act`], so the bias add (and `act`, when
    /// given) ride the GEMM's store instead of separate output passes —
    /// bitwise identical to [`Module::forward`] followed by the matching
    /// activation op.
    pub fn infer_forward(
        &self,
        x: &Tensor,
        act: Option<metalora_tensor::ops::Activation>,
    ) -> Result<Tensor> {
        crate::infer::linear_act(
            x,
            &self.weight.value(),
            self.bias.as_ref().map(|b| b.value()).as_ref(),
            act,
        )
    }
}

impl Module for Linear {
    fn forward(&self, g: &mut Graph, x: Var, _ctx: &Ctx) -> Result<Var> {
        let w = g.bind(&self.weight);
        let y = g.matmul(x, w)?;
        match &self.bias {
            Some(b) => {
                let bv = g.bind(b);
                g.add(y, bv)
            }
            None => Ok(y),
        }
    }

    fn params(&self) -> Vec<ParamRef> {
        let mut v = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            v.push(b.clone());
        }
        v
    }
}

impl LinearLike for Linear {
    fn in_features(&self) -> usize {
        self.in_features
    }
    fn out_features(&self) -> usize {
        self.out_features
    }
}

/// 2-D convolution with the paper's weight layout `𝒲:[K, K, I, O]`,
/// square kernel, symmetric stride/padding and optional bias.
pub struct Conv2d {
    weight: ParamRef,
    bias: Option<ParamRef>,
    in_channels: usize,
    out_channels: usize,
    spec: ConvSpec,
}

impl Conv2d {
    /// He-initialised convolution.
    pub fn new(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut StdRng,
    ) -> Result<Self> {
        let spec = ConvSpec::new(kernel, stride, padding)?;
        let fan_in = in_channels * kernel * kernel;
        let w = init::he_normal(&[kernel, kernel, in_channels, out_channels], fan_in, rng);
        Ok(Conv2d {
            weight: ParamRef::new(format!("{name}.weight"), w),
            bias: Some(ParamRef::new(
                format!("{name}.bias"),
                Tensor::zeros(&[out_channels]),
            )),
            in_channels,
            out_channels,
            spec,
        })
    }

    /// Convolution without bias (conventional before batch norm).
    pub fn new_no_bias(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut StdRng,
    ) -> Result<Self> {
        let mut c = Self::new(name, in_channels, out_channels, kernel, stride, padding, rng)?;
        c.bias = None;
        Ok(c)
    }

    /// The weight parameter (shared cell).
    pub fn weight(&self) -> &ParamRef {
        &self.weight
    }

    /// The bias parameter, if present.
    pub fn bias(&self) -> Option<&ParamRef> {
        self.bias.as_ref()
    }

    /// The spatial spec (kernel/stride/padding).
    pub fn spec(&self) -> ConvSpec {
        self.spec
    }

    /// Tape-free inference forward with an optional fused activation —
    /// the conv twin of [`Linear::infer_forward`]: per-channel bias and
    /// `act` are applied at the production GEMM's store through
    /// [`crate::infer::conv2d_act`], bitwise identical to
    /// [`Module::forward`] followed by the matching activation op.
    pub fn infer_forward(
        &self,
        x: &Tensor,
        act: Option<metalora_tensor::ops::Activation>,
    ) -> Result<Tensor> {
        crate::infer::conv2d_act(
            x,
            &self.weight.value(),
            self.bias.as_ref().map(|b| b.value()).as_ref(),
            act,
            self.spec,
        )
    }
}

impl Module for Conv2d {
    fn forward(&self, g: &mut Graph, x: Var, _ctx: &Ctx) -> Result<Var> {
        let w = g.bind(&self.weight);
        let y = g.conv2d(x, w, self.spec, self.spec)?;
        match &self.bias {
            Some(b) => {
                let bv = g.bind(b);
                // [O] → [O,1,1] so broadcasting aligns with [N,O,OH,OW].
                let bv = g.reshape(bv, &[self.out_channels, 1, 1])?;
                g.add(y, bv)
            }
            None => Ok(y),
        }
    }

    fn params(&self) -> Vec<ParamRef> {
        let mut v = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            v.push(b.clone());
        }
        v
    }
}

impl ConvLike for Conv2d {
    fn in_channels(&self) -> usize {
        self.in_channels
    }
    fn out_channels(&self) -> usize {
        self.out_channels
    }
    fn kernel(&self) -> usize {
        self.spec.kernel
    }
    fn stride(&self) -> usize {
        self.spec.stride
    }
    fn padding(&self) -> usize {
        self.spec.pad
    }
}

/// Batch normalisation over `(N, H, W)` per channel, with running
/// statistics for inference.
///
/// The running statistics are *buffers*: frozen [`ParamRef`]s updated in
/// place during training forwards, excluded from [`Module::params`] (so
/// optimisers and `set_trainable` never touch them) but included in
/// [`Module::buffers`] so checkpoints persist them.
pub struct BatchNorm2d {
    gamma: ParamRef,
    beta: ParamRef,
    running_mean: ParamRef,
    running_var: ParamRef,
    momentum: f32,
    eps: f32,
    channels: usize,
}

impl BatchNorm2d {
    /// Standard BN with `momentum = 0.1`, `eps = 1e-5`.
    pub fn new(name: &str, channels: usize) -> Self {
        BatchNorm2d {
            gamma: ParamRef::new(format!("{name}.gamma"), Tensor::ones(&[channels])),
            beta: ParamRef::new(format!("{name}.beta"), Tensor::zeros(&[channels])),
            running_mean: ParamRef::frozen(
                format!("{name}.running_mean"),
                Tensor::zeros(&[channels]),
            ),
            running_var: ParamRef::frozen(
                format!("{name}.running_var"),
                Tensor::ones(&[channels]),
            ),
            momentum: 0.1,
            eps: 1e-5,
            channels,
        }
    }

    /// Snapshot of the running statistics `(mean, var)`.
    pub fn running_stats(&self) -> (Tensor, Tensor) {
        (self.running_mean.value(), self.running_var.value())
    }
}

impl Module for BatchNorm2d {
    fn forward(&self, g: &mut Graph, x: Var, _ctx: &Ctx) -> Result<Var> {
        let gamma = g.bind(&self.gamma);
        let beta = g.bind(&self.beta);
        if g.is_training() {
            let (y, mean, var) = g.batch_norm2d(x, gamma, beta, self.eps)?;
            // Exponential moving average of the batch statistics.
            let m = self.momentum;
            let rm = ops::add_scaled(&ops::scale(&self.running_mean.value(), 1.0 - m), &mean, m)?;
            let rv = ops::add_scaled(&ops::scale(&self.running_var.value(), 1.0 - m), &var, m)?;
            self.running_mean.update_value(|t| *t = rm);
            self.running_var.update_value(|t| *t = rv);
            Ok(y)
        } else {
            // y = γ·(x − μ)·invstd + β with fixed running statistics.
            let c = self.channels;
            let mean = self.running_mean.value().reshape(&[c, 1, 1])?;
            let eps = self.eps;
            let invstd = ops::map(&self.running_var.value(), move |v| 1.0 / (v + eps).sqrt())
                .reshape(&[c, 1, 1])?;
            let mv = g.input(mean);
            let sv = g.input(invstd);
            let centered = g.sub(x, mv)?;
            let scaled = g.mul(centered, sv)?;
            let gamma = g.reshape(gamma, &[c, 1, 1])?;
            let beta = g.reshape(beta, &[c, 1, 1])?;
            let y = g.mul(scaled, gamma)?;
            g.add(y, beta)
        }
    }

    fn params(&self) -> Vec<ParamRef> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn buffers(&self) -> Vec<ParamRef> {
        vec![self.running_mean.clone(), self.running_var.clone()]
    }
}

/// Layer normalisation over the last axis with affine parameters.
pub struct LayerNorm {
    gamma: ParamRef,
    beta: ParamRef,
    eps: f32,
}

impl LayerNorm {
    /// LN over a last axis of extent `dim`.
    pub fn new(name: &str, dim: usize) -> Self {
        LayerNorm {
            gamma: ParamRef::new(format!("{name}.gamma"), Tensor::ones(&[dim])),
            beta: ParamRef::new(format!("{name}.beta"), Tensor::zeros(&[dim])),
            eps: 1e-5,
        }
    }
}

impl Module for LayerNorm {
    fn forward(&self, g: &mut Graph, x: Var, _ctx: &Ctx) -> Result<Var> {
        let gamma = g.bind(&self.gamma);
        let beta = g.bind(&self.beta);
        g.layer_norm(x, gamma, beta, self.eps)
    }

    fn params(&self) -> Vec<ParamRef> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

/// Validates a `[N, I]` activation against a layer's expected input width.
pub fn check_in_features(x_dims: &[usize], expected: usize, what: &str) -> Result<()> {
    if x_dims.len() != 2 || x_dims[1] != expected {
        return Err(TensorError::InvalidArgument(format!(
            "{what}: expected [N, {expected}] input, got {x_dims:?}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use metalora_tensor::approx_eq;

    fn rng() -> StdRng {
        init::rng(42)
    }

    #[test]
    fn linear_forward_and_params() {
        let l = Linear::new("fc", 3, 2, &mut rng());
        assert_eq!(l.in_features(), 3);
        assert_eq!(l.out_features(), 2);
        assert_eq!(l.num_params(), 3 * 2 + 2);
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[4, 3]));
        let y = l.forward(&mut g, x, &Ctx::none()).unwrap();
        assert_eq!(g.dims(y), vec![4, 2]);
    }

    #[test]
    fn linear_no_bias() {
        let l = Linear::new_no_bias("fc", 3, 2, &mut rng());
        assert_eq!(l.num_params(), 6);
        assert!(l.bias().is_none());
    }

    #[test]
    fn linear_trains_toward_target() {
        // One-step sanity: gradient step reduces MSE.
        let l = Linear::new("fc", 2, 1, &mut rng());
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let t = Tensor::from_vec(vec![1.0, -1.0], &[2, 1]).unwrap();
        let loss_at = |l: &Linear| {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let y = l.forward(&mut g, xv, &Ctx::none()).unwrap();
            let loss = g.mse_loss(y, &t).unwrap();
            (g, loss)
        };
        let (mut g, loss) = loss_at(&l);
        let before = g.value(loss).item().unwrap();
        g.backward(loss).unwrap();
        g.flush_grads();
        for p in l.params() {
            let gr = p.grad();
            p.update_value(|v| {
                for (a, &b) in v.data_mut().iter_mut().zip(gr.data()) {
                    *a -= 0.1 * b;
                }
            });
        }
        let (g2, loss2) = loss_at(&l);
        let after = g2.value(loss2).item().unwrap();
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn conv2d_forward_shape_and_bias_broadcast() {
        let c = Conv2d::new("conv", 3, 5, 3, 1, 1, &mut rng()).unwrap();
        assert_eq!(c.in_channels(), 3);
        assert_eq!(c.out_channels(), 5);
        assert_eq!(c.kernel(), 3);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(&[2, 3, 8, 8]));
        let y = c.forward(&mut g, x, &Ctx::none()).unwrap();
        assert_eq!(g.dims(y), vec![2, 5, 8, 8]);
        // Zero input → output equals broadcast bias (zero-init) = 0.
        assert!(g.value(y).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn conv2d_stride_changes_spatial_dims() {
        let c = Conv2d::new_no_bias("conv", 2, 4, 3, 2, 1, &mut rng()).unwrap();
        assert_eq!(c.stride(), 2);
        assert_eq!(c.padding(), 1);
        let mut g = Graph::new();
        let x = g.input(Tensor::ones(&[1, 2, 8, 8]));
        let y = c.forward(&mut g, x, &Ctx::none()).unwrap();
        assert_eq!(g.dims(y), vec![1, 4, 4, 4]);
    }

    #[test]
    fn batch_norm_train_vs_eval() {
        let bn = BatchNorm2d::new("bn", 2);
        let mut rng = rng();
        let xv = init::normal(&[4, 2, 3, 3], 5.0, 2.0, &mut rng);

        // Training: output is normalised; running stats move toward batch.
        let mut g = Graph::new();
        let x = g.input(xv.clone());
        let y = bn.forward(&mut g, x, &Ctx::none()).unwrap();
        let out = g.value(y);
        let m = ops::mean_all(&out);
        assert!(m.abs() < 0.1, "train-mode output mean {m}");
        let (rm, rv) = bn.running_stats();
        assert!(rm.data().iter().all(|&v| v > 0.0), "running mean moved");
        assert!(rv.data().iter().any(|&v| (v - 1.0).abs() > 1e-3));

        // Inference: uses running stats, no stat mutation.
        let mut g = Graph::inference();
        let x = g.input(xv);
        let y = bn.forward(&mut g, x, &Ctx::none()).unwrap();
        let (rm2, _) = bn.running_stats();
        assert!(approx_eq(&rm, &rm2, 0.0), "eval must not touch stats");
        assert_eq!(g.dims(y), vec![4, 2, 3, 3]);
    }

    #[test]
    fn batch_norm_eval_matches_train_after_convergence() {
        // Feed the same batch many times; running stats converge to batch
        // stats, so eval output approaches train output.
        let bn = BatchNorm2d::new("bn", 1);
        let mut r = rng();
        let xv = init::normal(&[8, 1, 4, 4], -3.0, 1.5, &mut r);
        let mut train_out = None;
        for _ in 0..200 {
            let mut g = Graph::new();
            let x = g.input(xv.clone());
            let y = bn.forward(&mut g, x, &Ctx::none()).unwrap();
            train_out = Some(g.value(y));
        }
        let mut g = Graph::inference();
        let x = g.input(xv);
        let y = bn.forward(&mut g, x, &Ctx::none()).unwrap();
        assert!(approx_eq(&g.value(y), &train_out.unwrap(), 0.05));
    }

    #[test]
    fn layer_norm_layer() {
        let ln = LayerNorm::new("ln", 4);
        assert_eq!(ln.num_params(), 8);
        let mut g = Graph::new();
        let x = g.input(Tensor::arange(0.0, 1.0, 8).reshape(&[2, 4]).unwrap());
        let y = ln.forward(&mut g, x, &Ctx::none()).unwrap();
        let v = g.value(y);
        for l in 0..2 {
            let s: f32 = v.data()[l * 4..(l + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-4);
        }
    }

    #[test]
    fn linear_infer_forward_is_bitwise_tape_forward_plus_activation() {
        use metalora_tensor::ops::Activation;
        let l = Linear::new("fc", 3, 2, &mut rng());
        let xv = init::uniform(&[4, 3], -1.0, 1.0, &mut rng());
        let mut g = Graph::new();
        let x = g.input(xv.clone());
        let y = l.forward(&mut g, x, &Ctx::none()).unwrap();
        let ge = g.gelu(y);
        let tape: Vec<u32> = g.value(ge).data().iter().map(|v| v.to_bits()).collect();
        let fused = l.infer_forward(&xv, Some(Activation::Gelu)).unwrap();
        let got: Vec<u32> = fused.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, tape);
    }

    #[test]
    fn conv2d_infer_forward_is_bitwise_tape_forward_plus_activation() {
        use metalora_tensor::ops::Activation;
        let c = Conv2d::new("conv", 3, 5, 3, 1, 1, &mut rng()).unwrap();
        let xv = init::uniform(&[2, 3, 6, 6], -1.0, 1.0, &mut rng());
        let mut g = Graph::new();
        let x = g.input(xv.clone());
        let y = c.forward(&mut g, x, &Ctx::none()).unwrap();
        let re = g.relu(y);
        let tape: Vec<u32> = g.value(re).data().iter().map(|v| v.to_bits()).collect();
        let fused = c.infer_forward(&xv, Some(Activation::Relu)).unwrap();
        let got: Vec<u32> = fused.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, tape);
    }

    #[test]
    fn check_in_features_helper() {
        assert!(check_in_features(&[4, 3], 3, "fc").is_ok());
        assert!(check_in_features(&[4, 2], 3, "fc").is_err());
        assert!(check_in_features(&[4], 4, "fc").is_err());
    }
}
