//! # metalora-nn
//!
//! Neural-network layers, backbones and optimisers for the MetaLoRA
//! reproduction, built on [`metalora_autograd`].
//!
//! * [`module`] — the [`Module`]/[`LinearLike`]/[`ConvLike`] traits, the
//!   forward [`Ctx`] that carries PEFT state (generated parameter seeds,
//!   adapter selection), and parameter utilities.
//! * [`layers`] — Linear, Conv2d, BatchNorm2d, LayerNorm.
//! * [`models`] — the two backbones of Table I: a small **ResNet** and an
//!   **MLP-Mixer**, both with swappable conv/linear layers so the PEFT
//!   crate can inject adapters, plus a plain MLP.
//! * [`optim`] — SGD(+momentum) and Adam with weight decay and LR
//!   schedules.
//! * [`train`] — minimal training-loop helpers (batching, accuracy).
//! * [`infer`] — tape-free forward math on plain tensors, bitwise
//!   identical to the graph forwards (the serving engine's substrate).

pub mod checkpoint;
pub mod infer;
pub mod layers;
pub mod models;
pub mod module;
pub mod optim;
pub mod train;

pub use checkpoint::Checkpoint;
pub use layers::{BatchNorm2d, Conv2d, LayerNorm, Linear};
pub use module::{Backbone, BoxConv, BoxLinear, ConvLike, Ctx, LinearLike, Module};
pub use optim::{Adam, Optimizer, Sgd};

/// Crate-wide result alias (errors are tensor errors).
pub type Result<T> = std::result::Result<T, metalora_tensor::TensorError>;
