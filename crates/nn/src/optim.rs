//! Optimisers: SGD with momentum and Adam, both with decoupled weight
//! decay, plus simple learning-rate schedules.

use metalora_autograd::ParamRef;
use metalora_tensor::Tensor;
use std::collections::{BTreeMap, HashMap};

/// Side accumulators for one parameter group during a sampled step. All
/// sums run in `f64` next to the `f32` update and never feed back into
/// it, so probing leaves the optimizer numerics bit-identical.
#[derive(Default)]
struct GroupHealth {
    grad_sq: f64,
    upd_sq: f64,
    w_sq: f64,
    nan: u64,
    inf: u64,
}

/// Health group of a parameter: its name up to the last `.` segment
/// (`"mapping.w1"` → `"mapping"`), i.e. one group per layer.
fn health_group(name: &str) -> String {
    match name.rfind('.') {
        Some(i) => name[..i].to_string(),
        None => name.to_string(),
    }
}

/// Folds one gradient into the group's NaN/Inf sentinels and grad-norm
/// accumulator.
fn scan_grad(h: &mut GroupHealth, g: &Tensor) {
    for &gi in g.data() {
        if gi.is_nan() {
            h.nan += 1;
        } else if gi.is_infinite() {
            h.inf += 1;
        } else {
            let gi = gi as f64;
            h.grad_sq += gi * gi;
        }
    }
}

/// Emits one [`metalora_obs::health::HealthRecord`] per group (sorted —
/// `BTreeMap` — so record order is deterministic).
fn flush_health(step: u64, groups: BTreeMap<String, GroupHealth>) {
    for (group, h) in groups {
        let weight_norm = h.w_sq.sqrt();
        let update_ratio = if weight_norm > 0.0 {
            h.upd_sq.sqrt() / weight_norm
        } else {
            f64::NAN
        };
        metalora_obs::health::record(
            &group,
            step,
            h.grad_sq.sqrt(),
            update_ratio,
            weight_norm,
            h.nan,
            h.inf,
        );
    }
}

/// Common optimiser interface over a fixed parameter set.
pub trait Optimizer {
    /// Applies one update using each parameter's accumulated gradient,
    /// then clears the gradients. Frozen parameters are skipped.
    fn step(&mut self);

    /// Clears accumulated gradients without updating.
    fn zero_grad(&self);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and decoupled
/// weight decay.
pub struct Sgd {
    params: Vec<ParamRef>,
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<usize, Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(params: Vec<ParamRef>, lr: f32) -> Self {
        Self::with_momentum(params, lr, 0.0, 0.0)
    }

    /// SGD with momentum `μ` and weight decay `λ` (decoupled, i.e. applied
    /// directly to the weights, not folded into the gradient).
    pub fn with_momentum(params: Vec<ParamRef>, lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            params,
            lr,
            momentum,
            weight_decay,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        let probe = metalora_obs::health::begin_step();
        let mut groups: BTreeMap<String, GroupHealth> = BTreeMap::new();
        for p in &self.params {
            if !p.trainable() {
                continue;
            }
            let g = p.grad();
            if probe.is_some() {
                scan_grad(groups.entry(health_group(&p.name())).or_default(), &g);
            }
            let update = if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(p.cell_id())
                    .or_insert_with(|| Tensor::zeros(g.dims()));
                for (vi, &gi) in v.data_mut().iter_mut().zip(g.data()) {
                    *vi = self.momentum * *vi + gi;
                }
                v.clone()
            } else {
                g
            };
            let (lr, wd) = (self.lr, self.weight_decay);
            let probing = probe.is_some();
            let (mut upd_sq, mut w_sq) = (0.0f64, 0.0f64);
            p.update_value(|w| {
                for (wi, &ui) in w.data_mut().iter_mut().zip(update.data()) {
                    let d = lr * (ui + wd * *wi);
                    if probing {
                        upd_sq += d as f64 * d as f64;
                        w_sq += *wi as f64 * *wi as f64;
                    }
                    *wi -= d;
                }
            });
            if probing {
                let h = groups.entry(health_group(&p.name())).or_default();
                h.upd_sq += upd_sq;
                h.w_sq += w_sq;
            }
            p.zero_grad();
        }
        if let Some(step) = probe {
            flush_health(step, groups);
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba 2015) with bias correction and decoupled weight
/// decay (AdamW-style).
pub struct Adam {
    params: Vec<ParamRef>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: HashMap<usize, Tensor>,
    v: HashMap<usize, Tensor>,
}

impl Adam {
    /// Adam with the standard `(β₁, β₂, ε) = (0.9, 0.999, 1e-8)`.
    pub fn new(params: Vec<ParamRef>, lr: f32) -> Self {
        Self::with_config(params, lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Fully parameterised Adam.
    pub fn with_config(
        params: Vec<ParamRef>,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        weight_decay: f32,
    ) -> Self {
        Adam {
            params,
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let probe = metalora_obs::health::begin_step();
        let mut groups: BTreeMap<String, GroupHealth> = BTreeMap::new();
        for p in &self.params {
            if !p.trainable() {
                continue;
            }
            let g = p.grad();
            if probe.is_some() {
                scan_grad(groups.entry(health_group(&p.name())).or_default(), &g);
            }
            let m = self
                .m
                .entry(p.cell_id())
                .or_insert_with(|| Tensor::zeros(g.dims()));
            let v = self
                .v
                .entry(p.cell_id())
                .or_insert_with(|| Tensor::zeros(g.dims()));
            for ((mi, vi), &gi) in m.data_mut().iter_mut().zip(v.data_mut()).zip(g.data()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let (lr, eps, wd) = (self.lr, self.eps, self.weight_decay);
            let (m, v) = (m.clone(), v.clone());
            let probing = probe.is_some();
            let (mut upd_sq, mut w_sq) = (0.0f64, 0.0f64);
            p.update_value(|w| {
                for ((wi, &mi), &vi) in w.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                    let mhat = mi / bc1;
                    let vhat = vi / bc2;
                    let d = lr * (mhat / (vhat.sqrt() + eps) + wd * *wi);
                    if probing {
                        upd_sq += d as f64 * d as f64;
                        w_sq += *wi as f64 * *wi as f64;
                    }
                    *wi -= d;
                }
            });
            if probing {
                let h = groups.entry(health_group(&p.name())).or_default();
                h.upd_sq += upd_sq;
                h.w_sq += w_sq;
            }
            p.zero_grad();
        }
        if let Some(step) = probe {
            flush_health(step, groups);
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Cosine learning-rate schedule from `base_lr` down to `min_lr` over
/// `total_steps`.
pub fn cosine_lr(base_lr: f32, min_lr: f32, step: usize, total_steps: usize) -> f32 {
    if total_steps == 0 {
        return base_lr;
    }
    let progress = (step.min(total_steps)) as f32 / total_steps as f32;
    min_lr + 0.5 * (base_lr - min_lr) * (1.0 + (std::f32::consts::PI * progress).cos())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(start: &[f32]) -> ParamRef {
        ParamRef::new(
            "x",
            Tensor::from_vec(start.to_vec(), &[start.len()]).unwrap(),
        )
    }

    /// Gradient of f(x) = ½‖x‖² is x itself.
    fn fill_quadratic_grad(p: &ParamRef) {
        p.accumulate_grad(&p.value());
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = quadratic_param(&[5.0, -3.0]);
        let mut opt = Sgd::new(vec![p.clone()], 0.1);
        for _ in 0..100 {
            fill_quadratic_grad(&p);
            opt.step();
        }
        assert!(p.value().norm() < 1e-3, "‖x‖ = {}", p.value().norm());
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let run = |momentum: f32, steps: usize| {
            let p = quadratic_param(&[10.0]);
            let mut opt = Sgd::with_momentum(vec![p.clone()], 0.01, momentum, 0.0);
            for _ in 0..steps {
                fill_quadratic_grad(&p);
                opt.step();
            }
            p.value().data()[0].abs()
        };
        assert!(run(0.9, 50) < run(0.0, 50), "momentum should be faster here");
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights() {
        let p = quadratic_param(&[1.0]);
        let mut opt = Sgd::with_momentum(vec![p.clone()], 0.1, 0.0, 0.5);
        // Zero gradient: only decay acts.
        opt.step();
        assert!((p.value().data()[0] - (1.0 - 0.1 * 0.5)).abs() < 1e-6);
    }

    #[test]
    fn sgd_skips_frozen() {
        let p = quadratic_param(&[2.0]);
        p.set_trainable(false);
        let mut opt = Sgd::new(vec![p.clone()], 0.5);
        fill_quadratic_grad(&p);
        opt.step();
        assert_eq!(p.value().data()[0], 2.0);
    }

    #[test]
    fn step_clears_gradients() {
        let p = quadratic_param(&[1.0]);
        let mut opt = Sgd::new(vec![p.clone()], 0.1);
        fill_quadratic_grad(&p);
        opt.step();
        assert_eq!(p.grad().data(), &[0.0]);
        fill_quadratic_grad(&p);
        opt.zero_grad();
        assert_eq!(p.grad().data(), &[0.0]);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = quadratic_param(&[4.0, -2.0, 7.0]);
        let mut opt = Adam::new(vec![p.clone()], 0.2);
        for _ in 0..200 {
            fill_quadratic_grad(&p);
            opt.step();
        }
        assert!(p.value().norm() < 1e-2, "‖x‖ = {}", p.value().norm());
    }

    #[test]
    fn adam_handles_sparse_scale_differences() {
        // Coordinates with very different gradient scales: Adam's
        // per-coordinate normalisation should still reduce both.
        let p = ParamRef::new("x", Tensor::from_vec(vec![100.0, 0.01], &[2]).unwrap());
        let mut opt = Adam::new(vec![p.clone()], 0.2);
        for _ in 0..2500 {
            fill_quadratic_grad(&p);
            opt.step();
        }
        // The huge coordinate shrinks by orders of magnitude; the tiny one
        // stays bounded near the step size (Adam steps are ~lr regardless
        // of gradient magnitude, and momentum can overshoot by a few ×lr).
        assert!(p.value().data()[0].abs() < 2.0, "{:?}", p.value().data());
        assert!(p.value().data()[1].abs() < 2.0, "{:?}", p.value().data());
    }

    /// Serialises the tests that toggle the global obs switch.
    fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn health_probes_are_bitwise_passive_and_record_groups() {
        let _g = obs_lock();
        let make = || {
            vec![
                ParamRef::new(
                    "layer1.w",
                    Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap(),
                ),
                ParamRef::new("layer1.b", Tensor::from_vec(vec![0.5], &[1]).unwrap()),
                ParamRef::new("head.w", Tensor::from_vec(vec![2.0, 2.0], &[2]).unwrap()),
            ]
        };
        let run = |params: &[ParamRef]| -> Vec<u32> {
            let mut opt = Adam::with_config(params.to_vec(), 0.1, 0.9, 0.999, 1e-8, 0.01);
            for _ in 0..5 {
                for p in params {
                    p.accumulate_grad(&p.value());
                }
                opt.step();
            }
            params
                .iter()
                .flat_map(|p| p.value().data().iter().map(|f| f.to_bits()).collect::<Vec<_>>())
                .collect()
        };

        let plain = run(&make());

        metalora_obs::set_enabled(true);
        metalora_obs::reset();
        metalora_obs::health::set_sample_stride(1);
        let observed = run(&make());
        let records = metalora_obs::health::snapshot();
        metalora_obs::health::set_sample_stride(0);
        metalora_obs::reset();
        metalora_obs::set_enabled(false);

        assert_eq!(plain, observed, "health probing must not change numerics");
        // 5 steps × 2 groups (layer1 merges .w and .b), deterministic order.
        assert_eq!(records.len(), 10);
        assert!(records.iter().any(|r| r.group == "layer1"));
        assert!(records.iter().any(|r| r.group == "head"));
        for r in &records {
            assert!(r.grad_norm > 0.0, "{r:?}");
            assert!(r.update_ratio > 0.0, "{r:?}");
            assert!(r.weight_norm > 0.0, "{r:?}");
            assert_eq!((r.nan_count, r.inf_count), (0, 0), "{r:?}");
        }
    }

    #[test]
    fn health_probe_flags_nonfinite_gradients() {
        let _g = obs_lock();
        metalora_obs::set_enabled(true);
        metalora_obs::reset();
        metalora_obs::health::set_sample_stride(1);
        let p = ParamRef::new(
            "bad.w",
            Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]).unwrap(),
        );
        p.accumulate_grad(
            &Tensor::from_vec(vec![f32::NAN, f32::INFINITY, 1.0], &[3]).unwrap(),
        );
        Sgd::new(vec![p.clone()], 0.1).step();
        let records = metalora_obs::health::snapshot();
        metalora_obs::health::set_sample_stride(0);
        metalora_obs::reset();
        metalora_obs::set_enabled(false);
        let r = records.iter().find(|r| r.group == "bad").expect("record");
        assert_eq!(r.nan_count, 1);
        assert_eq!(r.inf_count, 1);
    }

    #[test]
    fn lr_get_set() {
        let mut opt = Sgd::new(vec![], 0.1);
        assert_eq!(opt.lr(), 0.1);
        opt.set_lr(0.05);
        assert_eq!(opt.lr(), 0.05);
        let mut a = Adam::new(vec![], 0.3);
        a.set_lr(0.2);
        assert_eq!(a.lr(), 0.2);
    }

    #[test]
    fn cosine_schedule_endpoints() {
        assert!((cosine_lr(1.0, 0.1, 0, 100) - 1.0).abs() < 1e-6);
        assert!((cosine_lr(1.0, 0.1, 100, 100) - 0.1).abs() < 1e-6);
        let mid = cosine_lr(1.0, 0.1, 50, 100);
        assert!((mid - 0.55).abs() < 1e-6);
        assert_eq!(cosine_lr(0.5, 0.0, 3, 0), 0.5);
        // Past the end stays at min.
        assert!((cosine_lr(1.0, 0.1, 150, 100) - 0.1).abs() < 1e-6);
    }
}
