//! Optimisers: SGD with momentum and Adam, both with decoupled weight
//! decay, plus simple learning-rate schedules.

use metalora_autograd::ParamRef;
use metalora_tensor::Tensor;
use std::collections::HashMap;

/// Common optimiser interface over a fixed parameter set.
pub trait Optimizer {
    /// Applies one update using each parameter's accumulated gradient,
    /// then clears the gradients. Frozen parameters are skipped.
    fn step(&mut self);

    /// Clears accumulated gradients without updating.
    fn zero_grad(&self);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and decoupled
/// weight decay.
pub struct Sgd {
    params: Vec<ParamRef>,
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<usize, Tensor>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(params: Vec<ParamRef>, lr: f32) -> Self {
        Self::with_momentum(params, lr, 0.0, 0.0)
    }

    /// SGD with momentum `μ` and weight decay `λ` (decoupled, i.e. applied
    /// directly to the weights, not folded into the gradient).
    pub fn with_momentum(params: Vec<ParamRef>, lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            params,
            lr,
            momentum,
            weight_decay,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for p in &self.params {
            if !p.trainable() {
                continue;
            }
            let g = p.grad();
            let update = if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(p.cell_id())
                    .or_insert_with(|| Tensor::zeros(g.dims()));
                for (vi, &gi) in v.data_mut().iter_mut().zip(g.data()) {
                    *vi = self.momentum * *vi + gi;
                }
                v.clone()
            } else {
                g
            };
            let (lr, wd) = (self.lr, self.weight_decay);
            p.update_value(|w| {
                for (wi, &ui) in w.data_mut().iter_mut().zip(update.data()) {
                    *wi -= lr * (ui + wd * *wi);
                }
            });
            p.zero_grad();
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba 2015) with bias correction and decoupled weight
/// decay (AdamW-style).
pub struct Adam {
    params: Vec<ParamRef>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: HashMap<usize, Tensor>,
    v: HashMap<usize, Tensor>,
}

impl Adam {
    /// Adam with the standard `(β₁, β₂, ε) = (0.9, 0.999, 1e-8)`.
    pub fn new(params: Vec<ParamRef>, lr: f32) -> Self {
        Self::with_config(params, lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Fully parameterised Adam.
    pub fn with_config(
        params: Vec<ParamRef>,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        weight_decay: f32,
    ) -> Self {
        Adam {
            params,
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in &self.params {
            if !p.trainable() {
                continue;
            }
            let g = p.grad();
            let m = self
                .m
                .entry(p.cell_id())
                .or_insert_with(|| Tensor::zeros(g.dims()));
            let v = self
                .v
                .entry(p.cell_id())
                .or_insert_with(|| Tensor::zeros(g.dims()));
            for ((mi, vi), &gi) in m.data_mut().iter_mut().zip(v.data_mut()).zip(g.data()) {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            }
            let (lr, eps, wd) = (self.lr, self.eps, self.weight_decay);
            let (m, v) = (m.clone(), v.clone());
            p.update_value(|w| {
                for ((wi, &mi), &vi) in w.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                    let mhat = mi / bc1;
                    let vhat = vi / bc2;
                    *wi -= lr * (mhat / (vhat.sqrt() + eps) + wd * *wi);
                }
            });
            p.zero_grad();
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Cosine learning-rate schedule from `base_lr` down to `min_lr` over
/// `total_steps`.
pub fn cosine_lr(base_lr: f32, min_lr: f32, step: usize, total_steps: usize) -> f32 {
    if total_steps == 0 {
        return base_lr;
    }
    let progress = (step.min(total_steps)) as f32 / total_steps as f32;
    min_lr + 0.5 * (base_lr - min_lr) * (1.0 + (std::f32::consts::PI * progress).cos())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(start: &[f32]) -> ParamRef {
        ParamRef::new(
            "x",
            Tensor::from_vec(start.to_vec(), &[start.len()]).unwrap(),
        )
    }

    /// Gradient of f(x) = ½‖x‖² is x itself.
    fn fill_quadratic_grad(p: &ParamRef) {
        p.accumulate_grad(&p.value());
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = quadratic_param(&[5.0, -3.0]);
        let mut opt = Sgd::new(vec![p.clone()], 0.1);
        for _ in 0..100 {
            fill_quadratic_grad(&p);
            opt.step();
        }
        assert!(p.value().norm() < 1e-3, "‖x‖ = {}", p.value().norm());
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let run = |momentum: f32, steps: usize| {
            let p = quadratic_param(&[10.0]);
            let mut opt = Sgd::with_momentum(vec![p.clone()], 0.01, momentum, 0.0);
            for _ in 0..steps {
                fill_quadratic_grad(&p);
                opt.step();
            }
            p.value().data()[0].abs()
        };
        assert!(run(0.9, 50) < run(0.0, 50), "momentum should be faster here");
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights() {
        let p = quadratic_param(&[1.0]);
        let mut opt = Sgd::with_momentum(vec![p.clone()], 0.1, 0.0, 0.5);
        // Zero gradient: only decay acts.
        opt.step();
        assert!((p.value().data()[0] - (1.0 - 0.1 * 0.5)).abs() < 1e-6);
    }

    #[test]
    fn sgd_skips_frozen() {
        let p = quadratic_param(&[2.0]);
        p.set_trainable(false);
        let mut opt = Sgd::new(vec![p.clone()], 0.5);
        fill_quadratic_grad(&p);
        opt.step();
        assert_eq!(p.value().data()[0], 2.0);
    }

    #[test]
    fn step_clears_gradients() {
        let p = quadratic_param(&[1.0]);
        let mut opt = Sgd::new(vec![p.clone()], 0.1);
        fill_quadratic_grad(&p);
        opt.step();
        assert_eq!(p.grad().data(), &[0.0]);
        fill_quadratic_grad(&p);
        opt.zero_grad();
        assert_eq!(p.grad().data(), &[0.0]);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = quadratic_param(&[4.0, -2.0, 7.0]);
        let mut opt = Adam::new(vec![p.clone()], 0.2);
        for _ in 0..200 {
            fill_quadratic_grad(&p);
            opt.step();
        }
        assert!(p.value().norm() < 1e-2, "‖x‖ = {}", p.value().norm());
    }

    #[test]
    fn adam_handles_sparse_scale_differences() {
        // Coordinates with very different gradient scales: Adam's
        // per-coordinate normalisation should still reduce both.
        let p = ParamRef::new("x", Tensor::from_vec(vec![100.0, 0.01], &[2]).unwrap());
        let mut opt = Adam::new(vec![p.clone()], 0.2);
        for _ in 0..2500 {
            fill_quadratic_grad(&p);
            opt.step();
        }
        // The huge coordinate shrinks by orders of magnitude; the tiny one
        // stays bounded near the step size (Adam steps are ~lr regardless
        // of gradient magnitude, and momentum can overshoot by a few ×lr).
        assert!(p.value().data()[0].abs() < 2.0, "{:?}", p.value().data());
        assert!(p.value().data()[1].abs() < 2.0, "{:?}", p.value().data());
    }

    #[test]
    fn lr_get_set() {
        let mut opt = Sgd::new(vec![], 0.1);
        assert_eq!(opt.lr(), 0.1);
        opt.set_lr(0.05);
        assert_eq!(opt.lr(), 0.05);
        let mut a = Adam::new(vec![], 0.3);
        a.set_lr(0.2);
        assert_eq!(a.lr(), 0.2);
    }

    #[test]
    fn cosine_schedule_endpoints() {
        assert!((cosine_lr(1.0, 0.1, 0, 100) - 1.0).abs() < 1e-6);
        assert!((cosine_lr(1.0, 0.1, 100, 100) - 0.1).abs() < 1e-6);
        let mid = cosine_lr(1.0, 0.1, 50, 100);
        assert!((mid - 0.55).abs() < 1e-6);
        assert_eq!(cosine_lr(0.5, 0.0, 3, 0), 0.5);
        // Past the end stays at min.
        assert!((cosine_lr(1.0, 0.1, 150, 100) - 0.1).abs() < 1e-6);
    }
}
