//! Property-based tests for layers, backbones and optimisers.

use metalora_autograd::{Graph, ParamRef};
use metalora_nn::models::{Mixer, MixerConfig, Mlp, MlpConfig, ResNet, ResNetConfig};
use metalora_nn::{Adam, Backbone, BatchNorm2d, Conv2d, Ctx, LayerNorm, Linear, Module, Optimizer, Sgd};
use metalora_tensor::{init, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn linear_shapes_hold(
        n in 1usize..5, i in 1usize..8, o in 1usize..8, seed in 0u64..500,
    ) {
        let mut rng = init::rng(seed);
        let l = Linear::new("fc", i, o, &mut rng);
        let mut g = Graph::new();
        let x = g.input(init::uniform(&[n, i], -1.0, 1.0, &mut rng));
        let y = l.forward(&mut g, x, &Ctx::none()).unwrap();
        prop_assert_eq!(g.dims(y), vec![n, o]);
        prop_assert_eq!(l.num_params(), i * o + o);
    }

    #[test]
    fn conv_output_geometry(
        n in 1usize..3, i in 1usize..4, o in 1usize..4,
        k in 1usize..4, stride in 1usize..3, hw in 6usize..10,
        seed in 0u64..500,
    ) {
        let pad = k / 2;
        let mut rng = init::rng(seed);
        let c = Conv2d::new("conv", i, o, k, stride, pad, &mut rng).unwrap();
        let mut g = Graph::new();
        let x = g.input(init::uniform(&[n, i, hw, hw], -1.0, 1.0, &mut rng));
        let y = c.forward(&mut g, x, &Ctx::none()).unwrap();
        let expect = (hw + 2 * pad - k) / stride + 1;
        prop_assert_eq!(g.dims(y), vec![n, o, expect, expect]);
    }

    #[test]
    fn layer_norm_lanes_are_standardised(
        n in 1usize..5, d in 2usize..8, seed in 0u64..500,
    ) {
        let mut rng = init::rng(seed);
        let ln = LayerNorm::new("ln", d);
        let mut g = Graph::new();
        let x = g.input(init::uniform(&[n, d], -3.0, 3.0, &mut rng));
        let y = ln.forward(&mut g, x, &Ctx::none()).unwrap();
        let v = g.value(y);
        for lane in 0..n {
            let row = &v.data()[lane * d..(lane + 1) * d];
            let mean: f32 = row.iter().sum::<f32>() / d as f32;
            prop_assert!(mean.abs() < 1e-3, "lane {lane} mean {mean}");
        }
    }

    #[test]
    fn batch_norm_train_output_standardised(
        n in 2usize..4, c in 1usize..4, hw in 2usize..5, seed in 0u64..500,
    ) {
        let mut rng = init::rng(seed);
        let bn = BatchNorm2d::new("bn", c);
        let mut g = Graph::new();
        let x = g.input(init::normal(&[n, c, hw, hw], 3.0, 2.0, &mut rng));
        let y = bn.forward(&mut g, x, &Ctx::none()).unwrap();
        let v = g.value(y);
        // Per-channel output mean ≈ 0 in training mode.
        let m = n * hw * hw;
        for ci in 0..c {
            let mut acc = 0.0f32;
            for ni in 0..n {
                let base = ((ni * c + ci) * hw) * hw;
                acc += v.data()[base..base + hw * hw].iter().sum::<f32>();
            }
            prop_assert!((acc / m as f32).abs() < 1e-2);
        }
    }

    #[test]
    fn backbone_features_match_declared_dim(seed in 0u64..200) {
        let mut rng = init::rng(seed);
        let rn = ResNet::new(
            &ResNetConfig {
                in_channels: 3,
                channels: vec![4, 6],
                blocks_per_stage: 1,
                num_classes: 5,
            },
            &mut rng,
        )
        .unwrap();
        let mx = Mixer::new(
            &MixerConfig {
                in_channels: 3,
                image_size: 8,
                patch_size: 4,
                dim: 10,
                token_hidden: 6,
                channel_hidden: 12,
                depth: 1,
                num_classes: 5,
            },
            &mut rng,
        )
        .unwrap();
        let mlp = Mlp::new(
            "m",
            &MlpConfig {
                in_dim: 6,
                hidden: vec![9],
                out_dim: 4,
            },
            &mut rng,
        );
        let mut g = Graph::inference();
        let xi = g.input(init::uniform(&[2, 3, 8, 8], -1.0, 1.0, &mut rng));
        let f = rn.features(&mut g, xi, &Ctx::none()).unwrap();
        prop_assert_eq!(g.dims(f), vec![2, rn.feature_dim()]);
        let f = mx.features(&mut g, xi, &Ctx::none()).unwrap();
        prop_assert_eq!(g.dims(f), vec![2, mx.feature_dim()]);
        let xv = g.input(init::uniform(&[2, 6], -1.0, 1.0, &mut rng));
        let f = mlp.features(&mut g, xv, &Ctx::none()).unwrap();
        prop_assert_eq!(g.dims(f), vec![2, mlp.feature_dim()]);
    }

    #[test]
    fn sgd_descends_any_quadratic(
        dim in 1usize..6, lr in 0.01f32..0.3, seed in 0u64..500,
    ) {
        let mut rng = init::rng(seed);
        let p = ParamRef::new("x", init::uniform(&[dim], -5.0, 5.0, &mut rng));
        let start = p.value().norm();
        let mut opt = Sgd::new(vec![p.clone()], lr);
        for _ in 0..50 {
            p.accumulate_grad(&p.value()); // ∇(½‖x‖²) = x
            opt.step();
        }
        prop_assert!(p.value().norm() < start.max(1e-3), "did not descend");
    }

    #[test]
    fn adam_descends_any_quadratic(
        dim in 1usize..6, seed in 0u64..500,
    ) {
        let mut rng = init::rng(seed);
        let p = ParamRef::new("x", init::uniform(&[dim], -5.0, 5.0, &mut rng));
        let start = p.value().norm();
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        for _ in 0..150 {
            p.accumulate_grad(&p.value());
            opt.step();
        }
        prop_assert!(p.value().norm() < start.max(1e-2));
    }

    #[test]
    fn frozen_params_survive_optimisation(seed in 0u64..500) {
        let mut rng = init::rng(seed);
        let frozen = ParamRef::frozen("f", init::uniform(&[3], -1.0, 1.0, &mut rng));
        let live = ParamRef::new("l", init::uniform(&[3], -1.0, 1.0, &mut rng));
        let before = frozen.value();
        let mut opt = Adam::new(vec![frozen.clone(), live.clone()], 0.5);
        for _ in 0..10 {
            frozen.accumulate_grad(&Tensor::ones(&[3]));
            live.accumulate_grad(&Tensor::ones(&[3]));
            opt.step();
        }
        prop_assert!(metalora_tensor::approx_eq(&before, &frozen.value(), 0.0));
        prop_assert!(!metalora_tensor::approx_eq(&before, &live.value(), 1e-6));
    }
}
