//! Sliding-window primitives behind the live metrics registry: the
//! pluggable telemetry clock, a ring-of-buckets windowed histogram, and
//! an exponentially-weighted moving-average rate.
//!
//! ## Clock determinism contract
//!
//! Everything time-based in [`crate::registry`] / [`crate::slo`] reads
//! [`now_ns`], which has two modes:
//!
//! * [`ClockMode::Monotonic`] (production default) — nanoseconds since
//!   the shared process epoch ([`crate::trace::now_ns`]), so registry
//!   timestamps line up with trace-event timestamps.
//! * [`ClockMode::Logical`] (tests, benches, `regress` baselines) — a
//!   process-global counter that advances by [`LOGICAL_TICK_NS`] on
//!   **every read**. Telemetry only ever reads the clock from
//!   sequentially-executed code (the engine's per-batch loop, the
//!   batcher, snapshotting) and never from the parallel kernel workers,
//!   so under the logical clock the read sequence — and therefore every
//!   recorded latency, window bucket, and exported snapshot — is
//!   bit-identical across runs *and* across `METALORA_THREADS`
//!   settings. That is what lets golden tests, the serve bench, and the
//!   regress gate compare telemetry exactly.
//!
//! [`WindowHistogram`] keeps a ring of [`LogHistogram`] buckets, each
//! covering `window / buckets` of time; recording lazily reclaims buckets
//! whose epoch has rotated out, and a query merges the still-live buckets
//! via [`LogHistogram::merge_from`]. [`Ewma`] is an event-driven rate
//! estimate decayed by wall (or logical) time between observations.

use crate::hist::LogHistogram;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Amount the logical clock advances per [`now_ns`] read: 1 µs.
pub const LOGICAL_TICK_NS: u64 = 1_000;

/// Source feeding [`now_ns`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockMode {
    /// Nanoseconds since the process epoch (shared with `obs::trace`).
    Monotonic,
    /// Deterministic counter advancing [`LOGICAL_TICK_NS`] per read.
    Logical,
}

const MODE_MONOTONIC: u8 = 0;
const MODE_LOGICAL: u8 = 1;

static CLOCK_MODE: AtomicU8 = AtomicU8::new(MODE_MONOTONIC);
static LOGICAL_NOW: AtomicU64 = AtomicU64::new(0);

/// Current clock mode.
pub fn clock_mode() -> ClockMode {
    match CLOCK_MODE.load(Ordering::Relaxed) {
        MODE_LOGICAL => ClockMode::Logical,
        _ => ClockMode::Monotonic,
    }
}

/// Short label for reports/exports: `"monotonic"` or `"logical"`.
pub fn clock_label() -> &'static str {
    match clock_mode() {
        ClockMode::Monotonic => "monotonic",
        ClockMode::Logical => "logical",
    }
}

/// Selects the clock source. Switching to [`ClockMode::Logical`] also
/// rewinds the logical counter to zero so a run always starts from a
/// known origin.
pub fn set_clock(mode: ClockMode) {
    if mode == ClockMode::Logical {
        LOGICAL_NOW.store(0, Ordering::Relaxed);
    }
    CLOCK_MODE.store(
        match mode {
            ClockMode::Monotonic => MODE_MONOTONIC,
            ClockMode::Logical => MODE_LOGICAL,
        },
        Ordering::Relaxed,
    );
}

/// Rewinds the logical counter to zero (no-op for the monotonic clock).
/// Benches call this before each sweep point so repeated runs replay the
/// exact same timestamp sequence.
pub fn reset_logical() {
    LOGICAL_NOW.store(0, Ordering::Relaxed);
}

/// Current telemetry time in nanoseconds. In logical mode every call
/// advances time by [`LOGICAL_TICK_NS`] and returns the *new* value, so
/// two consecutive reads always differ by exactly one tick.
pub fn now_ns() -> u64 {
    match clock_mode() {
        ClockMode::Monotonic => crate::trace::now_ns(),
        ClockMode::Logical => {
            LOGICAL_NOW.fetch_add(LOGICAL_TICK_NS, Ordering::Relaxed) + LOGICAL_TICK_NS
        }
    }
}

/// Number of ring buckets a [`WindowHistogram`] carries.
pub const WINDOW_BUCKETS: usize = 8;

struct Bucket {
    /// `now_ns / bucket_ns` when this bucket was last (re)started;
    /// `u64::MAX` marks never-used.
    epoch: u64,
    hist: LogHistogram,
}

/// A sliding-window histogram: a ring of [`WINDOW_BUCKETS`] log-linear
/// histograms, each covering `window_ns / WINDOW_BUCKETS`. Samples older
/// than the window age out bucket-at-a-time (coarsest granularity one
/// bucket), which bounds memory at `WINDOW_BUCKETS` histograms while
/// giving true windowed quantiles rather than since-start aggregates.
pub struct WindowHistogram {
    bucket_ns: u64,
    buckets: Vec<Bucket>,
}

impl WindowHistogram {
    /// A window covering `window_ns` of clock time.
    pub fn new(window_ns: u64) -> Self {
        let bucket_ns = (window_ns / WINDOW_BUCKETS as u64).max(1);
        WindowHistogram {
            bucket_ns,
            buckets: (0..WINDOW_BUCKETS)
                .map(|_| Bucket {
                    epoch: u64::MAX,
                    hist: LogHistogram::new(),
                })
                .collect(),
        }
    }

    fn epoch_of(&self, now_ns: u64) -> u64 {
        now_ns / self.bucket_ns
    }

    /// Records `value` at time `now_ns`, reclaiming the target ring slot
    /// first if its resident bucket has rotated out.
    pub fn record(&mut self, now_ns: u64, value: u64) {
        let epoch = self.epoch_of(now_ns);
        let slot = (epoch % WINDOW_BUCKETS as u64) as usize;
        let b = &mut self.buckets[slot];
        if b.epoch != epoch {
            b.epoch = epoch;
            b.hist = LogHistogram::new();
        }
        b.hist.record(value);
    }

    /// Merges the buckets still inside the window ending at `now_ns` into
    /// one histogram. A bucket is live while its epoch is within
    /// [`WINDOW_BUCKETS`] of the current epoch.
    pub fn merged(&self, now_ns: u64) -> LogHistogram {
        let current = self.epoch_of(now_ns);
        let mut out = LogHistogram::new();
        for b in &self.buckets {
            if b.epoch != u64::MAX && b.epoch + WINDOW_BUCKETS as u64 > current {
                out.merge_from(&b.hist);
            }
        }
        out
    }

    /// Samples inside the window ending at `now_ns`.
    pub fn count(&self, now_ns: u64) -> u64 {
        let current = self.epoch_of(now_ns);
        self.buckets
            .iter()
            .filter(|b| b.epoch != u64::MAX && b.epoch + WINDOW_BUCKETS as u64 > current)
            .map(|b| b.hist.count())
            .sum()
    }
}

/// Event-driven exponentially-weighted moving-average rate (events per
/// second). Each observation decays the previous estimate by
/// `exp(-dt / tau)` and blends in the instantaneous rate `n / dt`.
pub struct Ewma {
    tau_ns: f64,
    rate_per_s: f64,
    last_ns: Option<u64>,
}

impl Ewma {
    /// An estimator with time constant `tau_ns`.
    pub fn new(tau_ns: u64) -> Self {
        Ewma {
            tau_ns: tau_ns.max(1) as f64,
            rate_per_s: 0.0,
            last_ns: None,
        }
    }

    /// Folds `n` events observed at `now_ns` into the rate.
    pub fn observe(&mut self, now_ns: u64, n: u64) {
        match self.last_ns {
            None => {
                // First observation: no elapsed interval yet, so seed the
                // estimate as if the events arrived over one tau.
                self.rate_per_s = n as f64 / (self.tau_ns / 1e9);
                self.last_ns = Some(now_ns);
            }
            Some(last) => {
                let dt_ns = now_ns.saturating_sub(last).max(1) as f64;
                let alpha = (-dt_ns / self.tau_ns).exp();
                let inst = n as f64 / (dt_ns / 1e9);
                self.rate_per_s = alpha * self.rate_per_s + (1.0 - alpha) * inst;
                self.last_ns = Some(now_ns);
            }
        }
    }

    /// Current estimate, decayed for the idle gap up to `now_ns`.
    pub fn rate_per_s(&self, now_ns: u64) -> f64 {
        match self.last_ns {
            None => 0.0,
            Some(last) => {
                let dt_ns = now_ns.saturating_sub(last) as f64;
                self.rate_per_s * (-dt_ns / self.tau_ns).exp()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_ticks_per_read_and_resets() {
        let _g = crate::tests::lock();
        set_clock(ClockMode::Logical);
        let a = now_ns();
        let b = now_ns();
        assert_eq!(a, LOGICAL_TICK_NS);
        assert_eq!(b - a, LOGICAL_TICK_NS);
        reset_logical();
        assert_eq!(now_ns(), LOGICAL_TICK_NS);
        set_clock(ClockMode::Monotonic);
        assert_eq!(clock_label(), "monotonic");
    }

    #[test]
    fn monotonic_clock_is_nondecreasing() {
        let _g = crate::tests::lock();
        set_clock(ClockMode::Monotonic);
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn window_keeps_recent_and_expires_old() {
        let w_ns = 8_000; // bucket_ns = 1000
        let mut w = WindowHistogram::new(w_ns);
        w.record(500, 10); // epoch 0
        w.record(1_500, 20); // epoch 1
        assert_eq!(w.count(1_600), 2);
        let m = w.merged(1_600);
        assert_eq!(m.quantile(0.0), 10);
        assert_eq!(m.quantile(1.0), 20);
        // Advance past the window: epoch 0 ages out first, then epoch 1.
        assert_eq!(w.count(8_500), 1, "epoch 0 should have aged out");
        assert_eq!(w.merged(8_500).quantile(1.0), 20);
        assert_eq!(w.count(9_500), 0, "epoch 1 should have aged out");
        // Recording into a reclaimed slot clears the stale bucket.
        w.record(8_500, 30); // epoch 8 reuses epoch-0's slot
        assert_eq!(w.count(8_600), 2);
    }

    #[test]
    fn window_merged_matches_plain_histogram_inside_window() {
        let mut w = WindowHistogram::new(1 << 30);
        let mut h = LogHistogram::new();
        for (i, v) in (1..=200u64).enumerate() {
            w.record(i as u64 * 1_000, v);
            h.record(v);
        }
        let m = w.merged(200_000);
        assert_eq!(m.count(), h.count());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(m.quantile(q), h.quantile(q));
        }
    }

    #[test]
    fn ewma_converges_to_steady_rate_and_decays_when_idle() {
        let tau = 1_000_000_000u64; // 1 s
        let mut e = Ewma::new(tau);
        // 1 event per millisecond → 1000 events/s steady state.
        for i in 1..=20_000u64 {
            e.observe(i * 1_000_000, 1);
        }
        let now = 20_000 * 1_000_000;
        let r = e.rate_per_s(now);
        assert!((r - 1000.0).abs() < 50.0, "steady rate {r}");
        // After 5 tau of silence the estimate decays below 1% of steady.
        let later = now + 5 * tau;
        assert!(e.rate_per_s(later) < 0.01 * r);
    }
}
