//! Structured run reports: `RUNLOG_<name>.json` plus a summary table.
//!
//! [`RunReport::capture`] snapshots the three collectors (spans, counters,
//! metrics) into one value that can be serialised ([`RunReport::to_json`],
//! [`RunReport::write`]) or rendered for humans
//! ([`RunReport::summary_table`]).
//!
//! ## Schema (`schema_version` 2)
//!
//! ```json
//! {
//!   "schema_version": 2,
//!   "name": "table1",
//!   "spans":   [ {"path": "pretrain", "count": 2, "total_ms": 813.4} ],
//!   "kernels": [ {"kernel": "matmul", "calls": 10, "flops": 123, "bytes_moved": 456} ],
//!   "dispatch": {"parallel": 3, "serial": 7},
//!   "memory":  {"peak_tensor_bytes": 8192, "tensor_bytes_alive": 0},
//!   "workspace": {"hits": 12, "misses": 3, "bytes_reused": 4096,
//!                 "pooled_bytes": 1024, "peak_pooled_bytes": 2048},
//!   "epochs":  [ {"phase": "pretrain", "epoch": 0, "loss": 2.1,
//!                 "accuracy": 0.14, "grad_norm": 0.9, "wall_s": 0.4} ]
//! }
//! ```

use crate::counters::{self, CounterSnapshot};
use crate::json;
use crate::metrics::{self, EpochRecord};
use crate::span::{self, SpanStat};
use std::path::{Path, PathBuf};

/// Version stamp written into every run log (2 added the `workspace`
/// arena counters).
pub const SCHEMA_VERSION: u32 = 2;

/// A captured snapshot of everything the instrumentation recorded.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Report name; also names the output file (`RUNLOG_<name>.json`).
    pub name: String,
    /// Aggregated spans, sorted by path.
    pub spans: Vec<(String, SpanStat)>,
    /// Kernel / dispatch / memory counters.
    pub counters: CounterSnapshot,
    /// Training epoch records in insertion order.
    pub epochs: Vec<EpochRecord>,
}

impl RunReport {
    /// Snapshots the current global instrumentation state under `name`.
    pub fn capture(name: &str) -> RunReport {
        RunReport {
            name: name.to_string(),
            spans: span::snapshot(),
            counters: counters::snapshot(),
            epochs: metrics::snapshot(),
        }
    }

    /// Serialises the report (see the module docs for the schema).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        s.push_str(&format!("  \"name\": {},\n", json::string(&self.name)));

        s.push_str("  \"spans\": [\n");
        for (i, (path, stat)) in self.spans.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"path\": {}, \"count\": {}, \"total_ms\": {}}}{}\n",
                json::string(path),
                stat.count,
                json::num(stat.total_ns as f64 / 1e6),
                comma(i, self.spans.len())
            ));
        }
        s.push_str("  ],\n");

        s.push_str("  \"kernels\": [\n");
        for (i, k) in self.counters.kernels.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"kernel\": {}, \"calls\": {}, \"flops\": {}, \"bytes_moved\": {}}}{}\n",
                json::string(k.kernel),
                k.calls,
                k.flops,
                k.bytes_moved,
                comma(i, self.counters.kernels.len())
            ));
        }
        s.push_str("  ],\n");

        s.push_str(&format!(
            "  \"dispatch\": {{\"parallel\": {}, \"serial\": {}}},\n",
            self.counters.dispatch_parallel, self.counters.dispatch_serial
        ));
        s.push_str(&format!(
            "  \"memory\": {{\"peak_tensor_bytes\": {}, \"tensor_bytes_alive\": {}}},\n",
            self.counters.peak_tensor_bytes, self.counters.tensor_bytes_alive
        ));
        s.push_str(&format!(
            "  \"workspace\": {{\"hits\": {}, \"misses\": {}, \"bytes_reused\": {}, \
             \"pooled_bytes\": {}, \"peak_pooled_bytes\": {}}},\n",
            self.counters.workspace_hits,
            self.counters.workspace_misses,
            self.counters.workspace_bytes_reused,
            self.counters.workspace_pooled_bytes,
            self.counters.peak_workspace_pooled_bytes
        ));

        s.push_str("  \"epochs\": [\n");
        for (i, e) in self.epochs.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"phase\": {}, \"epoch\": {}, \"loss\": {}, \"accuracy\": {}, \
                 \"grad_norm\": {}, \"wall_s\": {}}}{}\n",
                json::string(&e.phase),
                e.epoch,
                json::num(e.loss),
                json::num(e.accuracy),
                json::num(e.grad_norm),
                json::num(e.wall_s),
                comma(i, self.epochs.len())
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// The output file name: `RUNLOG_<name>.json` with the name sanitised
    /// to `[A-Za-z0-9._-]`.
    pub fn file_name(&self) -> String {
        let safe: String = self
            .name
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("RUNLOG_{safe}.json")
    }

    /// Writes the JSON report into `dir` and returns the full path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes the JSON report into the current directory.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        self.write_to(Path::new("."))
    }

    /// Renders the human-readable summary: spans, kernel counters,
    /// dispatch/memory lines and the epoch metrics.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== run report: {} ===\n", self.name));

        if !self.spans.is_empty() {
            let rows: Vec<Vec<String>> = self
                .spans
                .iter()
                .map(|(path, stat)| {
                    vec![
                        path.clone(),
                        stat.count.to_string(),
                        format!("{:.2}", stat.total_ns as f64 / 1e6),
                        format!("{:.2}", stat.total_ns as f64 / 1e6 / stat.count.max(1) as f64),
                    ]
                })
                .collect();
            out.push_str(&table(&["span", "count", "total ms", "mean ms"], &rows));
        }

        let active: Vec<_> = self
            .counters
            .kernels
            .iter()
            .filter(|k| k.calls > 0)
            .collect();
        if !active.is_empty() {
            let rows: Vec<Vec<String>> = active
                .iter()
                .map(|k| {
                    vec![
                        k.kernel.to_string(),
                        k.calls.to_string(),
                        format!("{:.3e}", k.flops as f64),
                        format!("{:.3e}", k.bytes_moved as f64),
                    ]
                })
                .collect();
            out.push_str(&table(&["kernel", "calls", "flops", "bytes moved"], &rows));
        }

        out.push_str(&format!(
            "dispatch: {} parallel / {} serial   peak tensor bytes: {}\n",
            self.counters.dispatch_parallel,
            self.counters.dispatch_serial,
            self.counters.peak_tensor_bytes
        ));

        let ws_checkouts = self.counters.workspace_hits + self.counters.workspace_misses;
        if ws_checkouts > 0 {
            out.push_str(&format!(
                "workspace: {} hits / {} misses ({:.1}% hit rate)   bytes reused: {}   peak pooled: {}\n",
                self.counters.workspace_hits,
                self.counters.workspace_misses,
                100.0 * self.counters.workspace_hits as f64 / ws_checkouts as f64,
                self.counters.workspace_bytes_reused,
                self.counters.peak_workspace_pooled_bytes
            ));
        }

        if !self.epochs.is_empty() {
            let rows: Vec<Vec<String>> = self
                .epochs
                .iter()
                .map(|e| {
                    vec![
                        e.phase.clone(),
                        e.epoch.to_string(),
                        format!("{:.4}", e.loss),
                        format!("{:.4}", e.accuracy),
                        if e.grad_norm.is_finite() {
                            format!("{:.4}", e.grad_norm)
                        } else {
                            "-".to_string()
                        },
                        format!("{:.3}", e.wall_s),
                    ]
                })
                .collect();
            out.push_str(&table(
                &["phase", "epoch", "loss", "accuracy", "grad norm", "wall s"],
                &rows,
            ));
        }
        out
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// Column-aligned plain-text table (local twin of `metalora::report::
/// render_table`, which lives above this crate in the dependency order).
fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (c, cell) in cells.iter().enumerate().take(cols) {
            if c > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}", w = widths[c]));
        }
        line.trim_end().to_string()
    };
    let header: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Kernel;
    use crate::tests::lock;

    fn populate() {
        {
            let _outer = crate::span!("pretrain");
            let _inner = crate::span!("epoch0");
        }
        counters::record_kernel(Kernel::Matmul, 2000, 96);
        counters::record_dispatch(false);
        counters::track_alloc(4096);
        metrics::record_epoch("pretrain", 1.25, 0.5, 0.75, 0.01);
    }

    #[test]
    fn capture_and_json_roundtrip_structure() {
        let _g = lock();
        populate();
        let report = RunReport::capture("unit test");
        assert_eq!(report.file_name(), "RUNLOG_unit_test.json");
        let js = report.to_json();
        assert!(js.contains("\"schema_version\": 2"));
        assert!(js.contains("\"workspace\": {\"hits\": "));
        assert!(js.contains("\"path\": \"pretrain/epoch0\""));
        assert!(js.contains("\"kernel\": \"matmul\", \"calls\": 1, \"flops\": 2000"));
        assert!(js.contains("\"dispatch\": {\"parallel\": 0, \"serial\": 1}"));
        assert!(js.contains("\"peak_tensor_bytes\": 4096"));
        assert!(js.contains("\"phase\": \"pretrain\", \"epoch\": 0, \"loss\": 1.25"));
        // Braces/brackets balance — cheap structural sanity without a parser.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                js.matches(open).count(),
                js.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn nan_grad_norm_serialises_as_null() {
        let _g = lock();
        metrics::record_epoch("p", 1.0, 0.5, f64::NAN, 0.1);
        let js = RunReport::capture("n").to_json();
        assert!(js.contains("\"grad_norm\": null"));
    }

    #[test]
    fn write_creates_runlog_file() {
        let _g = lock();
        populate();
        let dir = std::env::temp_dir();
        let path = RunReport::capture("write-test").write_to(&dir).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"name\": \"write-test\""));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn summary_table_lists_sections() {
        let _g = lock();
        populate();
        let text = RunReport::capture("summary").summary_table();
        assert!(text.contains("span"));
        assert!(text.contains("pretrain/epoch0"));
        assert!(text.contains("matmul"));
        assert!(text.contains("dispatch: 0 parallel / 1 serial"));
        assert!(text.contains("peak tensor bytes: 4096"));
        assert!(text.contains("0.5000")); // accuracy column
    }

    #[test]
    fn empty_report_renders() {
        let _g = lock();
        let report = RunReport::capture("empty");
        assert!(report.to_json().contains("\"spans\": [\n  ]"));
        assert!(report.summary_table().contains("dispatch: 0 parallel / 0 serial"));
    }
}
