//! Structured run reports: `RUNLOG_<name>.json` plus a summary table.
//!
//! [`RunReport::capture`] snapshots the five collectors (spans, counters,
//! metrics, health, trace) into one value that can be serialised
//! ([`RunReport::to_json`], [`RunReport::write`]) or rendered for humans
//! ([`RunReport::summary_table`]).
//!
//! ## Schema (`schema_version` 8)
//!
//! ```json
//! {
//!   "schema_version": 8,
//!   "name": "table1",
//!   "spans":   [ {"path": "pretrain", "count": 2, "total_ms": 813.4,
//!                 "p50_ms": 400.1, "p95_ms": 413.0, "p99_ms": 413.0} ],
//!   "kernels": [ {"kernel": "matmul", "calls": 10, "flops": 123, "bytes_moved": 456} ],
//!   "dispatch": {"parallel": 3, "serial": 7,
//!                "matmul_packed": 5, "matmul_legacy": 5},
//!   "tile_grid": {"claims": 40, "bpacks": 5, "steals": 2,
//!                 "claims_per_slot": [30, 10]},
//!   "memory":  {"peak_tensor_bytes": 8192, "tensor_bytes_alive": 0},
//!   "workspace": {"hits": 12, "misses": 3, "bytes_reused": 4096,
//!                 "pooled_bytes": 1024, "peak_pooled_bytes": 2048},
//!   "serve":   {"requests": 64, "batches": 4, "seed_rows": 40,
//!               "cache_hits": 50, "cache_misses": 14,
//!               "cache_evictions": 6, "merges": 14},
//!   "bf16":    {"snapshots": 14, "actual_bytes": 2048,
//!               "f32_equiv_bytes": 4096, "bytes_saved": 2048},
//!   "fusion":  {"fused_epilogues": 9, "fused_elems": 4096,
//!               "output_passes": 0, "plans_built": 2,
//!               "plan_leases": 12, "plan_lease_bytes": 16384},
//!   "telemetry": {"metrics_enabled": true, "clock": "monotonic",
//!                 "series": 30, "windows": 12, "attributions": 2,
//!                 "attributions_dropped": 0, "slo_tenants": 12,
//!                 "slo_target_ms": 50, "requests": 96, "tail_samples": 2},
//!   "health":  [ {"phase": "adapt/MetaLoraCp", "group": "mapping", "step": 0,
//!                 "grad_norm": 0.42, "update_ratio": 0.001,
//!                 "weight_norm": 3.1, "nan_count": 0, "inf_count": 0} ],
//!   "trace":   {"events": 128, "dropped": 0},
//!   "epochs":  [ {"phase": "pretrain", "epoch": 0, "loss": 2.1,
//!                 "accuracy": 0.14, "grad_norm": 0.9, "wall_s": 0.4} ]
//! }
//! ```
//!
//! Version history: 2 added the `workspace` arena counters; 3 added span
//! duration quantiles, the packed-vs-legacy matmul tally, the `health`
//! record array and the `trace` buffer stats; 4 added the `tile_grid`
//! scheduler tallies (C-tile claims overall and per worker slot, B-panel
//! pack passes, out-of-sequence "steal" claims); 5 added the `serve`
//! object (serving-engine request/batch totals, amortised seed rows, and
//! merged-weight cache hit/miss/eviction/merge counts); 6 added the
//! `bf16` object (storage snapshots taken, their actual bytes vs the f32
//! equivalent, and the derived bytes saved); 7 added the `fusion` object
//! (fused GEMM epilogues applied and their element counts, separate
//! epilogue output passes taken, static plans built, and plan-leased
//! workspace buffers/bytes); 8 added the `telemetry` object (live
//! metrics registry stats — labeled series and windowed families, tail
//! attribution samples — plus the SLO tenant count and target, the
//! telemetry clock mode, and the process-wide telemetry request/tail
//! counters).

use crate::counters::{self, CounterSnapshot};
use crate::health::{self, HealthRecord};
use crate::json;
use crate::metrics::{self, EpochRecord};
use crate::span::{self, SpanSummary};
use crate::trace;
use std::path::{Path, PathBuf};

/// Version stamp written into every run log (see the module docs for the
/// version history).
pub const SCHEMA_VERSION: u32 = 8;

/// Live-telemetry capsule captured into the report's `telemetry` object.
#[derive(Debug, Clone)]
pub struct TelemetryInfo {
    /// Whether the metrics registry was recording at capture time.
    pub metrics_enabled: bool,
    /// Telemetry clock mode label (`"monotonic"` or `"logical"`).
    pub clock: &'static str,
    /// Distinct `(name, label)` series in the registry.
    pub series: u64,
    /// How many of those are windowed families.
    pub windows: u64,
    /// Retained tail-latency attribution samples.
    pub attributions: u64,
    /// Tail samples evicted from the bounded ring.
    pub attributions_dropped: u64,
    /// Tenants with SLO accounting.
    pub slo_tenants: u64,
    /// The per-tenant p99 target in milliseconds.
    pub slo_target_ms: f64,
}

/// A captured snapshot of everything the instrumentation recorded.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Report name; also names the output file (`RUNLOG_<name>.json`).
    pub name: String,
    /// Aggregated spans with duration quantiles, sorted by path.
    pub spans: Vec<SpanSummary>,
    /// Kernel / dispatch / memory counters.
    pub counters: CounterSnapshot,
    /// Training-health records in insertion order.
    pub health: Vec<HealthRecord>,
    /// Trace events currently buffered.
    pub trace_events: u64,
    /// Trace events overwritten by the ring buffer.
    pub trace_dropped: u64,
    /// Live-telemetry registry/SLO stats.
    pub telemetry: TelemetryInfo,
    /// Training epoch records in insertion order.
    pub epochs: Vec<EpochRecord>,
}

impl RunReport {
    /// Snapshots the current global instrumentation state under `name`.
    pub fn capture(name: &str) -> RunReport {
        let (trace_events, trace_dropped) = {
            let (events, dropped) = trace::snapshot();
            (events.len() as u64, dropped)
        };
        let reg = crate::registry::summary();
        let telemetry = TelemetryInfo {
            metrics_enabled: crate::registry::enabled(),
            clock: crate::window::clock_label(),
            series: reg.series,
            windows: reg.windows,
            attributions: reg.attributions,
            attributions_dropped: reg.attributions_dropped,
            // Evaluated at t=0: every recorded bucket is in the future of
            // the window's start, so this counts all accounted tenants.
            slo_tenants: crate::slo::snapshot_at(0).len() as u64,
            slo_target_ms: crate::slo::target_ms(),
        };
        RunReport {
            name: name.to_string(),
            spans: span::snapshot_summary(),
            counters: counters::snapshot(),
            health: health::snapshot(),
            trace_events,
            trace_dropped,
            telemetry,
            epochs: metrics::snapshot(),
        }
    }

    /// Serialises the report (see the module docs for the schema).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        s.push_str(&format!("  \"name\": {},\n", json::string(&self.name)));

        s.push_str("  \"spans\": [\n");
        for (i, sp) in self.spans.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"path\": {}, \"count\": {}, \"total_ms\": {}, \
                 \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}}}{}\n",
                json::string(&sp.path),
                sp.stat.count,
                json::num(sp.stat.total_ns as f64 / 1e6),
                json::num(sp.p50_ns as f64 / 1e6),
                json::num(sp.p95_ns as f64 / 1e6),
                json::num(sp.p99_ns as f64 / 1e6),
                comma(i, self.spans.len())
            ));
        }
        s.push_str("  ],\n");

        s.push_str("  \"kernels\": [\n");
        for (i, k) in self.counters.kernels.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"kernel\": {}, \"calls\": {}, \"flops\": {}, \"bytes_moved\": {}}}{}\n",
                json::string(k.kernel),
                k.calls,
                k.flops,
                k.bytes_moved,
                comma(i, self.counters.kernels.len())
            ));
        }
        s.push_str("  ],\n");

        s.push_str(&format!(
            "  \"dispatch\": {{\"parallel\": {}, \"serial\": {}, \
             \"matmul_packed\": {}, \"matmul_legacy\": {}}},\n",
            self.counters.dispatch_parallel,
            self.counters.dispatch_serial,
            self.counters.matmul_packed,
            self.counters.matmul_legacy
        ));
        let slots: Vec<String> = self
            .counters
            .tile_claims_per_slot
            .iter()
            .map(|c| c.to_string())
            .collect();
        s.push_str(&format!(
            "  \"tile_grid\": {{\"claims\": {}, \"bpacks\": {}, \"steals\": {}, \
             \"claims_per_slot\": [{}]}},\n",
            self.counters.tile_claims,
            self.counters.tile_bpacks,
            self.counters.tile_steals,
            slots.join(", ")
        ));
        s.push_str(&format!(
            "  \"memory\": {{\"peak_tensor_bytes\": {}, \"tensor_bytes_alive\": {}}},\n",
            self.counters.peak_tensor_bytes, self.counters.tensor_bytes_alive
        ));
        s.push_str(&format!(
            "  \"workspace\": {{\"hits\": {}, \"misses\": {}, \"bytes_reused\": {}, \
             \"pooled_bytes\": {}, \"peak_pooled_bytes\": {}}},\n",
            self.counters.workspace_hits,
            self.counters.workspace_misses,
            self.counters.workspace_bytes_reused,
            self.counters.workspace_pooled_bytes,
            self.counters.peak_workspace_pooled_bytes
        ));
        s.push_str(&format!(
            "  \"serve\": {{\"requests\": {}, \"batches\": {}, \"seed_rows\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_evictions\": {}, \
             \"merges\": {}}},\n",
            self.counters.serve_requests,
            self.counters.serve_batches,
            self.counters.serve_seed_rows,
            self.counters.serve_cache_hits,
            self.counters.serve_cache_misses,
            self.counters.serve_cache_evictions,
            self.counters.serve_merges
        ));
        s.push_str(&format!(
            "  \"bf16\": {{\"snapshots\": {}, \"actual_bytes\": {}, \
             \"f32_equiv_bytes\": {}, \"bytes_saved\": {}}},\n",
            self.counters.bf16_snapshots,
            self.counters.bf16_actual_bytes,
            self.counters.bf16_f32_equiv_bytes,
            self.counters.bf16_f32_equiv_bytes - self.counters.bf16_actual_bytes
        ));
        s.push_str(&format!(
            "  \"fusion\": {{\"fused_epilogues\": {}, \"fused_elems\": {}, \
             \"output_passes\": {}, \"plans_built\": {}, \"plan_leases\": {}, \
             \"plan_lease_bytes\": {}}},\n",
            self.counters.fused_epilogues,
            self.counters.fused_elems,
            self.counters.output_passes,
            self.counters.plans_built,
            self.counters.plan_leases,
            self.counters.plan_lease_bytes
        ));
        s.push_str(&format!(
            "  \"telemetry\": {{\"metrics_enabled\": {}, \"clock\": {}, \
             \"series\": {}, \"windows\": {}, \"attributions\": {}, \
             \"attributions_dropped\": {}, \"slo_tenants\": {}, \
             \"slo_target_ms\": {}, \"requests\": {}, \"tail_samples\": {}}},\n",
            self.telemetry.metrics_enabled,
            json::string(self.telemetry.clock),
            self.telemetry.series,
            self.telemetry.windows,
            self.telemetry.attributions,
            self.telemetry.attributions_dropped,
            self.telemetry.slo_tenants,
            json::num(self.telemetry.slo_target_ms),
            self.counters.telemetry_requests,
            self.counters.tail_attributions
        ));

        s.push_str("  \"health\": [\n");
        for (i, h) in self.health.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"phase\": {}, \"group\": {}, \"step\": {}, \"grad_norm\": {}, \
                 \"update_ratio\": {}, \"weight_norm\": {}, \"nan_count\": {}, \
                 \"inf_count\": {}}}{}\n",
                json::string(&h.phase),
                json::string(&h.group),
                h.step,
                json::num(h.grad_norm),
                json::num(h.update_ratio),
                json::num(h.weight_norm),
                h.nan_count,
                h.inf_count,
                comma(i, self.health.len())
            ));
        }
        s.push_str("  ],\n");

        s.push_str(&format!(
            "  \"trace\": {{\"events\": {}, \"dropped\": {}}},\n",
            self.trace_events, self.trace_dropped
        ));

        s.push_str("  \"epochs\": [\n");
        for (i, e) in self.epochs.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"phase\": {}, \"epoch\": {}, \"loss\": {}, \"accuracy\": {}, \
                 \"grad_norm\": {}, \"wall_s\": {}}}{}\n",
                json::string(&e.phase),
                e.epoch,
                json::num(e.loss),
                json::num(e.accuracy),
                json::num(e.grad_norm),
                json::num(e.wall_s),
                comma(i, self.epochs.len())
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// The output file name: `RUNLOG_<name>.json` with the name sanitised
    /// to `[A-Za-z0-9._-]`.
    pub fn file_name(&self) -> String {
        format!("RUNLOG_{}.json", crate::sanitise_name(&self.name))
    }

    /// Writes the JSON report into `dir` (created if absent) and returns
    /// the full path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Writes the JSON report into [`crate::out_dir`] (the
    /// `METALORA_OBS_DIR` override, else the current directory).
    pub fn write(&self) -> std::io::Result<PathBuf> {
        self.write_to(&crate::out_dir())
    }

    /// Renders the human-readable summary: spans, kernel counters,
    /// dispatch/memory lines, health capsule and the epoch metrics.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== run report: {} ===\n", self.name));

        if !self.spans.is_empty() {
            let rows: Vec<Vec<String>> = self
                .spans
                .iter()
                .map(|sp| {
                    vec![
                        sp.path.clone(),
                        sp.stat.count.to_string(),
                        format!("{:.2}", sp.stat.total_ns as f64 / 1e6),
                        format!("{:.2}", sp.p50_ns as f64 / 1e6),
                        format!("{:.2}", sp.p95_ns as f64 / 1e6),
                        format!("{:.2}", sp.p99_ns as f64 / 1e6),
                    ]
                })
                .collect();
            out.push_str(&table(
                &["span", "count", "total ms", "p50 ms", "p95 ms", "p99 ms"],
                &rows,
            ));
        }

        let active: Vec<_> = self
            .counters
            .kernels
            .iter()
            .filter(|k| k.calls > 0)
            .collect();
        if !active.is_empty() {
            let rows: Vec<Vec<String>> = active
                .iter()
                .map(|k| {
                    vec![
                        k.kernel.to_string(),
                        k.calls.to_string(),
                        format!("{:.3e}", k.flops as f64),
                        format!("{:.3e}", k.bytes_moved as f64),
                    ]
                })
                .collect();
            out.push_str(&table(&["kernel", "calls", "flops", "bytes moved"], &rows));
        }

        out.push_str(&format!(
            "dispatch: {} parallel / {} serial   peak tensor bytes: {}\n",
            self.counters.dispatch_parallel,
            self.counters.dispatch_serial,
            self.counters.peak_tensor_bytes
        ));

        let mm_total = self.counters.matmul_packed + self.counters.matmul_legacy;
        if mm_total > 0 {
            out.push_str(&format!(
                "matmul path: {} packed / {} legacy ({:.1}% packed)\n",
                self.counters.matmul_packed,
                self.counters.matmul_legacy,
                100.0 * self.counters.matmul_packed as f64 / mm_total as f64
            ));
        }

        if self.counters.tile_claims > 0 {
            let slots: Vec<String> = self
                .counters
                .tile_claims_per_slot
                .iter()
                .map(|c| c.to_string())
                .collect();
            out.push_str(&format!(
                "tile grid: {} claims / {} B packs / {} steals   per slot: [{}]\n",
                self.counters.tile_claims,
                self.counters.tile_bpacks,
                self.counters.tile_steals,
                slots.join(", ")
            ));
        }

        let ws_checkouts = self.counters.workspace_hits + self.counters.workspace_misses;
        if ws_checkouts > 0 {
            out.push_str(&format!(
                "workspace: {} hits / {} misses ({:.1}% hit rate)   bytes reused: {}   peak pooled: {}\n",
                self.counters.workspace_hits,
                self.counters.workspace_misses,
                100.0 * self.counters.workspace_hits as f64 / ws_checkouts as f64,
                self.counters.workspace_bytes_reused,
                self.counters.peak_workspace_pooled_bytes
            ));
        }

        if self.counters.serve_requests > 0 {
            let lookups = self.counters.serve_cache_hits + self.counters.serve_cache_misses;
            let hit_rate = if lookups > 0 {
                100.0 * self.counters.serve_cache_hits as f64 / lookups as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "serve: {} requests in {} batches   seed rows: {}   \
                 cache: {} hits / {} misses ({hit_rate:.1}%)   evictions: {}   merges: {}\n",
                self.counters.serve_requests,
                self.counters.serve_batches,
                self.counters.serve_seed_rows,
                self.counters.serve_cache_hits,
                self.counters.serve_cache_misses,
                self.counters.serve_cache_evictions,
                self.counters.serve_merges
            ));
        }

        if self.counters.bf16_snapshots > 0 {
            let saved = self.counters.bf16_f32_equiv_bytes - self.counters.bf16_actual_bytes;
            out.push_str(&format!(
                "bf16: {} snapshots   {} bytes resident (f32 equivalent {}, saved {})\n",
                self.counters.bf16_snapshots,
                self.counters.bf16_actual_bytes,
                self.counters.bf16_f32_equiv_bytes,
                saved
            ));
        }

        if self.counters.fused_epilogues > 0 || self.counters.output_passes > 0 {
            out.push_str(&format!(
                "fusion: {} fused epilogues ({} elems)   separate output passes: {}\n",
                self.counters.fused_epilogues,
                self.counters.fused_elems,
                self.counters.output_passes
            ));
        }

        if self.counters.plans_built > 0 {
            out.push_str(&format!(
                "plans: {} built   leases: {} buffers / {} bytes\n",
                self.counters.plans_built,
                self.counters.plan_leases,
                self.counters.plan_lease_bytes
            ));
        }

        if self.telemetry.series > 0 || self.counters.telemetry_requests > 0 {
            out.push_str(&format!(
                "telemetry: {} series ({} windows)   requests: {}   \
                 tail samples: {} ({} dropped)   slo: {} tenants @ p99 {:.1} ms   clock: {}\n",
                self.telemetry.series,
                self.telemetry.windows,
                self.counters.telemetry_requests,
                self.counters.tail_attributions,
                self.telemetry.attributions_dropped,
                self.telemetry.slo_tenants,
                self.telemetry.slo_target_ms,
                self.telemetry.clock
            ));
        }

        if !self.health.is_empty() {
            let nan: u64 = self.health.iter().map(|h| h.nan_count).sum();
            let inf: u64 = self.health.iter().map(|h| h.inf_count).sum();
            let groups: std::collections::BTreeSet<&str> =
                self.health.iter().map(|h| h.group.as_str()).collect();
            out.push_str(&format!(
                "health: {} records over {} groups   NaN: {}   Inf: {}\n",
                self.health.len(),
                groups.len(),
                nan,
                inf
            ));
        }

        if self.trace_events > 0 || self.trace_dropped > 0 {
            out.push_str(&format!(
                "trace: {} events buffered ({} dropped)\n",
                self.trace_events, self.trace_dropped
            ));
        }

        if !self.epochs.is_empty() {
            let rows: Vec<Vec<String>> = self
                .epochs
                .iter()
                .map(|e| {
                    vec![
                        e.phase.clone(),
                        e.epoch.to_string(),
                        format!("{:.4}", e.loss),
                        format!("{:.4}", e.accuracy),
                        if e.grad_norm.is_finite() {
                            format!("{:.4}", e.grad_norm)
                        } else {
                            "-".to_string()
                        },
                        format!("{:.3}", e.wall_s),
                    ]
                })
                .collect();
            out.push_str(&table(
                &["phase", "epoch", "loss", "accuracy", "grad norm", "wall s"],
                &rows,
            ));
        }
        out
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// Column-aligned plain-text table (local twin of `metalora::report::
/// render_table`, which lives above this crate in the dependency order).
fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (c, cell) in cells.iter().enumerate().take(cols) {
            if c > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}", w = widths[c]));
        }
        line.trim_end().to_string()
    };
    let header: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::Kernel;
    use crate::tests::lock;

    fn populate() {
        {
            let _outer = crate::span!("pretrain");
            let _inner = crate::span!("epoch0");
        }
        counters::record_kernel(Kernel::Matmul, 2000, 96);
        counters::record_dispatch(false);
        counters::record_matmul_path(true);
        counters::record_tile_grid_bpack();
        counters::record_tile_grid_worker(0, 3, 0);
        counters::record_tile_grid_worker(1, 2, 1);
        counters::track_alloc(4096);
        counters::record_serve_batch(3);
        counters::record_serve_seed_rows(2);
        counters::record_serve_cache(true);
        counters::record_serve_cache(false);
        counters::record_serve_merge();
        counters::record_bf16_snapshot(64);
        counters::record_fused_epilogue(48);
        counters::record_output_pass();
        counters::record_plan_built();
        counters::record_plan_lease(3, 1024);
        health::record("mapping", 0, 0.42, 0.001, 3.1, 0, 0);
        metrics::record_epoch("pretrain", 1.25, 0.5, 0.75, 0.01);
    }

    #[test]
    fn capture_and_json_roundtrip_structure() {
        let _g = lock();
        populate();
        let report = RunReport::capture("unit test");
        assert_eq!(report.file_name(), "RUNLOG_unit_test.json");
        let js = report.to_json();
        assert!(js.contains("\"schema_version\": 8"));
        assert!(js.contains("\"workspace\": {\"hits\": "));
        assert!(js.contains(
            "\"fusion\": {\"fused_epilogues\": 1, \"fused_elems\": 48, \
             \"output_passes\": 1, \"plans_built\": 1, \"plan_leases\": 3, \
             \"plan_lease_bytes\": 1024}"
        ));
        assert!(js.contains(
            "\"serve\": {\"requests\": 3, \"batches\": 1, \"seed_rows\": 2, \
             \"cache_hits\": 1, \"cache_misses\": 1, \"cache_evictions\": 0, \
             \"merges\": 1}"
        ));
        assert!(js.contains(
            "\"bf16\": {\"snapshots\": 1, \"actual_bytes\": 128, \
             \"f32_equiv_bytes\": 256, \"bytes_saved\": 128}"
        ));
        assert!(js.contains("\"path\": \"pretrain/epoch0\""));
        assert!(js.contains("\"p50_ms\": "));
        assert!(js.contains("\"p99_ms\": "));
        assert!(js.contains("\"kernel\": \"matmul\", \"calls\": 1, \"flops\": 2000"));
        assert!(js.contains(
            "\"dispatch\": {\"parallel\": 0, \"serial\": 1, \
             \"matmul_packed\": 1, \"matmul_legacy\": 0}"
        ));
        assert!(js.contains(
            "\"tile_grid\": {\"claims\": 5, \"bpacks\": 1, \"steals\": 1, \
             \"claims_per_slot\": [3, 2]}"
        ));
        assert!(js.contains("\"peak_tensor_bytes\": 4096"));
        assert!(js.contains("\"group\": \"mapping\", \"step\": 0, \"grad_norm\": 0.42"));
        assert!(js.contains("\"trace\": {\"events\": 0, \"dropped\": 0}"));
        assert!(js.contains("\"phase\": \"pretrain\", \"epoch\": 0, \"loss\": 1.25"));
        // Braces/brackets balance — cheap structural sanity without a parser.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                js.matches(open).count(),
                js.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn nan_grad_norm_serialises_as_null() {
        let _g = lock();
        metrics::record_epoch("p", 1.0, 0.5, f64::NAN, 0.1);
        health::record("mapping/seed", 0, f64::NAN, f64::NAN, 2.5, 0, 0);
        health::record("mapping/inf", 1, f64::INFINITY, f64::NEG_INFINITY, 2.5, 0, 3);
        let js = RunReport::capture("n").to_json();
        assert!(js.contains("\"grad_norm\": null"));
        assert!(js.contains("\"update_ratio\": null"));
        // Non-finite sentinels must never leak as bare JSON tokens.
        for bad in ["NaN", "inf,", "inf}", "Infinity"] {
            assert!(!js.contains(bad), "non-finite leaked as {bad:?}:\n{js}");
        }
        // The whole document stays parseable by the vendored parser.
        let v: serde_json::Value = serde_json::from_str(&js).expect("valid JSON");
        assert!(v.field("health").is_ok());
    }

    #[test]
    fn telemetry_object_reflects_registry_and_slo() {
        let _g = lock();
        crate::registry::set_enabled(true);
        crate::slo::set_target_ms(25.0);
        crate::registry::inc("serve_requests_total", "tenant=3", 4);
        crate::registry::observe("serve_request_latency_ns", "tenant=3", 1_000, 900);
        crate::slo::record("3", 1_000, 900);
        crate::slo::record("9", 2_000, 900);
        counters::record_telemetry_request();
        counters::record_telemetry_request();
        counters::record_tail_attribution();
        let report = RunReport::capture("tel");
        let js = report.to_json();
        assert!(js.contains(
            "\"telemetry\": {\"metrics_enabled\": true, \"clock\": \"monotonic\", \
             \"series\": 2, \"windows\": 1, \"attributions\": 0, \
             \"attributions_dropped\": 0, \"slo_tenants\": 2, \
             \"slo_target_ms\": 25, \"requests\": 2, \"tail_samples\": 1}"
        ));
        let text = report.summary_table();
        assert!(text.contains("telemetry: 2 series (1 windows)   requests: 2"));
        assert!(text.contains("slo: 2 tenants @ p99 25.0 ms"));
        crate::slo::set_target_ms(0.0);
        crate::registry::set_enabled(false);
    }

    #[test]
    fn write_creates_runlog_file() {
        let _g = lock();
        populate();
        let dir = std::env::temp_dir();
        let path = RunReport::capture("write-test").write_to(&dir).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"name\": \"write-test\""));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn write_honours_out_dir_override() {
        let _g = lock();
        populate();
        let dir = std::env::temp_dir().join("metalora_report_test");
        crate::set_out_dir(Some(dir.clone()));
        let path = RunReport::capture("dir-test").write().unwrap();
        crate::set_out_dir(None);
        assert_eq!(path.parent().unwrap(), dir);
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn summary_table_lists_sections() {
        let _g = lock();
        populate();
        let text = RunReport::capture("summary").summary_table();
        assert!(text.contains("span"));
        assert!(text.contains("p95 ms"));
        assert!(text.contains("pretrain/epoch0"));
        assert!(text.contains("matmul"));
        assert!(text.contains("dispatch: 0 parallel / 1 serial"));
        assert!(text.contains("matmul path: 1 packed / 0 legacy"));
        assert!(text.contains("tile grid: 5 claims / 1 B packs / 1 steals   per slot: [3, 2]"));
        assert!(text.contains("peak tensor bytes: 4096"));
        assert!(text.contains("serve: 3 requests in 1 batches"));
        assert!(text.contains("cache: 1 hits / 1 misses (50.0%)"));
        assert!(text.contains("bf16: 1 snapshots   128 bytes resident (f32 equivalent 256, saved 128)"));
        assert!(text.contains("fusion: 1 fused epilogues (48 elems)   separate output passes: 1"));
        assert!(text.contains("plans: 1 built   leases: 3 buffers / 1024 bytes"));
        assert!(text.contains("health: 1 records over 1 groups   NaN: 0   Inf: 0"));
        assert!(text.contains("0.5000")); // accuracy column
    }

    #[test]
    fn empty_report_renders() {
        let _g = lock();
        let report = RunReport::capture("empty");
        assert!(report.to_json().contains("\"spans\": [\n  ]"));
        assert!(report.to_json().contains("\"health\": [\n  ]"));
        assert!(report.summary_table().contains("dispatch: 0 parallel / 0 serial"));
    }
}
