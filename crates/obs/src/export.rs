//! Snapshot exporter for the live metrics registry: Prometheus text
//! exposition (`METRICS_<name>.prom`) and an append-only JSONL time
//! series (`METRICS_<name>.jsonl`), both written under [`crate::out_dir`].
//!
//! The JSONL form is one self-contained JSON object per line — a full
//! registry + SLO snapshot stamped with the clock reading — so a run
//! appends a time series that diff/`cmp` cleanly under the logical clock
//! ([`crate::window::ClockMode::Logical`]): two identical bench runs
//! must produce byte-identical files. All floats go through the crate's
//! JSON helpers, so non-finite values serialise as `null`, never as
//! bare `NaN`/`inf` tokens.
//!
//! The Prometheus form follows the text exposition format (one `# TYPE`
//! per metric name, all samples of a name in one contiguous group,
//! label values escaped). [`parse_prometheus`] is a tiny in-repo
//! validator for exactly that grammar; [`write_prometheus_text`] runs
//! every exposition through it before the bytes hit disk, and CI smoke
//! reuses it on the shipped artifact.

use crate::json;
use crate::registry::{MetricValue, RegistrySnapshot, STAGES};
use crate::slo::SloRow;
use crate::{registry, slo};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;

/// Prefix every exported metric name carries.
pub const PROM_PREFIX: &str = "metalora_";

/// Escapes a Prometheus label value (`\` → `\\`, `"` → `\"`, newline →
/// `\n`).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Formats an f64 the way the exposition format expects (`NaN`, `+Inf`,
/// `-Inf` for non-finite values).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

/// Splits a registry label into a Prometheus `key="value"` pair. Labels
/// follow the `key=value` convention at the serve call sites
/// (`tenant=3`, `method=lora`, `size=16`); a label without `=` falls
/// back to the generic key `label`, and an empty label means none.
fn label_pair(label: &str) -> Option<(String, String)> {
    if label.is_empty() {
        return None;
    }
    match label.split_once('=') {
        Some((k, v)) if !k.is_empty() => Some((k.to_string(), escape_label(v))),
        _ => Some(("label".to_string(), escape_label(label))),
    }
}

fn sample_line(name: &str, label: &str, extra: Option<(&str, &str)>, value: String) -> String {
    let mut labels: Vec<String> = Vec::new();
    if let Some((k, v)) = label_pair(label) {
        labels.push(format!("{k}=\"{v}\""));
    }
    if let Some((k, v)) = extra {
        labels.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if labels.is_empty() {
        format!("{name} {value}")
    } else {
        format!("{name}{{{}}} {value}", labels.join(","))
    }
}

/// Renders the registry + SLO snapshot as Prometheus text exposition.
/// Windowed families expand to quantile samples plus `_count` /
/// `_rate_per_s` companions; samples are grouped per metric name with
/// one `# TYPE` header each, as the format requires.
pub fn prometheus_text(reg: &RegistrySnapshot, slo_rows: &[SloRow]) -> String {
    // metric name -> (type, samples); BTreeMap keeps groups ordered and
    // contiguous.
    let mut groups: BTreeMap<String, (&'static str, Vec<String>)> = BTreeMap::new();
    let mut push = |name: String, kind: &'static str, line: String| {
        let g = groups.entry(name).or_insert((kind, Vec::new()));
        g.1.push(line);
    };
    for row in &reg.rows {
        let base = format!("{PROM_PREFIX}{}", row.name);
        match &row.value {
            MetricValue::Counter(c) => {
                let line = sample_line(&base, &row.label, None, format!("{c}"));
                push(base, "counter", line);
            }
            MetricValue::Gauge(g) => {
                let line = sample_line(&base, &row.label, None, fmt_f64(*g));
                push(base, "gauge", line);
            }
            MetricValue::Window {
                count,
                p50_ns,
                p95_ns,
                p99_ns,
                rate_per_s,
            } => {
                for (q, v) in [("0.5", p50_ns), ("0.95", p95_ns), ("0.99", p99_ns)] {
                    let line =
                        sample_line(&base, &row.label, Some(("quantile", q)), format!("{v}"));
                    push(base.clone(), "gauge", line);
                }
                let count_name = format!("{base}_count");
                let line = sample_line(&count_name, &row.label, None, format!("{count}"));
                push(count_name, "counter", line);
                let rate_name = format!("{base}_rate_per_s");
                let line = sample_line(&rate_name, &row.label, None, fmt_f64(*rate_per_s));
                push(rate_name, "gauge", line);
            }
        }
    }
    if !slo_rows.is_empty() {
        let target = format!("{PROM_PREFIX}slo_target_ns");
        let line = sample_line(&target, "", None, format!("{}", slo_rows[0].target_ns));
        push(target, "gauge", line);
    }
    for r in slo_rows {
        let label = format!("tenant={}", r.tenant);
        for (suffix, kind, value) in [
            ("slo_requests_total", "counter", format!("{}", r.requests)),
            ("slo_slow_total", "counter", format!("{}", r.slow)),
            (
                "slo_window_p99_ns",
                "gauge",
                format!("{}", r.window_p99_ns),
            ),
            ("slo_budget_burn", "gauge", fmt_f64(r.budget_burn)),
        ] {
            let name = format!("{PROM_PREFIX}{suffix}");
            let line = sample_line(&name, &label, None, value);
            push(name, kind, line);
        }
    }
    if !reg.attributions.is_empty() || reg.attributions_dropped > 0 {
        let mut by_stage: BTreeMap<&'static str, u64> = BTreeMap::new();
        for a in &reg.attributions {
            *by_stage.entry(a.dominant_stage()).or_insert(0) += 1;
        }
        let name = format!("{PROM_PREFIX}tail_samples");
        for (stage, n) in by_stage {
            let line = sample_line(&name, &format!("stage={stage}"), None, format!("{n}"));
            push(name.clone(), "gauge", line);
        }
        let dropped = format!("{PROM_PREFIX}tail_samples_dropped");
        let line = sample_line(&dropped, "", None, format!("{}", reg.attributions_dropped));
        push(dropped, "counter", line);
    }
    let mut out = String::new();
    for (name, (kind, lines)) in groups {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
    }
    out
}

/// Renders the registry + SLO snapshot as one JSONL line (no trailing
/// newline). Non-finite floats serialise as `null` via the crate's JSON
/// helpers.
pub fn jsonl_line(reg: &RegistrySnapshot, slo_rows: &[SloRow]) -> String {
    let mut metrics = Vec::with_capacity(reg.rows.len());
    for row in &reg.rows {
        let head = format!(
            "{{\"name\": {}, \"label\": {}, ",
            json::string(&row.name),
            json::string(&row.label)
        );
        let body = match &row.value {
            MetricValue::Counter(c) => format!("\"kind\": \"counter\", \"value\": {c}}}"),
            MetricValue::Gauge(g) => {
                format!("\"kind\": \"gauge\", \"value\": {}}}", json::num(*g))
            }
            MetricValue::Window {
                count,
                p50_ns,
                p95_ns,
                p99_ns,
                rate_per_s,
            } => format!(
                "\"kind\": \"window\", \"count\": {count}, \"p50_ns\": {p50_ns}, \
                 \"p95_ns\": {p95_ns}, \"p99_ns\": {p99_ns}, \"rate_per_s\": {}}}",
                json::num(*rate_per_s)
            ),
        };
        metrics.push(format!("{head}{body}"));
    }
    let slo_json: Vec<String> = slo_rows
        .iter()
        .map(|r| {
            format!(
                "{{\"tenant\": {}, \"requests\": {}, \"slow\": {}, \"target_ns\": {}, \
                 \"window_p99_ns\": {}, \"window_requests\": {}, \"budget_burn\": {}}}",
                json::string(&r.tenant),
                r.requests,
                r.slow,
                r.target_ns,
                r.window_p99_ns,
                r.window_requests,
                json::num(r.budget_burn)
            )
        })
        .collect();
    let attr_json: Vec<String> = reg
        .attributions
        .iter()
        .map(|a| {
            let stages: Vec<String> = STAGES
                .iter()
                .zip(a.stage_ns)
                .map(|(s, ns)| format!("{}: {ns}", json::string(s)))
                .collect();
            format!(
                "{{\"request_id\": {}, \"tenant\": {}, \"method\": {}, \"total_ns\": {}, \
                 \"dominant\": {}, \"stage_ns\": {{{}}}}}",
                a.request_id,
                json::string(&a.tenant),
                json::string(&a.method),
                a.total_ns,
                json::string(a.dominant_stage()),
                stages.join(", ")
            )
        })
        .collect();
    format!(
        "{{\"ts_ns\": {}, \"clock\": {}, \"window_secs\": {}, \"metrics\": [{}], \
         \"slo\": [{}], \"attributions\": [{}], \"attributions_dropped\": {}}}",
        reg.now_ns,
        json::string(crate::window::clock_label()),
        registry::window_secs(),
        metrics.join(", "),
        slo_json.join(", "),
        attr_json.join(", "),
        reg.attributions_dropped
    )
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parses `{k="v",...}`, returning the byte just past the closing `}`.
fn parse_labels(line: &str, start: usize) -> Result<usize, String> {
    let bytes = line.as_bytes();
    let mut i = start + 1; // past '{'
    loop {
        if i >= bytes.len() {
            return Err(format!("unterminated label set: {line}"));
        }
        if bytes[i] == b'}' {
            return Ok(i + 1);
        }
        // label name
        let name_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        if i >= bytes.len() || !valid_label_name(line[name_start..i].trim()) {
            return Err(format!("bad label name in: {line}"));
        }
        i += 1; // past '='
        if i >= bytes.len() || bytes[i] != b'"' {
            return Err(format!("label value must be quoted: {line}"));
        }
        i += 1;
        while i < bytes.len() && bytes[i] != b'"' {
            if bytes[i] == b'\\' {
                i += 1; // escaped char
            }
            i += 1;
        }
        if i >= bytes.len() {
            return Err(format!("unterminated label value: {line}"));
        }
        i += 1; // past closing quote
        if i < bytes.len() && bytes[i] == b',' {
            i += 1;
        }
    }
}

/// Validates a Prometheus text exposition: comment grammar, metric and
/// label name charsets, quoted/escaped label values, parseable sample
/// values, a `# TYPE` header preceding each metric's samples, and
/// one-contiguous-group-per-name. Returns the number of samples. This is
/// the in-repo validator CI's metrics smoke step runs over the shipped
/// `METRICS_serve.prom`.
pub fn parse_prometheus(text: &str) -> Result<usize, String> {
    let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut closed_groups: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut current_group: Option<String> = None;
    let mut samples = 0usize;
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("bad TYPE metric name: {line}"));
                }
                if !matches!(kind, "counter" | "gauge" | "summary" | "histogram" | "untyped") {
                    return Err(format!("bad TYPE kind: {line}"));
                }
                if !typed.insert(name.to_string()) {
                    return Err(format!("duplicate TYPE for {name}"));
                }
            } else if !rest.starts_with("HELP ") && !rest.starts_with("EOF") {
                // Free comments are legal; HELP validated only loosely.
            }
            continue;
        }
        // Sample line: name[{labels}] value [timestamp]
        let name_end = line
            .find(|c: char| c == '{' || c.is_whitespace())
            .ok_or_else(|| format!("sample missing value: {line}"))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return Err(format!("bad metric name: {line}"));
        }
        if !typed.contains(name) {
            return Err(format!("sample before # TYPE {name}: {line}"));
        }
        match &current_group {
            Some(g) if g == name => {}
            _ => {
                if let Some(g) = current_group.take() {
                    closed_groups.insert(g);
                }
                if closed_groups.contains(name) {
                    return Err(format!("samples for {name} are not contiguous"));
                }
                current_group = Some(name.to_string());
            }
        }
        let after_labels = if line.as_bytes()[name_end] == b'{' {
            parse_labels(line, name_end)?
        } else {
            name_end
        };
        let rest = line[after_labels..].trim();
        let mut fields = rest.split_whitespace();
        let value = fields.next().ok_or_else(|| format!("missing value: {line}"))?;
        let value_ok = matches!(value, "NaN" | "+Inf" | "-Inf") || value.parse::<f64>().is_ok();
        if !value_ok {
            return Err(format!("unparseable sample value: {line}"));
        }
        if let Some(ts) = fields.next() {
            if ts.parse::<i64>().is_err() {
                return Err(format!("bad timestamp: {line}"));
            }
        }
        if fields.next().is_some() {
            return Err(format!("trailing tokens: {line}"));
        }
        samples += 1;
    }
    Ok(samples)
}

/// Appends pre-rendered JSONL lines to `METRICS_<name>.jsonl` under
/// [`crate::out_dir`], creating the file on first use. Returns the path.
pub fn append_jsonl(name: &str, lines: &[String]) -> std::io::Result<PathBuf> {
    let path = crate::out_dir().join(format!("METRICS_{}.jsonl", crate::sanitise_name(name)));
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    for line in lines {
        writeln!(f, "{line}")?;
    }
    Ok(path)
}

/// Validates `text` with [`parse_prometheus`] and writes it to
/// `METRICS_<name>.prom` under [`crate::out_dir`]. Returns the path.
pub fn write_prometheus_text(name: &str, text: &str) -> std::io::Result<PathBuf> {
    parse_prometheus(text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let path = crate::out_dir().join(format!("METRICS_{}.prom", crate::sanitise_name(name)));
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Paths written by [`flush`].
#[derive(Debug)]
pub struct MetricsFlush {
    pub jsonl: PathBuf,
    pub prom: PathBuf,
    /// Samples in the validated exposition.
    pub samples: usize,
}

/// The metrics flush hook: appends `lines` (or, when empty, one line
/// snapshotted now) to the JSONL time series and rewrites the Prometheus
/// exposition from the current registry + SLO state, validating it with
/// the in-repo parser first.
pub fn flush(name: &str, lines: &[String]) -> std::io::Result<MetricsFlush> {
    let reg = registry::snapshot();
    let slo_rows = slo::snapshot_at(reg.now_ns);
    let jsonl = if lines.is_empty() {
        append_jsonl(name, &[jsonl_line(&reg, &slo_rows)])?
    } else {
        append_jsonl(name, lines)?
    };
    let text = prometheus_text(&reg, &slo_rows);
    let samples = parse_prometheus(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let prom = write_prometheus_text(name, &text)?;
    Ok(MetricsFlush {
        jsonl,
        prom,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Attribution;

    fn populated_snapshot() -> (RegistrySnapshot, Vec<SloRow>) {
        registry::set_enabled(true);
        registry::inc("serve_requests_total", "tenant=3", 5);
        registry::inc("serve_requests_total", "tenant=11", 2);
        registry::inc("serve_requests_by_method_total", "method=meta_cp", 4);
        registry::gauge_set("serve_queue_depth", "", 3.0);
        registry::observe("serve_request_latency_ns", "tenant=3", 1_000, 800);
        registry::observe("serve_request_latency_ns", "tenant=3", 2_000, 1_200);
        registry::record_attribution(Attribution {
            request_id: 42,
            tenant: "3".into(),
            method: "meta_cp".into(),
            total_ns: 9_000,
            stage_ns: [100, 200, 300, 8_000, 400],
        });
        crate::slo::set_target_ms(1.0);
        crate::slo::record("3", 1_500, 800);
        crate::slo::record("3", 2_500, 2_000_000);
        let reg = registry::snapshot_at(3_000);
        let rows = crate::slo::snapshot_at(3_000);
        (reg, rows)
    }

    #[test]
    fn exposition_passes_own_parser_and_covers_all_kinds() {
        let _g = crate::tests::lock();
        let (reg, rows) = populated_snapshot();
        let text = prometheus_text(&reg, &rows);
        let n = parse_prometheus(&text).expect("valid exposition");
        assert!(n >= 10, "expected a rich exposition, got {n} samples:\n{text}");
        assert!(text.contains("# TYPE metalora_serve_requests_total counter"));
        assert!(text.contains("metalora_serve_requests_total{tenant=\"3\"} 5"));
        assert!(text.contains("{tenant=\"3\",quantile=\"0.99\"}"));
        assert!(text.contains("metalora_serve_request_latency_ns_count{tenant=\"3\"} 2"));
        assert!(text.contains("metalora_slo_slow_total{tenant=\"3\"} 1"));
        assert!(text.contains("metalora_tail_samples{stage=\"gemm\"} 1"));
        crate::slo::set_target_ms(0.0);
    }

    #[test]
    fn parser_rejects_malformed_expositions() {
        for (bad, why) in [
            ("metalora_x 1\n", "sample before TYPE"),
            ("# TYPE metalora_x counter\nmetalora_x oops\n", "bad value"),
            ("# TYPE metalora_x counter\nmetalora_x{tenant=3} 1\n", "unquoted label"),
            ("# TYPE 9bad counter\n9bad 1\n", "bad name"),
            ("# TYPE metalora_x widget\nmetalora_x 1\n", "bad kind"),
            (
                "# TYPE metalora_x counter\n# TYPE metalora_y counter\n\
                 metalora_x 1\nmetalora_y 2\nmetalora_x 3\n",
                "non-contiguous group",
            ),
        ] {
            assert!(parse_prometheus(bad).is_err(), "should reject: {why}");
        }
        // And accepts the edge cases it should.
        let ok = "# TYPE m_ok gauge\nm_ok{a=\"x\\\"y\",b=\"z\"} NaN 1700000000\nm_ok +Inf\n";
        assert_eq!(parse_prometheus(ok).unwrap(), 2);
    }

    #[test]
    fn jsonl_line_is_single_line_valid_json_with_null_nonfinite() {
        let _g = crate::tests::lock();
        let (mut reg, rows) = populated_snapshot();
        // Inject a non-finite gauge: must serialise as null, not NaN.
        registry::gauge_set("poisoned_gauge", "", f64::NAN);
        reg = registry::snapshot_at(reg.now_ns);
        let line = jsonl_line(&reg, &rows);
        assert!(!line.contains('\n'), "jsonl must be one line");
        assert!(line.contains("\"poisoned_gauge\", \"label\": \"\", \"kind\": \"gauge\", \"value\": null"));
        assert!(!line.contains("NaN"));
        let v: serde_json::Value = serde_json::from_str(&line).expect("valid JSON");
        assert!(v.field("ts_ns").is_ok());
        assert!(v.field("metrics").is_ok());
        assert!(v.field("slo").is_ok());
        match v.field("attributions").unwrap() {
            serde_json::Value::Seq(items) => {
                assert_eq!(items.len(), 1);
                match items[0].field("dominant").unwrap() {
                    serde_json::Value::Str(s) => assert_eq!(s, "gemm"),
                    other => panic!("dominant not a string: {other:?}"),
                }
            }
            other => panic!("attributions not a list: {other:?}"),
        }
        crate::slo::set_target_ms(0.0);
    }

    #[test]
    fn flush_writes_both_files_under_out_dir() {
        let _g = crate::tests::lock();
        let dir = std::env::temp_dir().join("metalora_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        crate::set_out_dir(Some(dir.clone()));
        let (_reg, _rows) = populated_snapshot();
        let first = flush("unit", &[]).expect("flush");
        assert!(first.samples > 0);
        let lines = vec!["{\"ts_ns\": 1}".to_string(), "{\"ts_ns\": 2}".to_string()];
        let second = flush("unit", &lines).expect("flush with lines");
        let jsonl = std::fs::read_to_string(&second.jsonl).unwrap();
        assert_eq!(jsonl.lines().count(), 3, "append-only: 1 + 2 lines");
        let prom = std::fs::read_to_string(&second.prom).unwrap();
        assert!(parse_prometheus(&prom).unwrap() > 0);
        crate::set_out_dir(None);
        crate::slo::set_target_ms(0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
