//! Live metrics registry: counters, gauges, and sliding-window latency
//! families keyed by `(metric name, label)`.
//!
//! Unlike [`crate::counters`] (a fixed set of process-lifetime atomics)
//! the registry holds *labeled families* — `serve_requests_total` keyed
//! by tenant, `serve_batches_by_size_total` keyed by batch signature —
//! and its histogram families are windowed ([`crate::window`]), so a
//! reading reflects the last `METALORA_METRICS_WINDOW` seconds rather
//! than everything since process start. It also keeps a bounded ring of
//! tail-latency [`Attribution`] samples: for each request slower than the
//! SLO target, which pipeline stage dominated.
//!
//! Gating mirrors `obs::trace`: records are dropped unless the global
//! `METALORA_OBS` switch *and* the `METALORA_OBS_METRICS` flag (or
//! [`set_enabled`]) are on, so the serving hot path pays one relaxed
//! atomic load when telemetry is off. Recording never changes numerics —
//! the registry is purely passive, and the golden pipeline proves it
//! bit-exact either way.

use crate::window::{self, Ewma, WindowHistogram};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

const OFF: u8 = 0;
const ON: u8 = 1;
const UNSET: u8 = 2;

static METRICS_ENABLED: AtomicU8 = AtomicU8::new(UNSET);

/// `true` when the registry is recording: requires the crate-wide switch
/// ([`crate::enabled`]) *and* `METALORA_OBS_METRICS` / [`set_enabled`].
#[inline(always)]
pub fn enabled() -> bool {
    if !crate::enabled() {
        return false;
    }
    match METRICS_ENABLED.load(Ordering::Relaxed) {
        OFF => false,
        ON => true,
        _ => enabled_from_env(),
    }
}

#[cold]
fn enabled_from_env() -> bool {
    let on = std::env::var("METALORA_OBS_METRICS")
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0"
        })
        .unwrap_or(false);
    METRICS_ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

/// Switches metric recording on or off, overriding `METALORA_OBS_METRICS`
/// (the crate-wide switch must also be on for records to land).
pub fn set_enabled(on: bool) {
    METRICS_ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// Default sliding-window length in seconds.
pub const DEFAULT_WINDOW_SECS: u64 = 60;

/// Unresolved sentinel for [`WINDOW_SECS`].
const WINDOW_UNSET: u64 = 0;

static WINDOW_SECS: AtomicU64 = AtomicU64::new(WINDOW_UNSET);

/// Sliding-window length in seconds: [`set_window_secs`] override, else
/// `METALORA_METRICS_WINDOW`, else [`DEFAULT_WINDOW_SECS`].
pub fn window_secs() -> u64 {
    match WINDOW_SECS.load(Ordering::Relaxed) {
        WINDOW_UNSET => window_secs_from_env(),
        s => s,
    }
}

#[cold]
fn window_secs_from_env() -> u64 {
    let s = std::env::var("METALORA_METRICS_WINDOW")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(DEFAULT_WINDOW_SECS);
    WINDOW_SECS.store(s, Ordering::Relaxed);
    s
}

/// Overrides the sliding-window length (0 reverts to the environment /
/// default). Affects only windows created after the call.
pub fn set_window_secs(secs: u64) {
    WINDOW_SECS.store(secs, Ordering::Relaxed);
}

pub(crate) fn window_ns() -> u64 {
    window_secs().saturating_mul(1_000_000_000)
}

/// Pipeline stages a request's latency is attributed across, in the
/// order they appear in [`Attribution::stage_ns`].
pub const STAGES: [&str; 5] = ["queue", "cache", "mapping", "gemm", "epilogue"];

/// A tail-latency sample: one request beyond the SLO target, with its
/// per-stage breakdown.
#[derive(Clone, Debug)]
pub struct Attribution {
    /// Engine-assigned request id.
    pub request_id: u64,
    /// Tenant label.
    pub tenant: String,
    /// Adapter method label (`lora`, `meta_cp`, ...).
    pub method: String,
    /// End-to-end latency (queue wait included).
    pub total_ns: u64,
    /// Per-stage nanoseconds, indexed like [`STAGES`].
    pub stage_ns: [u64; 5],
}

impl Attribution {
    /// Name of the stage with the largest share (first wins ties).
    pub fn dominant_stage(&self) -> &'static str {
        let mut best = 0;
        for (i, &ns) in self.stage_ns.iter().enumerate() {
            if ns > self.stage_ns[best] {
                best = i;
            }
        }
        STAGES[best]
    }
}

/// Bound on retained tail-latency samples; older samples are dropped
/// (counted) once the ring is full.
pub const ATTRIBUTION_CAPACITY: usize = 256;

enum Metric {
    Counter(u64),
    Gauge(f64),
    Window(Box<(WindowHistogram, Ewma)>),
}

struct Registry {
    metrics: BTreeMap<(String, String), Metric>,
    attributions: VecDeque<Attribution>,
    attributions_dropped: u64,
}

impl Registry {
    fn new() -> Self {
        Registry {
            metrics: BTreeMap::new(),
            attributions: VecDeque::new(),
            attributions_dropped: 0,
        }
    }
}

static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(Registry::new))
}

/// Adds `n` to the counter `name{label}` (created at zero on first use).
pub fn inc(name: &str, label: &str, n: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        let e = r
            .metrics
            .entry((name.to_string(), label.to_string()))
            .or_insert(Metric::Counter(0));
        if let Metric::Counter(c) = e {
            *c += n;
        }
    });
}

/// Sets the gauge `name{label}` to `v`.
pub fn gauge_set(name: &str, label: &str, v: f64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        let e = r
            .metrics
            .entry((name.to_string(), label.to_string()))
            .or_insert(Metric::Gauge(0.0));
        if let Metric::Gauge(g) = e {
            *g = v;
        }
    });
}

/// Records `value` (nanoseconds, by convention) into the sliding-window
/// family `name{label}` at time `now_ns`, updating its EWMA rate.
pub fn observe(name: &str, label: &str, now_ns: u64, value: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        let e = r
            .metrics
            .entry((name.to_string(), label.to_string()))
            .or_insert_with(|| {
                Metric::Window(Box::new((
                    WindowHistogram::new(window_ns()),
                    Ewma::new(window_ns()),
                )))
            });
        if let Metric::Window(w) = e {
            w.0.record(now_ns, value);
            w.1.observe(now_ns, 1);
        }
    });
}

/// Appends a tail-latency sample, evicting (and counting) the oldest once
/// [`ATTRIBUTION_CAPACITY`] is reached.
pub fn record_attribution(a: Attribution) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        if r.attributions.len() >= ATTRIBUTION_CAPACITY {
            r.attributions.pop_front();
            r.attributions_dropped += 1;
        }
        r.attributions.push_back(a);
    });
}

/// A point-in-time reading of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    /// Windowed family: samples in the window, its quantiles, and the
    /// EWMA rate — all as of the snapshot instant.
    Window {
        count: u64,
        p50_ns: u64,
        p95_ns: u64,
        p99_ns: u64,
        rate_per_s: f64,
    },
}

/// One `(name, label)` row of a [`RegistrySnapshot`].
#[derive(Clone, Debug)]
pub struct MetricRow {
    pub name: String,
    pub label: String,
    pub value: MetricValue,
}

/// Full registry state at one instant, ordered by `(name, label)`.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// Clock reading the windowed values were evaluated at.
    pub now_ns: u64,
    pub rows: Vec<MetricRow>,
    pub attributions: Vec<Attribution>,
    pub attributions_dropped: u64,
}

/// Snapshots the registry at the current clock reading.
pub fn snapshot() -> RegistrySnapshot {
    snapshot_at(window::now_ns())
}

/// Snapshots the registry, evaluating windows as of `now_ns`.
pub fn snapshot_at(now_ns: u64) -> RegistrySnapshot {
    with_registry(|r| {
        let rows = r
            .metrics
            .iter()
            .map(|((name, label), m)| MetricRow {
                name: name.clone(),
                label: label.clone(),
                value: match m {
                    Metric::Counter(c) => MetricValue::Counter(*c),
                    Metric::Gauge(g) => MetricValue::Gauge(*g),
                    Metric::Window(w) => {
                        let merged = w.0.merged(now_ns);
                        let (p50, p95, p99) = merged.percentiles();
                        MetricValue::Window {
                            count: merged.count(),
                            p50_ns: p50,
                            p95_ns: p95,
                            p99_ns: p99,
                            rate_per_s: w.1.rate_per_s(now_ns),
                        }
                    }
                },
            })
            .collect();
        RegistrySnapshot {
            now_ns,
            rows,
            attributions: r.attributions.iter().cloned().collect(),
            attributions_dropped: r.attributions_dropped,
        }
    })
}

/// Compact registry stats for the run report.
#[derive(Clone, Copy, Debug, Default)]
pub struct RegistrySummary {
    /// Distinct `(name, label)` series.
    pub series: u64,
    /// How many of those are windowed families.
    pub windows: u64,
    /// Retained tail-latency samples.
    pub attributions: u64,
    /// Tail samples evicted from the bounded ring.
    pub attributions_dropped: u64,
}

/// Summarises the registry without materialising windowed quantiles.
pub fn summary() -> RegistrySummary {
    with_registry(|r| RegistrySummary {
        series: r.metrics.len() as u64,
        windows: r
            .metrics
            .values()
            .filter(|m| matches!(m, Metric::Window(_)))
            .count() as u64,
        attributions: r.attributions.len() as u64,
        attributions_dropped: r.attributions_dropped,
    })
}

/// Clears every series and attribution sample (enabled flags and clock
/// mode are left as is).
pub fn reset() {
    let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    *guard = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_windows_round_trip() {
        let _g = crate::tests::lock();
        set_enabled(true);
        inc("requests_total", "7", 3);
        inc("requests_total", "7", 2);
        inc("requests_total", "9", 1);
        gauge_set("queue_depth", "", 4.0);
        gauge_set("queue_depth", "", 2.0);
        observe("latency_ns", "7", 1_000, 500);
        observe("latency_ns", "7", 2_000, 1_500);
        let snap = snapshot_at(3_000);
        let get = |n: &str, l: &str| {
            snap.rows
                .iter()
                .find(|r| r.name == n && r.label == l)
                .map(|r| r.value.clone())
        };
        assert_eq!(get("requests_total", "7"), Some(MetricValue::Counter(5)));
        assert_eq!(get("requests_total", "9"), Some(MetricValue::Counter(1)));
        assert_eq!(get("queue_depth", ""), Some(MetricValue::Gauge(2.0)));
        match get("latency_ns", "7") {
            Some(MetricValue::Window {
                count,
                p50_ns,
                p99_ns,
                rate_per_s,
                ..
            }) => {
                assert_eq!(count, 2);
                assert!(p50_ns >= 500 && p99_ns >= p50_ns);
                assert!(rate_per_s > 0.0);
            }
            other => panic!("expected window, got {other:?}"),
        }
        let s = summary();
        assert_eq!(s.series, 4);
        assert_eq!(s.windows, 1);
        reset();
        assert_eq!(summary().series, 0);
    }

    #[test]
    fn rows_are_ordered_and_deterministic() {
        let _g = crate::tests::lock();
        set_enabled(true);
        inc("b_metric", "2", 1);
        inc("a_metric", "10", 1);
        inc("a_metric", "2", 1);
        let names: Vec<(String, String)> = snapshot_at(0)
            .rows
            .iter()
            .map(|r| (r.name.clone(), r.label.clone()))
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "snapshot rows must be BTreeMap-ordered");
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _g = crate::tests::lock();
        set_enabled(false);
        inc("x", "", 1);
        gauge_set("y", "", 1.0);
        observe("z", "", 0, 1);
        record_attribution(Attribution {
            request_id: 1,
            tenant: "t".into(),
            method: "lora".into(),
            total_ns: 1,
            stage_ns: [1, 0, 0, 0, 0],
        });
        set_enabled(true);
        assert_eq!(summary().series, 0);
        assert_eq!(summary().attributions, 0);
        // Crate-wide switch off also drops records even with metrics on.
        crate::set_enabled(false);
        inc("x", "", 1);
        crate::set_enabled(true);
        assert_eq!(summary().series, 0);
    }

    #[test]
    fn attribution_ring_is_bounded_with_exact_drop_count() {
        let _g = crate::tests::lock();
        set_enabled(true);
        let total = ATTRIBUTION_CAPACITY + 37;
        for i in 0..total {
            record_attribution(Attribution {
                request_id: i as u64,
                tenant: "t".into(),
                method: "lora".into(),
                total_ns: 10,
                stage_ns: [0, 0, 0, 10, 0],
            });
        }
        let snap = snapshot_at(0);
        assert_eq!(snap.attributions.len(), ATTRIBUTION_CAPACITY);
        assert_eq!(snap.attributions_dropped, 37);
        // Oldest were evicted: the survivors are the most recent ids.
        assert_eq!(snap.attributions[0].request_id, 37);
        assert_eq!(
            snap.attributions.last().unwrap().request_id,
            total as u64 - 1
        );
    }

    #[test]
    fn dominant_stage_picks_argmax() {
        let a = Attribution {
            request_id: 0,
            tenant: "t".into(),
            method: "meta_cp".into(),
            total_ns: 100,
            stage_ns: [10, 5, 60, 20, 5],
        };
        assert_eq!(a.dominant_stage(), "mapping");
        let tie = Attribution {
            stage_ns: [30, 30, 0, 0, 0],
            ..a
        };
        assert_eq!(tie.dominant_stage(), "queue", "first stage wins ties");
    }

    #[test]
    fn window_secs_override_and_revert() {
        let _g = crate::tests::lock();
        set_window_secs(5);
        assert_eq!(window_secs(), 5);
        set_window_secs(0);
        // Reverts to env (unset in tests) → default.
        if std::env::var_os("METALORA_METRICS_WINDOW").is_none() {
            assert_eq!(window_secs(), DEFAULT_WINDOW_SECS);
        }
        set_window_secs(DEFAULT_WINDOW_SECS);
    }
}
