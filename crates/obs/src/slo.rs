//! Per-tenant SLO accounting: a target p99 latency and the error-budget
//! burn rate over the sliding window.
//!
//! The SLO model is the standard one: a tenant's objective is "99 % of
//! requests complete under the target p99" (`METALORA_SLO_P99_MS`,
//! default [`DEFAULT_TARGET_P99_MS`] ms), which grants a 1 % error
//! budget. [`record`] classifies each request as within/over target and
//! feeds a per-tenant [`WindowHistogram`], so [`snapshot`] can report
//! both the lifetime budget burn (`slow / (1 % of total)` — 1.0 means
//! the budget is exactly spent) and the *windowed* p99 the regress gate
//! compares against the target. The same target doubles as the
//! tail-latency attribution threshold in `crates/serve`: a request is
//! worth attributing exactly when it endangers the SLO.
//!
//! Recording is gated on [`crate::registry::enabled`] — SLO accounting
//! is part of the live-metrics pillar and shares its switch and clock.

use crate::registry;
use crate::window::WindowHistogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default per-tenant p99 target in milliseconds.
pub const DEFAULT_TARGET_P99_MS: f64 = 50.0;

/// Unresolved sentinel for [`TARGET_NS`].
const TARGET_UNSET: u64 = 0;

static TARGET_NS: AtomicU64 = AtomicU64::new(TARGET_UNSET);

/// Per-tenant p99 target in nanoseconds: the [`set_target_ms`] override,
/// else `METALORA_SLO_P99_MS` (milliseconds, fractional allowed), else
/// [`DEFAULT_TARGET_P99_MS`].
pub fn target_ns() -> u64 {
    match TARGET_NS.load(Ordering::Relaxed) {
        TARGET_UNSET => target_from_env(),
        t => t,
    }
}

/// The target expressed in milliseconds.
pub fn target_ms() -> f64 {
    target_ns() as f64 / 1e6
}

#[cold]
fn target_from_env() -> u64 {
    let ms = std::env::var("METALORA_SLO_P99_MS")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|&v| v.is_finite() && v > 0.0)
        .unwrap_or(DEFAULT_TARGET_P99_MS);
    let ns = ((ms * 1e6) as u64).max(1);
    TARGET_NS.store(ns, Ordering::Relaxed);
    ns
}

/// Overrides the p99 target (milliseconds; `0` or negative reverts to the
/// environment / default).
pub fn set_target_ms(ms: f64) {
    let ns = if ms.is_finite() && ms > 0.0 {
        ((ms * 1e6) as u64).max(1)
    } else {
        TARGET_UNSET
    };
    TARGET_NS.store(ns, Ordering::Relaxed);
}

struct TenantSlo {
    window: WindowHistogram,
    total: u64,
    slow: u64,
}

static TENANTS: Mutex<Option<BTreeMap<String, TenantSlo>>> = Mutex::new(None);

fn with_tenants<R>(f: impl FnOnce(&mut BTreeMap<String, TenantSlo>) -> R) -> R {
    let mut guard = TENANTS.lock().unwrap_or_else(|e| e.into_inner());
    f(guard.get_or_insert_with(BTreeMap::new))
}

/// Accounts one request for `tenant` at time `now_ns` with end-to-end
/// latency `latency_ns`. Returns `true` when the request exceeded the
/// target (i.e. burned error budget and deserves a tail-attribution
/// sample). Always returns `false` without recording when the metrics
/// registry is disabled.
pub fn record(tenant: &str, now_ns: u64, latency_ns: u64) -> bool {
    if !registry::enabled() {
        return false;
    }
    let slow = latency_ns > target_ns();
    with_tenants(|m| {
        let t = m.entry(tenant.to_string()).or_insert_with(|| TenantSlo {
            window: WindowHistogram::new(crate::registry::window_ns()),
            total: 0,
            slow: 0,
        });
        t.window.record(now_ns, latency_ns);
        t.total += 1;
        if slow {
            t.slow += 1;
        }
    });
    slow
}

/// One tenant's SLO standing.
#[derive(Clone, Debug)]
pub struct SloRow {
    pub tenant: String,
    /// Requests accounted since the last reset.
    pub requests: u64,
    /// Requests over the target.
    pub slow: u64,
    /// The p99 target the tenant is held to.
    pub target_ns: u64,
    /// p99 over the sliding window as of the snapshot instant.
    pub window_p99_ns: u64,
    /// Requests in the sliding window.
    pub window_requests: u64,
    /// Error-budget burn: `slow / (1 % of requests)`. `1.0` means the
    /// 1 % budget is exactly spent; above that the tenant is out of SLO.
    pub budget_burn: f64,
}

impl SloRow {
    /// `true` when the windowed p99 currently exceeds the target.
    pub fn over_target(&self) -> bool {
        self.window_p99_ns > self.target_ns
    }
}

/// Per-tenant SLO rows (ordered by tenant label), with windows evaluated
/// at `now_ns`.
pub fn snapshot_at(now_ns: u64) -> Vec<SloRow> {
    let target = target_ns();
    with_tenants(|m| {
        m.iter()
            .map(|(tenant, t)| {
                let merged = t.window.merged(now_ns);
                let budget = 0.01 * t.total as f64;
                SloRow {
                    tenant: tenant.clone(),
                    requests: t.total,
                    slow: t.slow,
                    target_ns: target,
                    window_p99_ns: merged.quantile(0.99),
                    window_requests: merged.count(),
                    budget_burn: if budget > 0.0 {
                        t.slow as f64 / budget
                    } else {
                        0.0
                    },
                }
            })
            .collect()
    })
}

/// Per-tenant SLO rows evaluated at the current clock reading.
pub fn snapshot() -> Vec<SloRow> {
    snapshot_at(crate::window::now_ns())
}

/// Clears all tenant accounting (the target override is left as is).
pub fn reset() {
    let mut guard = TENANTS.lock().unwrap_or_else(|e| e.into_inner());
    *guard = None;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_against_target_and_burns_budget() {
        let _g = crate::tests::lock();
        registry::set_enabled(true);
        set_target_ms(1.0); // 1 ms = 1_000_000 ns
        // 200 requests for tenant 3: 2 slow → burn = 2 / (0.01·200) = 1.0.
        for i in 0..200u64 {
            let latency = if i < 2 { 2_000_000 } else { 1_000 };
            let slow = record("3", (i + 1) * 1_000, latency);
            assert_eq!(slow, i < 2);
        }
        // A clean tenant for ordering/burn contrast.
        assert!(!record("10", 1_000, 500));
        let rows = snapshot_at(300_000);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].tenant, "10", "BTreeMap lexicographic order");
        let t3 = &rows[1];
        assert_eq!(t3.tenant, "3");
        assert_eq!(t3.requests, 200);
        assert_eq!(t3.slow, 2);
        assert!((t3.budget_burn - 1.0).abs() < 1e-12);
        assert_eq!(t3.window_requests, 200);
        assert!(t3.window_p99_ns <= t3.target_ns, "p99 within target");
        assert!(!t3.over_target());
        let t10 = &rows[0];
        assert_eq!(t10.budget_burn, 0.0);
        set_target_ms(0.0);
        reset();
    }

    #[test]
    fn over_target_when_windowed_p99_exceeds_slo() {
        let _g = crate::tests::lock();
        registry::set_enabled(true);
        set_target_ms(0.001); // 1 µs target: everything is slow
        for i in 0..50u64 {
            assert!(record("7", (i + 1) * 1_000, 10_000));
        }
        let rows = snapshot_at(60_000);
        assert_eq!(rows[0].slow, 50);
        assert!(rows[0].over_target());
        assert!(rows[0].budget_burn > 1.0);
        set_target_ms(0.0);
        reset();
    }

    #[test]
    fn disabled_records_nothing_and_reports_not_slow() {
        let _g = crate::tests::lock();
        registry::set_enabled(false);
        set_target_ms(0.001);
        assert!(!record("1", 1_000, u64::MAX / 2), "disabled → never slow");
        registry::set_enabled(true);
        assert!(snapshot_at(10_000).is_empty());
        set_target_ms(0.0);
    }

    #[test]
    fn target_env_default_applies_when_unset() {
        let _g = crate::tests::lock();
        set_target_ms(0.0); // revert to env/default
        if std::env::var_os("METALORA_SLO_P99_MS").is_none() {
            assert_eq!(target_ms(), DEFAULT_TARGET_P99_MS);
            assert_eq!(target_ns(), 50_000_000);
        }
        set_target_ms(0.0);
    }
}
