//! Event timeline: begin/end records with monotonic timestamps.
//!
//! While the [`crate::span`] aggregates answer "how much time went
//! where", the timeline answers "*when* did things happen": every span
//! open/close (and the `par` dispatch hooks in the tensor crate) appends
//! a [`TraceEvent`] — name, begin/end flag, nanoseconds since the first
//! event of the process, and a small per-thread id — to a bounded ring
//! buffer. When full, the **oldest** events are overwritten (the most
//! recent window is the useful one for a post-mortem) and a dropped
//! counter keeps the books honest.
//!
//! [`write_chrome`] exports the buffer as Chrome trace-event JSON
//! (`TRACE_<name>.json`), loadable in Perfetto / `chrome://tracing`.
//!
//! Tracing is gated twice: the global [`crate::enabled`] switch AND
//! `METALORA_OBS_TRACE=1` (or [`set_enabled`]). Both off-paths are a
//! single relaxed atomic load, and recording never touches numerics.

use crate::json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default ring-buffer capacity in events (~64k events ≈ a few MB).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

const OFF: u8 = 0;
const ON: u8 = 1;
const UNSET: u8 = 2;

static TRACE_ENABLED: AtomicU8 = AtomicU8::new(UNSET);

/// One timeline record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span (or hook) name — *not* the full path; nesting is implied by
    /// begin/end pairing per thread, as in the Chrome trace format.
    pub name: String,
    /// `true` for a begin ("B") event, `false` for an end ("E").
    pub begin: bool,
    /// Nanoseconds since the process trace epoch (monotonic).
    pub ts_ns: u64,
    /// Small sequential id of the recording thread (1-based).
    pub tid: u64,
}

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

static RING: Mutex<Option<Ring>> = Mutex::new(None);

/// `true` when timeline recording is active (requires both the global
/// obs switch and the trace switch).
#[inline]
pub fn enabled() -> bool {
    if !crate::enabled() {
        return false;
    }
    match TRACE_ENABLED.load(Ordering::Relaxed) {
        OFF => false,
        ON => true,
        _ => enabled_from_env(),
    }
}

#[cold]
fn enabled_from_env() -> bool {
    let on = std::env::var("METALORA_OBS_TRACE")
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0"
        })
        .unwrap_or(false);
    TRACE_ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

/// Switches timeline recording on or off, overriding `METALORA_OBS_TRACE`
/// (the global [`crate::set_enabled`] switch must also be on to record).
pub fn set_enabled(on: bool) {
    TRACE_ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// Replaces the ring-buffer capacity (and clears the buffer).
pub fn set_capacity(capacity: usize) {
    let mut ring = RING.lock().unwrap_or_else(|e| e.into_inner());
    *ring = Some(Ring {
        events: VecDeque::with_capacity(capacity.max(1)),
        capacity: capacity.max(1),
        dropped: 0,
    });
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch (first use in the process).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Small sequential id of the calling thread, assigned on first use.
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

fn push(event: TraceEvent) {
    let mut guard = RING.lock().unwrap_or_else(|e| e.into_inner());
    let ring = guard.get_or_insert_with(|| Ring {
        events: VecDeque::with_capacity(DEFAULT_CAPACITY),
        capacity: DEFAULT_CAPACITY,
        dropped: 0,
    });
    if ring.events.len() >= ring.capacity {
        ring.events.pop_front();
        ring.dropped += 1;
    }
    ring.events.push_back(event);
}

/// Records a begin event (no-op when tracing is disabled).
#[inline]
pub fn begin(name: &str) {
    if !enabled() {
        return;
    }
    push(TraceEvent {
        name: name.to_string(),
        begin: true,
        ts_ns: now_ns(),
        tid: thread_id(),
    });
}

/// Records an end event (no-op when tracing is disabled).
#[inline]
pub fn end(name: &str) {
    if !enabled() {
        return;
    }
    push(TraceEvent {
        name: name.to_string(),
        begin: false,
        ts_ns: now_ns(),
        tid: thread_id(),
    });
}

/// All buffered events in recording order, plus how many older events the
/// ring has overwritten.
pub fn snapshot() -> (Vec<TraceEvent>, u64) {
    let guard = RING.lock().unwrap_or_else(|e| e.into_inner());
    match &*guard {
        Some(r) => (r.events.iter().cloned().collect(), r.dropped),
        None => (Vec::new(), 0),
    }
}

/// Clears the buffer and the dropped counter (capacity is kept).
pub fn reset() {
    let mut guard = RING.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(r) = &mut *guard {
        r.events.clear();
        r.dropped = 0;
    }
}

/// Serialises `events` as Chrome trace-event JSON (the "JSON object
/// format": a `traceEvents` array of `B`/`E` phase records, timestamps in
/// microseconds).
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut s = String::with_capacity(64 + events.len() * 96);
    s.push_str("{\n  \"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": {}, \"cat\": \"metalora\", \"ph\": \"{}\", \
             \"ts\": {}, \"pid\": 1, \"tid\": {}}}{}\n",
            json::string(&e.name),
            if e.begin { "B" } else { "E" },
            json::num(e.ts_ns as f64 / 1e3),
            e.tid,
            if i + 1 < events.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n  \"displayTimeUnit\": \"ms\"\n}\n");
    s
}

/// Writes the current buffer as `TRACE_<name>.json` into
/// [`crate::out_dir`], returning the full path. The name is sanitised the
/// same way as run-log names.
pub fn write_chrome(name: &str) -> std::io::Result<std::path::PathBuf> {
    let (events, _) = snapshot();
    let dir = crate::out_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("TRACE_{}.json", crate::sanitise_name(name)));
    std::fs::write(&path, to_chrome_json(&events))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock;

    fn trace_lock() -> crate::tests::TestGuard {
        let g = lock();
        set_enabled(true);
        reset();
        g
    }

    #[test]
    fn begin_end_pairs_are_buffered_in_order() {
        let _g = trace_lock();
        begin("outer");
        begin("inner");
        end("inner");
        end("outer");
        let (events, dropped) = snapshot();
        assert_eq!(dropped, 0);
        let names: Vec<(&str, bool)> =
            events.iter().map(|e| (e.name.as_str(), e.begin)).collect();
        assert_eq!(
            names,
            [("outer", true), ("inner", true), ("inner", false), ("outer", false)]
        );
        set_enabled(false);
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let _g = lock(); // obs on, trace not explicitly on
        set_enabled(false);
        begin("never");
        end("never");
        assert!(snapshot().0.is_empty());
        // And with obs itself off, even an enabled trace stays silent.
        set_enabled(true);
        crate::set_enabled(false);
        begin("never");
        assert!(snapshot().0.is_empty());
        crate::set_enabled(true);
        set_enabled(false);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let _g = trace_lock();
        set_capacity(4);
        for i in 0..6 {
            begin(&format!("e{i}"));
        }
        let (events, dropped) = snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(dropped, 2);
        assert_eq!(events[0].name, "e2"); // e0/e1 overwritten
        assert_eq!(events[3].name, "e5");
        set_capacity(DEFAULT_CAPACITY);
        set_enabled(false);
    }

    #[test]
    fn timestamps_are_monotonic_per_thread_and_nesting_is_valid() {
        let _g = trace_lock();
        // Concurrent emitters: each thread opens and closes nested spans.
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..8 {
                        begin(&format!("t{t}.outer{i}"));
                        begin(&format!("t{t}.inner{i}"));
                        end(&format!("t{t}.inner{i}"));
                        end(&format!("t{t}.outer{i}"));
                    }
                });
            }
        });
        let (events, dropped) = snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(events.len(), 4 * 8 * 4);

        // Per-thread: timestamps monotonic non-decreasing, and begin/end
        // pairing follows strict stack discipline.
        let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4, "each worker got its own tid");
        for tid in tids {
            let mut last_ts = 0u64;
            let mut stack: Vec<&str> = Vec::new();
            for e in events.iter().filter(|e| e.tid == tid) {
                assert!(e.ts_ns >= last_ts, "tid {tid}: time went backwards");
                last_ts = e.ts_ns;
                if e.begin {
                    stack.push(&e.name);
                } else {
                    assert_eq!(
                        stack.pop(),
                        Some(e.name.as_str()),
                        "tid {tid}: end without matching begin"
                    );
                }
            }
            assert!(stack.is_empty(), "tid {tid}: unclosed spans {stack:?}");
        }
        set_enabled(false);
    }

    #[test]
    fn saturated_concurrent_writers_keep_pairing_and_exact_drop_count() {
        let _g = trace_lock();
        const CAPACITY: usize = 64;
        const THREADS: usize = 4;
        const PAIRS: usize = 200;
        set_capacity(CAPACITY);
        // 4 threads × 200 begin/end pairs = 1600 pushes through a 64-slot
        // ring: heavy saturation with concurrent writers.
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    for i in 0..PAIRS {
                        begin(&format!("t{t}.s{i}"));
                        end(&format!("t{t}.s{i}"));
                    }
                });
            }
        });
        let (events, dropped) = snapshot();
        let total = (THREADS * PAIRS * 2) as u64;
        // The drop counter is exact regardless of interleaving: every
        // push past capacity evicts exactly one event under the ring's
        // lock, so dropped == total − capacity.
        assert_eq!(events.len(), CAPACITY);
        assert_eq!(dropped, total - CAPACITY as u64);
        // Pairing stays consistent in the surviving window: per thread,
        // events keep program order (monotonic timestamps), every end
        // matches the innermost open begin, and the only permissible
        // anomaly is an end whose begin was evicted — which can occur
        // only at the start of a thread's surviving subsequence, never
        // after that thread has opened a span inside the window.
        let tids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
        for tid in tids {
            let mut last_ts = 0u64;
            let mut stack: Vec<&str> = Vec::new();
            let mut seen_begin = false;
            for e in events.iter().filter(|e| e.tid == tid) {
                assert!(e.ts_ns >= last_ts, "tid {tid}: time went backwards");
                last_ts = e.ts_ns;
                if e.begin {
                    seen_begin = true;
                    stack.push(&e.name);
                } else {
                    match stack.pop() {
                        Some(open) => assert_eq!(open, e.name, "tid {tid}: crossed pairing"),
                        None => assert!(
                            !seen_begin,
                            "tid {tid}: unmatched end {:?} after an in-window begin",
                            e.name
                        ),
                    }
                }
            }
            assert!(
                stack.len() <= 1,
                "tid {tid}: flat spans can leave at most the final begin open, got {stack:?}"
            );
        }
        set_capacity(DEFAULT_CAPACITY);
        set_enabled(false);
    }

    #[test]
    fn chrome_json_shape() {
        let events = vec![
            TraceEvent { name: "a\"b".into(), begin: true, ts_ns: 1_500, tid: 1 },
            TraceEvent { name: "a\"b".into(), begin: false, ts_ns: 2_500, tid: 1 },
        ];
        let js = to_chrome_json(&events);
        assert!(js.contains("\"traceEvents\""));
        assert!(js.contains("\"ph\": \"B\""));
        assert!(js.contains("\"ph\": \"E\""));
        assert!(js.contains("\"ts\": 1.5")); // ns → µs
        assert!(js.contains("\"a\\\"b\""));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(js.matches(open).count(), js.matches(close).count());
        }
    }

    #[test]
    fn write_chrome_lands_on_disk() {
        let _g = trace_lock();
        begin("disk");
        end("disk");
        let dir = std::env::temp_dir().join("metalora_trace_test");
        crate::set_out_dir(Some(dir.clone()));
        let path = write_chrome("unit test").unwrap();
        crate::set_out_dir(None);
        assert_eq!(path.file_name().unwrap(), "TRACE_unit_test.json");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"name\": \"disk\""));
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
        set_enabled(false);
    }
}
