//! The training-loop metrics sink.
//!
//! `metalora_nn::train::train_epoch` (and the adaptation loop in
//! `metalora::pipeline`) push one [`EpochRecord`] per epoch here when
//! instrumentation is enabled. Records are grouped by `phase` — by
//! convention the current span path (`"pretrain"`, `"adapt/Lora"`) — and
//! the epoch index auto-increments within a phase.

use std::sync::Mutex;

/// One epoch (or adaptation run) of training.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRecord {
    /// Phase label, usually the span path active during the epoch.
    pub phase: String,
    /// Epoch index within the phase (assigned at record time).
    pub epoch: usize,
    /// Mean loss over batches.
    pub loss: f64,
    /// Mean accuracy over batches.
    pub accuracy: f64,
    /// Mean global gradient L2 norm over batches (`NaN` when not
    /// measured; serialised as `null`).
    pub grad_norm: f64,
    /// Wall-clock seconds the epoch took.
    pub wall_s: f64,
}

static EPOCHS: Mutex<Vec<EpochRecord>> = Mutex::new(Vec::new());

/// Appends an epoch record under `phase`, assigning the next epoch index
/// for that phase. No-op when instrumentation is disabled.
pub fn record_epoch(phase: &str, loss: f64, accuracy: f64, grad_norm: f64, wall_s: f64) {
    if !crate::enabled() {
        return;
    }
    let mut epochs = EPOCHS.lock().unwrap_or_else(|e| e.into_inner());
    let epoch = epochs.iter().filter(|r| r.phase == phase).count();
    epochs.push(EpochRecord {
        phase: phase.to_string(),
        epoch,
        loss,
        accuracy,
        grad_norm,
        wall_s,
    });
}

/// All records in insertion order.
pub fn snapshot() -> Vec<EpochRecord> {
    EPOCHS.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Clears all records.
pub fn reset() {
    EPOCHS.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock;

    #[test]
    fn epoch_index_increments_per_phase() {
        let _g = lock();
        record_epoch("pretrain", 2.0, 0.1, 1.0, 0.5);
        record_epoch("pretrain", 1.5, 0.3, 0.8, 0.5);
        record_epoch("adapt/Lora", 1.0, 0.5, 0.2, 0.1);
        record_epoch("pretrain", 1.2, 0.4, 0.6, 0.5);
        let snap = snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(
            snap.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![0, 1, 0, 2]
        );
        assert_eq!(snap[2].phase, "adapt/Lora");
        assert_eq!(snap[1].loss, 1.5);
    }
}
