//! Per-parameter-group training-health telemetry.
//!
//! Every sampled optimizer step, the optimizers in `metalora-nn` push one
//! [`HealthRecord`] per parameter group (a group is a layer: the param
//! name up to its last `.` segment): the group's gradient L2 norm, the
//! update-to-weight ratio `‖Δw‖ / ‖w‖`, the pre-update weight norm, and
//! NaN/Inf sentinel counts over the gradients. The MetaLoRA mapping nets
//! additionally probe the *seeds* they generate (group `mapping/seed`,
//! with the seed norm in `weight_norm`), so CP vs TR seed-generation
//! health is directly comparable in run logs.
//!
//! Sampling is strided: `METALORA_OBS_SAMPLE=N` (or
//! [`set_sample_stride`]) records every N-th observed step — stride 1
//! (the default) records all of them. Probing is purely passive: the
//! extra norm accumulations run in `f64` side variables and never feed
//! back into the update, so numerics are bit-identical with health
//! recording on or off.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Cap on buffered records; once reached, further records are counted in
/// [`dropped`] instead of growing the buffer.
pub const MAX_RECORDS: usize = 1 << 16;

/// Health of one parameter group at one sampled step.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthRecord {
    /// Span path active when the record was taken (`"adapt/MetaLoraCp"`).
    pub phase: String,
    /// Parameter group — the param name up to its last `.` segment, or
    /// `mapping/seed` for seed-generation probes.
    pub group: String,
    /// Observed-step index (optimizer steps and seed probes count on
    /// separate clocks).
    pub step: u64,
    /// Gradient L2 norm over the group (`NaN` when not applicable, e.g.
    /// seed probes; serialised as `null`).
    pub grad_norm: f64,
    /// `‖Δw‖ / ‖w‖` for this step (`NaN` when not applicable).
    pub update_ratio: f64,
    /// Pre-update weight L2 norm (seed probes: mean per-sample seed norm).
    pub weight_norm: f64,
    /// NaN entries seen in the group's gradients (seed probes: in the
    /// seed batch).
    pub nan_count: u64,
    /// Inf entries seen in the group's gradients (seed probes: in the
    /// seed batch).
    pub inf_count: u64,
}

static RECORDS: Mutex<Vec<HealthRecord>> = Mutex::new(Vec::new());
static DROPPED: AtomicU64 = AtomicU64::new(0);
static OPT_STEPS: AtomicU64 = AtomicU64::new(0);
static SEED_STEPS: AtomicU64 = AtomicU64::new(0);

/// `0` means "unset: fall back to the environment".
static STRIDE_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Current sampling stride (≥ 1): the [`set_sample_stride`] override if
/// set, else `METALORA_OBS_SAMPLE`, else 1.
pub fn sample_stride() -> usize {
    let s = STRIDE_OVERRIDE.load(Ordering::Relaxed);
    if s > 0 {
        return s;
    }
    static FROM_ENV: OnceLock<usize> = OnceLock::new();
    *FROM_ENV.get_or_init(|| {
        std::env::var("METALORA_OBS_SAMPLE")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    })
}

/// Overrides the sampling stride; `0` reverts to `METALORA_OBS_SAMPLE`.
pub fn set_sample_stride(stride: usize) {
    STRIDE_OVERRIDE.store(stride, Ordering::Relaxed);
}

fn sample(counter: &AtomicU64) -> Option<u64> {
    if !crate::enabled() {
        return None;
    }
    let step = counter.fetch_add(1, Ordering::Relaxed);
    if step % sample_stride() as u64 == 0 {
        Some(step)
    } else {
        None
    }
}

/// Marks one optimizer step; `Some(step)` when this step should be
/// probed (instrumentation on and the stride hits), `None` otherwise.
#[inline]
pub fn begin_step() -> Option<u64> {
    sample(&OPT_STEPS)
}

/// Marks one seed-generation pass (separate clock from optimizer steps);
/// `Some(step)` when this pass should be probed.
#[inline]
pub fn begin_seed_probe() -> Option<u64> {
    sample(&SEED_STEPS)
}

/// Appends one record (no-op when instrumentation is disabled). The
/// record's `phase` is the calling thread's current span path.
#[allow(clippy::too_many_arguments)]
pub fn record(
    group: &str,
    step: u64,
    grad_norm: f64,
    update_ratio: f64,
    weight_norm: f64,
    nan_count: u64,
    inf_count: u64,
) {
    if !crate::enabled() {
        return;
    }
    let phase = crate::span::current_path();
    let mut records = RECORDS.lock().unwrap_or_else(|e| e.into_inner());
    if records.len() >= MAX_RECORDS {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    records.push(HealthRecord {
        phase,
        group: group.to_string(),
        step,
        grad_norm,
        update_ratio,
        weight_norm,
        nan_count,
        inf_count,
    });
}

/// All buffered records in insertion order.
pub fn snapshot() -> Vec<HealthRecord> {
    RECORDS.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Records discarded after the buffer hit [`MAX_RECORDS`].
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Clears all records, the dropped counter and both step clocks.
pub fn reset() {
    RECORDS.lock().unwrap_or_else(|e| e.into_inner()).clear();
    DROPPED.store(0, Ordering::Relaxed);
    OPT_STEPS.store(0, Ordering::Relaxed);
    SEED_STEPS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock;

    #[test]
    fn stride_gates_steps() {
        let _g = lock();
        set_sample_stride(3);
        let sampled: Vec<bool> = (0..7).map(|_| begin_step().is_some()).collect();
        assert_eq!(sampled, [true, false, false, true, false, false, true]);
        // Seed probes tick their own clock.
        assert!(begin_seed_probe().is_some());
        assert!(begin_seed_probe().is_none());
        set_sample_stride(0);
    }

    #[test]
    fn disabled_neither_samples_nor_records() {
        let _g = lock();
        crate::set_enabled(false);
        assert!(begin_step().is_none());
        record("g", 0, 1.0, 0.1, 2.0, 0, 0);
        crate::set_enabled(true);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn records_carry_phase_from_span_path() {
        let _g = lock();
        {
            let _s = crate::span::span("adapt");
            record("layer1.conv", 4, 0.5, 0.01, 3.0, 0, 0);
        }
        let snap = snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].phase, "adapt");
        assert_eq!(snap[0].group, "layer1.conv");
        assert_eq!(snap[0].step, 4);
        assert_eq!(snap[0].update_ratio, 0.01);
    }

    #[test]
    fn buffer_caps_and_counts_drops() {
        let _g = lock();
        {
            let mut records = RECORDS.lock().unwrap();
            records.clear();
            records.resize(
                MAX_RECORDS,
                HealthRecord {
                    phase: String::new(),
                    group: "pad".into(),
                    step: 0,
                    grad_norm: 0.0,
                    update_ratio: 0.0,
                    weight_norm: 0.0,
                    nan_count: 0,
                    inf_count: 0,
                },
            );
        }
        record("overflow", 1, 1.0, 1.0, 1.0, 0, 0);
        assert_eq!(dropped(), 1);
        assert_eq!(snapshot().len(), MAX_RECORDS);
        reset();
        assert_eq!(dropped(), 0);
        assert!(snapshot().is_empty());
    }
}
