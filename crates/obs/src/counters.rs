//! Global kernel and memory counters.
//!
//! All counters are process-wide relaxed atomics: recording from inside a
//! parallel kernel is safe and nearly free, and the exact interleaving of
//! increments does not matter because only totals are reported.
//!
//! Two accounting caveats, by design:
//!
//! * Lowered kernels count at every layer they pass through — `conv2d`
//!   records under [`Kernel::Conv`] *and* its internal im2col matmul
//!   records under [`Kernel::Matmul`]; likewise `contract` lowers to
//!   matmul. Per-kernel rows answer "how much work did this entry point
//!   see", not a disjoint partition of machine flops.
//! * [`track_alloc`]/[`track_free`] may be toggled on mid-run, so frees
//!   of buffers allocated while disabled can drive the live-byte count
//!   negative; the snapshot clamps at zero and the peak only ratchets up.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

/// Instrumented kernel entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Dense matmul family (`matmul`, transposed variants, `matvec`, `bmm`).
    Matmul,
    /// `conv2d` (im2col + matmul production path).
    Conv,
    /// Pairwise tensor contraction (`contract`).
    Contract,
    /// The general einsum evaluator.
    Einsum,
    /// KNN distance matrix + vote.
    Knn,
}

const N_KERNELS: usize = 5;

impl Kernel {
    /// All kernels, in reporting order.
    pub const ALL: [Kernel; N_KERNELS] = [
        Kernel::Matmul,
        Kernel::Conv,
        Kernel::Contract,
        Kernel::Einsum,
        Kernel::Knn,
    ];

    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Matmul => "matmul",
            Kernel::Conv => "conv",
            Kernel::Contract => "contract",
            Kernel::Einsum => "einsum",
            Kernel::Knn => "knn",
        }
    }
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_U64: AtomicU64 = AtomicU64::new(0);

static CALLS: [AtomicU64; N_KERNELS] = [ZERO_U64; N_KERNELS];
static FLOPS: [AtomicU64; N_KERNELS] = [ZERO_U64; N_KERNELS];
static BYTES: [AtomicU64; N_KERNELS] = [ZERO_U64; N_KERNELS];

static DISPATCH_PARALLEL: AtomicU64 = AtomicU64::new(0);
static DISPATCH_SERIAL: AtomicU64 = AtomicU64::new(0);

static MATMUL_PACKED: AtomicU64 = AtomicU64::new(0);
static MATMUL_LEGACY: AtomicU64 = AtomicU64::new(0);

/// Team slots individually tracked by the tile-grid per-thread claim
/// tally; slots past this fold into the last bucket.
pub const MAX_TRACKED_SLOTS: usize = 32;

static TILE_CLAIMS: AtomicU64 = AtomicU64::new(0);
static TILE_BPACKS: AtomicU64 = AtomicU64::new(0);
static TILE_STEALS: AtomicU64 = AtomicU64::new(0);
static TILE_CLAIMS_PER_SLOT: [AtomicU64; MAX_TRACKED_SLOTS] = [ZERO_U64; MAX_TRACKED_SLOTS];

static TENSOR_BYTES_ALIVE: AtomicI64 = AtomicI64::new(0);
static PEAK_TENSOR_BYTES: AtomicI64 = AtomicI64::new(0);

static WS_HITS: AtomicU64 = AtomicU64::new(0);
static WS_MISSES: AtomicU64 = AtomicU64::new(0);
static WS_BYTES_REUSED: AtomicU64 = AtomicU64::new(0);
static WS_POOLED_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_WS_POOLED_BYTES: AtomicI64 = AtomicI64::new(0);

static BF16_SNAPSHOTS: AtomicU64 = AtomicU64::new(0);
static BF16_ACTUAL_BYTES: AtomicU64 = AtomicU64::new(0);
static BF16_F32_EQUIV_BYTES: AtomicU64 = AtomicU64::new(0);

static FUSED_EPILOGUES: AtomicU64 = AtomicU64::new(0);
static FUSED_ELEMS: AtomicU64 = AtomicU64::new(0);
static OUTPUT_PASSES: AtomicU64 = AtomicU64::new(0);
static PLANS_BUILT: AtomicU64 = AtomicU64::new(0);
static PLAN_LEASES: AtomicU64 = AtomicU64::new(0);
static PLAN_LEASE_BYTES: AtomicU64 = AtomicU64::new(0);

static SERVE_REQUESTS: AtomicU64 = AtomicU64::new(0);
static SERVE_BATCHES: AtomicU64 = AtomicU64::new(0);
static SERVE_SEED_ROWS: AtomicU64 = AtomicU64::new(0);
static SERVE_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static SERVE_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static SERVE_CACHE_EVICTIONS: AtomicU64 = AtomicU64::new(0);
static SERVE_MERGES: AtomicU64 = AtomicU64::new(0);

static TELEMETRY_REQUESTS: AtomicU64 = AtomicU64::new(0);
static TAIL_ATTRIBUTIONS: AtomicU64 = AtomicU64::new(0);

/// Records one invocation of `kernel` with its estimated flop count and
/// the bytes it moved (inputs + outputs).
#[inline]
pub fn record_kernel(kernel: Kernel, flops: u64, bytes: u64) {
    if !crate::enabled() {
        return;
    }
    let i = kernel as usize;
    CALLS[i].fetch_add(1, Relaxed);
    FLOPS[i].fetch_add(flops, Relaxed);
    BYTES[i].fetch_add(bytes, Relaxed);
}

/// Records one serial-vs-parallel dispatch decision of the `par` layer.
#[inline]
pub fn record_dispatch(parallel: bool) {
    if !crate::enabled() {
        return;
    }
    if parallel {
        DISPATCH_PARALLEL.fetch_add(1, Relaxed);
    } else {
        DISPATCH_SERIAL.fetch_add(1, Relaxed);
    }
}

/// Records which matmul microkernel ran: the packed register-tiled path
/// (`packed == true`) or the legacy row-block path.
#[inline]
pub fn record_matmul_path(packed: bool) {
    if !crate::enabled() {
        return;
    }
    if packed {
        MATMUL_PACKED.fetch_add(1, Relaxed);
    } else {
        MATMUL_LEGACY.fetch_add(1, Relaxed);
    }
}

/// Records one worker's tallies from a tile-grid GEMM team: how many
/// C-tile blocks the worker at `slot` claimed, and how many of those
/// claims were "steals" — claims whose queue index was not adjacent to
/// the worker's previous claim, i.e. another worker grabbed the
/// intervening block (a direct measure of cross-thread interleaving on
/// the shared queue).
#[inline]
pub fn record_tile_grid_worker(slot: usize, claimed: u64, steals: u64) {
    if !crate::enabled() {
        return;
    }
    TILE_CLAIMS.fetch_add(claimed, Relaxed);
    TILE_STEALS.fetch_add(steals, Relaxed);
    TILE_CLAIMS_PER_SLOT[slot.min(MAX_TRACKED_SLOTS - 1)].fetch_add(claimed, Relaxed);
}

/// Records one shared B-panel packing pass of the tile-grid GEMM. The
/// scheduler packs `B` exactly once per GEMM invocation (shared
/// read-only across the team), so this total must equal the number of
/// packed GEMM calls — redundant per-thread re-packing would show up as
/// a higher count.
#[inline]
pub fn record_tile_grid_bpack() {
    if !crate::enabled() {
        return;
    }
    TILE_BPACKS.fetch_add(1, Relaxed);
}

/// Records one workspace-arena checkout: `hit` when a pooled buffer was
/// reused (its `bytes` count toward the reuse total), `!hit` when the
/// arena had to allocate fresh.
#[inline]
pub fn record_workspace_checkout(hit: bool, bytes: usize) {
    if !crate::enabled() {
        return;
    }
    if hit {
        WS_HITS.fetch_add(1, Relaxed);
        WS_BYTES_REUSED.fetch_add(bytes as u64, Relaxed);
    } else {
        WS_MISSES.fetch_add(1, Relaxed);
    }
}

/// Adjusts the bytes idling in the workspace pool (positive when a buffer
/// is parked, negative when one is checked out or evicted), ratcheting the
/// peak-resident mark. Subject to the same toggled-mid-run caveat as
/// [`track_alloc`]/[`track_free`]; the snapshot clamps at zero.
#[inline]
pub fn record_workspace_pooled(delta_bytes: i64) {
    if !crate::enabled() {
        return;
    }
    let now = WS_POOLED_BYTES.fetch_add(delta_bytes, Relaxed) + delta_bytes;
    let mut peak = PEAK_WS_POOLED_BYTES.load(Relaxed);
    while now > peak {
        match PEAK_WS_POOLED_BYTES.compare_exchange_weak(peak, now, Relaxed, Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

/// Records one f32 → bf16 narrowing snapshot of `elems` values: the
/// buffer now occupies `2·elems` bytes where the f32 original would have
/// taken `4·elems` — the difference is the storage the bf16 path saved.
#[inline]
pub fn record_bf16_snapshot(elems: u64) {
    if !crate::enabled() {
        return;
    }
    BF16_SNAPSHOTS.fetch_add(1, Relaxed);
    BF16_ACTUAL_BYTES.fetch_add(2 * elems, Relaxed);
    BF16_F32_EQUIV_BYTES.fetch_add(4 * elems, Relaxed);
}

/// Records one GEMM whose epilogue (bias add and/or activation) was fused
/// into the store over `elems` output elements — work a separate full
/// output pass would otherwise have done.
#[inline]
pub fn record_fused_epilogue(elems: u64) {
    if !crate::enabled() {
        return;
    }
    FUSED_EPILOGUES.fetch_add(1, Relaxed);
    FUSED_ELEMS.fetch_add(elems, Relaxed);
}

/// Records one separate (unfused) epilogue pass over a full output — a
/// broadcast bias add or an activation map. The fused serving path must
/// drive this to zero; the regress gate asserts it.
#[inline]
pub fn record_output_pass() {
    if !crate::enabled() {
        return;
    }
    OUTPUT_PASSES.fetch_add(1, Relaxed);
}

/// Records one static inference plan built (scratch sizes computed from
/// shapes — once per distinct (shape, threads) signature, not per batch).
#[inline]
pub fn record_plan_built() {
    if !crate::enabled() {
        return;
    }
    PLANS_BUILT.fetch_add(1, Relaxed);
}

/// Records one batch-wide workspace lease of `buffers` planned buffers
/// totalling `bytes`, taken up front so every in-batch checkout is a
/// guaranteed arena hit.
#[inline]
pub fn record_plan_lease(buffers: u64, bytes: u64) {
    if !crate::enabled() {
        return;
    }
    PLAN_LEASES.fetch_add(buffers, Relaxed);
    PLAN_LEASE_BYTES.fetch_add(bytes, Relaxed);
}

/// Records one served batch carrying `requests` requests.
#[inline]
pub fn record_serve_batch(requests: u64) {
    if !crate::enabled() {
        return;
    }
    SERVE_BATCHES.fetch_add(1, Relaxed);
    SERVE_REQUESTS.fetch_add(requests, Relaxed);
}

/// Records `rows` seed rows produced by one amortised mapping-net pass of
/// the serving batcher (all dynamic-MetaLoRA rows of a batch share one
/// forward; a per-request engine would record a pass per row).
#[inline]
pub fn record_serve_seed_rows(rows: u64) {
    if !crate::enabled() {
        return;
    }
    SERVE_SEED_ROWS.fetch_add(rows, Relaxed);
}

/// Records one merged-weight cache lookup by outcome.
#[inline]
pub fn record_serve_cache(hit: bool) {
    if !crate::enabled() {
        return;
    }
    if hit {
        SERVE_CACHE_HITS.fetch_add(1, Relaxed);
    } else {
        SERVE_CACHE_MISSES.fetch_add(1, Relaxed);
    }
}

/// Records `n` merged weights evicted from the serving cache.
#[inline]
pub fn record_serve_evictions(n: u64) {
    if !crate::enabled() {
        return;
    }
    SERVE_CACHE_EVICTIONS.fetch_add(n, Relaxed);
}

/// Records one `W + ΔW` merge computed for the serving cache.
#[inline]
pub fn record_serve_merge() {
    if !crate::enabled() {
        return;
    }
    SERVE_MERGES.fetch_add(1, Relaxed);
}

/// Records one request fully accounted by the live telemetry registry
/// (`obs::registry` + `obs::slo`) — the cheap process-wide tally the run
/// report carries even after the registry itself is reset per window.
#[inline]
pub fn record_telemetry_request() {
    if !crate::enabled() {
        return;
    }
    TELEMETRY_REQUESTS.fetch_add(1, Relaxed);
}

/// Records one tail-latency attribution sample (a request beyond the SLO
/// target whose dominant stage was identified).
#[inline]
pub fn record_tail_attribution() {
    if !crate::enabled() {
        return;
    }
    TAIL_ATTRIBUTIONS.fetch_add(1, Relaxed);
}

/// Records a tensor buffer allocation, ratcheting the peak-alive mark.
#[inline]
pub fn track_alloc(bytes: usize) {
    if !crate::enabled() {
        return;
    }
    let now = TENSOR_BYTES_ALIVE.fetch_add(bytes as i64, Relaxed) + bytes as i64;
    let mut peak = PEAK_TENSOR_BYTES.load(Relaxed);
    while now > peak {
        match PEAK_TENSOR_BYTES.compare_exchange_weak(peak, now, Relaxed, Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

/// Records a tensor buffer release.
#[inline]
pub fn track_free(bytes: usize) {
    if !crate::enabled() {
        return;
    }
    TENSOR_BYTES_ALIVE.fetch_sub(bytes as i64, Relaxed);
}

/// One row of the per-kernel table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelStat {
    /// Kernel name (see [`Kernel::name`]).
    pub kernel: &'static str,
    /// Invocation count.
    pub calls: u64,
    /// Estimated floating-point operations.
    pub flops: u64,
    /// Bytes moved (inputs + outputs, 4 bytes per element).
    pub bytes_moved: u64,
}

/// A consistent-enough copy of every counter (individually atomic reads;
/// a concurrent recorder may land between rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Per-kernel stats in [`Kernel::ALL`] order.
    pub kernels: Vec<KernelStat>,
    /// `par_row_blocks` calls that spawned a thread team.
    pub dispatch_parallel: u64,
    /// `par_row_blocks` calls that stayed on the calling thread.
    pub dispatch_serial: u64,
    /// Matmuls that ran the packed register-tiled microkernel.
    pub matmul_packed: u64,
    /// Matmuls that ran the legacy row-block kernel.
    pub matmul_legacy: u64,
    /// C-tile blocks claimed from tile-grid GEMM queues, all workers.
    pub tile_claims: u64,
    /// Shared B-panel packing passes (exactly one per packed GEMM).
    pub tile_bpacks: u64,
    /// Tile claims that interleaved with another worker (see
    /// [`record_tile_grid_worker`]).
    pub tile_steals: u64,
    /// Per-team-slot claim totals, trailing zero slots trimmed (empty
    /// when no tile-grid GEMM ran).
    pub tile_claims_per_slot: Vec<u64>,
    /// Tensor bytes currently alive (clamped at zero).
    pub tensor_bytes_alive: u64,
    /// High-water mark of tensor bytes alive.
    pub peak_tensor_bytes: u64,
    /// Workspace-arena checkouts satisfied from the pool.
    pub workspace_hits: u64,
    /// Workspace-arena checkouts that had to allocate fresh.
    pub workspace_misses: u64,
    /// Bytes handed out from recycled workspace buffers.
    pub workspace_bytes_reused: u64,
    /// Bytes currently idling in the workspace pool (clamped at zero).
    pub workspace_pooled_bytes: u64,
    /// High-water mark of bytes idling in the workspace pool.
    pub peak_workspace_pooled_bytes: u64,
    /// f32 → bf16 narrowing snapshots taken.
    pub bf16_snapshots: u64,
    /// Bytes actually occupied by bf16 snapshots (2 per element).
    pub bf16_actual_bytes: u64,
    /// Bytes the same snapshots would occupy in f32 (4 per element);
    /// `bf16_f32_equiv_bytes - bf16_actual_bytes` is the storage saved.
    pub bf16_f32_equiv_bytes: u64,
    /// GEMMs whose bias/activation epilogue was fused into the store.
    pub fused_epilogues: u64,
    /// Output elements the fused epilogues covered.
    pub fused_elems: u64,
    /// Separate (unfused) full epilogue passes over an output.
    pub output_passes: u64,
    /// Static inference plans built.
    pub plans_built: u64,
    /// Workspace buffers leased up front by batch-wide plan leases.
    pub plan_leases: u64,
    /// Bytes covered by those batch-wide plan leases.
    pub plan_lease_bytes: u64,
    /// Requests served by the serving engine.
    pub serve_requests: u64,
    /// Batches the serving engine executed.
    pub serve_batches: u64,
    /// Seed rows produced by amortised mapping-net passes.
    pub serve_seed_rows: u64,
    /// Merged-weight cache lookups that hit.
    pub serve_cache_hits: u64,
    /// Merged-weight cache lookups that missed.
    pub serve_cache_misses: u64,
    /// Merged weights evicted from the serving cache.
    pub serve_cache_evictions: u64,
    /// `W + ΔW` merges computed for the serving cache.
    pub serve_merges: u64,
    /// Requests accounted by the live telemetry registry.
    pub telemetry_requests: u64,
    /// Tail-latency attribution samples recorded.
    pub tail_attributions: u64,
}

/// Snapshots every counter.
pub fn snapshot() -> CounterSnapshot {
    let kernels = Kernel::ALL
        .iter()
        .map(|&k| {
            let i = k as usize;
            KernelStat {
                kernel: k.name(),
                calls: CALLS[i].load(Relaxed),
                flops: FLOPS[i].load(Relaxed),
                bytes_moved: BYTES[i].load(Relaxed),
            }
        })
        .collect();
    let mut tile_claims_per_slot: Vec<u64> =
        TILE_CLAIMS_PER_SLOT.iter().map(|c| c.load(Relaxed)).collect();
    while tile_claims_per_slot.last() == Some(&0) {
        tile_claims_per_slot.pop();
    }
    CounterSnapshot {
        kernels,
        dispatch_parallel: DISPATCH_PARALLEL.load(Relaxed),
        dispatch_serial: DISPATCH_SERIAL.load(Relaxed),
        matmul_packed: MATMUL_PACKED.load(Relaxed),
        matmul_legacy: MATMUL_LEGACY.load(Relaxed),
        tile_claims: TILE_CLAIMS.load(Relaxed),
        tile_bpacks: TILE_BPACKS.load(Relaxed),
        tile_steals: TILE_STEALS.load(Relaxed),
        tile_claims_per_slot,
        tensor_bytes_alive: TENSOR_BYTES_ALIVE.load(Relaxed).max(0) as u64,
        peak_tensor_bytes: PEAK_TENSOR_BYTES.load(Relaxed).max(0) as u64,
        workspace_hits: WS_HITS.load(Relaxed),
        workspace_misses: WS_MISSES.load(Relaxed),
        workspace_bytes_reused: WS_BYTES_REUSED.load(Relaxed),
        workspace_pooled_bytes: WS_POOLED_BYTES.load(Relaxed).max(0) as u64,
        peak_workspace_pooled_bytes: PEAK_WS_POOLED_BYTES.load(Relaxed).max(0) as u64,
        bf16_snapshots: BF16_SNAPSHOTS.load(Relaxed),
        bf16_actual_bytes: BF16_ACTUAL_BYTES.load(Relaxed),
        bf16_f32_equiv_bytes: BF16_F32_EQUIV_BYTES.load(Relaxed),
        fused_epilogues: FUSED_EPILOGUES.load(Relaxed),
        fused_elems: FUSED_ELEMS.load(Relaxed),
        output_passes: OUTPUT_PASSES.load(Relaxed),
        plans_built: PLANS_BUILT.load(Relaxed),
        plan_leases: PLAN_LEASES.load(Relaxed),
        plan_lease_bytes: PLAN_LEASE_BYTES.load(Relaxed),
        serve_requests: SERVE_REQUESTS.load(Relaxed),
        serve_batches: SERVE_BATCHES.load(Relaxed),
        serve_seed_rows: SERVE_SEED_ROWS.load(Relaxed),
        serve_cache_hits: SERVE_CACHE_HITS.load(Relaxed),
        serve_cache_misses: SERVE_CACHE_MISSES.load(Relaxed),
        serve_cache_evictions: SERVE_CACHE_EVICTIONS.load(Relaxed),
        serve_merges: SERVE_MERGES.load(Relaxed),
        telemetry_requests: TELEMETRY_REQUESTS.load(Relaxed),
        tail_attributions: TAIL_ATTRIBUTIONS.load(Relaxed),
    }
}

/// Zeroes every counter.
pub fn reset() {
    for i in 0..N_KERNELS {
        CALLS[i].store(0, Relaxed);
        FLOPS[i].store(0, Relaxed);
        BYTES[i].store(0, Relaxed);
    }
    DISPATCH_PARALLEL.store(0, Relaxed);
    DISPATCH_SERIAL.store(0, Relaxed);
    MATMUL_PACKED.store(0, Relaxed);
    MATMUL_LEGACY.store(0, Relaxed);
    TILE_CLAIMS.store(0, Relaxed);
    TILE_BPACKS.store(0, Relaxed);
    TILE_STEALS.store(0, Relaxed);
    for c in &TILE_CLAIMS_PER_SLOT {
        c.store(0, Relaxed);
    }
    TENSOR_BYTES_ALIVE.store(0, Relaxed);
    PEAK_TENSOR_BYTES.store(0, Relaxed);
    WS_HITS.store(0, Relaxed);
    WS_MISSES.store(0, Relaxed);
    WS_BYTES_REUSED.store(0, Relaxed);
    WS_POOLED_BYTES.store(0, Relaxed);
    PEAK_WS_POOLED_BYTES.store(0, Relaxed);
    BF16_SNAPSHOTS.store(0, Relaxed);
    BF16_ACTUAL_BYTES.store(0, Relaxed);
    BF16_F32_EQUIV_BYTES.store(0, Relaxed);
    FUSED_EPILOGUES.store(0, Relaxed);
    FUSED_ELEMS.store(0, Relaxed);
    OUTPUT_PASSES.store(0, Relaxed);
    PLANS_BUILT.store(0, Relaxed);
    PLAN_LEASES.store(0, Relaxed);
    PLAN_LEASE_BYTES.store(0, Relaxed);
    SERVE_REQUESTS.store(0, Relaxed);
    SERVE_BATCHES.store(0, Relaxed);
    SERVE_SEED_ROWS.store(0, Relaxed);
    SERVE_CACHE_HITS.store(0, Relaxed);
    SERVE_CACHE_MISSES.store(0, Relaxed);
    SERVE_CACHE_EVICTIONS.store(0, Relaxed);
    SERVE_MERGES.store(0, Relaxed);
    TELEMETRY_REQUESTS.store(0, Relaxed);
    TAIL_ATTRIBUTIONS.store(0, Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock;

    #[test]
    fn kernel_counters_accumulate() {
        let _g = lock();
        record_kernel(Kernel::Matmul, 100, 8);
        record_kernel(Kernel::Matmul, 50, 4);
        record_kernel(Kernel::Knn, 7, 2);
        let snap = snapshot();
        let mm = &snap.kernels[Kernel::Matmul as usize];
        assert_eq!((mm.calls, mm.flops, mm.bytes_moved), (2, 150, 12));
        let knn = &snap.kernels[Kernel::Knn as usize];
        assert_eq!((knn.calls, knn.flops, knn.bytes_moved), (1, 7, 2));
        assert_eq!(snap.kernels[Kernel::Conv as usize].calls, 0);
    }

    #[test]
    fn dispatch_tally() {
        let _g = lock();
        record_dispatch(true);
        record_dispatch(false);
        record_dispatch(false);
        let snap = snapshot();
        assert_eq!(snap.dispatch_parallel, 1);
        assert_eq!(snap.dispatch_serial, 2);
    }

    #[test]
    fn matmul_path_tally() {
        let _g = lock();
        record_matmul_path(true);
        record_matmul_path(true);
        record_matmul_path(false);
        let snap = snapshot();
        assert_eq!(snap.matmul_packed, 2);
        assert_eq!(snap.matmul_legacy, 1);
        crate::set_enabled(false);
        record_matmul_path(true);
        crate::set_enabled(true);
        assert_eq!(snapshot().matmul_packed, 2);
    }

    #[test]
    fn tile_grid_tallies_accumulate_per_slot() {
        let _g = lock();
        record_tile_grid_worker(0, 10, 0);
        record_tile_grid_worker(1, 6, 2);
        record_tile_grid_worker(1, 4, 1);
        record_tile_grid_bpack();
        let snap = snapshot();
        assert_eq!(snap.tile_claims, 20);
        assert_eq!(snap.tile_steals, 3);
        assert_eq!(snap.tile_bpacks, 1);
        assert_eq!(snap.tile_claims_per_slot, vec![10, 10]);
        // Out-of-range slots fold into the last tracked bucket instead of
        // panicking.
        record_tile_grid_worker(MAX_TRACKED_SLOTS + 5, 1, 0);
        let snap = snapshot();
        assert_eq!(snap.tile_claims_per_slot.len(), MAX_TRACKED_SLOTS);
        assert_eq!(*snap.tile_claims_per_slot.last().unwrap(), 1);
        crate::set_enabled(false);
        record_tile_grid_worker(0, 99, 99);
        record_tile_grid_bpack();
        crate::set_enabled(true);
        assert_eq!(snapshot().tile_claims, 21);
        assert_eq!(snapshot().tile_bpacks, 1);
    }

    #[test]
    fn peak_ratchets_and_alive_clamps() {
        let _g = lock();
        track_alloc(100);
        track_alloc(50);
        track_free(120);
        track_alloc(10);
        let snap = snapshot();
        assert_eq!(snap.peak_tensor_bytes, 150);
        assert_eq!(snap.tensor_bytes_alive, 40);
        // Frees of untracked buffers cannot push the reported value below 0.
        track_free(1_000_000);
        assert_eq!(snapshot().tensor_bytes_alive, 0);
        assert_eq!(snapshot().peak_tensor_bytes, 150);
    }

    #[test]
    fn workspace_counters_accumulate_and_clamp() {
        let _g = lock();
        record_workspace_checkout(false, 256);
        record_workspace_checkout(true, 128);
        record_workspace_checkout(true, 64);
        record_workspace_pooled(512);
        record_workspace_pooled(-128);
        let snap = snapshot();
        assert_eq!(snap.workspace_hits, 2);
        assert_eq!(snap.workspace_misses, 1);
        assert_eq!(snap.workspace_bytes_reused, 192);
        assert_eq!(snap.workspace_pooled_bytes, 384);
        assert_eq!(snap.peak_workspace_pooled_bytes, 512);
        // Evictions past zero clamp, and the peak only ratchets.
        record_workspace_pooled(-1_000_000);
        assert_eq!(snapshot().workspace_pooled_bytes, 0);
        assert_eq!(snapshot().peak_workspace_pooled_bytes, 512);
    }

    #[test]
    fn serve_counters_accumulate_and_respect_toggle() {
        let _g = lock();
        record_serve_batch(3);
        record_serve_batch(1);
        record_serve_seed_rows(5);
        record_serve_cache(true);
        record_serve_cache(false);
        record_serve_cache(false);
        record_serve_evictions(2);
        record_serve_merge();
        let snap = snapshot();
        assert_eq!(snap.serve_batches, 2);
        assert_eq!(snap.serve_requests, 4);
        assert_eq!(snap.serve_seed_rows, 5);
        assert_eq!(snap.serve_cache_hits, 1);
        assert_eq!(snap.serve_cache_misses, 2);
        assert_eq!(snap.serve_cache_evictions, 2);
        assert_eq!(snap.serve_merges, 1);
        crate::set_enabled(false);
        record_serve_batch(9);
        record_serve_cache(true);
        record_serve_merge();
        crate::set_enabled(true);
        assert_eq!(snapshot().serve_requests, 4);
        assert_eq!(snapshot().serve_merges, 1);
    }

    #[test]
    fn telemetry_counters_accumulate_and_respect_toggle() {
        let _g = lock();
        record_telemetry_request();
        record_telemetry_request();
        record_tail_attribution();
        let snap = snapshot();
        assert_eq!(snap.telemetry_requests, 2);
        assert_eq!(snap.tail_attributions, 1);
        crate::set_enabled(false);
        record_telemetry_request();
        record_tail_attribution();
        crate::set_enabled(true);
        assert_eq!(snapshot().telemetry_requests, 2);
        assert_eq!(snapshot().tail_attributions, 1);
    }

    #[test]
    fn bf16_counters_accumulate_and_respect_toggle() {
        let _g = lock();
        record_bf16_snapshot(100);
        record_bf16_snapshot(28);
        let snap = snapshot();
        assert_eq!(snap.bf16_snapshots, 2);
        assert_eq!(snap.bf16_actual_bytes, 256);
        assert_eq!(snap.bf16_f32_equiv_bytes, 512);
        crate::set_enabled(false);
        record_bf16_snapshot(1_000);
        crate::set_enabled(true);
        assert_eq!(snapshot().bf16_actual_bytes, 256);
    }

    #[test]
    fn fusion_counters_accumulate_and_respect_toggle() {
        let _g = lock();
        record_fused_epilogue(64);
        record_fused_epilogue(36);
        record_output_pass();
        record_plan_built();
        record_plan_lease(3, 4096);
        record_plan_lease(2, 1024);
        let snap = snapshot();
        assert_eq!(snap.fused_epilogues, 2);
        assert_eq!(snap.fused_elems, 100);
        assert_eq!(snap.output_passes, 1);
        assert_eq!(snap.plans_built, 1);
        assert_eq!(snap.plan_leases, 5);
        assert_eq!(snap.plan_lease_bytes, 5120);
        crate::set_enabled(false);
        record_fused_epilogue(1_000);
        record_output_pass();
        record_plan_built();
        record_plan_lease(9, 9);
        crate::set_enabled(true);
        let snap = snapshot();
        assert_eq!(snap.fused_elems, 100);
        assert_eq!(snap.output_passes, 1);
        assert_eq!(snap.plan_leases, 5);
    }

    #[test]
    fn peak_is_ratcheted_concurrently() {
        let _g = lock();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        track_alloc(8);
                        track_free(8);
                    }
                });
            }
        });
        let snap = snapshot();
        assert_eq!(snap.tensor_bytes_alive, 0);
        assert!(snap.peak_tensor_bytes >= 8);
    }
}
