//! Streaming log-linear histogram for span-duration quantiles.
//!
//! [`LogHistogram`] buckets `u64` samples (nanoseconds, in practice) into
//! HDR-style log-linear bins: values below [`SUBBUCKETS`] get one bin
//! each; above that, every power-of-two octave is split into
//! [`SUBBUCKETS`] linear sub-bins. Bucket width is therefore at most
//! `value / SUBBUCKETS`, so a quantile read back as the bucket midpoint is
//! within `1 / (2·SUBBUCKETS)` ≈ 3.2 % of the exact sample — bounded
//! error at a fixed ~8 KB of memory per histogram, no matter how many
//! samples stream through. Exact `min`/`max` are tracked on the side and
//! clamp the estimates, so p0/p100 are always exact.

/// Linear sub-bins per power-of-two octave (and the one-bin-per-value
/// range at the bottom).
pub const SUBBUCKETS: usize = 16;

const SUB_BITS: u32 = SUBBUCKETS.trailing_zeros(); // 4
/// Bins: SUBBUCKETS singleton bins + (64 − SUB_BITS) octaves × SUBBUCKETS.
const N_BUCKETS: usize = SUBBUCKETS + (64 - SUB_BITS as usize) * SUBBUCKETS;

/// A fixed-memory streaming histogram over `u64` samples.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUBBUCKETS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // floor(log2 v) >= SUB_BITS
    let shift = exp - SUB_BITS;
    let sub = ((v >> shift) as usize) & (SUBBUCKETS - 1);
    SUBBUCKETS + (exp - SUB_BITS) as usize * SUBBUCKETS + sub
}

/// Midpoint of the value range bucket `i` covers.
fn bucket_mid(i: usize) -> u64 {
    if i < SUBBUCKETS {
        return i as u64;
    }
    let octave = (i - SUBBUCKETS) / SUBBUCKETS;
    let sub = ((i - SUBBUCKETS) % SUBBUCKETS) as u64;
    let exp = octave as u32 + SUB_BITS;
    let width = 1u64 << (exp - SUB_BITS);
    let lo = (1u64 << exp) + sub * width;
    lo + width / 2
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; N_BUCKETS],
            total: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`): the midpoint of the
    /// bucket holding the `⌈q·n⌉`-th smallest sample, clamped to the
    /// exact observed `[min, max]`. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        // Rank 1 is exactly the observed min and rank n exactly the max.
        if target == 1 {
            return self.min;
        }
        if target >= self.total {
            return self.max;
        }
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// (p50, p95, p99) in one pass-friendly call.
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.quantile(0.50), self.quantile(0.95), self.quantile(0.99))
    }

    /// Folds `other`'s samples into `self` (bucket-wise addition; exact
    /// min/max merge). The backbone of the sliding-window view in
    /// [`crate::window`]: live ring buckets merge into one histogram.
    pub fn merge_from(&mut self, other: &LogHistogram) {
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact quantile with the same convention the histogram targets:
    /// the `⌈q·n⌉`-th smallest sample.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let n = sorted.len() as f64;
        let rank = ((q * n).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    fn check_against_exact(values: &[u64], rel_tol: f64) {
        let mut h = LogHistogram::new();
        for &v in values {
            h.record(v);
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        for q in [0.01, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q);
            let err = (est as f64 - exact as f64).abs();
            let bound = rel_tol * exact as f64 + 1.0; // +1 absorbs integer rounding
            assert!(
                err <= bound,
                "q={q}: estimate {est} vs exact {exact} (err {err} > {bound})"
            );
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.percentiles(), (0, 0, 0));
    }

    #[test]
    fn single_sample_is_exact_everywhere() {
        let mut h = LogHistogram::new();
        h.record(123_456_789);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 123_456_789);
        }
    }

    #[test]
    fn small_values_are_exact() {
        // Below SUBBUCKETS every value has its own bin: zero error.
        let values: Vec<u64> = (0..SUBBUCKETS as u64).flat_map(|v| [v; 3]).collect();
        check_against_exact(&values, 0.0);
    }

    #[test]
    fn uniform_ramp_within_bound() {
        // 1..=10_000: quantiles spread across ~10 octaves.
        let values: Vec<u64> = (1..=10_000).collect();
        check_against_exact(&values, 0.05);
    }

    #[test]
    fn log_spaced_heavy_tail_within_bound() {
        // Geometric-ish distribution across 30 octaves (deterministic —
        // no RNG available in this dependency-free crate).
        let mut values = Vec::new();
        for e in 0..30u32 {
            for k in 1..=7u64 {
                values.push((1u64 << e) + k * ((1u64 << e) / 8 + 1));
            }
        }
        check_against_exact(&values, 0.05);
    }

    #[test]
    fn bimodal_distribution_within_bound() {
        let mut values: Vec<u64> = (100..200).collect();
        values.extend((1_000_000..1_000_100).map(|v| v as u64));
        check_against_exact(&values, 0.05);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = LogHistogram::new();
        for v in [1u64, 5, 9, 100, 1000, 5000, 10_000, 1 << 30] {
            h.record(v);
        }
        let mut last = 0;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q);
            assert!(v >= last, "quantile not monotone at q={q}");
            last = v;
        }
    }

    #[test]
    fn extremes_clamp_to_exact_min_max() {
        let mut h = LogHistogram::new();
        for v in [17u64, 900, 1_000_003] {
            h.record(v);
        }
        assert!(h.quantile(0.0) >= 17);
        assert_eq!(h.quantile(1.0), 1_000_003);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a_vals: Vec<u64> = (1..=500).collect();
        let b_vals: Vec<u64> = (10_000..=10_300).collect();
        let (mut a, mut b, mut both) =
            (LogHistogram::new(), LogHistogram::new(), LogHistogram::new());
        for &v in &a_vals {
            a.record(v);
            both.record(v);
        }
        for &v in &b_vals {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), both.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), both.quantile(q), "q={q}");
        }
        // Merging an empty histogram is the identity (min/max unaffected).
        let before = (a.quantile(0.0), a.quantile(1.0), a.count());
        a.merge_from(&LogHistogram::new());
        assert_eq!(before, (a.quantile(0.0), a.quantile(1.0), a.count()));
    }

    #[test]
    fn bucket_index_covers_u64_range() {
        for v in [0u64, 1, 15, 16, 17, 1 << 10, (1 << 10) + 3, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < N_BUCKETS, "v={v} index {i}");
            if v >= SUBBUCKETS as u64 {
                // The midpoint stays within a factor of the bucket width.
                let mid = bucket_mid(i);
                let width = (v >> SUB_BITS).max(1);
                assert!(
                    mid.abs_diff(v) <= width,
                    "v={v} mid={mid} width={width}"
                );
            } else {
                assert_eq!(bucket_mid(i), v);
            }
        }
    }
}
