//! # metalora-obs
//!
//! Dependency-free instrumentation for the MetaLoRA stack.
//!
//! Four facilities, all funnelled through one global on/off switch:
//!
//! * [`span`] — hierarchical wall-clock spans (`pretrain/epoch0`) with
//!   thread-safe aggregation, via the [`span!`] macro or [`span::span`];
//! * [`counters`] — per-kernel flop/byte/call counters, the
//!   parallel-vs-serial dispatch tally of the `par` layer, and peak
//!   tensor bytes alive;
//! * [`metrics`] — the training-loop sink (loss / accuracy / grad-norm /
//!   wall time per epoch, grouped by phase);
//! * [`report`] — [`report::RunReport`] captures everything above into a
//!   structured `RUNLOG_<name>.json` plus a human-readable summary table.
//!
//! ## Zero overhead when disabled
//!
//! Instrumentation is off unless `METALORA_OBS=1` is set in the
//! environment (read once) or [`set_enabled`]`(true)` is called. Every
//! record function starts with a single relaxed atomic load and an early
//! return, so the instrumented hot loops cost one predictable branch when
//! observation is off — and never change numerics either way: observation
//! is purely passive.

pub mod counters;
mod json;
pub mod metrics;
pub mod report;
pub mod span;

use std::sync::atomic::{AtomicU8, Ordering};

const OFF: u8 = 0;
const ON: u8 = 1;
const UNSET: u8 = 2;

static ENABLED: AtomicU8 = AtomicU8::new(UNSET);

/// `true` when instrumentation is recording.
///
/// First call resolves the `METALORA_OBS` environment variable (any value
/// other than empty or `0` enables); [`set_enabled`] overrides it.
#[inline(always)]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        OFF => false,
        ON => true,
        _ => enabled_from_env(),
    }
}

#[cold]
fn enabled_from_env() -> bool {
    let on = std::env::var("METALORA_OBS")
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0"
        })
        .unwrap_or(false);
    ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

/// Programmatically switches instrumentation on or off, overriding
/// `METALORA_OBS`.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// Clears all recorded spans, counters and metrics (the enabled flag is
/// left as is). Call at the start of a run to scope a report to it.
pub fn reset() {
    counters::reset();
    span::reset();
    metrics::reset();
}

/// Opens a hierarchical timing span; the returned guard records the
/// elapsed time under the current thread's span path when dropped.
///
/// ```
/// metalora_obs::set_enabled(true);
/// {
///     let _outer = metalora_obs::span!("pretrain");
///     let _inner = metalora_obs::span!("epoch{}", 3);
///     // ... timed work; aggregates under "pretrain" and "pretrain/epoch3"
/// }
/// ```
///
/// When instrumentation is disabled the format arguments are **not**
/// evaluated and an inert guard is returned.
#[macro_export]
macro_rules! span {
    ($($arg:tt)*) => {
        if $crate::enabled() {
            $crate::span::span_owned(::std::format!($($arg)*))
        } else {
            $crate::span::SpanGuard::inert()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Obs state is global; tests in this crate serialise on this lock and
    /// restore a clean slate on drop.
    pub(crate) struct TestGuard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

    pub(crate) fn lock() -> TestGuard {
        static LOCK: Mutex<()> = Mutex::new(());
        let g = TestGuard(LOCK.lock().unwrap_or_else(|e| e.into_inner()));
        set_enabled(true);
        reset();
        g
    }

    impl Drop for TestGuard {
        fn drop(&mut self) {
            reset();
            set_enabled(false);
        }
    }

    #[test]
    fn toggling_enabled() {
        let _g = lock();
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock();
        set_enabled(false);
        counters::record_kernel(counters::Kernel::Matmul, 100, 10);
        counters::record_dispatch(true);
        counters::track_alloc(1 << 20);
        metrics::record_epoch("p", 1.0, 0.5, 0.1, 0.2);
        {
            let _s = span!("never");
        }
        set_enabled(true);
        let snap = counters::snapshot();
        assert!(snap.kernels.iter().all(|k| k.calls == 0));
        assert_eq!(snap.dispatch_parallel + snap.dispatch_serial, 0);
        assert_eq!(snap.peak_tensor_bytes, 0);
        assert!(metrics::snapshot().is_empty());
        assert!(span::snapshot().is_empty());
    }
}
