//! # metalora-obs
//!
//! Dependency-free instrumentation for the MetaLoRA stack.
//!
//! Eleven facilities, all funnelled through one global on/off switch:
//!
//! * [`span`] — hierarchical wall-clock spans (`pretrain/epoch0`) with
//!   thread-safe aggregation and per-path duration quantiles, via the
//!   [`span!`] macro or [`span::span`];
//! * [`trace`] — a bounded event timeline (begin/end records with
//!   monotonic timestamps and thread ids) exported as Chrome trace-event
//!   JSON, gated additionally by `METALORA_OBS_TRACE`;
//! * [`counters`] — per-kernel flop/byte/call counters, the
//!   parallel-vs-serial dispatch tally of the `par` layer, the
//!   packed-vs-legacy matmul microkernel tally, and peak tensor bytes
//!   alive;
//! * [`health`] — per-parameter-group training-health records (grad norm,
//!   update-to-weight ratio, NaN/Inf sentinels), sampled every
//!   `METALORA_OBS_SAMPLE`-th step;
//! * [`hist`] — the fixed-memory log-linear histogram backing span
//!   quantiles;
//! * [`metrics`] — the training-loop sink (loss / accuracy / grad-norm /
//!   wall time per epoch, grouped by phase);
//! * [`window`] — sliding-window primitives: the pluggable telemetry
//!   clock (monotonic in production, deterministic logical under test),
//!   ring-of-buckets windowed histograms, and EWMA rates;
//! * [`registry`] — the live metrics registry (counters, gauges, and
//!   windowed latency families keyed by tenant/method/batch signature,
//!   plus tail-latency attribution samples), gated additionally by
//!   `METALORA_OBS_METRICS`;
//! * [`slo`] — per-tenant SLO accounting: a target p99
//!   (`METALORA_SLO_P99_MS`) and error-budget burn over the window;
//! * [`export`] — registry/SLO snapshot exporter: Prometheus text
//!   exposition (`METRICS_<name>.prom`, validated by an in-repo parser)
//!   and an append-only `METRICS_<name>.jsonl` time series;
//! * [`report`] — [`report::RunReport`] captures everything above into a
//!   structured `RUNLOG_<name>.json` plus a human-readable summary table,
//!   written under [`out_dir`] (`METALORA_OBS_DIR`).
//!
//! ## Zero overhead when disabled
//!
//! Instrumentation is off unless `METALORA_OBS=1` is set in the
//! environment (read once) or [`set_enabled`]`(true)` is called. Every
//! record function starts with a single relaxed atomic load and an early
//! return, so the instrumented hot loops cost one predictable branch when
//! observation is off — and never change numerics either way: observation
//! is purely passive.

pub mod counters;
pub mod export;
pub mod health;
pub mod hist;
mod json;
pub mod metrics;
pub mod registry;
pub mod report;
pub mod slo;
pub mod span;
pub mod trace;
pub mod window;

use std::path::PathBuf;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

const OFF: u8 = 0;
const ON: u8 = 1;
const UNSET: u8 = 2;

static ENABLED: AtomicU8 = AtomicU8::new(UNSET);

/// `true` when instrumentation is recording.
///
/// First call resolves the `METALORA_OBS` environment variable (any value
/// other than empty or `0` enables); [`set_enabled`] overrides it.
#[inline(always)]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        OFF => false,
        ON => true,
        _ => enabled_from_env(),
    }
}

#[cold]
fn enabled_from_env() -> bool {
    let on = std::env::var("METALORA_OBS")
        .map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0"
        })
        .unwrap_or(false);
    ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
    on
}

/// Programmatically switches instrumentation on or off, overriding
/// `METALORA_OBS`.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// Clears all recorded spans, counters, metrics, trace events, health
/// records, registry series and SLO accounting (the enabled flags and
/// the telemetry clock mode are left as is). Call at the start of a run
/// to scope a report to it.
pub fn reset() {
    counters::reset();
    span::reset();
    metrics::reset();
    trace::reset();
    health::reset();
    registry::reset();
    slo::reset();
}

static OUT_DIR_OVERRIDE: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Directory where run logs and traces are written: the
/// [`set_out_dir`] override if set, else `METALORA_OBS_DIR`, else the
/// current directory.
pub fn out_dir() -> PathBuf {
    if let Some(dir) = &*OUT_DIR_OVERRIDE.lock().unwrap_or_else(|e| e.into_inner()) {
        return dir.clone();
    }
    match std::env::var_os("METALORA_OBS_DIR") {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from("."),
    }
}

/// Overrides the output directory for run logs and traces; `None` reverts
/// to `METALORA_OBS_DIR` / the current directory.
pub fn set_out_dir(dir: Option<PathBuf>) {
    *OUT_DIR_OVERRIDE.lock().unwrap_or_else(|e| e.into_inner()) = dir;
}

/// Maps a report name onto a filesystem-safe stem: every char outside
/// `[A-Za-z0-9._-]` becomes `_`.
pub fn sanitise_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Opens a hierarchical timing span; the returned guard records the
/// elapsed time under the current thread's span path when dropped.
///
/// ```
/// metalora_obs::set_enabled(true);
/// {
///     let _outer = metalora_obs::span!("pretrain");
///     let _inner = metalora_obs::span!("epoch{}", 3);
///     // ... timed work; aggregates under "pretrain" and "pretrain/epoch3"
/// }
/// ```
///
/// When instrumentation is disabled the format arguments are **not**
/// evaluated and an inert guard is returned.
#[macro_export]
macro_rules! span {
    ($($arg:tt)*) => {
        if $crate::enabled() {
            $crate::span::span_owned(::std::format!($($arg)*))
        } else {
            $crate::span::SpanGuard::inert()
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Obs state is global; tests in this crate serialise on this lock and
    /// restore a clean slate on drop.
    pub(crate) struct TestGuard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

    pub(crate) fn lock() -> TestGuard {
        static LOCK: Mutex<()> = Mutex::new(());
        let g = TestGuard(LOCK.lock().unwrap_or_else(|e| e.into_inner()));
        set_enabled(true);
        reset();
        g
    }

    impl Drop for TestGuard {
        fn drop(&mut self) {
            reset();
            set_enabled(false);
        }
    }

    #[test]
    fn toggling_enabled() {
        let _g = lock();
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = lock();
        set_enabled(false);
        counters::record_kernel(counters::Kernel::Matmul, 100, 10);
        counters::record_dispatch(true);
        counters::record_matmul_path(true);
        counters::track_alloc(1 << 20);
        metrics::record_epoch("p", 1.0, 0.5, 0.1, 0.2);
        health::record("g", 0, 1.0, 0.1, 2.0, 0, 0);
        trace::begin("never");
        {
            let _s = span!("never");
        }
        set_enabled(true);
        let snap = counters::snapshot();
        assert!(snap.kernels.iter().all(|k| k.calls == 0));
        assert_eq!(snap.dispatch_parallel + snap.dispatch_serial, 0);
        assert_eq!(snap.matmul_packed + snap.matmul_legacy, 0);
        assert_eq!(snap.peak_tensor_bytes, 0);
        assert!(metrics::snapshot().is_empty());
        assert!(span::snapshot().is_empty());
        assert!(health::snapshot().is_empty());
        assert!(trace::snapshot().0.is_empty());
    }

    #[test]
    fn out_dir_override_beats_env_and_reverts() {
        let _g = lock();
        set_out_dir(Some(PathBuf::from("/tmp/obs_override")));
        assert_eq!(out_dir(), PathBuf::from("/tmp/obs_override"));
        set_out_dir(None);
        // Without an override the env var (unset in tests) falls back to ".".
        if std::env::var_os("METALORA_OBS_DIR").is_none() {
            assert_eq!(out_dir(), PathBuf::from("."));
        }
    }

    #[test]
    fn sanitise_name_keeps_safe_chars() {
        assert_eq!(sanitise_name("table1"), "table1");
        assert_eq!(sanitise_name("a b/c:d"), "a_b_c_d");
        assert_eq!(sanitise_name("v1.2_x-y"), "v1.2_x-y");
    }
}
