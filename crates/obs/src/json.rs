//! Minimal JSON emission helpers.
//!
//! This crate must stay dependency-free (it is a dependency of the tensor
//! engine, below even the vendored serde stub), so the run report writes
//! its JSON by hand through these two functions.

/// Escapes and quotes `s` as a JSON string literal.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_and_non_finite() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn every_non_finite_shape_becomes_null() {
        // All the sentinel shapes that reach the RUNLOG/TRACE/METRICS
        // writers: f64 specials, f32 specials widened the way health
        // records widen them, and NaNs produced by arithmetic.
        for bad in [
            f64::NEG_INFINITY,
            -f64::NAN,
            f64::from(f32::NAN),
            f64::from(f32::INFINITY),
            f64::from(f32::NEG_INFINITY),
            0.0 / 0.0,
            f64::INFINITY - f64::INFINITY,
        ] {
            assert_eq!(num(bad), "null", "{bad:?} must serialise as null");
        }
    }

    #[test]
    fn extreme_finite_magnitudes_stay_plain_decimal() {
        // Rust's `{}` for f64 never emits exponent syntax, so even the
        // extremes remain valid JSON number tokens (no `1e300`, no
        // `inf`); spot-check the round trip through the vendored parser.
        for v in [f64::MAX, f64::MIN_POSITIVE, -f64::MAX, 1e300, -1e-300] {
            let s = num(v);
            assert!(!s.contains('e') && !s.contains('E'), "{v}: {s}");
            let parsed: serde_json::Value = serde_json::from_str(&s).unwrap();
            match parsed {
                serde_json::Value::Num(x) => assert_eq!(x, v, "round trip of {v}"),
                other => panic!("{v} parsed as {other:?}"),
            }
        }
    }
}
