//! Minimal JSON emission helpers.
//!
//! This crate must stay dependency-free (it is a dependency of the tensor
//! engine, below even the vendored serde stub), so the run report writes
//! its JSON by hand through these two functions.

/// Escapes and quotes `s` as a JSON string literal.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_and_non_finite() {
        assert_eq!(num(1.5), "1.5");
        assert_eq!(num(0.0), "0");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }
}
