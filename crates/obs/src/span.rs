//! Hierarchical wall-clock spans with thread-safe aggregation.
//!
//! Each thread keeps a stack of open span names; closing a span records
//! its elapsed time under the `/`-joined path of the stack at open time
//! (`"pretrain/epoch0"`). Aggregation is by full path: re-entering the
//! same path accumulates `count` and `total_ns`, so a phase that runs
//! once per seed shows up as one row with `count == seeds`.
//!
//! Spans are per-thread: a guard must be dropped on the thread that
//! opened it for the path nesting to make sense (guards created inside a
//! parallel kernel would aggregate under that worker's own stack).

use crate::hist::LogHistogram;
use crate::trace;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Aggregate of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// How many times the path was entered and exited.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
}

/// Per-path aggregate plus duration quantiles, as reported in run logs.
#[derive(Debug, Clone)]
pub struct SpanSummary {
    /// The `/`-joined span path.
    pub path: String,
    /// Count / total time (as in [`SpanStat`]).
    pub stat: SpanStat,
    /// Median duration estimate in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile duration estimate in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile duration estimate in nanoseconds.
    pub p99_ns: u64,
}

#[derive(Default)]
struct PathAgg {
    stat: SpanStat,
    hist: LogHistogram,
}

static AGG: Mutex<BTreeMap<String, PathAgg>> = Mutex::new(BTreeMap::new());

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard of an open span; records on drop. Inert when obtained while
/// instrumentation was disabled.
#[must_use = "a span records when the guard is dropped"]
pub struct SpanGuard {
    start: Option<Instant>,
}

impl SpanGuard {
    /// A guard that records nothing (the disabled path of [`crate::span!`]).
    pub fn inert() -> SpanGuard {
        SpanGuard { start: None }
    }
}

/// Opens a span named `name` (no-op when disabled). Prefer the
/// [`crate::span!`] macro, which skips formatting entirely when disabled.
pub fn span(name: &str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::inert();
    }
    span_owned(name.to_string())
}

/// Opens a span from an owned name; used by the [`crate::span!`] macro
/// after it has already checked [`crate::enabled`].
pub fn span_owned(name: String) -> SpanGuard {
    trace::begin(&name);
    STACK.with(|s| s.borrow_mut().push(name));
    SpanGuard {
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed().as_nanos() as u64;
        let (path, name) = STACK.with(|s| {
            let mut st = s.borrow_mut();
            let path = st.join("/");
            (path, st.pop())
        });
        if let Some(name) = &name {
            trace::end(name);
        }
        if path.is_empty() {
            return; // guard outlived a reset that cleared the stack owner
        }
        let mut agg = AGG.lock().unwrap_or_else(|e| e.into_inner());
        let entry = agg.entry(path).or_default();
        entry.stat.count += 1;
        entry.stat.total_ns += elapsed;
        entry.hist.record(elapsed);
    }
}

/// The `/`-joined path of the calling thread's open spans (empty when
/// none are open or instrumentation is disabled).
pub fn current_path() -> String {
    if !crate::enabled() {
        return String::new();
    }
    STACK.with(|s| s.borrow().join("/"))
}

/// All aggregated spans, sorted by path.
pub fn snapshot() -> Vec<(String, SpanStat)> {
    let agg = AGG.lock().unwrap_or_else(|e| e.into_inner());
    agg.iter().map(|(k, v)| (k.clone(), v.stat)).collect()
}

/// All aggregated spans with duration quantiles, sorted by path.
pub fn snapshot_summary() -> Vec<SpanSummary> {
    let agg = AGG.lock().unwrap_or_else(|e| e.into_inner());
    agg.iter()
        .map(|(k, v)| {
            let (p50_ns, p95_ns, p99_ns) = v.hist.percentiles();
            SpanSummary {
                path: k.clone(),
                stat: v.stat,
                p50_ns,
                p95_ns,
                p99_ns,
            }
        })
        .collect()
}

/// Clears the aggregate (open guards on other threads will still record
/// when they close).
pub fn reset() {
    AGG.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::lock;

    #[test]
    fn nesting_builds_paths_and_aggregates() {
        let _g = lock();
        for _ in 0..3 {
            let _outer = crate::span!("pretrain");
            assert_eq!(current_path(), "pretrain");
            let _inner = crate::span!("epoch{}", 0);
            assert_eq!(current_path(), "pretrain/epoch0");
        }
        let snap = snapshot();
        let paths: Vec<&str> = snap.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(paths, vec!["pretrain", "pretrain/epoch0"]);
        for (_, stat) in &snap {
            assert_eq!(stat.count, 3);
        }
    }

    #[test]
    fn sibling_spans_share_a_parent_path() {
        let _g = lock();
        {
            let _outer = span("run");
            let _a = span("adapt");
            drop(_a);
            let _b = span("probe");
        }
        let paths: Vec<String> = snapshot().into_iter().map(|(p, _)| p).collect();
        assert_eq!(paths, vec!["run", "run/adapt", "run/probe"]);
    }

    #[test]
    fn threads_keep_independent_stacks() {
        let _g = lock();
        let _outer = span("main");
        std::thread::scope(|s| {
            s.spawn(|| {
                let _w = span("worker");
                assert_eq!(current_path(), "worker");
            });
        });
        assert_eq!(current_path(), "main");
    }

    #[test]
    fn summary_quantiles_are_ordered_and_bounded() {
        let _g = lock();
        for ms in [1u64, 1, 1, 2, 5] {
            let _s = span("work");
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        let summary = snapshot_summary();
        assert_eq!(summary.len(), 1);
        let s = &summary[0];
        assert_eq!(s.path, "work");
        assert_eq!(s.stat.count, 5);
        assert!(s.p50_ns >= 1_000_000, "{s:?}");
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns, "{s:?}");
        assert!(s.p99_ns <= s.stat.total_ns, "{s:?}");
    }

    #[test]
    fn elapsed_time_is_recorded() {
        let _g = lock();
        {
            let _s = span("sleepy");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = snapshot();
        assert_eq!(snap.len(), 1);
        assert!(snap[0].1.total_ns >= 1_000_000, "{:?}", snap[0]);
    }
}
