//! Property tests for the merged-weight LRU cache.
//!
//! A reference model (a plain vec in recency order plus exact counters)
//! is driven with arbitrary interleavings of lookups, version bumps, and
//! whole-tenant purges; [`MergedCache`] must agree on residency, eviction
//! order, and the hit/miss/eviction/byte accounting after every step.
//! A second property checks the semantic contract: a weight served from
//! cache is bitwise the weight a fresh merge would produce.

use metalora_peft::merge;
use metalora_serve::{CacheStats, MergedCache};
use metalora_tensor::{init, Tensor};
use proptest::prelude::*;

/// Every cached tensor is [8, 8] → 256 bytes, so `capacity` entries fit.
const ENTRY_BYTES: usize = 256;

fn tensor_for(tenant: u64, version: u64) -> Tensor {
    Tensor::from_vec(
        vec![tenant as f32 + version as f32 / 100.0; 64],
        &[8, 8],
    )
    .unwrap()
}

/// Exact reference: keys in recency order (LRU first) + counters.
#[derive(Default)]
struct ModelLru {
    keys: Vec<(u64, u64)>,
    capacity_entries: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ModelLru {
    fn lookup(&mut self, key: (u64, u64)) {
        if let Some(pos) = self.keys.iter().position(|&k| k == key) {
            self.hits += 1;
            self.keys.remove(pos);
            self.keys.push(key);
        } else {
            self.misses += 1;
            self.keys.push(key);
            while self.keys.len() > self.capacity_entries {
                self.keys.remove(0);
                self.evictions += 1;
            }
        }
    }

    /// Purge: drop every resident key of `tenant` without touching the
    /// hit/miss/eviction counters (a purge is not an eviction).
    fn purge(&mut self, tenant: u64) {
        self.keys.retain(|&(t, _)| t != tenant);
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            bytes: (self.keys.len() * ENTRY_BYTES) as u64,
            bytes_f32: (self.keys.len() * ENTRY_BYTES) as u64,
            bytes_bf16: 0,
            entries: self.keys.len() as u64,
        }
    }
}

/// One step of the driving sequence: which tenant to act on, and whether
/// to first bump its version (re-registration) or purge it outright
/// (deregistration) before the lookup / instead of it.
#[derive(Debug, Clone, Copy)]
enum Action {
    Lookup,
    BumpThenLookup,
    Purge,
}

#[derive(Debug, Clone, Copy)]
struct Op {
    tenant: u64,
    action: Action,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Encodes (tenant ∈ 0..6, action ∈ {lookup, bump+lookup, purge}) in
    // one draw — the vendored proptest stub has no tuple strategies.
    (0u64..18).prop_map(|v| Op {
        tenant: v % 6,
        action: match v / 6 {
            0 => Action::Lookup,
            1 => Action::BumpThenLookup,
            _ => Action::Purge,
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lru_matches_reference_model(
        ops in prop::collection::vec(op_strategy(), 1..80),
        capacity_entries in 1usize..5,
    ) {
        let cache = MergedCache::new(capacity_entries * ENTRY_BYTES);
        let mut model = ModelLru {
            capacity_entries,
            ..ModelLru::default()
        };
        let mut versions = [1u64; 6];

        for op in ops {
            match op.action {
                Action::Purge => {
                    // Mid-sequence deregistration: all of the tenant's
                    // resident versions leave at once, the other tenants'
                    // recency order and the counters are untouched.
                    model.purge(op.tenant);
                    cache.purge_tenant(op.tenant);
                }
                lookup => {
                    if matches!(lookup, Action::BumpThenLookup) {
                        versions[op.tenant as usize] += 1;
                    }
                    let key = (op.tenant, versions[op.tenant as usize]);
                    model.lookup(key);
                    let built = cache
                        .get_or_insert(key, || Ok(tensor_for(key.0, key.1)))
                        .unwrap();
                    // Served value is always the key's own weight, never a
                    // stale entry from a pre-bump version.
                    prop_assert_eq!(built.data()[0], tenant_value(key));
                }
            }
            prop_assert_eq!(cache.lru_keys(), model.keys.clone(), "recency order");
            prop_assert_eq!(cache.stats(), model.stats(), "counters");
        }
    }

    #[test]
    fn cached_merge_is_bitwise_equal_to_fresh_merge(
        i in 1usize..7, o in 1usize..7, r in 1usize..4, seed in 0u64..300,
    ) {
        let mut rng = init::rng(seed);
        let base = init::uniform(&[i, o], -1.0, 1.0, &mut rng);
        let a = init::uniform(&[i, r], -1.0, 1.0, &mut rng);
        let b = init::uniform(&[r, o], -1.0, 1.0, &mut rng);
        let scaling = 1.5;

        let fresh = || merge::merge_into(&base, &merge::lora_delta(&a, &b, scaling)?);
        let cache = MergedCache::new(1 << 16);
        let first = cache.get_or_insert((1, 1), fresh).unwrap();
        // Second lookup must be a hit...
        let second = cache.get_or_insert((1, 1), || panic!("hit expected")).unwrap();
        prop_assert_eq!(cache.stats().hits, 1);
        // ...and both bitwise equal to an uncached merge.
        let reference = fresh().unwrap();
        let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&first), bits(&reference));
        prop_assert_eq!(bits(&second), bits(&reference));
    }
}

fn tenant_value(key: (u64, u64)) -> f32 {
    key.0 as f32 + key.1 as f32 / 100.0
}
