//! Tenant isolation under concurrency.
//!
//! Many threads hammer one shared engine — merged mode, with a cache
//! deliberately sized far below the tenant count so merged weights are
//! constantly evicted and re-merged underneath in-flight requests. Every
//! tenant's outputs must stay **bitwise identical** to a serial
//! per-tenant baseline: a hit handing out another tenant's weight, an
//! eviction recycling a buffer still in use, or a re-merge producing a
//! different weight would all show up as a bit flip here.

use metalora_nn::Linear;
use metalora_peft::{LoraConfig, LoraLinear, MultiLoraLinear};
use metalora_serve::{EngineConfig, Request, ServeEngine, TenantAdapter};
use metalora_tensor::{init, Tensor};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};

const CFG: LoraConfig = LoraConfig { rank: 2, alpha: 3.0 };
const IN: usize = 6;
const OUT: usize = 5;

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Engine with a cache that holds only two merged [6, 5] weights (120
/// bytes each) — every extra tenant forces eviction + later re-merge.
fn tiny_cache_engine(seed: u64) -> (ServeEngine, u64) {
    let mut rng = init::rng(seed);
    let base = Linear::new("fc", IN, OUT, &mut rng);
    let (w, bias) = (base.weight().value(), base.bias().map(|b| b.value()));
    let multi = MultiLoraLinear::new("fc", Box::new(base), 2, CFG, &mut rng);
    for b in &multi.b {
        b.set_value(init::uniform(&[CFG.rank, OUT], -0.7, 0.7, &mut rng));
    }
    let engine = ServeEngine::new(
        w,
        bias,
        EngineConfig {
            max_batch: 4,
            cache_bytes: 2 * IN * OUT * 4,
            use_merged: true,
        },
    )
    .with_bank(&multi);

    // Six plain-LoRA tenants (ids 0..6) with distinct factors, two bank
    // slots (ids 6, 7), one pinned-seed CP tenant (id 8).
    for id in 0..6u64 {
        engine.register(
            id,
            TenantAdapter::Lora {
                a: init::uniform(&[IN, CFG.rank], -1.0, 1.0, &mut rng),
                b: init::uniform(&[CFG.rank, OUT], -1.0, 1.0, &mut rng),
                scaling: CFG.scaling(),
            },
        );
    }
    engine.register(6, TenantAdapter::MultiSlot { slot: 0 });
    engine.register(7, TenantAdapter::MultiSlot { slot: 1 });
    engine.register(
        8,
        TenantAdapter::MetaCp {
            a: init::uniform(&[IN, CFG.rank], -1.0, 1.0, &mut rng),
            b: init::uniform(&[CFG.rank, OUT], -1.0, 1.0, &mut rng),
            scaling: CFG.scaling(),
            pinned_seed: Some(init::uniform(&[CFG.rank], -1.0, 1.0, &mut rng)),
        },
    );
    (engine, 9)
}

fn stream_for(tenant: u64, len: usize) -> Vec<Request> {
    let mut rng = init::rng(1000 + tenant);
    (0..len)
        .map(|_| Request::new(tenant, init::uniform(&[2, IN], -1.0, 1.0, &mut rng)))
        .collect()
}

#[test]
fn concurrent_tenants_never_cross_contaminate() {
    let (engine, tenants) = tiny_cache_engine(7);
    let streams: Vec<Vec<Request>> = (0..tenants).map(|t| stream_for(t, 24)).collect();

    // Serial per-tenant baseline. Cache state does not affect values, so
    // computing it on the same engine is fine.
    let baselines: Vec<Vec<Vec<u32>>> = streams
        .iter()
        .map(|s| {
            s.iter()
                .map(|r| bits(&engine.serve_one(r).unwrap()))
                .collect()
        })
        .collect();

    // All tenants at once, several passes each, against the 2-entry cache.
    std::thread::scope(|scope| {
        for (t, stream) in streams.iter().enumerate() {
            let engine = &engine;
            let baseline = &baselines[t];
            scope.spawn(move || {
                for _pass in 0..3 {
                    for (i, req) in stream.iter().enumerate() {
                        let y = engine.serve_one(req).unwrap();
                        assert_eq!(
                            bits(&y),
                            baseline[i],
                            "tenant {t} request {i} diverged under concurrency"
                        );
                    }
                }
            });
        }
    });

    let stats = engine.cache().stats();
    assert!(
        stats.evictions > 0,
        "cache churn expected (9 tenants, 2-entry cache): {stats:?}"
    );
}

#[test]
fn reregistration_races_do_not_leak_into_other_tenants() {
    let (engine, _) = tiny_cache_engine(8);
    let streams: Vec<Vec<Request>> = (0..6u64).map(|t| stream_for(t, 16)).collect();
    let baselines: Vec<Vec<Vec<u32>>> = streams
        .iter()
        .map(|s| {
            s.iter()
                .map(|r| bits(&engine.serve_one(r).unwrap()))
                .collect()
        })
        .collect();

    // Tenant 5 is re-registered with fresh factors in a tight loop while
    // tenants 0..5 serve; their outputs must not move by a single bit.
    // The churn loop keeps spinning until every serving thread reports
    // done, so re-registrations overlap the whole serving window.
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let engine_ref = &engine;
        let done_ref = &done;
        let churn = scope.spawn(move || {
            let mut rng = init::rng(999);
            let mut registrations = 0u64;
            while !done_ref.load(Relaxed) || registrations < 8 {
                engine_ref.register(
                    5,
                    TenantAdapter::Lora {
                        a: init::uniform(&[IN, CFG.rank], -1.0, 1.0, &mut rng),
                        b: init::uniform(&[CFG.rank, OUT], -1.0, 1.0, &mut rng),
                        scaling: CFG.scaling(),
                    },
                );
                engine_ref.cache().purge_tenant(5);
                registrations += 1;
            }
        });
        let servers: Vec<_> = (0..5usize)
            .map(|t| {
                let engine = &engine;
                let stream = &streams[t];
                let baseline = &baselines[t];
                scope.spawn(move || {
                    for _pass in 0..4 {
                        for (i, req) in stream.iter().enumerate() {
                            let y = engine.serve_one(req).unwrap();
                            assert_eq!(
                                bits(&y),
                                baseline[i],
                                "tenant {t} request {i} perturbed by tenant 5 churn"
                            );
                        }
                    }
                })
            })
            .collect();
        for s in servers {
            s.join().unwrap();
        }
        done.store(true, Relaxed);
        churn.join().unwrap();
    });

    // A post-race serve of tenant 5 uses its *latest* registration.
    let latest = engine.store().get(5).unwrap();
    assert!(latest.version > 1, "churn thread re-registered tenant 5");
    let y = engine
        .serve_one(&Request::new(5, stream_for(5, 1)[0].x.clone()))
        .unwrap();
    assert_eq!(y.dims(), &[2, OUT]);
}

/// A fresh LoRA module snapshot and a hand-rolled tenant built from the
/// same values serve identically — the store really is value-snapshot
/// based (no aliasing back into training-side parameter cells).
#[test]
fn snapshots_are_decoupled_from_training_cells() {
    let mut rng = init::rng(9);
    let base = Linear::new("fc", IN, OUT, &mut rng);
    let (w, bias) = (base.weight().value(), base.bias().map(|b| b.value()));
    let lora = LoraLinear::new("fc", Box::new(base), CFG, &mut rng);
    lora.b.set_value(init::uniform(&[CFG.rank, OUT], -0.7, 0.7, &mut rng));

    let engine = ServeEngine::new(w, bias, EngineConfig::default());
    engine.register(1, TenantAdapter::from_lora(&lora));
    let req = Request::new(1, init::uniform(&[2, IN], -1.0, 1.0, &mut rng));
    let before = bits(&engine.serve_one(&req).unwrap());

    // Mutating the training-side cell after registration must not change
    // what the engine serves.
    lora.b.set_value(Tensor::zeros(&[CFG.rank, OUT]));
    engine.cache().clear();
    let after = bits(&engine.serve_one(&req).unwrap());
    assert_eq!(before, after, "registered snapshot aliased training cell");
}
