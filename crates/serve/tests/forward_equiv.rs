//! Forward-only serving ≡ training-mode tape forward, **bitwise**.
//!
//! For every adapter method — plain LoRA, Conv-LoRA, MetaLoRA-CP and
//! MetaLoRA-TR (dynamic and pinned-seed), and a `peft::multi` bank slot —
//! the engine's tape-free path (`use_merged: false`) must reproduce the
//! recording-tape `Module::forward` bit for bit, at `METALORA_THREADS ∈
//! {1, 2, 4}`. This holds because both sides run the identical `ops::`
//! call sequence on identical values, and the kernel layer keeps a fixed
//! per-element accumulation order regardless of the thread count.

use metalora_autograd::Graph;
use metalora_nn::{Conv2d, Ctx, Linear, Module};
use metalora_peft::meta::{MappingNet, MetaLoraCpLinear, MetaLoraTrLinear};
use metalora_peft::{ConvLora, LoraConfig, LoraLinear, MultiLoraLinear};
use metalora_serve::forward::tile_seed;
use metalora_serve::{EngineConfig, Request, ServeEngine, TenantAdapter};
use metalora_tensor::{init, par, Tensor};
use std::sync::{Mutex, MutexGuard, OnceLock};

const CFG: LoraConfig = LoraConfig { rank: 2, alpha: 3.0 };
const THREADS: [usize; 3] = [1, 2, 4];

/// `set_num_threads` is process-global; serialize the sweeping tests.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

fn assert_bitwise(tape: &Tensor, served: &Tensor, what: &str, threads: usize) {
    assert_eq!(tape.dims(), served.dims(), "{what} dims at t={threads}");
    assert_eq!(bits(tape), bits(served), "{what} bitwise at t={threads}");
}

/// Engine in factored mode (bitwise path; merging is the approximate one).
fn factored_engine(w: Tensor, b: Option<Tensor>) -> ServeEngine {
    ServeEngine::new(
        w,
        b,
        EngineConfig {
            max_batch: 4,
            cache_bytes: 1 << 20,
            use_merged: false,
        },
    )
}

#[test]
fn lora_serving_matches_tape_bitwise() {
    let _l = lock();
    let mut rng = init::rng(101);
    let base = Linear::new("fc", 6, 5, &mut rng);
    let (w, bias) = (base.weight().value(), base.bias().map(|b| b.value()));
    let lora = LoraLinear::new("fc", Box::new(base), CFG, &mut rng);
    lora.b.set_value(init::uniform(&[CFG.rank, 5], -0.7, 0.7, &mut rng));
    let x = init::uniform(&[3, 6], -1.0, 1.0, &mut rng);

    let engine = factored_engine(w, bias);
    engine.register(1, TenantAdapter::from_lora(&lora));

    for t in THREADS {
        par::set_num_threads(t);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let y = lora.forward(&mut g, xv, &Ctx::none()).unwrap();
        let tape = g.value(y);
        let served = engine.serve_one(&Request::new(1, x.clone())).unwrap();
        assert_bitwise(&tape, &served, "lora", t);
    }
    par::set_num_threads(0);
}

#[test]
fn conv_lora_serving_matches_tape_bitwise() {
    let _l = lock();
    let mut rng = init::rng(102);
    let base = Conv2d::new("c", 2, 3, 3, 1, 1, &mut rng).unwrap();
    let (w, bias, spec) = (
        base.weight().value(),
        base.bias().map(|b| b.value()),
        base.spec(),
    );
    let cl = ConvLora::new("c", Box::new(base), CFG, &mut rng).unwrap();
    cl.b.set_value(init::uniform(&[CFG.rank, 3], -0.5, 0.5, &mut rng));
    let x = init::uniform(&[2, 2, 5, 5], -1.0, 1.0, &mut rng);

    let engine =
        factored_engine(Tensor::zeros(&[1, 1]), None).with_conv_base(w, bias, spec);
    engine.register(1, TenantAdapter::from_conv_lora(&cl));

    for t in THREADS {
        par::set_num_threads(t);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let y = cl.forward(&mut g, xv, &Ctx::none()).unwrap();
        let tape = g.value(y);
        let served = engine.serve_one(&Request::new(1, x.clone())).unwrap();
        assert_bitwise(&tape, &served, "conv_lora", t);
    }
    par::set_num_threads(0);
}

#[test]
fn dynamic_meta_cp_serving_matches_tape_bitwise() {
    let _l = lock();
    let mut rng = init::rng(103);
    let base = Linear::new("fc", 6, 4, &mut rng);
    let (w, bias) = (base.weight().value(), base.bias().map(|b| b.value()));
    let cp = MetaLoraCpLinear::new("fc", Box::new(base), CFG, &mut rng);
    cp.b.set_value(init::uniform(&[CFG.rank, 4], -0.6, 0.6, &mut rng));
    // The engine feeds raw request rows to the mapping net: in_dim = 6.
    let mapping = MappingNet::new("map", 6, 8, CFG.rank, &mut rng);
    let x = init::uniform(&[3, 6], -1.0, 1.0, &mut rng);

    let engine = factored_engine(w, bias).with_mapping_cp(&mapping);
    engine.register(1, TenantAdapter::from_meta_cp(&cp, None));

    for t in THREADS {
        par::set_num_threads(t);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let sv = mapping.generate(&mut g, xv).unwrap();
        let y = cp.forward(&mut g, xv, &Ctx::with_seed(sv)).unwrap();
        let tape = g.value(y);
        let served = engine.serve_one(&Request::new(1, x.clone())).unwrap();
        assert_bitwise(&tape, &served, "meta_cp dynamic", t);
    }
    par::set_num_threads(0);
}

#[test]
fn dynamic_meta_tr_serving_matches_tape_bitwise() {
    let _l = lock();
    let mut rng = init::rng(104);
    let base = Linear::new("fc", 5, 4, &mut rng);
    let (w, bias) = (base.weight().value(), base.bias().map(|b| b.value()));
    let tr = MetaLoraTrLinear::new("fc", Box::new(base), CFG, &mut rng);
    tr.b.set_value(init::uniform(
        &[CFG.rank, 4, CFG.rank],
        -0.6,
        0.6,
        &mut rng,
    ));
    let mapping = MappingNet::new("map", 5, 8, CFG.rank * CFG.rank, &mut rng);
    let x = init::uniform(&[4, 5], -1.0, 1.0, &mut rng);

    let engine = factored_engine(w, bias).with_mapping_tr(&mapping);
    engine.register(1, TenantAdapter::from_meta_tr(&tr, None));

    for t in THREADS {
        par::set_num_threads(t);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let sv = mapping.generate(&mut g, xv).unwrap();
        let y = tr.forward(&mut g, xv, &Ctx::with_seed(sv)).unwrap();
        let tape = g.value(y);
        let served = engine.serve_one(&Request::new(1, x.clone())).unwrap();
        assert_bitwise(&tape, &served, "meta_tr dynamic", t);
    }
    par::set_num_threads(0);
}

#[test]
fn pinned_seed_meta_serving_matches_tape_bitwise() {
    let _l = lock();
    let mut rng = init::rng(105);
    let base = Linear::new("fc", 6, 4, &mut rng);
    let (w, bias) = (base.weight().value(), base.bias().map(|b| b.value()));
    let cp = MetaLoraCpLinear::new("fc", Box::new(base), CFG, &mut rng);
    cp.b.set_value(init::uniform(&[CFG.rank, 4], -0.6, 0.6, &mut rng));
    let base2 = Linear::new("fc2", 6, 4, &mut rng);
    let tr = MetaLoraTrLinear::new("fc2", Box::new(base2), CFG, &mut rng);
    tr.b.set_value(init::uniform(
        &[CFG.rank, 4, CFG.rank],
        -0.6,
        0.6,
        &mut rng,
    ));
    let c_cp = init::uniform(&[CFG.rank], -1.0, 1.0, &mut rng);
    // TR pinned seeds are stored `[R, R]` (the `tr_delta` layout);
    // `tile_seed` flattens them row-major into the `[N, R·R]` rows the
    // factored forward consumes.
    let c_tr = init::uniform(&[CFG.rank, CFG.rank], -1.0, 1.0, &mut rng);
    let x = init::uniform(&[3, 6], -1.0, 1.0, &mut rng);

    // Only the CP tenant shares the engine base; TR pinned math is checked
    // against its own tape below with that base's engine.
    let engine = factored_engine(w, bias);
    engine.register(1, TenantAdapter::from_meta_cp(&cp, Some(c_cp.clone())));

    for t in THREADS {
        par::set_num_threads(t);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let sv = g.input(tile_seed(&c_cp, 3).unwrap());
        let y = cp.forward(&mut g, xv, &Ctx::with_seed(sv)).unwrap();
        let tape = g.value(y);
        let served = engine.serve_one(&Request::new(1, x.clone())).unwrap();
        assert_bitwise(&tape, &served, "meta_cp pinned", t);
    }

    let base2_w = tr.params()[0].value();
    let base2_b = tr.params()[1].value();
    let engine_tr = factored_engine(base2_w, Some(base2_b));
    engine_tr.register(1, TenantAdapter::from_meta_tr(&tr, Some(c_tr.clone())));

    for t in THREADS {
        par::set_num_threads(t);
        let mut g = Graph::new();
        let xv = g.input(x.clone());
        let sv = g.input(tile_seed(&c_tr, 3).unwrap());
        let y = tr.forward(&mut g, xv, &Ctx::with_seed(sv)).unwrap();
        let tape = g.value(y);
        let served = engine_tr.serve_one(&Request::new(1, x.clone())).unwrap();
        assert_bitwise(&tape, &served, "meta_tr pinned", t);
    }
    par::set_num_threads(0);
}

#[test]
fn multi_bank_slots_match_tape_bitwise() {
    let _l = lock();
    let mut rng = init::rng(106);
    let base = Linear::new("fc", 6, 5, &mut rng);
    let (w, bias) = (base.weight().value(), base.bias().map(|b| b.value()));
    let multi = MultiLoraLinear::new("fc", Box::new(base), 3, CFG, &mut rng);
    for b in &multi.b {
        b.set_value(init::uniform(&[CFG.rank, 5], -0.7, 0.7, &mut rng));
    }
    let x = init::uniform(&[2, 6], -1.0, 1.0, &mut rng);

    let engine = factored_engine(w, bias).with_bank(&multi);
    for k in 0..3 {
        engine.register(10 + k as u64, TenantAdapter::MultiSlot { slot: k });
    }

    for t in THREADS {
        par::set_num_threads(t);
        for k in 0..3 {
            let mut g = Graph::new();
            let xv = g.input(x.clone());
            let y = multi.forward(&mut g, xv, &Ctx::with_adapter(k)).unwrap();
            let tape = g.value(y);
            let served = engine
                .serve_one(&Request::new(10 + k as u64, x.clone()))
                .unwrap();
            assert_bitwise(&tape, &served, &format!("multi slot {k}"), t);
        }
    }
    par::set_num_threads(0);
}
