//! Serve telemetry: passivity, registry content, SLO accounting, and
//! exporter determinism.
//!
//! Four gates:
//!
//! 1. **Bitwise passivity** — the same traffic served with telemetry on
//!    (logical clock) and off produces bit-identical outputs. Telemetry
//!    only reads clocks and writes side tables; it never touches tensors.
//! 2. **Registry content** — per-tenant/per-method counters, the batch
//!    size family, cache/queue gauges and windowed latency families all
//!    land with the `key=value` label convention.
//! 3. **SLO + attribution** — under a microscopic p99 target every
//!    request is slow: budget burn goes positive and every tail sample
//!    names a dominant stage.
//! 4. **Exporter determinism** — two identical runs under the logical
//!    clock emit byte-identical JSONL lines, and the Prometheus text
//!    passes the in-repo parser.
//!
//! Obs state is process-global, so every test takes one shared lock and
//! restores a clean slate on drop.

use metalora_obs::window::{self, ClockMode};
use metalora_obs::{export, registry, slo};
use metalora_serve::{EngineConfig, Request, ServeEngine, TenantAdapter};
use metalora_tensor::{init, Tensor};
use std::sync::{Mutex, MutexGuard, OnceLock};

const IN: usize = 6;
const OUT: usize = 5;

/// Locks the obs globals, switches telemetry on under the logical clock,
/// and restores everything (including the monotonic clock) on drop.
struct TelGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

fn telemetry_on() -> TelGuard {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let g = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    metalora_obs::set_enabled(true);
    registry::set_enabled(true);
    window::set_clock(ClockMode::Logical);
    metalora_obs::reset();
    TelGuard(g)
}

impl Drop for TelGuard {
    fn drop(&mut self) {
        metalora_obs::reset();
        slo::set_target_ms(0.0);
        registry::set_window_secs(0);
        window::set_clock(ClockMode::Monotonic);
        registry::set_enabled(false);
        metalora_obs::set_enabled(false);
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Merged-mode engine with three LoRA tenants over a `[6, 5]` base.
fn engine(seed: u64) -> ServeEngine {
    let mut rng = init::rng(seed);
    let w = init::uniform(&[IN, OUT], -1.0, 1.0, &mut rng);
    let b = init::uniform(&[OUT], -0.5, 0.5, &mut rng);
    let e = ServeEngine::new(
        w,
        Some(b),
        EngineConfig {
            max_batch: 4,
            cache_bytes: 1 << 20,
            use_merged: true,
        },
    );
    for id in 0..3u64 {
        e.register(
            id,
            TenantAdapter::Lora {
                a: init::uniform(&[IN, 2], -1.0, 1.0, &mut rng),
                b: init::uniform(&[2, OUT], -1.0, 1.0, &mut rng),
                scaling: 1.5,
            },
        );
    }
    e
}

fn traffic(seed: u64) -> Vec<Request> {
    let mut rng = init::rng(seed);
    (0..10)
        .map(|i| {
            Request::new(
                (i % 3) as u64,
                init::uniform(&[1 + (i % 2), IN], -1.0, 1.0, &mut rng),
            )
        })
        .collect()
}

#[test]
fn telemetry_is_bitwise_passive() {
    let reqs = traffic(7);
    // Baseline: telemetry (and all obs) off.
    let base: Vec<Vec<u32>> = {
        let _g = telemetry_on();
        metalora_obs::set_enabled(false);
        registry::set_enabled(false);
        engine(11)
            .process(&reqs)
            .unwrap()
            .iter()
            .map(bits)
            .collect()
    };
    let timed: Vec<Vec<u32>> = {
        let _g = telemetry_on();
        engine(11)
            .process(&reqs)
            .unwrap()
            .iter()
            .map(bits)
            .collect()
    };
    assert_eq!(base, timed, "telemetry must never change served outputs");
}

#[test]
fn registry_records_tenants_methods_batches_and_gauges() {
    let _g = telemetry_on();
    let e = engine(12);
    e.process(&traffic(8)).unwrap();

    let snap = registry::snapshot();
    let counter = |name: &str, label: &str| -> u64 {
        snap.rows
            .iter()
            .find(|r| r.name == name && r.label == label)
            .map(|r| match &r.value {
                registry::MetricValue::Counter(c) => *c,
                _ => panic!("{name}{{{label}}} is not a counter"),
            })
            .unwrap_or_else(|| panic!("missing {name}{{{label}}}"))
    };
    // 10 requests, zipf-free round-robin over 3 tenants: 4 + 3 + 3.
    assert_eq!(counter("serve_requests_total", "tenant=0"), 4);
    assert_eq!(counter("serve_requests_total", "tenant=1"), 3);
    assert_eq!(counter("serve_requests_total", "tenant=2"), 3);
    assert_eq!(counter("serve_requests_by_method_total", "method=lora"), 10);
    // max_batch 4 over 10 requests: two full batches and a tail of 2.
    assert_eq!(counter("serve_batches_by_size_total", "size=4"), 2);
    assert_eq!(counter("serve_batches_by_size_total", "size=2"), 1);
    // Three merges (one per tenant), the rest hits.
    assert_eq!(counter("serve_cache_lookups_total", "result=miss"), 3);
    assert_eq!(counter("serve_cache_lookups_total", "result=hit"), 7);

    let windowed = |name: &str, label: &str| -> u64 {
        snap.rows
            .iter()
            .find(|r| r.name == name && r.label == label)
            .map(|r| match &r.value {
                registry::MetricValue::Window { count, .. } => *count,
                _ => panic!("{name}{{{label}}} is not a window"),
            })
            .unwrap_or_else(|| panic!("missing {name}{{{label}}}"))
    };
    assert_eq!(windowed("serve_request_latency_ns", "tenant=0"), 4);
    for stage in registry::STAGES {
        assert_eq!(
            windowed("serve_stage_ns", &format!("stage={stage}")),
            10,
            "every request records every stage"
        );
    }
    // Cache and queue gauges exist (values depend on eviction state).
    assert!(snap
        .rows
        .iter()
        .any(|r| r.name == "serve_cache_resident_bytes" && r.label == "kind=f32"));
    assert!(snap.rows.iter().any(|r| r.name == "serve_queue_depth"));
}

#[test]
fn microscopic_slo_target_burns_budget_and_attributes_tails() {
    let _g = telemetry_on();
    // 1 ns target: every request is beyond p99.
    slo::set_target_ms(0.000_001);
    let e = engine(13);
    e.process(&traffic(9)).unwrap();

    let rows = slo::snapshot_at(0);
    assert_eq!(rows.len(), 3, "one SLO row per tenant");
    for row in &rows {
        assert_eq!(row.slow, row.requests, "all requests slow at 1 ns");
        assert!(row.over_target(), "windowed p99 above a 1 ns target");
        assert!(row.budget_burn > 1.0, "error budget burning");
    }

    let snap = registry::snapshot();
    assert_eq!(snap.attributions.len(), 10, "one tail sample per request");
    let mut dominants = std::collections::BTreeSet::new();
    for a in &snap.attributions {
        dominants.insert(a.dominant_stage());
        assert_eq!(a.total_ns, a.stage_ns.iter().sum::<u64>());
        assert_eq!(a.method, "lora");
        assert_eq!(a.stage_ns[4], 0, "epilogue is fused into gemm");
    }
    // Under the logical clock a batch-opening request waits the longest
    // in the queue while a batch-closing one is forward-dominated — both
    // shapes must show up in the attribution ring.
    assert!(dominants.contains("queue"), "got {dominants:?}");
    assert!(dominants.contains("gemm"), "got {dominants:?}");
    // Request ids are the engine's own monotonically increasing stamps.
    let ids: Vec<u64> = snap.attributions.iter().map(|a| a.request_id).collect();
    assert_eq!(ids, (0..10).collect::<Vec<u64>>());
}

#[test]
fn exporter_is_deterministic_under_the_logical_clock() {
    let run = || -> (String, String) {
        let _g = telemetry_on();
        slo::set_target_ms(0.000_001);
        let e = engine(14);
        e.process(&traffic(10)).unwrap();
        let reg = registry::snapshot();
        let slo_rows = slo::snapshot_at(reg.now_ns);
        (
            export::jsonl_line(&reg, &slo_rows),
            export::prometheus_text(&reg, &slo_rows),
        )
    };
    let (json_a, prom_a) = run();
    let (json_b, prom_b) = run();
    assert_eq!(json_a, json_b, "JSONL must be byte-identical across runs");
    assert_eq!(prom_a, prom_b, "Prometheus text must be byte-identical");
    let samples = export::parse_prometheus(&prom_a).expect("exposition parses");
    assert!(samples > 20, "rich exposition expected, got {samples}");
    assert!(json_a.starts_with('{') && !json_a.contains('\n'));
}
