//! Batched seed generation ≡ one-request-at-a-time, **bitwise**.
//!
//! The engine amortises mapping-net work by stacking all dynamic
//! MetaLoRA rows of a batch into one `[ΣN, D]` forward. Because the
//! kernel layer computes matmul rows independently with a fixed
//! accumulation order, every request's seed — and therefore its output —
//! must be bitwise identical to what a `max_batch = 1` engine produces,
//! for ragged batch sizes and mixed CP/TR/static tenant interleavings.

use metalora_nn::Linear;
use metalora_peft::meta::{MappingNet, MetaLoraCpLinear, MetaLoraTrLinear};
use metalora_peft::{LoraConfig, LoraLinear};
use metalora_serve::{EngineConfig, Request, ServeEngine, TenantAdapter};
use metalora_tensor::{init, Tensor};

const CFG: LoraConfig = LoraConfig { rank: 2, alpha: 3.0 };
const IN: usize = 6;
const OUT: usize = 4;

/// The obs counters are process-global; serialize the tests in this file
/// so the counter-asserting one observes only its own traffic.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// An engine with one dynamic CP tenant (id 0), one dynamic TR tenant
/// (id 1), and one static LoRA tenant (id 2), factored mode.
fn engine(max_batch: usize) -> ServeEngine {
    let mut rng = init::rng(77);
    let base = Linear::new("fc", IN, OUT, &mut rng);
    let (w, bias) = (base.weight().value(), base.bias().map(|b| b.value()));

    let cp = MetaLoraCpLinear::new("fc", Box::new(base), CFG, &mut rng);
    cp.b.set_value(init::uniform(&[CFG.rank, OUT], -0.6, 0.6, &mut rng));
    let base_tr = Linear::new("fc_tr", IN, OUT, &mut rng);
    let tr = MetaLoraTrLinear::new("fc_tr", Box::new(base_tr), CFG, &mut rng);
    tr.b.set_value(init::uniform(
        &[CFG.rank, OUT, CFG.rank],
        -0.6,
        0.6,
        &mut rng,
    ));
    let base_lora = Linear::new("fc_l", IN, OUT, &mut rng);
    let lora = LoraLinear::new("fc_l", Box::new(base_lora), CFG, &mut rng);
    lora.b.set_value(init::uniform(&[CFG.rank, OUT], -0.6, 0.6, &mut rng));

    let map_cp = MappingNet::new("map_cp", IN, 8, CFG.rank, &mut rng);
    let map_tr = MappingNet::new("map_tr", IN, 8, CFG.rank * CFG.rank, &mut rng);

    let e = ServeEngine::new(
        w,
        bias,
        EngineConfig {
            max_batch,
            cache_bytes: 1 << 20,
            use_merged: false,
        },
    )
    .with_mapping_cp(&map_cp)
    .with_mapping_tr(&map_tr);
    e.register(0, TenantAdapter::from_meta_cp(&cp, None));
    e.register(1, TenantAdapter::from_meta_tr(&tr, None));
    e.register(2, TenantAdapter::from_lora(&lora));
    e
}

/// Mixed-tenant, ragged-row request stream (1–3 rows per request).
fn stream(len: usize) -> Vec<Request> {
    let mut rng = init::rng(555);
    (0..len)
        .map(|i| {
            let rows = 1 + i % 3;
            Request::new(
                (i % 3) as u64,
                init::uniform(&[rows, IN], -1.0, 1.0, &mut rng),
            )
        })
        .collect()
}

#[test]
fn batched_outputs_match_single_request_bitwise() {
    let _l = lock();
    let reqs = stream(23);
    // Reference: a max_batch = 1 engine serves each request alone, so
    // every mapping-net forward sees exactly one request's rows.
    let solo = engine(1);
    let reference: Vec<Vec<u32>> = reqs.iter().map(|r| bits(&solo.serve_one(r).unwrap())).collect();

    for max_batch in [1usize, 3, 7, 16] {
        let e = engine(max_batch);
        let outs = e.process(&reqs).unwrap();
        assert_eq!(outs.len(), reqs.len());
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(
                bits(out),
                reference[i],
                "request {i} diverged at max_batch={max_batch}"
            );
        }
        // 23 requests chunk into ⌈23 / max_batch⌉ batches.
        assert_eq!(e.batch_count(), (23usize).div_ceil(max_batch) as u64);
    }
}

#[test]
fn one_mapping_forward_per_format_per_batch() {
    let _l = lock();
    // All 6 requests are dynamic-CP → with max_batch = 6 the engine must
    // stack them into a single mapping forward of Σ rows.
    let reqs: Vec<Request> = stream(18)
        .into_iter()
        .filter(|r| r.tenant == 0)
        .collect();
    assert_eq!(reqs.len(), 6);
    let total_rows: usize = reqs.iter().map(|r| r.x.dims()[0]).sum();

    metalora_obs::set_enabled(true);
    metalora_obs::reset();
    let e = engine(6);
    let outs = e.process(&reqs).unwrap();
    assert_eq!(outs.len(), 6);
    let counters = metalora_obs::counters::snapshot();
    assert_eq!(counters.serve_batches, 1, "one batch expected");
    assert_eq!(
        counters.serve_seed_rows, total_rows as u64,
        "all dynamic rows through one amortised mapping forward"
    );

    // Same stream, unbatched: identical outputs, one seed forward each.
    metalora_obs::reset();
    let solo = engine(1);
    for (i, r) in reqs.iter().enumerate() {
        assert_eq!(bits(&solo.serve_one(r).unwrap()), bits(&outs[i]));
    }
    let counters = metalora_obs::counters::snapshot();
    assert_eq!(counters.serve_batches, 6);
    assert_eq!(counters.serve_seed_rows, total_rows as u64);
    metalora_obs::set_enabled(false);
}

#[test]
fn ragged_tail_is_flushed_in_order() {
    let _l = lock();
    let reqs = stream(7);
    let e = engine(16); // batch never fills — everything rides the flush
    let outs = e.process(&reqs).unwrap();
    assert_eq!(outs.len(), 7);
    assert_eq!(e.batch_count(), 1);
    let solo = engine(1);
    for (i, r) in reqs.iter().enumerate() {
        assert_eq!(bits(&outs[i]), bits(&solo.serve_one(r).unwrap()), "request {i}");
    }
}
