//! Serving with bf16 merged-weight snapshots (`METALORA_BF16=1`).
//!
//! Own integration binary: `bf16::set_enabled` is a process-wide toggle,
//! so these tests serialise on a local mutex and restore the off state —
//! the f32 suites (`forward_equiv`, `tenant_isolation`, `cache_prop`) run
//! in their own processes and never see the flip. Checked here:
//!
//! * bf16-merged serving stays within the documented error bound of
//!   f32-merged serving for **every cacheable adapter method** — the
//!   merged weight is rounded once (RNE, relative ≤ 2⁻⁸ per element), so
//!   `|y_bf16 - y_f32| ≤ 2⁻⁸ · (|x|·|W_merged|)` elementwise;
//! * the cache really holds the half-size entries (split byte stats,
//!   ~2× tenants at equal capacity);
//! * the factored path ignores the toggle entirely (bitwise).

use metalora_nn::Linear;
use metalora_peft::{merge, LoraConfig, MultiLoraLinear};
use metalora_serve::{EngineConfig, Request, ServeEngine, TenantAdapter};
use metalora_tensor::conv::ConvSpec;
use metalora_tensor::{bf16, init, ops, Tensor};
use std::sync::{Mutex, MutexGuard};

const CFG: LoraConfig = LoraConfig { rank: 2, alpha: 3.0 };
const IN: usize = 6;
const OUT: usize = 5;
const EPS: f32 = 1.0 / 256.0; // bf16 RNE relative bound, 2^-8

/// Guard that turns bf16 on for one test at a time and pins it back off.
struct Bf16On(MutexGuard<'static, ()>);

fn bf16_on() -> Bf16On {
    static LOCK: Mutex<()> = Mutex::new(());
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    bf16::set_enabled(true);
    Bf16On(g)
}

impl Drop for Bf16On {
    fn drop(&mut self) {
        bf16::set_enabled(false);
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

fn abs(t: &Tensor) -> Tensor {
    ops::map(t, f32::abs)
}

/// Asserts `|got - want| ≤ eps_scale·(|x|·|w|) + slack` elementwise — the
/// propagated bound for one RNE rounding of the dense weight `w`.
fn assert_within_rounding_bound(got: &Tensor, want: &Tensor, x: &Tensor, w: &Tensor) {
    let envelope = ops::matmul(&abs(x), &abs(w)).unwrap();
    let mut worst = 0.0f32;
    for ((g, e), env) in got.data().iter().zip(want.data()).zip(envelope.data()) {
        let err = (g - e).abs();
        assert!(
            err <= 1.1 * EPS * env + 1e-6,
            "err {err} exceeds rounding envelope {} (1.1·2⁻⁸·{env})",
            1.1 * EPS * env
        );
        worst = worst.max(err);
    }
    assert!(worst >= 0.0);
}

fn engine_pair(
    seed: u64,
    cache_bytes: usize,
) -> (ServeEngine, ServeEngine, Tensor, MultiLoraLinear) {
    let mut rng = init::rng(seed);
    let base = Linear::new("fc", IN, OUT, &mut rng);
    let (w, bias) = (base.weight().value(), base.bias().map(|b| b.value()));
    let multi = MultiLoraLinear::new("fc", Box::new(base), 2, CFG, &mut rng);
    for b in &multi.b {
        b.set_value(init::uniform(&[CFG.rank, OUT], -0.7, 0.7, &mut rng));
    }
    let cfg = EngineConfig {
        max_batch: 4,
        cache_bytes,
        use_merged: true,
    };
    let mk = |use_merged| {
        ServeEngine::new(w.clone(), bias.clone(), EngineConfig { use_merged, ..cfg })
            .with_bank(&multi)
    };
    (mk(true), mk(true), w, multi)
}

fn register_all(engine: &ServeEngine, rng: &mut rand::rngs::StdRng) {
    engine.register(
        0,
        TenantAdapter::Lora {
            a: init::uniform(&[IN, CFG.rank], -1.0, 1.0, rng),
            b: init::uniform(&[CFG.rank, OUT], -1.0, 1.0, rng),
            scaling: CFG.scaling(),
        },
    );
    engine.register(
        1,
        TenantAdapter::MetaCp {
            a: init::uniform(&[IN, CFG.rank], -1.0, 1.0, rng),
            b: init::uniform(&[CFG.rank, OUT], -1.0, 1.0, rng),
            scaling: CFG.scaling(),
            pinned_seed: Some(init::uniform(&[CFG.rank], -1.0, 1.0, rng)),
        },
    );
    engine.register(
        2,
        TenantAdapter::MetaTr {
            a: init::uniform(&[CFG.rank, IN, CFG.rank], -1.0, 1.0, rng),
            b: init::uniform(&[CFG.rank, OUT, CFG.rank], -1.0, 1.0, rng),
            scaling: CFG.scaling(),
            pinned_seed: Some(init::uniform(&[CFG.rank, CFG.rank], -1.0, 1.0, rng)),
        },
    );
    engine.register(3, TenantAdapter::MultiSlot { slot: 0 });
}

#[test]
fn bf16_merged_is_within_rounding_bound_of_f32_merged_per_method() {
    let _on;
    let (e16, e32, base_w, multi) = engine_pair(41, 1 << 20);
    {
        // Register and pre-serve the f32 baseline with bf16 *off*.
        let mut rng = init::rng(42);
        register_all(&e32, &mut rng);
        let mut rng = init::rng(42); // same factors for the bf16 engine
        register_all(&e16, &mut rng);
        _on = bf16_on();
    }
    let mut rng = init::rng(43);
    for tenant in 0..4u64 {
        let x = init::uniform(&[3, IN], -1.0, 1.0, &mut rng);
        let req = Request::new(tenant, x.clone());
        let y16 = e16.serve_one(&req).unwrap();
        // f32 baseline served outside the toggle's reach? serve_one reads
        // the toggle at forward time, so drop to f32 for the reference.
        bf16::set_enabled(false);
        let y32 = e32.serve_one(&req).unwrap();
        bf16::set_enabled(true);
        // Envelope vs the *merged* weight this tenant serves through: the
        // base weight dominates the delta here, so `|W|+|ΔW|` is bounded
        // by inflating the base envelope; reconstruct it exactly instead.
        let entry = e32.store().get(tenant).unwrap();
        let delta = match &entry.adapter {
            TenantAdapter::Lora { a, b, scaling } => merge::lora_delta(a, b, *scaling).unwrap(),
            TenantAdapter::MetaCp { a, b, scaling, pinned_seed } => {
                merge::cp_delta(a, b, pinned_seed.as_ref().unwrap(), *scaling).unwrap()
            }
            TenantAdapter::MetaTr { a, b, scaling, pinned_seed } => {
                merge::tr_delta(a, b, pinned_seed.as_ref().unwrap(), *scaling).unwrap()
            }
            TenantAdapter::MultiSlot { slot } => merge::lora_delta(
                &multi.a[*slot].value(),
                &multi.b[*slot].value(),
                multi.config().scaling(),
            )
            .unwrap(),
            _ => unreachable!(),
        };
        let merged = merge::merge_into(&base_w, &delta).unwrap();
        assert_within_rounding_bound(&y16, &y32, &x, &merged);
        assert!(
            bits(&y16) != bits(&y32) || y16.data().iter().all(|v| *v == 0.0),
            "tenant {tenant}: bf16 rounding should be observable"
        );
    }
    // Every served weight was cached as bf16, none as f32.
    let s = e16.cache().stats();
    assert!(s.bytes_bf16 > 0 && s.bytes_f32 == 0, "{s:?}");
}

#[test]
fn equal_capacity_serves_twice_the_tenants_without_eviction() {
    let _on = bf16_on();
    // Cache sized for exactly two f32 merged [IN, OUT] weights: f32 mode
    // thrashes with four tenants, bf16 mode holds all four.
    let cache_bytes = 2 * IN * OUT * 4;
    let (e16, e32, _, _multi) = engine_pair(44, cache_bytes);
    let mut rng = init::rng(45);
    register_all(&e16, &mut rng);
    let mut rng = init::rng(45);
    register_all(&e32, &mut rng);

    let mut rng = init::rng(46);
    let reqs: Vec<Request> = (0..4u64)
        .map(|t| Request::new(t, init::uniform(&[2, IN], -1.0, 1.0, &mut rng)))
        .collect();
    // Two passes: the second pass must be all hits in bf16 mode.
    for _ in 0..2 {
        for r in &reqs {
            e16.serve_one(r).unwrap();
        }
    }
    let s16 = e16.cache().stats();
    assert_eq!(s16.evictions, 0, "bf16 entries all fit: {s16:?}");
    assert_eq!(s16.entries, 4);
    assert_eq!(s16.hits, 4);
    assert_eq!(s16.bytes_bf16, (4 * IN * OUT * 2) as u64);

    bf16::set_enabled(false);
    for _ in 0..2 {
        for r in &reqs {
            e32.serve_one(r).unwrap();
        }
    }
    bf16::set_enabled(true);
    let s32 = e32.cache().stats();
    assert!(s32.evictions > 0, "f32 entries must thrash: {s32:?}");
}

#[test]
fn factored_path_ignores_the_toggle_bitwise() {
    let mut rng = init::rng(47);
    let base = Linear::new("fc", IN, OUT, &mut rng);
    let engine = ServeEngine::new(
        base.weight().value(),
        base.bias().map(|b| b.value()),
        EngineConfig {
            max_batch: 4,
            cache_bytes: 1 << 20,
            use_merged: false,
        },
    );
    engine.register(
        0,
        TenantAdapter::Lora {
            a: init::uniform(&[IN, CFG.rank], -1.0, 1.0, &mut rng),
            b: init::uniform(&[CFG.rank, OUT], -1.0, 1.0, &mut rng),
            scaling: CFG.scaling(),
        },
    );
    let req = Request::new(0, init::uniform(&[2, IN], -1.0, 1.0, &mut rng));
    let y_off = engine.serve_one(&req).unwrap();
    let y_on = {
        let _on = bf16_on();
        engine.serve_one(&req).unwrap()
    };
    assert_eq!(bits(&y_off), bits(&y_on), "factored path must stay f32");
    assert_eq!(engine.cache().stats().bytes, 0);
}
