//! Bridge from the serving engine into the live telemetry stack:
//! `obs::registry` (labeled counters/gauges/windowed latency families),
//! `obs::slo` (per-tenant target-p99 accounting) and the tail-latency
//! attribution ring.
//!
//! Label convention: registry labels are `key=value` strings — `tenant=3`,
//! `method=lora`, `size=16`, `stage=gemm` — which the exporter splits into
//! proper Prometheus label pairs.
//!
//! Every function here early-returns unless [`registry::enabled`], and the
//! engine additionally captures that bool once per batch so the per-request
//! loop takes no clock readings at all when telemetry is off. Recording is
//! purely passive — it never touches the tensors — so serve outputs are
//! bitwise identical with telemetry on or off (the golden pipeline and the
//! `telemetry` suite both assert it).

use crate::cache::CacheStats;
use crate::store::{TenantAdapter, TenantId};
use metalora_obs::registry::{self, Attribution, STAGES};
use metalora_obs::{counters, slo, window};

/// Per-stage nanosecond breakdown of one request, ordered like
/// [`registry::STAGES`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageNs {
    /// Batcher wait: enqueue stamp to batch start.
    pub queue: u64,
    /// Merged-weight cache lookup, including the merge on a miss.
    pub cache: u64,
    /// This request's share of the batch's stacked mapping-net forward.
    pub mapping: u64,
    /// The forward GEMM (and everything else in the tape-free forward
    /// that is not the cache stage).
    pub gemm: u64,
    /// Always 0 on the current engine: the bias/activation epilogue is
    /// fused into the GEMM store loop, so its time is part of `gemm`.
    pub epilogue: u64,
}

impl StageNs {
    /// Array view ordered like [`registry::STAGES`].
    pub fn to_array(self) -> [u64; 5] {
        [self.queue, self.cache, self.mapping, self.gemm, self.epilogue]
    }

    /// End-to-end latency: the sum of all stages.
    pub fn total(self) -> u64 {
        self.to_array().iter().sum()
    }
}

/// The `method=` label value of an adapter.
pub fn method_label(adapter: &TenantAdapter) -> &'static str {
    match adapter {
        TenantAdapter::Lora { .. } => "lora",
        TenantAdapter::ConvLora { .. } => "conv_lora",
        TenantAdapter::MetaCp { .. } => "meta_cp",
        TenantAdapter::MetaTr { .. } => "meta_tr",
        TenantAdapter::MultiSlot { .. } => "multi_slot",
    }
}

/// Records one served request: per-tenant and per-method counters, the
/// windowed latency family, per-stage latency windows, and SLO
/// accounting. A request beyond the tenant's p99 target additionally
/// lands a tail-latency [`Attribution`] sample naming the dominant stage.
pub fn record_request(request_id: u64, tenant: TenantId, method: &'static str, stages: StageNs) {
    if !registry::enabled() {
        return;
    }
    let now = window::now_ns();
    let total = stages.total();
    let tenant_label = format!("tenant={tenant}");
    registry::inc("serve_requests_total", &tenant_label, 1);
    registry::inc("serve_requests_by_method_total", &format!("method={method}"), 1);
    registry::observe("serve_request_latency_ns", &tenant_label, now, total);
    for (name, ns) in STAGES.iter().zip(stages.to_array()) {
        registry::observe("serve_stage_ns", &format!("stage={name}"), now, ns);
    }
    let slow = slo::record(&tenant.to_string(), now, total);
    if slow {
        counters::record_tail_attribution();
        registry::inc("serve_slow_requests_total", &tenant_label, 1);
        let a = Attribution {
            request_id,
            tenant: tenant.to_string(),
            method: method.to_string(),
            total_ns: total,
            stage_ns: stages.to_array(),
        };
        registry::inc("serve_tail_stage_total", &format!("stage={}", a.dominant_stage()), 1);
        registry::record_attribution(a);
    }
    counters::record_telemetry_request();
}

/// Records one executed batch under its size signature.
pub fn record_batch(size: usize) {
    if !registry::enabled() {
        return;
    }
    registry::inc("serve_batches_by_size_total", &format!("size={size}"), 1);
}

/// Mirrors the merged-weight cache accounting into gauges: resident bytes
/// split by storage precision, resident entries, and cumulative eviction
/// churn.
pub fn record_cache(stats: &CacheStats) {
    if !registry::enabled() {
        return;
    }
    registry::gauge_set("serve_cache_resident_bytes", "kind=f32", stats.bytes_f32 as f64);
    registry::gauge_set("serve_cache_resident_bytes", "kind=bf16", stats.bytes_bf16 as f64);
    registry::gauge_set("serve_cache_entries", "", stats.entries as f64);
    registry::gauge_set("serve_cache_eviction_churn", "", stats.evictions as f64);
}

/// Records batcher pressure: pending depth and the age of the oldest
/// waiting request.
pub fn record_queue(depth: usize, oldest_age_ns: u64) {
    if !registry::enabled() {
        return;
    }
    registry::gauge_set("serve_queue_depth", "", depth as f64);
    registry::gauge_set("serve_queue_age_ns", "", oldest_age_ns as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_array_order_matches_registry_stages() {
        let s = StageNs {
            queue: 1,
            cache: 2,
            mapping: 3,
            gemm: 4,
            epilogue: 5,
        };
        assert_eq!(s.to_array(), [1, 2, 3, 4, 5]);
        assert_eq!(s.total(), 15);
        assert_eq!(STAGES, ["queue", "cache", "mapping", "gemm", "epilogue"]);
    }

    #[test]
    fn method_labels_cover_every_adapter() {
        use metalora_tensor::Tensor;
        let t = || Tensor::zeros(&[1, 1]);
        let labels = [
            method_label(&TenantAdapter::Lora {
                a: t(),
                b: t(),
                scaling: 1.0,
            }),
            method_label(&TenantAdapter::MultiSlot { slot: 0 }),
        ];
        assert_eq!(labels, ["lora", "multi_slot"]);
    }
}
