//! Synthetic multi-tenant traffic: zipf-distributed tenant ids with
//! per-task input shifts, for the `serve` bench bin and CI smoke run.
//!
//! Real adapter-serving traffic is heavy-tailed — a few hot users issue
//! most requests while a long tail keeps the merged-weight cache churning.
//! A zipf(s) draw over tenant ids reproduces exactly that pressure, and a
//! deterministic per-task input shift makes different tasks' requests
//! occupy visibly different regions of input space (the "mixed task
//! shifts" the MetaLoRA evaluation is about).

use crate::batch::Request;
use crate::store::TenantId;
use metalora_tensor::init;
use rand::Rng;

/// Traffic-shape knobs.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Number of distinct tenants.
    pub tenants: usize,
    /// Number of distinct task shifts tenants are spread over.
    pub tasks: usize,
    /// Zipf exponent (0 = uniform; larger = more skewed).
    pub zipf_s: f64,
    /// Requests to generate.
    pub requests: usize,
    /// Input feature width.
    pub in_dim: usize,
    /// Maximum rows per request (drawn uniformly from `1..=max_rows`).
    pub max_rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            tenants: 16,
            tasks: 4,
            zipf_s: 1.1,
            requests: 256,
            in_dim: 8,
            max_rows: 4,
            seed: 42,
        }
    }
}

/// A zipf(s) sampler over `0..n` via CDF inversion.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Weights `1/(k+1)^s`, normalised.
    pub fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// The task a tenant's requests carry (round-robin over tasks).
pub fn task_of(tenant: TenantId, tasks: usize) -> usize {
    (tenant as usize) % tasks.max(1)
}

/// Deterministic per-task input shift for dimension `d` — a per-task
/// constant offset plus a per-dimension wiggle, so each task's requests
/// sit in a distinct input region.
fn task_shift(task: usize, d: usize) -> f32 {
    0.2 * task as f32 + 0.3 * ((task * 31 + d * 7 + 3) as f32).sin()
}

/// Generates the request stream: zipf-drawn tenant, 1..=`max_rows` input
/// rows of `uniform(-1, 1)` plus that tenant's task shift. Fully
/// deterministic in `cfg.seed`.
pub fn generate(cfg: &TrafficConfig) -> Vec<Request> {
    let mut rng = init::rng(cfg.seed);
    let zipf = Zipf::new(cfg.tenants.max(1), cfg.zipf_s);
    let mut reqs = Vec::with_capacity(cfg.requests);
    for _ in 0..cfg.requests {
        let tenant = zipf.sample(&mut rng) as TenantId;
        let task = task_of(tenant, cfg.tasks);
        let rows = rng.gen_range(1..=cfg.max_rows.max(1));
        let mut x = init::uniform(&[rows, cfg.in_dim], -1.0, 1.0, &mut rng);
        for r in 0..rows {
            for d in 0..cfg.in_dim {
                x.data_mut()[r * cfg.in_dim + d] += task_shift(task, d);
            }
        }
        reqs.push(Request::new(tenant, x));
    }
    reqs
}

/// Per-tenant request counts of a stream (diagnostics and tests).
pub fn tenant_histogram(reqs: &[Request], tenants: usize) -> Vec<usize> {
    let mut h = vec![0; tenants];
    for r in reqs {
        if (r.tenant as usize) < tenants {
            h[r.tenant as usize] += 1;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let cfg = TrafficConfig {
            tenants: 8,
            requests: 2000,
            ..TrafficConfig::default()
        };
        let reqs = generate(&cfg);
        assert_eq!(reqs.len(), 2000);
        let h = tenant_histogram(&reqs, 8);
        assert_eq!(h.iter().sum::<usize>(), 2000, "all tenants in range");
        assert!(h[0] > h[7], "zipf head outweighs tail");
        assert!(h[0] > 2000 / 8, "head above uniform share");
    }

    #[test]
    fn stream_is_deterministic_in_seed() {
        let cfg = TrafficConfig::default();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.tenant, rb.tenant);
            assert_eq!(ra.x.dims(), rb.x.dims());
            assert_eq!(ra.x.data(), rb.x.data());
        }
        let c = generate(&TrafficConfig {
            seed: 43,
            ..TrafficConfig::default()
        });
        assert!(a.iter().zip(&c).any(|(x, y)| x.tenant != y.tenant
            || x.x.dims() != y.x.dims()
            || x.x.data() != y.x.data()));
    }

    #[test]
    fn task_shifts_separate_means() {
        let cfg = TrafficConfig {
            tenants: 4,
            tasks: 4,
            requests: 400,
            zipf_s: 0.0, // uniform so every task appears
            ..TrafficConfig::default()
        };
        let reqs = generate(&cfg);
        // Mean input per task differs between at least one pair of tasks.
        let mut means = vec![(0.0f64, 0usize); 4];
        for r in &reqs {
            let t = task_of(r.tenant, 4);
            let m: f64 = r.x.data().iter().map(|&v| v as f64).sum::<f64>() / r.x.len() as f64;
            means[t].0 += m;
            means[t].1 += 1;
        }
        let avg: Vec<f64> = means
            .iter()
            .map(|(s, n)| if *n > 0 { s / *n as f64 } else { 0.0 })
            .collect();
        let spread = avg
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max)
            - avg.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.05, "task means too close: {avg:?}");
    }

    #[test]
    fn rows_bounded_by_max_rows() {
        let cfg = TrafficConfig {
            max_rows: 3,
            requests: 200,
            ..TrafficConfig::default()
        };
        for r in generate(&cfg) {
            assert!((1..=3).contains(&r.x.dims()[0]));
            assert_eq!(r.x.dims()[1], cfg.in_dim);
        }
    }
}
