//! The serving engine: store + cache + batcher + tape-free forwards.
//!
//! A [`ServeEngine`] owns value snapshots of one shared frozen base layer
//! (dense, and optionally a conv base and a `peft::multi` slot bank) plus
//! the two mapping nets, the tenant [`AdapterStore`] and the merged-weight
//! [`MergedCache`]. Everything inside is `Send + Sync` — requests can be
//! served from any number of threads through `&self`.
//!
//! Per batch, the engine amortises mapping-net seed generation: all
//! dynamic MetaLoRA-CP rows are stacked into one `[ΣN, D]` forward (and
//! likewise for TR), then split back per request — bitwise identical to
//! per-request generation because matmul rows are independent.

use crate::batch::{concat_rows, split_rows, Batcher, Request};
use crate::cache::{CacheKey, MergedCache};
use crate::forward::{self, MappingSnapshot};
use crate::store::{AdapterStore, TenantAdapter, TenantEntry, TenantId};
use crate::telemetry::{self, StageNs};
use crate::Result;
use metalora_obs::hist::LogHistogram;
use metalora_obs::{registry, window};
use metalora_peft::meta::MappingNet;
use metalora_peft::{merge, MultiLoraLinear};
use metalora_tensor::conv::ConvSpec;
use metalora_tensor::plan::{Plan, PlanBuilder};
use metalora_tensor::{bf16, par, Tensor, TensorError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Engine knobs. `use_merged` selects the serving mode: `true` folds
/// cacheable adapters into `W + ΔW` once (cached, approximate vs the
/// factored math at ~1e-4 relative); `false` always runs the factored
/// forward (bitwise-equal to training).
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Requests per released batch (`METALORA_SERVE_BATCH`, default 16).
    pub max_batch: usize,
    /// Merged-weight cache capacity in bytes (`METALORA_SERVE_CACHE_MB`,
    /// default 64 MiB).
    pub cache_bytes: usize,
    /// Serve cacheable tenants through merged weights.
    pub use_merged: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 16,
            cache_bytes: 64 * 1024 * 1024,
            use_merged: true,
        }
    }
}

impl EngineConfig {
    /// Reads `METALORA_SERVE_BATCH` and `METALORA_SERVE_CACHE_MB`.
    pub fn from_env() -> Self {
        let max_batch = std::env::var("METALORA_SERVE_BATCH")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(16);
        let cache_mb = std::env::var("METALORA_SERVE_CACHE_MB")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(64);
        EngineConfig {
            max_batch,
            cache_bytes: cache_mb * 1024 * 1024,
            use_merged: true,
        }
    }
}

/// The multi-tenant serving engine.
pub struct ServeEngine {
    base_w: Tensor,
    base_b: Option<Tensor>,
    conv_w: Option<Tensor>,
    conv_b: Option<Tensor>,
    conv_spec: Option<ConvSpec>,
    bank_a: Vec<Tensor>,
    bank_b: Vec<Tensor>,
    bank_scaling: f32,
    mapping_cp: Option<MappingSnapshot>,
    mapping_tr: Option<MappingSnapshot>,
    store: AdapterStore,
    cache: MergedCache,
    cfg: EngineConfig,
    hist: Mutex<LogHistogram>,
    requests: AtomicU64,
    batches: AtomicU64,
    next_request_id: AtomicU64,
    plans: Mutex<HashMap<PlanKey, Arc<Plan>>>,
}

/// The workspace signature of one batch: worker-team size, bf16 mode, and
/// the sorted per-request `(numel, rows, kind)` triples (kind 0 = dense
/// f32, 1 = dense through a bf16 merge, 2 = conv). Two batches with the
/// same key make exactly the same sequence of arena checkouts, so they
/// share one frozen [`Plan`].
type PlanKey = (usize, bool, Vec<(usize, usize, u8)>);

impl ServeEngine {
    /// An engine over one shared frozen dense base `w:[I,O]` (+ `bias:[O]`).
    pub fn new(base_w: Tensor, base_b: Option<Tensor>, cfg: EngineConfig) -> Self {
        let cache = MergedCache::new(cfg.cache_bytes);
        ServeEngine {
            base_w,
            base_b,
            conv_w: None,
            conv_b: None,
            conv_spec: None,
            bank_a: Vec::new(),
            bank_b: Vec::new(),
            bank_scaling: 1.0,
            mapping_cp: None,
            mapping_tr: None,
            store: AdapterStore::new(),
            cache,
            cfg,
            hist: Mutex::new(LogHistogram::new()),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            next_request_id: AtomicU64::new(0),
            plans: Mutex::new(HashMap::new()),
        }
    }

    /// Adds a shared frozen conv base for `ConvLora` tenants.
    pub fn with_conv_base(mut self, w: Tensor, bias: Option<Tensor>, spec: ConvSpec) -> Self {
        self.conv_w = Some(w);
        self.conv_b = bias;
        self.conv_spec = Some(spec);
        self
    }

    /// Snapshots a trained `peft::multi` bank for `MultiSlot` tenants.
    pub fn with_bank(mut self, bank: &MultiLoraLinear) -> Self {
        self.bank_a = bank.a.iter().map(|p| p.value()).collect();
        self.bank_b = bank.b.iter().map(|p| p.value()).collect();
        self.bank_scaling = bank.config().scaling();
        self
    }

    /// Snapshots the CP mapping net for dynamic `MetaCp` tenants.
    pub fn with_mapping_cp(mut self, net: &MappingNet) -> Self {
        self.mapping_cp = Some(MappingSnapshot::from_net(net));
        self
    }

    /// Snapshots the TR mapping net for dynamic `MetaTr` tenants.
    pub fn with_mapping_tr(mut self, net: &MappingNet) -> Self {
        self.mapping_tr = Some(MappingSnapshot::from_net(net));
        self
    }

    /// Registers (or replaces) a tenant; returns its version stamp.
    pub fn register(&self, id: TenantId, adapter: TenantAdapter) -> u64 {
        self.store.insert(id, adapter)
    }

    /// Deregisters a tenant and purges its merged weights.
    pub fn deregister(&self, id: TenantId) -> bool {
        let existed = self.store.remove(id);
        self.cache.purge_tenant(id);
        existed
    }

    /// The tenant registry.
    pub fn store(&self) -> &AdapterStore {
        &self.store
    }

    /// The merged-weight cache.
    pub fn cache(&self) -> &MergedCache {
        &self.cache
    }

    /// The engine knobs.
    pub fn config(&self) -> EngineConfig {
        self.cfg
    }

    /// Requests served so far.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Relaxed)
    }

    /// Batches executed so far.
    pub fn batch_count(&self) -> u64 {
        self.batches.load(Relaxed)
    }

    /// Distinct (shape, threads) plans built so far — stays flat once the
    /// workload's shape signatures have all been seen.
    pub fn plan_count(&self) -> usize {
        self.plans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Per-request forward latency `(p50, p95, p99)` in microseconds.
    pub fn latency_percentiles_us(&self) -> (f64, f64, f64) {
        let h = self.hist.lock().unwrap_or_else(|e| e.into_inner());
        let (p50, p95, p99) = h.percentiles();
        (p50 as f64 / 1e3, p95 as f64 / 1e3, p99 as f64 / 1e3)
    }

    /// Serves one request (a one-element batch).
    pub fn serve_one(&self, req: &Request) -> Result<Tensor> {
        let mut out = self.serve_batch(std::slice::from_ref(req))?;
        Ok(out.remove(0))
    }

    /// Serves a whole stream, chunked into `max_batch`-sized batches;
    /// outputs are in request order. With telemetry on
    /// ([`metalora_obs::registry::enabled`]) each request is stamped at
    /// enqueue so its batcher wait lands in the `queue` stage, and the
    /// batcher's depth/age gauges are refreshed on every push.
    pub fn process(&self, reqs: &[Request]) -> Result<Vec<Tensor>> {
        let tel = registry::enabled();
        let mut out = Vec::with_capacity(reqs.len());
        let mut batcher = Batcher::new(self.cfg.max_batch);
        for r in reqs {
            let now = if tel { window::now_ns() } else { 0 };
            if let Some((batch, enq)) = batcher.push_stamped(r.clone(), now) {
                out.extend(self.serve_batch_timed(&batch, &enq)?);
            } else if tel {
                let age = batcher
                    .oldest_enqueued_ns()
                    .map_or(0, |e| now.saturating_sub(e));
                telemetry::record_queue(batcher.pending(), age);
            }
        }
        let (tail, enq) = batcher.flush_stamped();
        if !tail.is_empty() {
            out.extend(self.serve_batch_timed(&tail, &enq)?);
        }
        Ok(out)
    }

    /// Serves one batch with no enqueue stamps (every `queue` stage reads
    /// zero). Outputs are in request order.
    pub fn serve_batch(&self, reqs: &[Request]) -> Result<Vec<Tensor>> {
        self.serve_batch_timed(reqs, &[])
    }

    /// Serves one batch: resolves tenants, amortises dynamic seed
    /// generation across the batch, then runs each request's tape-free
    /// forward. Outputs are in request order.
    ///
    /// `enq_ns` carries per-request enqueue stamps from the batcher (empty
    /// or zero ⇒ no queue wait attributed). With telemetry on, every
    /// request gets an id and a per-stage breakdown (queue / cache /
    /// mapping / gemm / epilogue) recorded through [`crate::telemetry`];
    /// the telemetry clock is only read from this sequential loop — never
    /// from parallel kernel workers — so logical-clock runs are
    /// bit-reproducible. Timing is passive: outputs are bitwise identical
    /// with telemetry on or off.
    pub fn serve_batch_timed(&self, reqs: &[Request], enq_ns: &[u64]) -> Result<Vec<Tensor>> {
        let _sp = metalora_obs::span!("serve/batch");
        let tel = registry::enabled();
        let entries: Vec<Arc<TenantEntry>> = reqs
            .iter()
            .map(|r| self.store.get_required(r.tenant))
            .collect::<Result<_>>()?;

        // One static plan per (shape, threads) signature: warming it makes
        // every arena checkout below a guaranteed pool hit, so the hot
        // path never discovers sizes or touches the allocator.
        self.batch_plan(reqs, &entries).warm();

        let batch_t0 = if tel { window::now_ns() } else { 0 };
        let seeds = self.generate_batch_seeds(reqs, &entries)?;
        let seed_ns = if tel {
            window::now_ns().saturating_sub(batch_t0)
        } else {
            0
        };
        // The stacked mapping-net forward is one GEMM for all dynamic
        // requests; attribute it evenly across them.
        let mapping_share = if seeds.is_empty() {
            0
        } else {
            seed_ns / seeds.len() as u64
        };

        let mut out = Vec::with_capacity(reqs.len());
        for (i, (req, entry)) in reqs.iter().zip(&entries).enumerate() {
            let start = Instant::now();
            let mut stages = StageNs::default();
            let fwd_t0 = if tel { window::now_ns() } else { 0 };
            let y = self.forward_one(entry, &req.x, seeds.get(&i), tel, &mut stages)?;
            let ns = start.elapsed().as_nanos() as u64;
            self.hist.lock().unwrap_or_else(|e| e.into_inner()).record(ns);
            if tel {
                let fwd_ns = window::now_ns().saturating_sub(fwd_t0);
                // Epilogues are fused into the GEMM store, so the forward
                // splits into cache time and "everything else" = gemm.
                stages.gemm = fwd_ns.saturating_sub(stages.cache);
                if seeds.contains_key(&i) {
                    stages.mapping = mapping_share;
                }
                stages.queue = enq_ns
                    .get(i)
                    .filter(|&&e| e > 0)
                    .map_or(0, |&e| batch_t0.saturating_sub(e));
                let id = self.next_request_id.fetch_add(1, Relaxed);
                telemetry::record_request(id, req.tenant, telemetry::method_label(&entry.adapter), stages);
            }
            out.push(y);
        }
        self.requests.fetch_add(reqs.len() as u64, Relaxed);
        self.batches.fetch_add(1, Relaxed);
        metalora_obs::counters::record_serve_batch(reqs.len() as u64);
        if tel {
            telemetry::record_batch(reqs.len());
            telemetry::record_cache(&self.cache.stats());
        }
        Ok(out)
    }

    /// The frozen workspace plan for this batch's shape signature: fetched
    /// from the per-engine map, or built once (the only slow path) by
    /// replaying the batch's GEMM and conv shapes through a
    /// [`PlanBuilder`]. Covers the per-request base products (dense f32,
    /// dense through a bf16 merge, or conv via im2col) and the stacked
    /// mapping-net forwards; the adapter-delta matmuls are below the
    /// packed threshold at serving scale and take no scratch.
    fn batch_plan(&self, reqs: &[Request], entries: &[Arc<TenantEntry>]) -> Arc<Plan> {
        let threads = par::num_threads();
        let bf = bf16::enabled();
        let kind = |e: &TenantEntry| -> u8 {
            match &e.adapter {
                TenantAdapter::ConvLora { .. } => 2,
                _ if bf && self.cfg.use_merged && e.adapter.cacheable() => 1,
                _ => 0,
            }
        };
        let mut sig: Vec<(usize, usize, u8)> = reqs
            .iter()
            .zip(entries)
            .map(|(r, e)| (r.x.len(), r.rows(), kind(e)))
            .collect();
        sig.sort_unstable();
        let key: PlanKey = (threads, bf, sig);
        if let Some(p) = self
            .plans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
        {
            return p.clone();
        }

        let mut b = PlanBuilder::new(threads);
        let (i, o) = (self.base_w.dims()[0], self.base_w.dims()[1]);
        let mut dyn_rows = [0usize; 2]; // stacked cp / tr mapping rows
        for (req, entry) in reqs.iter().zip(entries) {
            match &entry.adapter {
                TenantAdapter::ConvLora { .. } => {
                    if let (Some(w), Some(spec)) = (&self.conv_w, self.conv_spec) {
                        let d = req.x.dims();
                        if d.len() == 4 {
                            b.conv2d(d[0], d[1], d[2], d[3], spec, spec, w.dims()[3]);
                        }
                    }
                }
                adapter => {
                    if kind(entry) == 1 {
                        b.gemm_bf16_weights(req.rows(), o, i);
                    } else {
                        b.gemm(req.rows(), o, i);
                    }
                    if let TenantAdapter::MetaCp {
                        pinned_seed: None, ..
                    } = adapter
                    {
                        dyn_rows[0] += req.rows();
                    }
                    if let TenantAdapter::MetaTr {
                        pinned_seed: None, ..
                    } = adapter
                    {
                        dyn_rows[1] += req.rows();
                    }
                }
            }
        }
        for (mapping, rows) in [(&self.mapping_cp, dyn_rows[0]), (&self.mapping_tr, dyn_rows[1])] {
            if let (Some(m), true) = (mapping, rows > 0) {
                b.gemm(rows, m.hidden_dim(), m.in_dim());
                b.gemm(rows, m.out_dim(), m.hidden_dim());
            }
        }
        let plan = Arc::new(b.build());
        self.plans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(key)
            .or_insert(plan)
            .clone()
    }

    /// One mapping-net forward per format for all dynamic rows of the
    /// batch, split back into per-request seed blocks keyed by request
    /// index.
    fn generate_batch_seeds(
        &self,
        reqs: &[Request],
        entries: &[Arc<TenantEntry>],
    ) -> Result<HashMap<usize, Tensor>> {
        let mut seeds = HashMap::new();
        for (format, mapping) in [("cp", &self.mapping_cp), ("tr", &self.mapping_tr)] {
            let dynamic: Vec<usize> = entries
                .iter()
                .enumerate()
                .filter(|(_, e)| match (&e.adapter, format) {
                    (TenantAdapter::MetaCp { pinned_seed, .. }, "cp")
                    | (TenantAdapter::MetaTr { pinned_seed, .. }, "tr") => pinned_seed.is_none(),
                    _ => false,
                })
                .map(|(i, _)| i)
                .collect();
            if dynamic.is_empty() {
                continue;
            }
            let Some(mapping) = mapping else {
                return Err(TensorError::InvalidArgument(format!(
                    "serve: dynamic meta_{format} tenant but no {format} mapping net registered"
                )));
            };
            let _sp = metalora_obs::span!("serve/seed");
            let parts: Vec<&Tensor> = dynamic.iter().map(|&i| &reqs[i].x).collect();
            let counts: Vec<usize> = parts.iter().map(|t| t.dims()[0]).collect();
            let stacked = concat_rows(&parts)?;
            let generated = mapping.generate(&stacked)?;
            metalora_obs::counters::record_serve_seed_rows(generated.dims()[0] as u64);
            for (i, seed) in dynamic.into_iter().zip(split_rows(&generated, &counts)?) {
                seeds.insert(i, seed);
            }
        }
        Ok(seeds)
    }

    /// Dense forward through the merged-weight cache. With
    /// `METALORA_BF16=1` the merge is snapshot to bf16 before caching —
    /// half the resident bytes (≈2× tenants at equal capacity) and half
    /// the weight bytes streamed per forward, at the cost of one RNE
    /// rounding of the merged weight (the factored path stays f32 and
    /// bitwise-exact regardless of the toggle).
    /// `tel`/`stages` attribute the cache lookup (merge included on a
    /// miss) to the `cache` stage when telemetry is on.
    fn merged_dense<D>(
        &self,
        key: CacheKey,
        x: &Tensor,
        delta: D,
        tel: bool,
        stages: &mut StageNs,
    ) -> Result<Tensor>
    where
        D: FnOnce() -> Result<Tensor>,
    {
        let t0 = if tel { window::now_ns() } else { 0 };
        if bf16::enabled() {
            let w = self
                .cache
                .get_or_insert_bf16(key, || merge::merge_into_bf16(&self.base_w, &delta()?))?;
            if tel {
                stages.cache = window::now_ns().saturating_sub(t0);
            }
            forward::merged_linear_bf16(x, &w, self.base_b.as_ref())
        } else {
            let w = self
                .cache
                .get_or_insert(key, || merge::merge_into(&self.base_w, &delta()?))?;
            if tel {
                stages.cache = window::now_ns().saturating_sub(t0);
            }
            forward::merged_linear(x, &w, self.base_b.as_ref())
        }
    }

    /// Conv twin of [`Self::merged_dense`] over the frozen conv base.
    fn merged_conv<D>(
        &self,
        key: CacheKey,
        x: &Tensor,
        delta: D,
        tel: bool,
        stages: &mut StageNs,
    ) -> Result<Tensor>
    where
        D: FnOnce() -> Result<Tensor>,
    {
        let (w, spec) = self.conv_base()?;
        let t0 = if tel { window::now_ns() } else { 0 };
        if bf16::enabled() {
            let m = self
                .cache
                .get_or_insert_bf16(key, || merge::merge_into_bf16(w, &delta()?))?;
            if tel {
                stages.cache = window::now_ns().saturating_sub(t0);
            }
            forward::merged_conv_bf16(x, &m, self.conv_b.as_ref(), spec)
        } else {
            let m = self
                .cache
                .get_or_insert(key, || merge::merge_into(w, &delta()?))?;
            if tel {
                stages.cache = window::now_ns().saturating_sub(t0);
            }
            forward::merged_conv(x, &m, self.conv_b.as_ref(), spec)
        }
    }

    /// One request's tape-free forward, choosing the merged-cached or
    /// factored path.
    fn forward_one(
        &self,
        entry: &TenantEntry,
        x: &Tensor,
        seed: Option<&Tensor>,
        tel: bool,
        stages: &mut StageNs,
    ) -> Result<Tensor> {
        let key = (entry.id, entry.version);
        let merged_mode = self.cfg.use_merged && entry.adapter.cacheable();
        match &entry.adapter {
            TenantAdapter::Lora { a, b, scaling } => {
                if merged_mode {
                    self.merged_dense(key, x, || merge::lora_delta(a, b, *scaling), tel, stages)
                } else {
                    forward::lora_linear(x, &self.base_w, self.base_b.as_ref(), a, b, *scaling)
                }
            }
            TenantAdapter::ConvLora { a, b, scaling } => {
                if merged_mode {
                    self.merged_conv(key, x, || merge::conv_lora_delta(a, b, *scaling), tel, stages)
                } else {
                    let (w, spec) = self.conv_base()?;
                    forward::conv_lora(x, w, self.conv_b.as_ref(), spec, a, b, *scaling)
                }
            }
            TenantAdapter::MetaCp {
                a,
                b,
                scaling,
                pinned_seed,
            } => match pinned_seed {
                Some(c) if merged_mode => {
                    self.merged_dense(key, x, || merge::cp_delta(a, b, c, *scaling), tel, stages)
                }
                Some(c) => {
                    let rows = forward::tile_seed(c, x.dims()[0])?;
                    forward::meta_cp_linear(x, &self.base_w, self.base_b.as_ref(), a, b, &rows, *scaling)
                }
                None => {
                    let seed = seed.ok_or_else(|| {
                        TensorError::InvalidArgument("serve: missing generated CP seed".into())
                    })?;
                    forward::meta_cp_linear(x, &self.base_w, self.base_b.as_ref(), a, b, seed, *scaling)
                }
            },
            TenantAdapter::MetaTr {
                a,
                b,
                scaling,
                pinned_seed,
            } => match pinned_seed {
                Some(c) if merged_mode => {
                    self.merged_dense(key, x, || merge::tr_delta(a, b, c, *scaling), tel, stages)
                }
                Some(c) => {
                    let rows = forward::tile_seed(c, x.dims()[0])?;
                    forward::meta_tr_linear(x, &self.base_w, self.base_b.as_ref(), a, b, &rows, *scaling)
                }
                None => {
                    let seed = seed.ok_or_else(|| {
                        TensorError::InvalidArgument("serve: missing generated TR seed".into())
                    })?;
                    forward::meta_tr_linear(x, &self.base_w, self.base_b.as_ref(), a, b, seed, *scaling)
                }
            },
            TenantAdapter::MultiSlot { slot } => {
                if *slot >= self.bank_a.len() {
                    return Err(TensorError::IndexOutOfRange {
                        index: *slot,
                        len: self.bank_a.len(),
                    });
                }
                let (a, b) = (&self.bank_a[*slot], &self.bank_b[*slot]);
                if merged_mode {
                    self.merged_dense(key, x, || merge::lora_delta(a, b, self.bank_scaling), tel, stages)
                } else {
                    forward::lora_linear(x, &self.base_w, self.base_b.as_ref(), a, b, self.bank_scaling)
                }
            }
        }
    }

    fn conv_base(&self) -> Result<(&Tensor, ConvSpec)> {
        match (&self.conv_w, self.conv_spec) {
            (Some(w), Some(spec)) => Ok((w, spec)),
            _ => Err(TensorError::InvalidArgument(
                "serve: conv_lora tenant but no conv base registered".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metalora_tensor::init;

    fn engine(use_merged: bool) -> ServeEngine {
        let mut rng = init::rng(21);
        let w = init::uniform(&[4, 3], -1.0, 1.0, &mut rng);
        let b = init::uniform(&[3], -0.5, 0.5, &mut rng);
        let cfg = EngineConfig {
            max_batch: 4,
            cache_bytes: 1 << 20,
            use_merged,
        };
        ServeEngine::new(w, Some(b), cfg)
    }

    fn lora_tenant(rng: &mut rand::rngs::StdRng) -> TenantAdapter {
        TenantAdapter::Lora {
            a: init::uniform(&[4, 2], -1.0, 1.0, rng),
            b: init::uniform(&[2, 3], -1.0, 1.0, rng),
            scaling: 1.5,
        }
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeEngine>();
    }

    #[test]
    fn unknown_tenant_is_an_error() {
        let e = engine(true);
        let req = Request::new(404, Tensor::zeros(&[1, 4]));
        assert!(e.serve_one(&req).is_err());
    }

    #[test]
    fn merged_and_factored_agree_approximately() {
        let mut rng = init::rng(22);
        let em = engine(true);
        let ef = engine(false);
        let t = lora_tenant(&mut rng);
        em.register(1, t.clone());
        ef.register(1, t);
        let req = Request::new(1, init::uniform(&[2, 4], -1.0, 1.0, &mut rng));
        let ym = em.serve_one(&req).unwrap();
        let yf = ef.serve_one(&req).unwrap();
        // Under METALORA_BF16=1 the merged weight is rounded to bf16
        // (relative 2⁻⁸ per element), so the agreement loosens.
        let tol = if bf16::enabled() { 5e-2 } else { 1e-4 };
        assert!(metalora_tensor::approx_eq(&ym, &yf, tol));
        assert_eq!(em.cache().stats().misses, 1);
        // Second request hits the cache.
        em.serve_one(&req).unwrap();
        assert_eq!(em.cache().stats().hits, 1);
        assert_eq!(em.request_count(), 2);
        assert_eq!(em.batch_count(), 2);
    }

    #[test]
    fn reregistration_bumps_version_and_remerges() {
        let mut rng = init::rng(23);
        let e = engine(true);
        e.register(5, lora_tenant(&mut rng));
        let req = Request::new(5, init::uniform(&[1, 4], -1.0, 1.0, &mut rng));
        let y1 = e.serve_one(&req).unwrap();
        // New factors → same tenant id must serve the *new* function.
        e.register(5, lora_tenant(&mut rng));
        let y2 = e.serve_one(&req).unwrap();
        assert!(!metalora_tensor::approx_eq(&y1, &y2, 1e-5));
        assert_eq!(e.cache().stats().misses, 2);
        assert!(e.deregister(5));
        assert!(e.cache().lru_keys().is_empty() || !e.cache().contains((5, 1)));
    }

    #[test]
    fn bank_slot_bounds_checked() {
        let e = engine(false);
        e.register(9, TenantAdapter::MultiSlot { slot: 3 });
        let req = Request::new(9, Tensor::zeros(&[1, 4]));
        assert!(matches!(
            e.serve_one(&req),
            Err(TensorError::IndexOutOfRange { index: 3, len: 0 })
        ));
    }

    #[test]
    fn dynamic_meta_without_mapping_net_errors() {
        let mut rng = init::rng(24);
        let e = engine(false);
        e.register(
            2,
            TenantAdapter::MetaCp {
                a: init::uniform(&[4, 2], -1.0, 1.0, &mut rng),
                b: init::uniform(&[2, 3], -1.0, 1.0, &mut rng),
                scaling: 1.0,
                pinned_seed: None,
            },
        );
        let req = Request::new(2, Tensor::zeros(&[1, 4]));
        assert!(e.serve_one(&req).is_err());
    }

    #[test]
    fn plans_are_built_once_per_shape_signature() {
        let mut rng = init::rng(26);
        let e = engine(false);
        e.register(1, lora_tenant(&mut rng));
        let req2 = Request::new(1, init::uniform(&[2, 4], -1.0, 1.0, &mut rng));
        e.serve_one(&req2).unwrap();
        assert_eq!(e.plan_count(), 1);
        // Same shape signature → the cached plan is reused.
        e.serve_one(&req2).unwrap();
        assert_eq!(e.plan_count(), 1);
        // New row count → one new plan, exactly once.
        let req3 = Request::new(1, init::uniform(&[3, 4], -1.0, 1.0, &mut rng));
        e.serve_one(&req3).unwrap();
        e.serve_one(&req3).unwrap();
        assert_eq!(e.plan_count(), 2);
    }

    #[test]
    fn process_chunks_and_preserves_order() {
        let mut rng = init::rng(25);
        let e = engine(false);
        e.register(1, lora_tenant(&mut rng));
        let reqs: Vec<Request> = (0..7)
            .map(|_| Request::new(1, init::uniform(&[1, 4], -1.0, 1.0, &mut rng)))
            .collect();
        let outs = e.process(&reqs).unwrap();
        assert_eq!(outs.len(), 7);
        // max_batch = 4 → batches of 4 and 3.
        assert_eq!(e.batch_count(), 2);
        for (req, out) in reqs.iter().zip(&outs) {
            let solo = e.serve_one(req).unwrap();
            assert_eq!(
                solo.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                out.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }
}
