//! The adapter store: per-tenant factor snapshots keyed by user/task id.
//!
//! Entries hold plain [`Tensor`] value snapshots (not `ParamRef` cells,
//! which are `Rc`-based and not `Send`), so the store — and the engine
//! around it — can be shared across serving threads behind `&self`.
//! Each insert bumps the tenant's version stamp; the merged-weight cache
//! keys on `(tenant, version)`, so a re-registered adapter can never be
//! served from a stale merged weight.

use crate::Result;
use metalora_peft::meta::{MetaLoraCpLinear, MetaLoraTrLinear};
use metalora_peft::{ConvLora, LoraLinear};
use metalora_tensor::{Tensor, TensorError};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// User/task identifier requests are routed by.
pub type TenantId = u64;

/// One tenant's adapter, as value snapshots of the trained factors.
///
/// `scaling` is the merged `α/R` factor ([`metalora_peft::LoraConfig::
/// scaling`]) baked in at registration time.
#[derive(Clone, Debug)]
pub enum TenantAdapter {
    /// Plain dense LoRA: `a:[I,R]`, `b:[R,O]`.
    Lora { a: Tensor, b: Tensor, scaling: f32 },
    /// Conv-LoRA: `a:[K,K,I,R]`, `b:[R,O]` over the shared conv base.
    ConvLora { a: Tensor, b: Tensor, scaling: f32 },
    /// MetaLoRA-CP factors (Eq. 6). With `pinned_seed: Some(c:[R])` the
    /// tenant is frozen to one task snapshot (cacheable as a merged
    /// weight); with `None` the seed is generated per input by the
    /// engine's mapping net.
    MetaCp {
        a: Tensor,
        b: Tensor,
        scaling: f32,
        pinned_seed: Option<Tensor>,
    },
    /// MetaLoRA-TR cores (Eq. 7): `a:[R,I,R]`, `b:[R,O,R]`, pinned seed
    /// `C:[R,R]`.
    MetaTr {
        a: Tensor,
        b: Tensor,
        scaling: f32,
        pinned_seed: Option<Tensor>,
    },
    /// One slot of the engine's shared `peft::multi` bank.
    MultiSlot { slot: usize },
}

impl TenantAdapter {
    /// Snapshot of a trained [`LoraLinear`]'s factors.
    pub fn from_lora(adapter: &LoraLinear) -> Self {
        TenantAdapter::Lora {
            a: adapter.a.value(),
            b: adapter.b.value(),
            scaling: adapter.config().scaling(),
        }
    }

    /// Snapshot of a trained [`ConvLora`]'s factors.
    pub fn from_conv_lora(adapter: &ConvLora) -> Self {
        TenantAdapter::ConvLora {
            a: adapter.a.value(),
            b: adapter.b.value(),
            scaling: adapter.config().scaling(),
        }
    }

    /// Snapshot of a trained [`MetaLoraCpLinear`], optionally frozen to
    /// one task seed.
    pub fn from_meta_cp(adapter: &MetaLoraCpLinear, pinned_seed: Option<Tensor>) -> Self {
        TenantAdapter::MetaCp {
            a: adapter.a.value(),
            b: adapter.b.value(),
            scaling: adapter.config().scaling(),
            pinned_seed,
        }
    }

    /// Snapshot of a trained [`MetaLoraTrLinear`], optionally frozen to
    /// one task seed.
    pub fn from_meta_tr(adapter: &MetaLoraTrLinear, pinned_seed: Option<Tensor>) -> Self {
        TenantAdapter::MetaTr {
            a: adapter.a.value(),
            b: adapter.b.value(),
            scaling: adapter.config().scaling(),
            pinned_seed,
        }
    }

    /// Stable method name for logs and reports.
    pub fn method(&self) -> &'static str {
        match self {
            TenantAdapter::Lora { .. } => "lora",
            TenantAdapter::ConvLora { .. } => "conv_lora",
            TenantAdapter::MetaCp { .. } => "meta_cp",
            TenantAdapter::MetaTr { .. } => "meta_tr",
            TenantAdapter::MultiSlot { .. } => "multi_slot",
        }
    }

    /// Whether the adapter admits a merged-weight snapshot: static deltas
    /// always do; dynamic MetaLoRA (no pinned seed) realises a different
    /// `ΔW` per input and cannot be folded.
    pub fn cacheable(&self) -> bool {
        match self {
            TenantAdapter::Lora { .. }
            | TenantAdapter::ConvLora { .. }
            | TenantAdapter::MultiSlot { .. } => true,
            TenantAdapter::MetaCp { pinned_seed, .. }
            | TenantAdapter::MetaTr { pinned_seed, .. } => pinned_seed.is_some(),
        }
    }
}

/// One registered tenant.
#[derive(Debug)]
pub struct TenantEntry {
    /// The routing id.
    pub id: TenantId,
    /// Bumped on every (re-)registration; part of the cache key.
    pub version: u64,
    /// The factor snapshot.
    pub adapter: TenantAdapter,
}

/// Thread-safe tenant registry.
#[derive(Default)]
pub struct AdapterStore {
    inner: RwLock<HashMap<TenantId, Arc<TenantEntry>>>,
}

impl AdapterStore {
    /// An empty store.
    pub fn new() -> Self {
        AdapterStore::default()
    }

    /// Registers (or replaces) `id`'s adapter; returns the new version
    /// (1 for a first registration, previous + 1 on update).
    pub fn insert(&self, id: TenantId, adapter: TenantAdapter) -> u64 {
        let mut map = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let version = map.get(&id).map_or(1, |e| e.version + 1);
        map.insert(id, Arc::new(TenantEntry { id, version, adapter }));
        version
    }

    /// Looks up a tenant.
    pub fn get(&self, id: TenantId) -> Option<Arc<TenantEntry>> {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned()
    }

    /// Looks up a tenant, erroring on unknown ids (the request path).
    pub fn get_required(&self, id: TenantId) -> Result<Arc<TenantEntry>> {
        self.get(id).ok_or_else(|| {
            TensorError::InvalidArgument(format!("serve: unknown tenant id {id}"))
        })
    }

    /// Deregisters a tenant; returns whether it existed.
    pub fn remove(&self, id: TenantId) -> bool {
        self.inner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id)
            .is_some()
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// `true` when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All tenant ids, sorted (deterministic iteration for reports).
    pub fn ids(&self) -> Vec<TenantId> {
        let mut v: Vec<TenantId> = self
            .inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .copied()
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lora(v: f32) -> TenantAdapter {
        TenantAdapter::Lora {
            a: Tensor::from_vec(vec![v; 4], &[2, 2]).unwrap(),
            b: Tensor::zeros(&[2, 3]),
            scaling: 2.0,
        }
    }

    #[test]
    fn insert_bumps_versions_per_tenant() {
        let s = AdapterStore::new();
        assert_eq!(s.insert(7, lora(1.0)), 1);
        assert_eq!(s.insert(7, lora(2.0)), 2);
        assert_eq!(s.insert(8, lora(3.0)), 1);
        assert_eq!(s.get(7).unwrap().version, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.ids(), vec![7, 8]);
        assert!(s.remove(7));
        assert!(!s.remove(7));
        assert!(s.get_required(7).is_err());
    }

    #[test]
    fn cacheability_follows_pinned_seed() {
        let dyn_cp = TenantAdapter::MetaCp {
            a: Tensor::zeros(&[2, 2]),
            b: Tensor::zeros(&[2, 3]),
            scaling: 1.0,
            pinned_seed: None,
        };
        let pin_cp = TenantAdapter::MetaCp {
            a: Tensor::zeros(&[2, 2]),
            b: Tensor::zeros(&[2, 3]),
            scaling: 1.0,
            pinned_seed: Some(Tensor::zeros(&[2])),
        };
        assert!(!dyn_cp.cacheable());
        assert!(pin_cp.cacheable());
        assert!(lora(0.0).cacheable());
        assert!(TenantAdapter::MultiSlot { slot: 0 }.cacheable());
        assert_eq!(dyn_cp.method(), "meta_cp");
    }
}
