//! # metalora-serve
//!
//! Multi-tenant adapter serving: MetaLoRA's production story is millions
//! of users each carrying a tiny adapter (mapping-net–generated LoRA
//! factors, Eq. 6–7 of the paper) over one shared frozen backbone. This
//! crate is the inference layer for that story, built on `peft::merge`
//! and `peft::multi`:
//!
//! * [`store`] — the adapter store: per-tenant factor **snapshots**
//!   (plain `Tensor`s, so the whole engine is `Send + Sync`; `ParamRef`
//!   cells are `Rc`-based and cannot cross threads) keyed by user/task
//!   id, with a version stamp bumped on every update.
//! * [`cache`] — a byte-capacity LRU cache of merged weights `W + ΔW`
//!   keyed by `(tenant, version)`, backed by the workspace arena (merges
//!   allocate from the pool, evicted weights are recycled into it).
//! * [`batch`] — the request batcher: groups requests and amortises
//!   mapping-net seed generation across a batch (one MLP forward for all
//!   dynamic-MetaLoRA rows instead of one per request).
//! * [`forward`] — tape-free adapter forwards. Each mirrors the exact
//!   `ops::` sequence of the corresponding training-mode graph forward,
//!   so serve outputs are **bitwise identical** to the tape — the
//!   `forward_equiv` suite asserts it for every adapter method.
//! * [`engine`] — [`engine::ServeEngine`] wires the four together and
//!   records per-request latency (`obs::hist`) plus serve counters.
//! * [`telemetry`] — the bridge into `obs::registry`/`obs::slo`: per-
//!   request stage breakdowns (queue / cache / mapping / gemm /
//!   epilogue), per-tenant windowed latency and SLO accounting, cache
//!   and batcher gauges, and tail-latency attribution. Active only when
//!   `METALORA_OBS_METRICS` telemetry is on; purely passive either way.
//! * [`traffic`] — synthetic zipf-distributed multi-tenant traffic with
//!   per-task input shifts, for the `serve` bench bin.
//!
//! ## Determinism guarantees
//!
//! The kernel layer keeps every element's increasing-`k` accumulation
//! order regardless of threads/packing, and matmul rows are computed
//! independently. Two serving-level invariants follow, both test-gated:
//!
//! 1. **Forward-only ≡ training forward** (bitwise): the tape-free path
//!    issues the same op sequence on the same values.
//! 2. **Batched ≡ one-at-a-time** (bitwise): stacking request rows into
//!    one mapping-net forward yields each row's seed unchanged.
//!
//! Merged-weight serving (`W + ΔW` folded once, then a plain dense
//! forward) is *not* bitwise-equal to the factored forward — same
//! ~1e-4-relative story as `peft::merge` — but the merge itself is
//! deterministic, so cached and freshly recomputed merged weights are
//! bitwise identical and concurrent tenants can never cross-contaminate.

pub mod batch;
pub mod cache;
pub mod engine;
pub mod forward;
pub mod store;
pub mod telemetry;
pub mod traffic;

pub use batch::{Batcher, Request};
pub use cache::{CacheKey, CacheStats, CachedWeight, MergedCache};
pub use engine::{EngineConfig, ServeEngine};
pub use store::{AdapterStore, TenantAdapter, TenantEntry, TenantId};
pub use telemetry::StageNs;

/// Crate-wide result alias (errors are tensor errors).
pub type Result<T> = std::result::Result<T, metalora_tensor::TensorError>;
