//! The request batcher and row packing helpers.
//!
//! Batching exists to amortise mapping-net seed generation: all dynamic
//! MetaLoRA rows of one batch are stacked into a single `[ΣN, D]` matrix
//! and pushed through the mapping MLP once. Because matmul computes rows
//! independently (the kernel layer's bitwise row-invariance), each row's
//! seed is bitwise identical to the one a one-request-at-a-time engine
//! would produce — the `batcher_determinism` suite asserts it.

use crate::store::TenantId;
use crate::Result;
use metalora_tensor::{Tensor, TensorError};

/// One inference request: a tenant id routing to a stored adapter, and an
/// input of `[N, in]` rows (dense) or `[N, C, H, W]` (conv tenants).
#[derive(Clone, Debug)]
pub struct Request {
    /// The adapter to apply.
    pub tenant: TenantId,
    /// The input rows.
    pub x: Tensor,
}

impl Request {
    /// Convenience constructor.
    pub fn new(tenant: TenantId, x: Tensor) -> Self {
        Request { tenant, x }
    }

    /// Leading (row/batch) extent of the input — the `N` every per-request
    /// GEMM of the forward runs over, and the unit the engine's static
    /// plan keys its workspace signature on.
    pub fn rows(&self) -> usize {
        self.x.dims().first().copied().unwrap_or(0)
    }
}

/// Accumulates requests into fixed-size batches. Each pending request
/// carries an enqueue stamp (telemetry-clock nanoseconds, 0 when
/// telemetry is off) so the engine can attribute batcher wait to the
/// `queue` stage of the request's latency breakdown.
#[derive(Default)]
pub struct Batcher {
    pending: Vec<Request>,
    enqueued_ns: Vec<u64>,
    max_batch: usize,
}

impl Batcher {
    /// A batcher that releases batches of at most `max_batch` requests.
    pub fn new(max_batch: usize) -> Self {
        Batcher {
            pending: Vec::new(),
            enqueued_ns: Vec::new(),
            max_batch: max_batch.max(1),
        }
    }

    /// Adds a request; returns a full batch once `max_batch` accumulate.
    pub fn push(&mut self, req: Request) -> Option<Vec<Request>> {
        self.push_stamped(req, 0).map(|(batch, _)| batch)
    }

    /// [`Self::push`] with an enqueue stamp; a released batch comes with
    /// its per-request stamps, in request order.
    pub fn push_stamped(&mut self, req: Request, now_ns: u64) -> Option<(Vec<Request>, Vec<u64>)> {
        self.pending.push(req);
        self.enqueued_ns.push(now_ns);
        if self.pending.len() >= self.max_batch {
            Some((
                std::mem::take(&mut self.pending),
                std::mem::take(&mut self.enqueued_ns),
            ))
        } else {
            None
        }
    }

    /// Releases whatever is pending (possibly empty) — the ragged tail.
    pub fn flush(&mut self) -> Vec<Request> {
        self.flush_stamped().0
    }

    /// [`Self::flush`] with the pending requests' enqueue stamps.
    pub fn flush_stamped(&mut self) -> (Vec<Request>, Vec<u64>) {
        (
            std::mem::take(&mut self.pending),
            std::mem::take(&mut self.enqueued_ns),
        )
    }

    /// Requests currently waiting.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Enqueue stamp of the oldest pending request (`None` when empty).
    pub fn oldest_enqueued_ns(&self) -> Option<u64> {
        self.enqueued_ns.first().copied()
    }

    /// The configured batch size.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }
}

/// Stacks `[n_i, D]` row blocks into one `[Σn_i, D]` matrix.
pub fn concat_rows(parts: &[&Tensor]) -> Result<Tensor> {
    if parts.is_empty() {
        return Err(TensorError::InvalidArgument(
            "concat_rows: empty input".into(),
        ));
    }
    let d = parts[0].dims().get(1).copied().ok_or_else(|| {
        TensorError::InvalidArgument("concat_rows: inputs must be 2-D".into())
    })?;
    let mut rows = 0;
    for p in parts {
        if p.dims().len() != 2 || p.dims()[1] != d {
            return Err(TensorError::ShapeMismatch {
                op: "concat_rows",
                lhs: parts[0].dims().to_vec(),
                rhs: p.dims().to_vec(),
            });
        }
        rows += p.dims()[0];
    }
    let mut data = Vec::with_capacity(rows * d);
    for p in parts {
        data.extend_from_slice(p.data());
    }
    Tensor::from_vec(data, &[rows, d])
}

/// Splits a `[Σn_i, D]` matrix back into blocks of `counts[i]` rows.
pub fn split_rows(stacked: &Tensor, counts: &[usize]) -> Result<Vec<Tensor>> {
    if stacked.dims().len() != 2 {
        return Err(TensorError::InvalidArgument(
            "split_rows: input must be 2-D".into(),
        ));
    }
    let (rows, d) = (stacked.dims()[0], stacked.dims()[1]);
    if counts.iter().sum::<usize>() != rows {
        return Err(TensorError::InvalidArgument(format!(
            "split_rows: counts sum to {}, input has {rows} rows",
            counts.iter().sum::<usize>()
        )));
    }
    let mut out = Vec::with_capacity(counts.len());
    let mut offset = 0;
    for &n in counts {
        let slice = stacked.data()[offset * d..(offset + n) * d].to_vec();
        out.push(Tensor::from_vec(slice, &[n, d])?);
        offset += n;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(vals: &[f32]) -> Tensor {
        Tensor::from_vec(vals.to_vec(), &[vals.len() / 2, 2]).unwrap()
    }

    #[test]
    fn batcher_releases_full_batches_and_ragged_tail() {
        let mut b = Batcher::new(3);
        assert!(b.push(Request::new(1, rows(&[1.0, 2.0]))).is_none());
        assert!(b.push(Request::new(2, rows(&[3.0, 4.0]))).is_none());
        let full = b.push(Request::new(3, rows(&[5.0, 6.0]))).unwrap();
        assert_eq!(full.len(), 3);
        assert_eq!(full[2].tenant, 3);
        assert_eq!(b.pending(), 0);
        b.push(Request::new(4, rows(&[7.0, 8.0])));
        let tail = b.flush();
        assert_eq!(tail.len(), 1);
        assert!(b.flush().is_empty());
    }

    #[test]
    fn stamps_track_requests_through_release_and_flush() {
        let mut b = Batcher::new(2);
        assert!(b
            .push_stamped(Request::new(1, rows(&[1.0, 2.0])), 100)
            .is_none());
        assert_eq!(b.oldest_enqueued_ns(), Some(100));
        let (batch, enq) = b
            .push_stamped(Request::new(2, rows(&[3.0, 4.0])), 250)
            .unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(enq, vec![100, 250]);
        assert_eq!(b.oldest_enqueued_ns(), None);
        b.push(Request::new(3, rows(&[5.0, 6.0])));
        let (tail, enq) = b.flush_stamped();
        assert_eq!(tail.len(), 1);
        assert_eq!(enq, vec![0], "plain push stamps zero");
    }

    #[test]
    fn concat_then_split_roundtrips() {
        let a = rows(&[1.0, 2.0, 3.0, 4.0]); // [2, 2]
        let b = rows(&[5.0, 6.0]); // [1, 2]
        let stacked = concat_rows(&[&a, &b]).unwrap();
        assert_eq!(stacked.dims(), &[3, 2]);
        let parts = split_rows(&stacked, &[2, 1]).unwrap();
        assert_eq!(parts[0].data(), a.data());
        assert_eq!(parts[1].data(), b.data());
    }

    #[test]
    fn shape_errors_are_reported() {
        let a = rows(&[1.0, 2.0]);
        let bad = Tensor::from_vec(vec![0.0; 3], &[1, 3]).unwrap();
        assert!(concat_rows(&[]).is_err());
        assert!(concat_rows(&[&a, &bad]).is_err());
        assert!(split_rows(&a, &[2]).is_err());
    }
}
