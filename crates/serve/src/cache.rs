//! Byte-capacity LRU cache of merged weights `W + ΔW`.
//!
//! Keys are `(tenant, version)` pairs — a re-registered adapter bumps its
//! version in the [`crate::store::AdapterStore`], so a stale merged
//! weight can never be served even if it is still resident. Values are
//! [`CachedWeight`]s: shared handles to either an f32 merge (exact, 4
//! bytes/element) or a bf16 snapshot of the merge (2 bytes/element, RNE —
//! see `metalora_tensor::bf16`). At equal byte capacity a bf16-mode cache
//! therefore holds ~2× the tenants; the eviction threshold is the *total*
//! resident bytes across both kinds, and [`CacheStats`] reports the
//! f32/bf16 split. An f32 weight's buffer is recycled into the workspace
//! arena on eviction once the cache holds the sole reference; bf16
//! buffers just drop (the arena pools f32 storage only).
//!
//! Merges are built *outside* the lock: concurrent misses on the same key
//! may both compute the (deterministic, hence bitwise-identical) merge,
//! and the first insert wins — correctness never depends on winning.

use crate::store::TenantId;
use metalora_tensor::{workspace, Bf16Buf, Tensor};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key: tenant id plus the store's version stamp.
pub type CacheKey = (TenantId, u64);

/// Hit/miss/eviction accounting, mirrored into the global obs counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that had to build the merged weight.
    pub misses: u64,
    /// Entries evicted to stay under the byte capacity.
    pub evictions: u64,
    /// Bytes currently resident (f32 + bf16).
    pub bytes: u64,
    /// Resident bytes held by f32 entries (4 bytes/element).
    pub bytes_f32: u64,
    /// Resident bytes held by bf16 entries (2 bytes/element).
    pub bytes_bf16: u64,
    /// Entries currently resident.
    pub entries: u64,
}

/// A resident merged weight, in either storage precision.
#[derive(Clone)]
pub enum CachedWeight {
    /// Exact f32 merge.
    F32(Arc<Tensor>),
    /// bf16 snapshot of the merge (half the bytes, one RNE rounding).
    Bf16(Arc<Bf16Buf>),
}

impl CachedWeight {
    /// Resident footprint of this entry.
    pub fn byte_len(&self) -> usize {
        match self {
            CachedWeight::F32(t) => t.len() * 4,
            CachedWeight::Bf16(b) => b.byte_len(),
        }
    }
}

#[derive(Default)]
struct Inner {
    map: HashMap<CacheKey, CachedWeight>,
    /// Recency order, least-recently-used first.
    lru: Vec<CacheKey>,
    bytes_f32: usize,
    bytes_bf16: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Inner {
    fn total_bytes(&self) -> usize {
        self.bytes_f32 + self.bytes_bf16
    }

    fn touch(&mut self, key: CacheKey) {
        if let Some(pos) = self.lru.iter().position(|&k| k == key) {
            self.lru.remove(pos);
        }
        self.lru.push(key);
    }

    fn credit(&mut self, w: &CachedWeight) {
        match w {
            CachedWeight::F32(t) => self.bytes_f32 += t.len() * 4,
            CachedWeight::Bf16(b) => self.bytes_bf16 += b.byte_len(),
        }
    }

    /// Debits `w`'s bytes; an f32 buffer the cache solely owns goes back
    /// to the workspace arena (bf16 buffers just drop — the arena pools
    /// f32 storage only).
    fn release(&mut self, w: CachedWeight) {
        match w {
            CachedWeight::F32(t) => {
                self.bytes_f32 -= t.len() * 4;
                if let Ok(t) = Arc::try_unwrap(t) {
                    workspace::recycle(t);
                }
            }
            CachedWeight::Bf16(b) => self.bytes_bf16 -= b.byte_len(),
        }
    }

    /// Evicts LRU-first until the total resident bytes fit `capacity`.
    fn evict_to(&mut self, capacity: usize) -> u64 {
        let mut evicted = 0;
        while self.total_bytes() > capacity && !self.lru.is_empty() {
            let key = self.lru.remove(0);
            if let Some(w) = self.map.remove(&key) {
                self.release(w);
                evicted += 1;
            }
        }
        self.evictions += evicted;
        evicted
    }

    /// Inserts `built` under `key` after a miss: a variant-swap replaces
    /// the old entry in place (the key is already in the recency list),
    /// a fresh key is appended as most-recent.
    fn insert(&mut self, key: CacheKey, built: CachedWeight) {
        self.credit(&built);
        match self.map.insert(key, built) {
            Some(old) => {
                self.release(old);
                self.touch(key);
            }
            None => self.lru.push(key),
        }
    }
}

/// The merged-weight LRU cache.
pub struct MergedCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl MergedCache {
    /// A cache holding at most `capacity_bytes` of merged weights.
    pub fn new(capacity_bytes: usize) -> Self {
        MergedCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity_bytes,
        }
    }

    /// Capacity from `METALORA_SERVE_CACHE_MB` (default 64 MiB).
    pub fn from_env() -> Self {
        let mb = std::env::var("METALORA_SERVE_CACHE_MB")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(64);
        MergedCache::new(mb * 1024 * 1024)
    }

    /// Byte capacity this cache evicts down to.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    /// Looks up `key` as an f32 entry, building the merged weight with
    /// `build` on a miss.
    ///
    /// The builder runs outside the lock; on a concurrent double-miss the
    /// first insert wins and the loser adopts it (both builds are bitwise
    /// identical, so either result is correct). A weight larger than the
    /// whole capacity is returned uncached. A key resident in the *other*
    /// precision counts as a miss and is replaced — precisions never
    /// alias (a bf16 entry widened is the rounded merge, not the merge).
    pub fn get_or_insert<F>(&self, key: CacheKey, build: F) -> crate::Result<Arc<Tensor>>
    where
        F: FnOnce() -> crate::Result<Tensor>,
    {
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(CachedWeight::F32(t)) = inner.map.get(&key) {
                let t = t.clone();
                inner.hits += 1;
                inner.touch(key);
                metalora_obs::counters::record_serve_cache(true);
                metalora_obs::registry::inc("serve_cache_lookups_total", "result=hit", 1);
                return Ok(t);
            }
            inner.misses += 1;
        }
        metalora_obs::counters::record_serve_cache(false);
        metalora_obs::registry::inc("serve_cache_lookups_total", "result=miss", 1);
        let built = Arc::new(build()?);
        metalora_obs::counters::record_serve_merge();
        if built.len() * 4 > self.capacity {
            return Ok(built);
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(CachedWeight::F32(t)) = inner.map.get(&key) {
            // Lost a double-miss race; adopt the resident copy.
            let t = t.clone();
            inner.touch(key);
            return Ok(t);
        }
        inner.insert(key, CachedWeight::F32(built.clone()));
        let evicted = inner.evict_to(self.capacity);
        if evicted > 0 {
            metalora_obs::counters::record_serve_evictions(evicted);
            metalora_obs::registry::inc("serve_cache_evictions_total", "", evicted);
        }
        Ok(built)
    }

    /// [`Self::get_or_insert`] for a bf16 entry: same contract, half the
    /// resident bytes per element, so equal capacity holds ~2× tenants.
    pub fn get_or_insert_bf16<F>(&self, key: CacheKey, build: F) -> crate::Result<Arc<Bf16Buf>>
    where
        F: FnOnce() -> crate::Result<Bf16Buf>,
    {
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(CachedWeight::Bf16(b)) = inner.map.get(&key) {
                let b = b.clone();
                inner.hits += 1;
                inner.touch(key);
                metalora_obs::counters::record_serve_cache(true);
                metalora_obs::registry::inc("serve_cache_lookups_total", "result=hit", 1);
                return Ok(b);
            }
            inner.misses += 1;
        }
        metalora_obs::counters::record_serve_cache(false);
        metalora_obs::registry::inc("serve_cache_lookups_total", "result=miss", 1);
        let built = Arc::new(build()?);
        metalora_obs::counters::record_serve_merge();
        if built.byte_len() > self.capacity {
            return Ok(built);
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(CachedWeight::Bf16(b)) = inner.map.get(&key) {
            let b = b.clone();
            inner.touch(key);
            return Ok(b);
        }
        inner.insert(key, CachedWeight::Bf16(built.clone()));
        let evicted = inner.evict_to(self.capacity);
        if evicted > 0 {
            metalora_obs::counters::record_serve_evictions(evicted);
            metalora_obs::registry::inc("serve_cache_evictions_total", "", evicted);
        }
        Ok(built)
    }

    /// Whether `key` is resident in either precision (test hook; does not
    /// touch recency).
    pub fn contains(&self, key: CacheKey) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .contains_key(&key)
    }

    /// Resident keys, least-recently-used first (test hook).
    pub fn lru_keys(&self) -> Vec<CacheKey> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .lru
            .clone()
    }

    /// Current accounting.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            bytes: inner.total_bytes() as u64,
            bytes_f32: inner.bytes_f32 as u64,
            bytes_bf16: inner.bytes_bf16 as u64,
            entries: inner.map.len() as u64,
        }
    }

    /// Drops every entry (counters are kept; buffers recycle when sole).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.lru.clear();
        let drained: Vec<CachedWeight> = inner.map.drain().map(|(_, w)| w).collect();
        for w in drained {
            inner.release(w);
        }
    }

    /// Drops every resident version of one tenant (deregistration path):
    /// map removals per key, then **one** pass over the recency list —
    /// not a `retain` per removed key, which made purging a tenant with
    /// `v` resident versions O(v·len) and re-walked the eviction-order
    /// bookkeeping once per version.
    pub fn purge_tenant(&self, id: TenantId) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let keys: Vec<CacheKey> = inner
            .map
            .keys()
            .filter(|(t, _)| *t == id)
            .copied()
            .collect();
        for key in keys {
            if let Some(w) = inner.map.remove(&key) {
                inner.release(w);
            }
        }
        inner.lru.retain(|&(t, _)| t != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(v: f32) -> Tensor {
        // [4, 4] → 64 bytes.
        Tensor::from_vec(vec![v; 16], &[4, 4]).unwrap()
    }

    fn bbuf(v: f32) -> crate::Result<Bf16Buf> {
        // [4, 4] → 32 bytes.
        Bf16Buf::from_f32(&[v; 16], &[4, 4])
    }

    #[test]
    fn hit_miss_and_recency() {
        let c = MergedCache::new(1024);
        let a = c.get_or_insert((1, 1), || Ok(tensor(1.0))).unwrap();
        let b = c.get_or_insert((1, 1), || panic!("must not rebuild")).unwrap();
        assert_eq!(a.data(), b.data());
        c.get_or_insert((2, 1), || Ok(tensor(2.0))).unwrap();
        // Touch (1,1): it becomes most-recent.
        c.get_or_insert((1, 1), || panic!()).unwrap();
        assert_eq!(c.lru_keys(), vec![(2, 1), (1, 1)]);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (2, 2, 0));
        assert_eq!(s.bytes, 128);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn evicts_least_recent_first_to_capacity() {
        let c = MergedCache::new(128); // room for two 64-byte weights
        c.get_or_insert((1, 1), || Ok(tensor(1.0))).unwrap();
        c.get_or_insert((2, 1), || Ok(tensor(2.0))).unwrap();
        c.get_or_insert((3, 1), || Ok(tensor(3.0))).unwrap();
        assert!(!c.contains((1, 1)), "LRU entry evicted");
        assert_eq!(c.lru_keys(), vec![(2, 1), (3, 1)]);
        assert_eq!(c.stats().evictions, 1);
        // Evicted key rebuilds on next access.
        c.get_or_insert((1, 1), || Ok(tensor(1.0))).unwrap();
        assert!(!c.contains((2, 1)));
    }

    #[test]
    fn oversized_weight_bypasses_cache() {
        let c = MergedCache::new(32);
        let t = c.get_or_insert((1, 1), || Ok(tensor(1.0))).unwrap();
        assert_eq!(t.len(), 16);
        assert!(!c.contains((1, 1)));
        assert_eq!(c.stats().bytes, 0);
    }

    #[test]
    fn version_bump_is_a_distinct_key() {
        let c = MergedCache::new(1024);
        c.get_or_insert((1, 1), || Ok(tensor(1.0))).unwrap();
        let v2 = c.get_or_insert((1, 2), || Ok(tensor(9.0))).unwrap();
        assert_eq!(v2.data()[0], 9.0);
        assert!(c.contains((1, 1)) && c.contains((1, 2)));
        c.purge_tenant(1);
        assert!(!c.contains((1, 1)) && !c.contains((1, 2)));
        assert_eq!(c.stats().bytes, 0);
        assert!(c.lru_keys().is_empty());
    }

    #[test]
    fn builder_errors_propagate_and_do_not_insert() {
        let c = MergedCache::new(1024);
        let r = c.get_or_insert((1, 1), || {
            Err(metalora_tensor::TensorError::InvalidArgument("boom".into()))
        });
        assert!(r.is_err());
        assert!(!c.contains((1, 1)));
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn bf16_entries_use_half_bytes_and_split_stats() {
        let c = MergedCache::new(1024);
        c.get_or_insert((1, 1), || Ok(tensor(1.0))).unwrap();
        let b = c.get_or_insert_bf16((2, 1), || bbuf(0.5)).unwrap();
        assert_eq!(b.widen().data(), &[0.5; 16]);
        let s = c.stats();
        assert_eq!((s.bytes_f32, s.bytes_bf16, s.bytes), (64, 32, 96));
        assert_eq!(s.entries, 2);
        // A second lookup is a hit on the shared handle.
        let b2 = c.get_or_insert_bf16((2, 1), || panic!("hit expected")).unwrap();
        assert_eq!(b2.data(), b.data());
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn equal_capacity_holds_twice_the_bf16_entries() {
        // 128 bytes: two f32 [4,4] entries (evicts on the third) but four
        // bf16 entries — the capacity doubling the serve path banks on.
        let cf = MergedCache::new(128);
        for t in 0..3 {
            cf.get_or_insert((t, 1), || Ok(tensor(t as f32))).unwrap();
        }
        assert_eq!(cf.stats().evictions, 1);

        let cb = MergedCache::new(128);
        for t in 0..4 {
            cb.get_or_insert_bf16((t, 1), || bbuf(t as f32)).unwrap();
        }
        let s = cb.stats();
        assert_eq!((s.evictions, s.entries, s.bytes_bf16), (0, 4, 128));
        cb.get_or_insert_bf16((4, 1), || bbuf(4.0)).unwrap();
        assert_eq!(cb.stats().evictions, 1);
    }

    #[test]
    fn purge_tenant_preserves_other_tenants_recency_order() {
        let c = MergedCache::new(1024);
        // Interleave three versions of tenant 1 with tenants 2 and 3.
        c.get_or_insert((1, 1), || Ok(tensor(1.0))).unwrap();
        c.get_or_insert((2, 1), || Ok(tensor(2.0))).unwrap();
        c.get_or_insert((1, 2), || Ok(tensor(1.2))).unwrap();
        c.get_or_insert_bf16((3, 1), || bbuf(3.0)).unwrap();
        c.get_or_insert((1, 3), || Ok(tensor(1.3))).unwrap();
        c.purge_tenant(1);
        assert_eq!(c.lru_keys(), vec![(2, 1), (3, 1)]);
        let s = c.stats();
        assert_eq!((s.entries, s.bytes_f32, s.bytes_bf16), (2, 64, 32));
        // Purges are not evictions.
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn precision_mismatch_is_a_miss_and_replaces_in_place() {
        let c = MergedCache::new(1024);
        c.get_or_insert((1, 1), || Ok(tensor(1.0))).unwrap();
        let b = c.get_or_insert_bf16((1, 1), || bbuf(2.0)).unwrap();
        assert_eq!(b.widen().data()[0], 2.0);
        let s = c.stats();
        // Second lookup was a miss; the entry swapped precision in place.
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 1));
        assert_eq!((s.bytes_f32, s.bytes_bf16), (0, 32));
        assert_eq!(c.lru_keys(), vec![(1, 1)]);
    }
}
