//! Byte-capacity LRU cache of merged weights `W + ΔW`.
//!
//! Keys are `(tenant, version)` pairs — a re-registered adapter bumps its
//! version in the [`crate::store::AdapterStore`], so a stale merged
//! weight can never be served even if it is still resident. Values are
//! `Arc<Tensor>`: a hit hands out a cheap shared handle, and an evicted
//! weight's buffer is recycled into the workspace arena once the last
//! in-flight request drops its handle's clone (we recycle only when the
//! cache holds the sole reference; otherwise the buffer frees normally).
//!
//! Merges are built *outside* the lock: concurrent misses on the same key
//! may both compute the (deterministic, hence bitwise-identical) merge,
//! and the first insert wins — correctness never depends on winning.

use crate::store::TenantId;
use metalora_tensor::{workspace, Tensor};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache key: tenant id plus the store's version stamp.
pub type CacheKey = (TenantId, u64);

/// Hit/miss/eviction accounting, mirrored into the global obs counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied from the cache.
    pub hits: u64,
    /// Lookups that had to build the merged weight.
    pub misses: u64,
    /// Entries evicted to stay under the byte capacity.
    pub evictions: u64,
    /// Bytes currently resident.
    pub bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<CacheKey, Arc<Tensor>>,
    /// Recency order, least-recently-used first.
    lru: Vec<CacheKey>,
    bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Inner {
    fn touch(&mut self, key: CacheKey) {
        if let Some(pos) = self.lru.iter().position(|&k| k == key) {
            self.lru.remove(pos);
        }
        self.lru.push(key);
    }

    /// Evicts LRU-first until `self.bytes <= capacity`.
    fn evict_to(&mut self, capacity: usize) -> u64 {
        let mut evicted = 0;
        while self.bytes > capacity && !self.lru.is_empty() {
            let key = self.lru.remove(0);
            if let Some(t) = self.map.remove(&key) {
                self.bytes -= t.len() * 4;
                evicted += 1;
                // Return the buffer to the arena when nobody else holds it.
                if let Ok(t) = Arc::try_unwrap(t) {
                    workspace::recycle(t);
                }
            }
        }
        self.evictions += evicted;
        evicted
    }
}

/// The merged-weight LRU cache.
pub struct MergedCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl MergedCache {
    /// A cache holding at most `capacity_bytes` of merged weights.
    pub fn new(capacity_bytes: usize) -> Self {
        MergedCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity_bytes,
        }
    }

    /// Capacity from `METALORA_SERVE_CACHE_MB` (default 64 MiB).
    pub fn from_env() -> Self {
        let mb = std::env::var("METALORA_SERVE_CACHE_MB")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(64);
        MergedCache::new(mb * 1024 * 1024)
    }

    /// Byte capacity this cache evicts down to.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, building the merged weight with `build` on a miss.
    ///
    /// The builder runs outside the lock; on a concurrent double-miss the
    /// first insert wins and the loser adopts it (both builds are bitwise
    /// identical, so either result is correct). A weight larger than the
    /// whole capacity is returned uncached.
    pub fn get_or_insert<F>(&self, key: CacheKey, build: F) -> crate::Result<Arc<Tensor>>
    where
        F: FnOnce() -> crate::Result<Tensor>,
    {
        {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(t) = inner.map.get(&key).cloned() {
                inner.hits += 1;
                inner.touch(key);
                metalora_obs::counters::record_serve_cache(true);
                return Ok(t);
            }
            inner.misses += 1;
        }
        metalora_obs::counters::record_serve_cache(false);
        let built = Arc::new(build()?);
        metalora_obs::counters::record_serve_merge();
        let bytes = built.len() * 4;
        if bytes > self.capacity {
            return Ok(built);
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(t) = inner.map.get(&key).cloned() {
            // Lost a double-miss race; adopt the resident copy.
            inner.touch(key);
            return Ok(t);
        }
        inner.map.insert(key, built.clone());
        inner.lru.push(key);
        inner.bytes += bytes;
        let evicted = inner.evict_to(self.capacity);
        if evicted > 0 {
            metalora_obs::counters::record_serve_evictions(evicted);
        }
        Ok(built)
    }

    /// Whether `key` is resident (test hook; does not touch recency).
    pub fn contains(&self, key: CacheKey) -> bool {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .contains_key(&key)
    }

    /// Resident keys, least-recently-used first (test hook).
    pub fn lru_keys(&self) -> Vec<CacheKey> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .lru
            .clone()
    }

    /// Current accounting.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            bytes: inner.bytes as u64,
            entries: inner.map.len() as u64,
        }
    }

    /// Drops every entry (counters are kept; buffers recycle when sole).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.lru.clear();
        inner.bytes = 0;
        for (_, t) in inner.map.drain() {
            if let Ok(t) = Arc::try_unwrap(t) {
                workspace::recycle(t);
            }
        }
    }

    /// Drops every resident version of one tenant (deregistration path).
    pub fn purge_tenant(&self, id: TenantId) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let keys: Vec<CacheKey> = inner
            .map
            .keys()
            .filter(|(t, _)| *t == id)
            .copied()
            .collect();
        for key in keys {
            if let Some(t) = inner.map.remove(&key) {
                inner.bytes -= t.len() * 4;
                if let Ok(t) = Arc::try_unwrap(t) {
                    workspace::recycle(t);
                }
            }
            inner.lru.retain(|&k| k != key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor(v: f32) -> Tensor {
        // [4, 4] → 64 bytes.
        Tensor::from_vec(vec![v; 16], &[4, 4]).unwrap()
    }

    #[test]
    fn hit_miss_and_recency() {
        let c = MergedCache::new(1024);
        let a = c.get_or_insert((1, 1), || Ok(tensor(1.0))).unwrap();
        let b = c.get_or_insert((1, 1), || panic!("must not rebuild")).unwrap();
        assert_eq!(a.data(), b.data());
        c.get_or_insert((2, 1), || Ok(tensor(2.0))).unwrap();
        // Touch (1,1): it becomes most-recent.
        c.get_or_insert((1, 1), || panic!()).unwrap();
        assert_eq!(c.lru_keys(), vec![(2, 1), (1, 1)]);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (2, 2, 0));
        assert_eq!(s.bytes, 128);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn evicts_least_recent_first_to_capacity() {
        let c = MergedCache::new(128); // room for two 64-byte weights
        c.get_or_insert((1, 1), || Ok(tensor(1.0))).unwrap();
        c.get_or_insert((2, 1), || Ok(tensor(2.0))).unwrap();
        c.get_or_insert((3, 1), || Ok(tensor(3.0))).unwrap();
        assert!(!c.contains((1, 1)), "LRU entry evicted");
        assert_eq!(c.lru_keys(), vec![(2, 1), (3, 1)]);
        assert_eq!(c.stats().evictions, 1);
        // Evicted key rebuilds on next access.
        c.get_or_insert((1, 1), || Ok(tensor(1.0))).unwrap();
        assert!(!c.contains((2, 1)));
    }

    #[test]
    fn oversized_weight_bypasses_cache() {
        let c = MergedCache::new(32);
        let t = c.get_or_insert((1, 1), || Ok(tensor(1.0))).unwrap();
        assert_eq!(t.len(), 16);
        assert!(!c.contains((1, 1)));
        assert_eq!(c.stats().bytes, 0);
    }

    #[test]
    fn version_bump_is_a_distinct_key() {
        let c = MergedCache::new(1024);
        c.get_or_insert((1, 1), || Ok(tensor(1.0))).unwrap();
        let v2 = c.get_or_insert((1, 2), || Ok(tensor(9.0))).unwrap();
        assert_eq!(v2.data()[0], 9.0);
        assert!(c.contains((1, 1)) && c.contains((1, 2)));
        c.purge_tenant(1);
        assert!(!c.contains((1, 1)) && !c.contains((1, 2)));
        assert_eq!(c.stats().bytes, 0);
        assert!(c.lru_keys().is_empty());
    }

    #[test]
    fn builder_errors_propagate_and_do_not_insert() {
        let c = MergedCache::new(1024);
        let r = c.get_or_insert((1, 1), || {
            Err(metalora_tensor::TensorError::InvalidArgument("boom".into()))
        });
        assert!(r.is_err());
        assert!(!c.contains((1, 1)));
        assert_eq!(c.stats().misses, 1);
    }
}
