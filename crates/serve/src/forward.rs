//! Tape-free adapter forwards.
//!
//! Each function mirrors the exact `ops::` call sequence of the matching
//! training-mode `Module::forward` (whose graph ops are thin wrappers over
//! the same `ops::` functions), so serve outputs are **bitwise identical**
//! to a tape forward on the same values — `tests/forward_equiv.rs` gates
//! this for every adapter method at `METALORA_THREADS ∈ {1, 2, 4}`.

use crate::Result;
use metalora_nn::infer;
use metalora_peft::meta::MappingNet;
use metalora_tensor::conv::ConvSpec;
use metalora_tensor::{ops, Bf16Buf, Tensor, TensorError};

/// Plain LoRA: `y = x·W + b + scaling·(x·A)·B` — the twin of
/// `LoraLinear::forward` (and of one `MultiLoraLinear` slot, which runs
/// the identical sequence with that slot's factors).
pub fn lora_linear(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    a: &Tensor,
    b: &Tensor,
    scaling: f32,
) -> Result<Tensor> {
    let y = infer::linear(x, w, bias)?;
    let xa = ops::matmul(x, a)?;
    let delta = ops::matmul(&xa, b)?;
    let delta = ops::scale(&delta, scaling);
    ops::add(&y, &delta)
}

/// MetaLoRA-CP: `y = base + scaling·((x·A) ⊙ c)·B` with a per-row seed
/// `c:[N,R]` — the twin of `MetaLoraCpLinear::forward` after its
/// (identity, when `rows == N`) seed expansion.
pub fn meta_cp_linear(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    a: &Tensor,
    b: &Tensor,
    seed: &Tensor,
    scaling: f32,
) -> Result<Tensor> {
    let n = x.dims()[0];
    let r = a.dims()[1];
    if seed.dims() != [n, r] {
        return Err(TensorError::InvalidArgument(format!(
            "meta_cp_linear: seed shape {:?}, expected [{n}, {r}]",
            seed.dims()
        )));
    }
    let y = infer::linear(x, w, bias)?;
    let xa = ops::matmul(x, a)?;
    let gated = ops::mul(&xa, seed)?;
    let delta = ops::matmul(&gated, b)?;
    let delta = ops::scale(&delta, scaling);
    ops::add(&y, &delta)
}

/// MetaLoRA-TR: the Eq. 7 contraction chain with cores `a:[R,I,R]`,
/// `b:[R,O,R]` and per-row seeds `[N,R·R]` (r2-major) — the twin of
/// `MetaLoraTrLinear::delta` plus the base add.
pub fn meta_tr_linear(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    a: &Tensor,
    b: &Tensor,
    seed: &Tensor,
    scaling: f32,
) -> Result<Tensor> {
    let n = x.dims()[0];
    let r = b.dims()[0];
    let (i, o) = (a.dims()[1], b.dims()[1]);
    if seed.dims() != [n, r * r] {
        return Err(TensorError::InvalidArgument(format!(
            "meta_tr_linear: seed shape {:?}, expected [{n}, {}]",
            seed.dims(),
            r * r
        )));
    }
    let y = infer::linear(x, w, bias)?;
    // t₁ = x·𝒜 : 𝒜 [r0, I, r1] → [I, r0·r1].
    let a_mat = ops::permute(a, &[1, 0, 2])?;
    let a_mat = a_mat.reshaped(&[i, r * r])?;
    let t1 = ops::matmul(x, &a_mat)?; // [N, r0·r1]
    // t₂ = t₁·ℬ : ℬ [r1, O, r2] → [r1, O·r2].
    let t1 = t1.reshaped(&[n * r, r])?;
    let b_mat = b.reshaped(&[r, o * r])?;
    let t2 = ops::matmul(&t1, &b_mat)?; // [N·r0, O·r2]
    // → [N, O, r2·r0] with r2-major tail to match the seed layout.
    let t2 = t2.reshaped(&[n, r, o, r])?; // [N, r0, O, r2]
    let t2 = ops::permute(&t2, &[0, 2, 3, 1])?; // [N, O, r2, r0]
    let t2 = t2.reshaped(&[n, o, r * r])?;
    let c = seed.reshaped(&[n, 1, r * r])?;
    let prod = ops::mul(&t2, &c)?;
    let dy = ops::sum_axis(&prod, 2)?; // [N, O]
    let dy = ops::scale(&dy, scaling);
    ops::add(&y, &dy)
}

/// Conv-LoRA: base conv plus the small-conv → 1×1-recovery delta — the
/// twin of `ConvLora::forward`.
pub fn conv_lora(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    spec: ConvSpec,
    a: &Tensor,
    b: &Tensor,
    scaling: f32,
) -> Result<Tensor> {
    let y = infer::conv2d(x, w, bias, spec)?;
    let u = metalora_tensor::conv::conv2d(x, a, spec, spec)?;
    let (r, o) = (b.dims()[0], b.dims()[1]);
    let b4 = b.reshaped(&[1, 1, r, o])?;
    let one = ConvSpec::new(1, 1, 0)?;
    let delta = metalora_tensor::conv::conv2d(&u, &b4, one, one)?;
    let delta = ops::scale(&delta, scaling);
    ops::add(&y, &delta)
}

/// Dense forward through an already-merged weight `W + ΔW`.
pub fn merged_linear(x: &Tensor, w_merged: &Tensor, bias: Option<&Tensor>) -> Result<Tensor> {
    infer::linear(x, w_merged, bias)
}

/// Conv forward through an already-merged kernel `𝒲 + Δ𝒲`.
pub fn merged_conv(
    x: &Tensor,
    w_merged: &Tensor,
    bias: Option<&Tensor>,
    spec: ConvSpec,
) -> Result<Tensor> {
    infer::conv2d(x, w_merged, bias, spec)
}

/// Dense forward through a bf16 snapshot of the merged weight: the
/// weights stream at half the bytes (widened exactly at GEMM pack time,
/// f32 accumulation), so vs [`merged_linear`] the only deviation is the
/// one-time RNE rounding taken when the merge was snapshot.
pub fn merged_linear_bf16(
    x: &Tensor,
    w_merged: &Bf16Buf,
    bias: Option<&Tensor>,
) -> Result<Tensor> {
    infer::linear_bf16(x, w_merged, bias)
}

/// Conv forward through a bf16 snapshot of the merged kernel.
pub fn merged_conv_bf16(
    x: &Tensor,
    w_merged: &Bf16Buf,
    bias: Option<&Tensor>,
    spec: ConvSpec,
) -> Result<Tensor> {
    infer::conv2d_bf16(x, w_merged, bias, spec)
}

/// Value snapshot of a [`MappingNet`] — the four MLP tensors, detached
/// from their `Rc`-based parameter cells so the engine can generate seeds
/// from any thread.
#[derive(Clone, Debug)]
pub struct MappingSnapshot {
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
}

impl MappingSnapshot {
    /// Snapshots the net's current weights.
    pub fn from_net(net: &MappingNet) -> Self {
        let (w1, b1, w2, b2) = net.export_weights();
        MappingSnapshot { w1, b1, w2, b2 }
    }

    /// Seed width produced per row.
    pub fn out_dim(&self) -> usize {
        self.w2.dims()[1]
    }

    /// Feature width consumed per row.
    pub fn in_dim(&self) -> usize {
        self.w1.dims()[0]
    }

    /// Hidden width of the MLP (the inner GEMM's `n` / outer GEMM's `k`).
    pub fn hidden_dim(&self) -> usize {
        self.w1.dims()[1]
    }

    /// `[N, in] → [N, out]`: linear → GELU → linear → tanh, the bitwise
    /// twin of [`MappingNet::generate`] (and of `generate_infer`, same
    /// math on the snapshot values). Both bias adds and both activations
    /// ride the fused GEMM epilogues — no separate output passes instead
    /// of four, and still bitwise the separate-pass sequence. Rows are
    /// independent, so a stacked batch yields each row's seed bitwise
    /// unchanged — the amortisation the batcher relies on.
    pub fn generate(&self, features: &Tensor) -> Result<Tensor> {
        use metalora_tensor::ops::Activation;
        let h = infer::linear_act(features, &self.w1, Some(&self.b1), Some(Activation::Gelu))?;
        infer::linear_act(&h, &self.w2, Some(&self.b2), Some(Activation::Tanh))
    }
}

/// Repeats a pinned seed (flattened to `d` values) into `[n, d]` rows —
/// how a frozen-task tenant's seed aligns with a multi-row request in the
/// factored path.
pub fn tile_seed(seed: &Tensor, n: usize) -> Result<Tensor> {
    let d = seed.len();
    let mut data = Vec::with_capacity(n * d);
    for _ in 0..n {
        data.extend_from_slice(seed.data());
    }
    Tensor::from_vec(data, &[n, d])
}

#[cfg(test)]
mod tests {
    use super::*;
    use metalora_tensor::init;

    #[test]
    fn tile_seed_repeats_rows() {
        let c = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let t = tile_seed(&c, 3).unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.data(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn seed_shapes_are_validated() {
        let mut rng = init::rng(3);
        let x = init::uniform(&[2, 4], -1.0, 1.0, &mut rng);
        let w = init::uniform(&[4, 3], -1.0, 1.0, &mut rng);
        let a = init::uniform(&[4, 2], -1.0, 1.0, &mut rng);
        let b = init::uniform(&[2, 3], -1.0, 1.0, &mut rng);
        let bad = Tensor::zeros(&[2, 3]);
        assert!(meta_cp_linear(&x, &w, None, &a, &b, &bad, 1.0).is_err());
        let a3 = init::uniform(&[2, 4, 2], -1.0, 1.0, &mut rng);
        let b3 = init::uniform(&[2, 3, 2], -1.0, 1.0, &mut rng);
        assert!(meta_tr_linear(&x, &w, None, &a3, &b3, &bad, 1.0).is_err());
    }

    #[test]
    fn batched_mapping_rows_equal_single_rows_bitwise() {
        let mut rng = init::rng(4);
        let net = MappingNet::new("m", 6, 8, 3, &mut rng);
        let snap = MappingSnapshot::from_net(&net);
        assert_eq!(snap.in_dim(), 6);
        assert_eq!(snap.out_dim(), 3);
        let f = init::uniform(&[5, 6], -2.0, 2.0, &mut rng);
        let batched = snap.generate(&f).unwrap();
        for row in 0..5 {
            let one = Tensor::from_vec(f.data()[row * 6..(row + 1) * 6].to_vec(), &[1, 6]).unwrap();
            let s = snap.generate(&one).unwrap();
            let got: Vec<u32> = batched.data()[row * 3..(row + 1) * 3]
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let want: Vec<u32> = s.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, want, "row {row}");
        }
    }
}
