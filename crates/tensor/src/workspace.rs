//! Reusable workspace arena for kernel scratch buffers.
//!
//! The hot path — matmul packing panels, `im2col`/`col2im` padded images,
//! autograd backward temporaries — used to allocate a fresh `Vec<f32>` on
//! every call. This module replaces those allocations with a process-wide,
//! thread-safe pool of size-bucketed buffers:
//!
//! * [`take`] / [`take_zeroed`] check a buffer out and return a
//!   [`WorkspaceGuard`] that parks it back in the pool on drop — the
//!   pattern for scratch that lives for one kernel invocation;
//! * [`zeroed_tensor`] / [`recycle`] move pooled buffers in and out of
//!   [`Tensor`] values — the pattern for autograd temporaries that are
//!   built, consumed by an accumulation, and then discarded.
//!
//! Buffers are bucketed by capacity rounded to a power of two, so a
//! checkout of any size in `(bucket/2, bucket]` can reuse any buffer of
//! that bucket. Buckets are capped (count and total bytes) to bound how
//! much memory idles in the pool; overflow buffers are simply dropped.
//!
//! The arena changes **no numerics**: a recycled buffer is either fully
//! overwritten ([`take`], contents unspecified) or zero-filled
//! ([`take_zeroed`], [`zeroed_tensor`]) before use, exactly like the
//! `vec![0.0; n]` it replaces.
//!
//! Checkouts are **disjoint by construction** — `pop` removes the buffer
//! from the pool under the lock, so two live guards can never alias, even
//! across threads. The GEMM tile-grid scheduler leans on this: every
//! worker in the team leases its own A-panel buffer for its whole
//! lifetime while the shared B panel and other threads' checkouts churn
//! through the same pool concurrently.
//!
//! Checkout hits/misses, bytes reused and the pooled-bytes high-water mark
//! are reported to `metalora_obs` (visible in `RUNLOG_*.json` under
//! `workspace` when `METALORA_OBS=1`).

use crate::Tensor;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

/// Max buffers parked per size bucket; further returns are dropped.
pub const MAX_PER_BUCKET: usize = 16;

/// Max total bytes the pool will hold onto; returns past this are dropped.
pub const MAX_POOLED_BYTES: usize = 256 << 20;

/// Number of power-of-two size buckets (bucket `i` holds capacity `2^i`
/// floats; the largest bucket covers 2^31 floats = 8 GiB, far beyond any
/// tensor in this workspace).
const N_BUCKETS: usize = 32;

struct Pool {
    buckets: [Vec<Vec<f32>>; N_BUCKETS],
    pooled_bytes: usize,
}

static POOL: Mutex<Pool> = Mutex::new(Pool {
    buckets: [const { Vec::new() }; N_BUCKETS],
    pooled_bytes: 0,
});

/// Bucket index for a checkout of `len` floats: smallest power of two
/// `>= len`.
fn bucket_for_len(len: usize) -> usize {
    len.next_power_of_two().trailing_zeros() as usize
}

/// Bucket index a buffer of `cap` floats can serve: largest power of two
/// `<= cap` (a bucket-`i` checkout needs capacity `>= 2^i`).
fn bucket_for_cap(cap: usize) -> usize {
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

/// Pops a pooled buffer able to hold `len` floats, or `None` on miss.
/// Only the exact bucket is probed — first-fit over larger buckets would
/// slowly migrate big buffers into small checkouts and fragment the pool.
fn pop(len: usize) -> Option<Vec<f32>> {
    let bucket = bucket_for_len(len);
    let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
    let v = pool.buckets[bucket].pop();
    if let Some(v) = &v {
        pool.pooled_bytes -= 4 * v.capacity();
        metalora_obs::counters::record_workspace_pooled(-4 * v.capacity() as i64);
    }
    drop(pool);
    metalora_obs::counters::record_workspace_checkout(v.is_some(), 4 * len);
    v
}

/// Returns `buf` to the pool (or drops it when its bucket / the byte cap
/// is full). Accepts buffers of any capacity, including ones that never
/// came from the pool — that is how tensors recycled via [`recycle`] seed
/// the arena.
pub fn give(buf: Vec<f32>) {
    let cap = buf.capacity();
    if cap == 0 {
        return;
    }
    let bucket = bucket_for_cap(cap);
    let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
    if pool.buckets[bucket].len() >= MAX_PER_BUCKET
        || pool.pooled_bytes + 4 * cap > MAX_POOLED_BYTES
    {
        return; // dropped: pool full
    }
    pool.pooled_bytes += 4 * cap;
    pool.buckets[bucket].push(buf);
    drop(pool);
    metalora_obs::counters::record_workspace_pooled(4 * cap as i64);
}

/// Checks out a buffer of `len` floats with **unspecified contents** (the
/// caller must overwrite every element it reads). Returned to the pool
/// when the guard drops.
pub fn take(len: usize) -> WorkspaceGuard {
    let mut buf = pop(len).unwrap_or_else(|| Vec::with_capacity(len.next_power_of_two()));
    // Stale pooled contents are deliberately kept (resize only fills the
    // grown tail); `take` is for buffers that are packed/copied into.
    buf.resize(len, 0.0);
    WorkspaceGuard { buf }
}

/// Checks out a buffer of `len` floats, zero-filled — a pooled stand-in
/// for `vec![0.0; len]`.
pub fn take_zeroed(len: usize) -> WorkspaceGuard {
    let mut g = take(len);
    g.buf.fill(0.0);
    g
}

/// A checked-out workspace buffer; derefs to `[f32]` of exactly the
/// requested length and parks itself back in the pool on drop.
pub struct WorkspaceGuard {
    buf: Vec<f32>,
}

impl Deref for WorkspaceGuard {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for WorkspaceGuard {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for WorkspaceGuard {
    fn drop(&mut self) {
        give(std::mem::take(&mut self.buf));
    }
}

/// A zero-filled tensor whose buffer is drawn from the arena — the pooled
/// twin of [`Tensor::zeros`]. Pair with [`recycle`] on the consuming side
/// to keep the buffer cycling.
pub fn zeroed_tensor(dims: &[usize]) -> Tensor {
    let len: usize = dims.iter().product();
    let mut buf = pop(len).unwrap_or_else(|| Vec::with_capacity(len.next_power_of_two()));
    buf.clear();
    buf.resize(len, 0.0);
    Tensor::from_vec(buf, dims).expect("len matches dims by construction")
}

/// Consumes a tensor and parks its buffer in the arena for reuse.
pub fn recycle(t: Tensor) {
    give(t.into_vec());
}

/// Every planned scratch buffer of a serve batch, checked out at once.
///
/// Taking all sizes **concurrently** forces the arena to materialise one
/// distinct buffer per planned need (a sequential warm-up could satisfy
/// two same-bucket needs with one buffer). [`BatchLease::release`] (or
/// drop) parks them all back, after which every in-batch checkout of a
/// planned size is a guaranteed pool hit — the arena's size-bucket
/// discovery (and any fresh allocation) happened up front, not on the
/// serving hot path. See [`crate::plan`].
pub struct BatchLease {
    guards: Vec<WorkspaceGuard>,
}

impl BatchLease {
    /// Number of buffers held.
    pub fn buffers(&self) -> usize {
        self.guards.len()
    }

    /// Total floats held.
    pub fn floats(&self) -> usize {
        self.guards.iter().map(|g| g.len()).sum()
    }

    /// Returns every buffer to the pool (same as drop, spelled out).
    pub fn release(self) {}
}

/// Checks out one buffer per entry of `sizes` (all live simultaneously,
/// hence all distinct), returning the batch-wide lease. Zero-length
/// entries are skipped — they never allocate.
pub fn lease_all(sizes: &[usize]) -> BatchLease {
    let guards: Vec<WorkspaceGuard> =
        sizes.iter().filter(|&&len| len > 0).map(|&len| take(len)).collect();
    BatchLease { guards }
}

/// Drops every pooled buffer (tests; also handy to release memory after a
/// large one-off workload).
pub fn clear() {
    let mut pool = POOL.lock().unwrap_or_else(|e| e.into_inner());
    let freed = pool.pooled_bytes;
    for b in pool.buckets.iter_mut() {
        b.clear();
    }
    pool.pooled_bytes = 0;
    drop(pool);
    metalora_obs::counters::record_workspace_pooled(-(freed as i64));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_round_correctly() {
        assert_eq!(bucket_for_len(1), 0);
        assert_eq!(bucket_for_len(2), 1);
        assert_eq!(bucket_for_len(3), 2);
        assert_eq!(bucket_for_len(1024), 10);
        assert_eq!(bucket_for_len(1025), 11);
        assert_eq!(bucket_for_cap(1024), 10);
        assert_eq!(bucket_for_cap(1500), 10);
        assert_eq!(bucket_for_cap(2048), 11);
    }

    #[test]
    fn take_returns_exact_len_and_reuses() {
        let first_ptr;
        {
            let g = take(100);
            assert_eq!(g.len(), 100);
            first_ptr = g.as_ptr();
        }
        // Same bucket (128) → the very same allocation comes back.
        let g = take(120);
        assert_eq!(g.len(), 120);
        assert_eq!(g.as_ptr(), first_ptr);
    }

    #[test]
    fn take_zeroed_really_zeroes() {
        {
            let mut g = take(64);
            g.fill(7.0);
        }
        let g = take_zeroed(64);
        assert!(g.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn zeroed_tensor_roundtrips_through_recycle() {
        let t = zeroed_tensor(&[4, 8]);
        assert_eq!(t.dims(), &[4, 8]);
        assert!(t.data().iter().all(|&x| x == 0.0));
        let ptr = t.data().as_ptr();
        recycle(t);
        let t2 = zeroed_tensor(&[32]);
        assert_eq!(t2.data().as_ptr(), ptr);
        assert!(t2.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn concurrent_checkouts_never_alias() {
        // Hammer the pool from several threads; each guard stamps its own
        // pattern and must read it back intact.
        std::thread::scope(|s| {
            for tid in 0..8 {
                s.spawn(move || {
                    for round in 0..200usize {
                        let len = 1 + (tid * 37 + round * 11) % 500;
                        let mut g = take(len);
                        let stamp = (tid * 1_000 + round) as f32;
                        g.fill(stamp);
                        // Another thread writing into the same buffer
                        // would break this read-back.
                        assert!(g.iter().all(|&x| x == stamp));
                    }
                });
            }
        });
    }

    #[test]
    fn long_lived_leases_survive_concurrent_churn() {
        // The tile-grid pattern: each worker holds one lease for its whole
        // lifetime (its A panel) while short-lived checkouts (B panels,
        // im2col scratch) cycle through the pool around it. The long lease
        // must stay intact throughout.
        std::thread::scope(|s| {
            for tid in 0..6 {
                s.spawn(move || {
                    let len = 256 + tid;
                    let mut lease = take(len);
                    let stamp = (7_000 + tid) as f32;
                    lease.fill(stamp);
                    for round in 0..300usize {
                        // Churn: same-bucket checkouts that are stamped,
                        // verified and returned while the lease is live.
                        let mut short = take(256 + (round % 64));
                        short.fill(-(round as f32));
                        assert!(short.iter().all(|&x| x == -(round as f32)));
                        drop(short);
                        assert!(lease.iter().all(|&x| x == stamp));
                    }
                });
            }
        });
    }

    #[test]
    fn zero_len_checkout_is_fine() {
        let g = take(0);
        assert!(g.is_empty());
        give(Vec::new()); // no-op, must not poison the pool
    }

    #[test]
    fn lease_all_holds_distinct_buffers_and_warms_the_pool() {
        clear();
        // Three same-bucket sizes: a sequential warm-up would collapse
        // them into one buffer; the lease must hold three distinct ones.
        let sizes = [300, 310, 320, 0, 64];
        let lease = lease_all(&sizes);
        assert_eq!(lease.buffers(), 4); // zero-length entry skipped
        assert_eq!(lease.floats(), 300 + 310 + 320 + 64);
        let ptrs: Vec<_> = lease.guards.iter().map(|g| g.as_ptr()).collect();
        for (i, a) in ptrs.iter().enumerate() {
            for b in &ptrs[i + 1..] {
                assert_ne!(a, b, "leased buffers must never alias");
            }
        }
        lease.release();
        // The pool is now warm: re-taking all sizes concurrently gets the
        // same allocations back (order within a bucket is stack-like, so
        // compare as sets).
        let again = lease_all(&sizes);
        let mut got: Vec<_> = again.guards.iter().map(|g| g.as_ptr()).collect();
        let mut want = ptrs.clone();
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }
}
