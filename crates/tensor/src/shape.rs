//! Shape and stride algebra: row-major strides, flat↔multi index
//! conversion, broadcasting rules and permutation validation.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// The extents of a tensor along each axis.
///
/// A `Shape` is a thin, validated wrapper over `Vec<usize>`. Rank-0 shapes
/// (scalars) are permitted and have `num_elements() == 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Builds a shape from axis extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Extents as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (1 for a scalar shape).
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Extent along `axis`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.0
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.rank(),
            })
    }

    /// Row-major (C-order) strides: the last axis is contiguous.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank()];
        for i in (0..self.rank().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Converts a multi-index to the flat row-major offset.
    pub fn flat_index(&self, idx: &[usize]) -> Result<usize> {
        if idx.len() != self.rank() {
            return Err(TensorError::InvalidArgument(format!(
                "index of length {} for rank-{} shape",
                idx.len(),
                self.rank()
            )));
        }
        let mut flat = 0usize;
        for (axis, (&i, &d)) in idx.iter().zip(&self.0).enumerate() {
            if i >= d {
                return Err(TensorError::IndexOutOfRange { index: i, len: d });
            }
            let _ = axis;
            flat = flat * d + i;
        }
        Ok(flat)
    }

    /// Converts a flat row-major offset back to a multi-index.
    pub fn multi_index(&self, mut flat: usize) -> Result<Vec<usize>> {
        let n = self.num_elements();
        if flat >= n {
            return Err(TensorError::IndexOutOfRange { index: flat, len: n });
        }
        let mut idx = vec![0usize; self.rank()];
        for (slot, &d) in idx.iter_mut().zip(&self.0).rev() {
            *slot = flat % d;
            flat /= d;
        }
        Ok(idx)
    }

    /// Computes the shape resulting from NumPy-style broadcasting of two
    /// shapes, aligning trailing axes. Axes must match or one of them be 1.
    pub fn broadcast(&self, other: &Shape) -> Result<Shape> {
        let r = self.rank().max(other.rank());
        let mut out = vec![0usize; r];
        for (k, slot) in out.iter_mut().enumerate() {
            let a = if k < r - self.rank() {
                1
            } else {
                self.0[k - (r - self.rank())]
            };
            let b = if k < r - other.rank() {
                1
            } else {
                other.0[k - (r - other.rank())]
            };
            *slot = if a == b {
                a
            } else if a == 1 {
                b
            } else if b == 1 {
                a
            } else {
                return Err(TensorError::ShapeMismatch {
                    op: "broadcast",
                    lhs: self.0.clone(),
                    rhs: other.0.clone(),
                });
            };
        }
        Ok(Shape(out))
    }

    /// Validates that `perm` is a permutation of `0..rank` and returns the
    /// permuted shape.
    pub fn permuted(&self, perm: &[usize]) -> Result<Shape> {
        validate_permutation(perm, self.rank())?;
        Ok(Shape(perm.iter().map(|&p| self.0[p]).collect()))
    }

    /// Removes axes of extent 1; a scalar shape is returned when all axes
    /// are 1.
    pub fn squeezed(&self) -> Shape {
        Shape(self.0.iter().copied().filter(|&d| d != 1).collect())
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

/// Checks that `perm` is a valid permutation of `0..rank`.
pub fn validate_permutation(perm: &[usize], rank: usize) -> Result<()> {
    if perm.len() != rank {
        return Err(TensorError::InvalidArgument(format!(
            "permutation of length {} for rank {rank}",
            perm.len()
        )));
    }
    let mut seen = vec![false; rank];
    for &p in perm {
        if p >= rank || seen[p] {
            return Err(TensorError::InvalidArgument(format!(
                "invalid permutation {perm:?} for rank {rank}"
            )));
        }
        seen[p] = true;
    }
    Ok(())
}

/// An odometer-style iterator over all multi-indices of a shape, in
/// row-major order. Used by generic (non-kernel) fallback paths.
pub struct IndexIter {
    dims: Vec<usize>,
    current: Vec<usize>,
    done: bool,
}

impl IndexIter {
    /// Creates an iterator over all indices of `shape`.
    pub fn new(shape: &Shape) -> Self {
        let done = shape.num_elements() == 0;
        IndexIter {
            dims: shape.dims().to_vec(),
            current: vec![0; shape.rank()],
            done,
        }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let out = self.current.clone();
        // Odometer increment from the last axis.
        let mut axis = self.dims.len();
        loop {
            if axis == 0 {
                self.done = true;
                break;
            }
            axis -= 1;
            self.current[axis] += 1;
            if self.current[axis] < self.dims[axis] {
                break;
            }
            self.current[axis] = 0;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn flat_and_multi_index_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        for flat in 0..s.num_elements() {
            let idx = s.multi_index(flat).unwrap();
            assert_eq!(s.flat_index(&idx).unwrap(), flat);
        }
    }

    #[test]
    fn flat_index_rejects_out_of_range() {
        let s = Shape::new(&[2, 3]);
        assert!(s.flat_index(&[2, 0]).is_err());
        assert!(s.flat_index(&[0]).is_err());
        assert!(s.multi_index(6).is_err());
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.num_elements(), 1);
        assert_eq!(s.flat_index(&[]).unwrap(), 0);
        assert_eq!(s.multi_index(0).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_rules() {
        let a = Shape::new(&[3, 1]);
        let b = Shape::new(&[1, 4]);
        assert_eq!(a.broadcast(&b).unwrap().dims(), &[3, 4]);

        let a = Shape::new(&[5, 3, 1]);
        let b = Shape::new(&[3, 4]);
        assert_eq!(a.broadcast(&b).unwrap().dims(), &[5, 3, 4]);

        let a = Shape::new(&[2]);
        let b = Shape::new(&[3]);
        assert!(a.broadcast(&b).is_err());
    }

    #[test]
    fn permuted_shape() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.permuted(&[2, 0, 1]).unwrap().dims(), &[4, 2, 3]);
        assert!(s.permuted(&[0, 0, 1]).is_err());
        assert!(s.permuted(&[0, 1]).is_err());
    }

    #[test]
    fn squeezed_removes_unit_axes() {
        assert_eq!(Shape::new(&[1, 3, 1, 4]).squeezed().dims(), &[3, 4]);
        assert_eq!(Shape::new(&[1, 1]).squeezed().dims(), &[] as &[usize]);
    }

    #[test]
    fn index_iter_covers_all_in_order() {
        let s = Shape::new(&[2, 3]);
        let all: Vec<_> = IndexIter::new(&s).collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[1], vec![0, 1]);
        assert_eq!(all[5], vec![1, 2]);
    }

    #[test]
    fn index_iter_empty_shape() {
        let s = Shape::new(&[0, 3]);
        assert_eq!(IndexIter::new(&s).count(), 0);
    }

    #[test]
    fn index_iter_scalar() {
        let s = Shape::new(&[]);
        let all: Vec<_> = IndexIter::new(&s).collect();
        assert_eq!(all, vec![Vec::<usize>::new()]);
    }
}
