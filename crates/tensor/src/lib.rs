//! # metalora-tensor
//!
//! A dense, row-major, `f32` tensor engine built from scratch for the
//! MetaLoRA reproduction. It provides every numeric substrate the paper
//! relies on:
//!
//! * shape/stride algebra and broadcasting ([`shape`]),
//! * the core [`Tensor`] type with constructors, views and iteration,
//! * elementwise / reduction / permutation kernels and a blocked matmul
//!   ([`ops`]),
//! * **general pairwise tensor contraction** (Eq. 1 of the paper) and a
//!   mini-einsum ([`contract`], [`einsum`]),
//! * convolution, both direct (im2col) and expressed as a tensor-network
//!   contraction through the binary *dummy tensor* 𝒫 (Eq. 2, Fig. 2)
//!   ([`conv`]),
//! * dense linear algebra — QR, Jacobi SVD, solve, pseudo-inverse —
//!   ([`linalg`]),
//! * the **CP** (CANDECOMP/PARAFAC, Eq. 3–4) and **Tensor-Ring** formats with
//!   ALS / SVD-based decomposition drivers ([`decomp`]),
//! * seeded random initialisers ([`init`]).
//!
//! Design notes: tensors own a contiguous `Vec<f32>`; permutations produce
//! materialised tensors (simple, cache-friendly, adequate at the scales the
//! experiments run at). All fallible public operations return
//! [`Result<T, TensorError>`] rather than panicking.

pub mod bf16;
pub mod conv;
pub mod contract;
pub mod decomp;
pub mod einsum;
pub mod error;
pub mod init;
pub mod linalg;
pub mod ops;
pub mod par;
pub mod plan;
pub mod shape;
pub mod tensor;
pub mod workspace;

pub use bf16::Bf16Buf;
pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Default tolerance used by approximate-equality helpers in tests and
/// verification binaries.
pub const DEFAULT_TOL: f32 = 1e-4;

/// Returns `true` when `a` and `b` agree elementwise within `tol`
/// (absolute on small values, relative on large ones).
pub fn approx_eq(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    if a.shape() != b.shape() {
        return false;
    }
    a.data()
        .iter()
        .zip(b.data())
        .all(|(&x, &y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

/// Maximum elementwise deviation between two same-shaped tensors, scaled by
/// `1 + max(|a|,|b|)`; `f32::INFINITY` when shapes differ.
pub fn max_rel_err(a: &Tensor, b: &Tensor) -> f32 {
    if a.shape() != b.shape() {
        return f32::INFINITY;
    }
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x - y).abs() / (1.0 + x.abs().max(y.abs())))
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn approx_eq_same_tensor() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        assert!(approx_eq(&t, &t, 1e-6));
    }

    #[test]
    fn approx_eq_shape_mismatch() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(!approx_eq(&a, &b, 1.0));
        assert!(max_rel_err(&a, &b).is_infinite());
    }

    #[test]
    fn max_rel_err_reports_deviation() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.5], &[2]).unwrap();
        let e = max_rel_err(&a, &b);
        assert!(e > 0.13 && e < 0.15, "e = {e}");
    }
}
