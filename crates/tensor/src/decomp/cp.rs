//! CANDECOMP/PARAFAC (CP) format and the ALS decomposition driver
//! (Eq. 3–4 of the paper).

use super::{fold, khatri_rao_list, unfold};
use crate::ops::{matmul, matmul_transpose_a, matmul_transpose_b};
use crate::{init, linalg, Result, Tensor, TensorError};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A tensor in CP format:
/// `X[i₁..i_N] ≈ Σ_r λ_r ∏_n Aⁿ[i_n, r]` — Eq. 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CpFormat {
    /// Per-component scaling factors λ (the diagonal of **Λ** in Eq. 3).
    pub lambda: Vec<f32>,
    /// Factor matrices `Aⁿ : [I_n, R]`, one per mode.
    pub factors: Vec<Tensor>,
}

impl CpFormat {
    /// Validates and wraps factor matrices and scaling vector.
    pub fn new(lambda: Vec<f32>, factors: Vec<Tensor>) -> Result<Self> {
        let r = lambda.len();
        if factors.is_empty() {
            return Err(TensorError::InvalidArgument(
                "CP format needs at least one factor".into(),
            ));
        }
        for f in &factors {
            if f.rank() != 2 || f.dims()[1] != r {
                return Err(TensorError::ShapeMismatch {
                    op: "CpFormat",
                    lhs: f.dims().to_vec(),
                    rhs: vec![f.dims().first().copied().unwrap_or(0), r],
                });
            }
        }
        Ok(CpFormat { lambda, factors })
    }

    /// Random CP tensor with entries scaled so the reconstruction has
    /// roughly unit variance.
    pub fn random(dims: &[usize], rank: usize, rng: &mut StdRng) -> Result<Self> {
        if dims.is_empty() || rank == 0 {
            return Err(TensorError::InvalidArgument(
                "CP random: empty dims or zero rank".into(),
            ));
        }
        let scale = (1.0 / rank as f32).powf(1.0 / dims.len() as f32);
        let factors = dims
            .iter()
            .map(|&d| init::normal(&[d, rank], 0.0, scale, rng))
            .collect();
        Ok(CpFormat {
            lambda: vec![1.0; rank],
            factors,
        })
    }

    /// CP rank `R`.
    pub fn rank(&self) -> usize {
        self.lambda.len()
    }

    /// Target tensor dimensions.
    pub fn dims(&self) -> Vec<usize> {
        self.factors.iter().map(|f| f.dims()[0]).collect()
    }

    /// Number of parameters stored by the format.
    pub fn num_params(&self) -> usize {
        self.lambda.len() + self.factors.iter().map(|f| f.len()).sum::<usize>()
    }

    /// Materialises the full tensor via
    /// `X₍₀₎ = A⁰·diag(λ)·KR(A¹..A^{N-1})ᵀ`.
    pub fn reconstruct(&self) -> Result<Tensor> {
        let dims = self.dims();
        let r = self.rank();
        // A⁰ with columns scaled by λ.
        let mut a0 = self.factors[0].clone();
        for row in 0..a0.dims()[0] {
            for c in 0..r {
                let v = a0.get(&[row, c])? * self.lambda[c];
                a0.set(&[row, c], v)?;
            }
        }
        if self.factors.len() == 1 {
            // Rank-1 modes: X = A⁰·λ summed over columns → vector.
            let ones = Tensor::ones(&[r, 1]);
            let v = matmul(&a0, &ones)?;
            return v.reshape(&[dims[0]]);
        }
        let others: Vec<&Tensor> = self.factors[1..].iter().collect();
        let kr = khatri_rao_list(&others)?;
        let x0 = matmul_transpose_b(&a0, &kr)?;
        fold(&x0, 0, &dims)
    }

    /// Naive elementwise reconstruction (test oracle).
    pub fn reconstruct_naive(&self) -> Result<Tensor> {
        let dims = self.dims();
        let mut out = Tensor::zeros(&dims);
        let shape = out.shape().clone();
        for flat in 0..out.len() {
            let idx = shape.multi_index(flat)?;
            let mut acc = 0.0f32;
            for (r, &l) in self.lambda.iter().enumerate() {
                let mut prod = l;
                for (n, f) in self.factors.iter().enumerate() {
                    prod *= f.get(&[idx[n], r])?;
                }
                acc += prod;
            }
            out.data_mut()[flat] = acc;
        }
        Ok(out)
    }

    /// Relative Frobenius reconstruction error against `target`.
    pub fn relative_error(&self, target: &Tensor) -> Result<f32> {
        let rec = self.reconstruct()?;
        if rec.shape() != target.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "relative_error",
                lhs: rec.dims().to_vec(),
                rhs: target.dims().to_vec(),
            });
        }
        let diff: f32 = rec
            .data()
            .iter()
            .zip(target.data())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum();
        let denom = target.norm().max(1e-12);
        Ok(diff.sqrt() / denom)
    }
}

/// Alternating least squares CP decomposition.
///
/// Each sweep solves, for every mode `n`,
/// `Aⁿ ← X₍ₙ₎ · KR(others) · (⊛_{m≠n} AᵐᵀAᵐ)⁺`, then renormalises columns
/// into λ. Stops after `max_sweeps` or when the error improvement drops
/// below `tol`.
pub fn cp_als(
    x: &Tensor,
    rank: usize,
    max_sweeps: usize,
    tol: f32,
    rng: &mut StdRng,
) -> Result<CpFormat> {
    if x.rank() < 2 {
        return Err(TensorError::InvalidArgument(
            "cp_als needs a tensor of rank >= 2".into(),
        ));
    }
    if rank == 0 {
        return Err(TensorError::InvalidArgument("cp_als rank 0".into()));
    }
    let n_modes = x.rank();
    let mut cp = CpFormat::random(x.dims(), rank, rng)?;
    let mut prev_err = f32::INFINITY;

    for _sweep in 0..max_sweeps.max(1) {
        for mode in 0..n_modes {
            // Gram Hadamard product over the other modes.
            let mut v = Tensor::ones(&[rank, rank]);
            for (m, f) in cp.factors.iter().enumerate() {
                if m == mode {
                    continue;
                }
                let g = matmul_transpose_a(f, f)?;
                v = crate::ops::mul(&v, &g)?;
            }
            // Khatri–Rao of the other factors in unfold column order.
            let others: Vec<&Tensor> = (0..n_modes)
                .filter(|&m| m != mode)
                .map(|m| &cp.factors[m])
                .collect();
            let kr = khatri_rao_list(&others)?;
            let xn = unfold(x, mode)?;
            let mttkrp = matmul(&xn, &kr)?; // [I_n, R]
            // Aⁿ = mttkrp · V⁺ — solve Vᵀ·Aᵀ = mttkrpᵀ (V symmetric).
            let vp = linalg::pinv(&v, 1e-6)?;
            let a_new = matmul(&mttkrp, &vp)?;
            cp.factors[mode] = a_new;
        }
        // Normalise columns of every factor into λ.
        let mut lambda = vec![1.0f32; rank];
        for f in cp.factors.iter_mut() {
            let rows = f.dims()[0];
            #[allow(clippy::needless_range_loop)]
            for c in 0..rank {
                let mut nrm = 0.0f32;
                for row in 0..rows {
                    let v = f.get(&[row, c])?;
                    nrm += v * v;
                }
                let nrm = nrm.sqrt();
                if nrm > 1e-12 {
                    for row in 0..rows {
                        let v = f.get(&[row, c])? / nrm;
                        f.set(&[row, c], v)?;
                    }
                    lambda[c] *= nrm;
                }
            }
        }
        cp.lambda = lambda;

        let err = cp.relative_error(x)?;
        if !err.is_finite() {
            return Err(TensorError::Numerical(format!(
                "cp_als diverged (error {err})"
            )));
        }
        if (prev_err - err).abs() < tol {
            break;
        }
        prev_err = err;
    }
    Ok(cp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, init};

    fn exact_cp(dims: &[usize], rank: usize, seed: u64) -> (CpFormat, Tensor) {
        let mut rng = init::rng(seed);
        let cp = CpFormat::random(dims, rank, &mut rng).unwrap();
        let full = cp.reconstruct().unwrap();
        (cp, full)
    }

    #[test]
    fn reconstruct_matches_naive() {
        let (cp, full) = exact_cp(&[3, 4, 5], 2, 1);
        let naive = cp.reconstruct_naive().unwrap();
        assert!(approx_eq(&full, &naive, 1e-4));
    }

    #[test]
    fn reconstruct_matrix_case_is_low_rank_product() {
        // For 2 modes, CP reconstruct = A·diag(λ)·Bᵀ.
        let (cp, full) = exact_cp(&[4, 6], 3, 2);
        assert_eq!(full.dims(), &[4, 6]);
        let naive = cp.reconstruct_naive().unwrap();
        assert!(approx_eq(&full, &naive, 1e-4));
    }

    #[test]
    fn cp_format_validation() {
        assert!(CpFormat::new(vec![1.0], vec![]).is_err());
        let bad = Tensor::zeros(&[3, 2]);
        assert!(CpFormat::new(vec![1.0], vec![bad]).is_err()); // R mismatch
        assert!(CpFormat::random(&[], 2, &mut init::rng(0)).is_err());
        assert!(CpFormat::random(&[2], 0, &mut init::rng(0)).is_err());
    }

    #[test]
    fn num_params_counts() {
        let (cp, _) = exact_cp(&[3, 4], 2, 3);
        assert_eq!(cp.num_params(), 2 + 3 * 2 + 4 * 2);
        assert_eq!(cp.rank(), 2);
        assert_eq!(cp.dims(), vec![3, 4]);
    }

    #[test]
    fn cp_als_recovers_exact_low_rank() {
        // Decompose a tensor that is exactly rank 2 — ALS should reach
        // near-zero error.
        let (_, target) = exact_cp(&[5, 6, 4], 2, 4);
        let mut rng = init::rng(99);
        let cp = cp_als(&target, 2, 60, 1e-7, &mut rng).unwrap();
        let err = cp.relative_error(&target).unwrap();
        // f32 ALS with a pinv cutoff plateaus around a few percent.
        assert!(err < 5e-2, "relative error {err}");
    }

    #[test]
    fn cp_als_error_decreases_with_rank() {
        let mut rng = init::rng(7);
        let x = init::uniform(&[6, 6, 6], -1.0, 1.0, &mut rng);
        let e1 = cp_als(&x, 1, 30, 1e-7, &mut rng)
            .unwrap()
            .relative_error(&x)
            .unwrap();
        let e6 = cp_als(&x, 8, 30, 1e-7, &mut rng)
            .unwrap()
            .relative_error(&x)
            .unwrap();
        assert!(
            e6 < e1,
            "higher rank should fit better: rank1={e1}, rank8={e6}"
        );
    }

    #[test]
    fn cp_als_input_validation() {
        let mut rng = init::rng(0);
        assert!(cp_als(&Tensor::zeros(&[3]), 1, 5, 1e-4, &mut rng).is_err());
        assert!(cp_als(&Tensor::zeros(&[3, 3]), 0, 5, 1e-4, &mut rng).is_err());
    }

    #[test]
    fn relative_error_shape_check() {
        let (cp, _) = exact_cp(&[3, 4], 2, 5);
        assert!(cp.relative_error(&Tensor::zeros(&[4, 3])).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let (cp, _) = exact_cp(&[3, 4], 2, 6);
        let json = serde_json::to_string(&cp).unwrap();
        let back: CpFormat = serde_json::from_str(&json).unwrap();
        assert!(approx_eq(
            &cp.reconstruct().unwrap(),
            &back.reconstruct().unwrap(),
            1e-6
        ));
    }
}
