//! Tensor-network formats: CP (CANDECOMP/PARAFAC, Eq. 3–4), Tensor-Ring and
//! Tucker,
//! plus the matricization helpers (`unfold`/`fold`, Khatri–Rao) their
//! decomposition drivers are built from.
//!
//! Convention: `unfold(t, n)` is the row-major mode-`n` matricization —
//! mode `n` becomes the rows, the remaining modes keep their original
//! relative order along the columns (first remaining mode varies slowest).
//! [`khatri_rao`] uses the matching Kronecker order so the classic ALS
//! identity `X₍ₙ₎ ≈ Aⁿ·diag(λ)·KR(others)ᵀ` holds exactly.

mod cp;
mod tr;
mod tucker;

pub use cp::{cp_als, CpFormat};
pub use tr::{tr_svd, TrFormat};
pub use tucker::{hooi, hosvd, TuckerFormat};

use crate::ops::permute;
use crate::{Result, Tensor, TensorError};

/// Mode-`n` matricization: `[I_n, ∏_{m≠n} I_m]`, remaining modes in
/// original order.
pub fn unfold(t: &Tensor, mode: usize) -> Result<Tensor> {
    if mode >= t.rank() {
        return Err(TensorError::AxisOutOfRange {
            axis: mode,
            rank: t.rank(),
        });
    }
    let mut perm = vec![mode];
    perm.extend((0..t.rank()).filter(|&k| k != mode));
    let p = permute(t, &perm)?;
    let rows = t.dims()[mode];
    let cols = t.len() / rows.max(1);
    p.reshape(&[rows, cols])
}

/// Inverse of [`unfold`]: folds a `[I_n, ∏ others]` matrix back into the
/// original `dims`.
pub fn fold(m: &Tensor, mode: usize, dims: &[usize]) -> Result<Tensor> {
    if mode >= dims.len() {
        return Err(TensorError::AxisOutOfRange {
            axis: mode,
            rank: dims.len(),
        });
    }
    let expected: usize = dims.iter().product();
    if m.len() != expected {
        return Err(TensorError::ReshapeMismatch {
            from: m.len(),
            to: dims.to_vec(),
        });
    }
    if m.rank() != 2 || m.dims()[0] != dims[mode] {
        return Err(TensorError::ShapeMismatch {
            op: "fold",
            lhs: m.dims().to_vec(),
            rhs: dims.to_vec(),
        });
    }
    let mut permuted_dims = vec![dims[mode]];
    permuted_dims.extend(
        (0..dims.len())
            .filter(|&k| k != mode)
            .map(|k| dims[k]),
    );
    let t = m.reshaped(&permuted_dims)?;
    // Invert the unfold permutation.
    let mut perm = vec![mode];
    perm.extend((0..dims.len()).filter(|&k| k != mode));
    let mut inv = vec![0usize; dims.len()];
    for (dst, &src) in perm.iter().enumerate() {
        inv[src] = dst;
    }
    permute(&t, &inv)
}

/// Column-wise Khatri–Rao product of `[I, R]` and `[J, R]` → `[I·J, R]`;
/// the first factor varies slowest (row-major order, matching [`unfold`]).
pub fn khatri_rao(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    if a.rank() != 2 || b.rank() != 2 || a.dims()[1] != b.dims()[1] {
        return Err(TensorError::ShapeMismatch {
            op: "khatri_rao",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let (i, r) = (a.dims()[0], a.dims()[1]);
    let j = b.dims()[0];
    let mut out = vec![0.0f32; i * j * r];
    let (ad, bd) = (a.data(), b.data());
    for ii in 0..i {
        for jj in 0..j {
            let row = (ii * j + jj) * r;
            for rr in 0..r {
                out[row + rr] = ad[ii * r + rr] * bd[jj * r + rr];
            }
        }
    }
    Tensor::from_vec(out, &[i * j, r])
}

/// Khatri–Rao product of a list of factor matrices (left-to-right, first
/// factor varying slowest). Errors on an empty list.
pub fn khatri_rao_list(factors: &[&Tensor]) -> Result<Tensor> {
    let first = factors.first().ok_or_else(|| {
        TensorError::InvalidArgument("khatri_rao_list of zero factors".into())
    })?;
    let mut acc = (*first).clone();
    for f in &factors[1..] {
        acc = khatri_rao(&acc, f)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, init};

    #[test]
    fn unfold_fold_roundtrip_all_modes() {
        let mut r = init::rng(1);
        let t = init::uniform(&[2, 3, 4, 5], -1.0, 1.0, &mut r);
        for mode in 0..4 {
            let u = unfold(&t, mode).unwrap();
            assert_eq!(u.dims()[0], t.dims()[mode]);
            let back = fold(&u, mode, t.dims()).unwrap();
            assert!(approx_eq(&t, &back, 0.0), "mode {mode}");
        }
    }

    #[test]
    fn unfold_mode0_is_plain_reshape() {
        let t = Tensor::arange(0.0, 1.0, 24).reshape(&[2, 3, 4]).unwrap();
        let u = unfold(&t, 0).unwrap();
        assert_eq!(u.data(), t.data());
        assert_eq!(u.dims(), &[2, 12]);
    }

    #[test]
    fn unfold_known_entries() {
        let t = Tensor::arange(0.0, 1.0, 24).reshape(&[2, 3, 4]).unwrap();
        let u = unfold(&t, 1).unwrap(); // [3, 8], columns ordered (i0, i2)
        // u[j, i0*4 + i2] == t[i0, j, i2].
        assert_eq!(u.get(&[2, 4 + 3]).unwrap(), t.get(&[1, 2, 3]).unwrap());
    }

    #[test]
    fn fold_validates() {
        let m = Tensor::zeros(&[3, 8]);
        assert!(fold(&m, 3, &[2, 3, 4]).is_err());
        assert!(fold(&m, 0, &[2, 3, 4]).is_err()); // 24 elements but rows=3≠2
        assert!(unfold(&Tensor::zeros(&[2, 2]), 2).is_err());
    }

    #[test]
    fn khatri_rao_small_known() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap();
        let k = khatri_rao(&a, &b).unwrap();
        assert_eq!(k.dims(), &[4, 2]);
        // Column 0: kron([1,3],[5,7]) = [5,7,15,21]; column 1: kron([2,4],[6,8]).
        assert_eq!(k.get(&[0, 0]).unwrap(), 5.0);
        assert_eq!(k.get(&[1, 0]).unwrap(), 7.0);
        assert_eq!(k.get(&[2, 0]).unwrap(), 15.0);
        assert_eq!(k.get(&[3, 1]).unwrap(), 32.0);
    }

    #[test]
    fn khatri_rao_validates() {
        assert!(khatri_rao(&Tensor::zeros(&[2, 2]), &Tensor::zeros(&[2, 3])).is_err());
        assert!(khatri_rao(&Tensor::zeros(&[2]), &Tensor::zeros(&[2, 2])).is_err());
        assert!(khatri_rao_list(&[]).is_err());
    }

    #[test]
    fn khatri_rao_matches_unfold_of_rank_one() {
        // For X = a ∘ b ∘ c, X_(0) = a · kr(b, c)ᵀ — validates that our
        // unfold and KR orders agree.
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]).unwrap();
        let c = Tensor::from_vec(vec![6.0, 7.0], &[2]).unwrap();
        let x = crate::contract::outer(&crate::contract::outer(&a, &b).unwrap(), &c).unwrap();
        let x0 = unfold(&x, 0).unwrap();
        let kr = khatri_rao(
            &b.reshaped(&[3, 1]).unwrap(),
            &c.reshaped(&[2, 1]).unwrap(),
        )
        .unwrap();
        let expect =
            crate::ops::matmul_transpose_b(&a.reshaped(&[2, 1]).unwrap(), &kr).unwrap();
        assert!(approx_eq(&x0, &expect, 1e-5));
    }
}
