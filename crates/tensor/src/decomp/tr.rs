//! Tensor-Ring (TR) format and a TR-SVD decomposition driver
//! (Zhao et al. 2016, ref. [20] of the paper).

use crate::contract::contract;
use crate::linalg::{svd, Svd};
use crate::ops::{matmul, permute};
use crate::{init, Result, Tensor, TensorError};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A tensor in Tensor-Ring format: cores `G_n : [r_n, I_n, r_{n+1}]` with
/// the ring closure `r_N = r_0`:
///
/// `X[i₁..i_N] = Tr( G₁[:,i₁,:] · G₂[:,i₂,:] ⋯ G_N[:,i_N,:] )`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrFormat {
    /// Ring cores, each of shape `[r_n, I_n, r_{n+1}]`.
    pub cores: Vec<Tensor>,
}

impl TrFormat {
    /// Validates core shapes (rank-3, chained bond dimensions, closed
    /// ring).
    pub fn new(cores: Vec<Tensor>) -> Result<Self> {
        if cores.is_empty() {
            return Err(TensorError::InvalidArgument(
                "TR format needs at least one core".into(),
            ));
        }
        for c in &cores {
            if c.rank() != 3 {
                return Err(TensorError::InvalidArgument(format!(
                    "TR core must be rank 3, got {:?}",
                    c.dims()
                )));
            }
        }
        for k in 0..cores.len() {
            let next = (k + 1) % cores.len();
            if cores[k].dims()[2] != cores[next].dims()[0] {
                return Err(TensorError::ShapeMismatch {
                    op: "TrFormat ring closure",
                    lhs: cores[k].dims().to_vec(),
                    rhs: cores[next].dims().to_vec(),
                });
            }
        }
        Ok(TrFormat { cores })
    }

    /// Random TR tensor with every bond dimension equal to `rank`, scaled
    /// so the reconstruction has modest variance.
    pub fn random(dims: &[usize], rank: usize, rng: &mut StdRng) -> Result<Self> {
        if dims.is_empty() || rank == 0 {
            return Err(TensorError::InvalidArgument(
                "TR random: empty dims or zero rank".into(),
            ));
        }
        let n = dims.len() as f32;
        // Each element of the reconstruction sums rank^N products of N core
        // entries; scale to keep it O(1).
        let scale = (1.0 / (rank as f32).powf(n)).powf(1.0 / n) * 0.8;
        let cores = dims
            .iter()
            .map(|&d| init::normal(&[rank, d, rank], 0.0, scale, rng))
            .collect();
        Ok(TrFormat { cores })
    }

    /// Per-core bond dimensions `r_0..r_{N-1}`.
    pub fn ranks(&self) -> Vec<usize> {
        self.cores.iter().map(|c| c.dims()[0]).collect()
    }

    /// Target tensor dimensions.
    pub fn dims(&self) -> Vec<usize> {
        self.cores.iter().map(|c| c.dims()[1]).collect()
    }

    /// Number of parameters stored by the format.
    pub fn num_params(&self) -> usize {
        self.cores.iter().map(|c| c.len()).sum()
    }

    /// Materialises the full tensor by chaining core contractions and
    /// closing the ring with a trace.
    pub fn reconstruct(&self) -> Result<Tensor> {
        // acc : [r0, I1..Ik, r_{k+1}].
        let mut acc = self.cores[0].clone();
        for core in &self.cores[1..] {
            let last = acc.rank() - 1;
            acc = contract(&acc, core, &[last], &[0])?;
        }
        // acc : [r0, I1, …, IN, r0] — trace over the first and last axes.
        let r0 = acc.dims()[0];
        let mid: Vec<usize> = acc.dims()[1..acc.rank() - 1].to_vec();
        let mid_len: usize = mid.iter().product();
        let flat = acc.reshaped(&[r0, mid_len, r0])?;
        let mut out = Tensor::zeros(&[mid_len]);
        for a in 0..r0 {
            for m in 0..mid_len {
                out.data_mut()[m] += flat.get(&[a, m, a])?;
            }
        }
        out.reshape(&mid)
    }

    /// Naive elementwise reconstruction (test oracle): explicit trace of
    /// the slice product per entry.
    pub fn reconstruct_naive(&self) -> Result<Tensor> {
        let dims = self.dims();
        let mut out = Tensor::zeros(&dims);
        let shape = out.shape().clone();
        for flat in 0..out.len() {
            let idx = shape.multi_index(flat)?;
            // Product of the selected lateral slices.
            let mut m: Option<Tensor> = None;
            for (n, core) in self.cores.iter().enumerate() {
                let (r_in, r_out) = (core.dims()[0], core.dims()[2]);
                let mut slice = Tensor::zeros(&[r_in, r_out]);
                for a in 0..r_in {
                    for b in 0..r_out {
                        slice.set(&[a, b], core.get(&[a, idx[n], b])?)?;
                    }
                }
                m = Some(match m {
                    None => slice,
                    Some(prev) => matmul(&prev, &slice)?,
                });
            }
            let m = m.expect("at least one core");
            let mut tr = 0.0f32;
            for a in 0..m.dims()[0] {
                tr += m.get(&[a, a])?;
            }
            out.data_mut()[flat] = tr;
        }
        Ok(out)
    }

    /// Relative Frobenius reconstruction error against `target`.
    pub fn relative_error(&self, target: &Tensor) -> Result<f32> {
        let rec = self.reconstruct()?;
        if rec.shape() != target.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "relative_error",
                lhs: rec.dims().to_vec(),
                rhs: target.dims().to_vec(),
            });
        }
        let diff: f32 = rec
            .data()
            .iter()
            .zip(target.data())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum();
        Ok(diff.sqrt() / target.norm().max(1e-12))
    }
}

/// TR-SVD: sequential truncated SVDs producing a TR representation with
/// bond dimensions capped at `max_rank`.
///
/// The first SVD splits rank `R₁ ≈ r₀·r₁`; subsequent modes follow the
/// TT-style sweep with the ring index `r₀` carried on the trailing axis
/// (Zhao et al. 2016, Alg. 1).
pub fn tr_svd(x: &Tensor, max_rank: usize, eps: f32) -> Result<TrFormat> {
    if x.rank() < 2 {
        return Err(TensorError::InvalidArgument(
            "tr_svd needs a tensor of rank >= 2".into(),
        ));
    }
    if max_rank == 0 {
        return Err(TensorError::InvalidArgument("tr_svd rank 0".into()));
    }
    let dims = x.dims().to_vec();
    let n_modes = dims.len();

    // --- First mode: split rank between r0 and r1. ---
    let rest: usize = dims[1..].iter().product();
    let c = x.reshaped(&[dims[0], rest])?;
    let Svd { u, s, vt } = svd(&c)?;
    let kept = truncation_rank(&s, max_rank * max_rank, eps);
    // Factor kept ≈ r0·r1 with both ≤ max_rank, shrinking to an exact
    // product if needed.
    let r0 = max_rank.min(kept).max(1);
    let r1 = (kept / r0).min(max_rank).max(1);
    let kept = r0 * r1;

    let u_k = take_cols(&u, kept)?; // [I1, kept]
    // G1 : [I1, r0, r1] → [r0, I1, r1].
    let g1 = permute(&u_k.reshaped(&[dims[0], r0, r1])?, &[1, 0, 2])?;

    // Z = diag(s)·Vt truncated : [kept, rest] = [r0·r1, I2⋯IN].
    let mut z = take_rows(&vt, kept)?;
    for (r, zrow) in z
        .data_mut()
        .chunks_mut(rest)
        .enumerate()
        .take(kept)
    {
        for v in zrow.iter_mut() {
            *v *= s[r];
        }
    }
    // [r0, r1, I2..IN] → move r0 to the tail: [r1, I2..IN, r0].
    let mut z_dims = vec![r0, r1];
    z_dims.extend_from_slice(&dims[1..]);
    let z_t = z.reshape(&z_dims)?;
    let mut perm: Vec<usize> = (1..z_dims.len()).collect();
    perm.push(0);
    let mut z = permute(&z_t, &perm)?; // [r1, I2, ..., IN, r0]

    let mut cores = vec![g1];
    let mut r_prev = r1;
    for &dim_k in &dims[1..n_modes - 1] {
        // z : [r_prev, I_k, …, I_N, r0] — SVD split after I_k.
        let lead = r_prev * dim_k;
        let tail = z.len() / lead;
        let zm = z.reshaped(&[lead, tail])?;
        let Svd { u, s, vt } = svd(&zm)?;
        let rk = truncation_rank(&s, max_rank, eps);
        let u_k = take_cols(&u, rk)?;
        cores.push(u_k.reshaped(&[r_prev, dim_k, rk])?);
        let mut znew = take_rows(&vt, rk)?;
        for (r, zrow) in znew.data_mut().chunks_mut(tail).enumerate().take(rk) {
            for v in zrow.iter_mut() {
                *v *= s[r];
            }
        }
        z = znew;
        r_prev = rk;
    }
    // Final core: [r_{N-1}, I_N, r0].
    let g_last = z.reshape(&[r_prev, dims[n_modes - 1], r0])?;
    cores.push(g_last);
    TrFormat::new(cores)
}

/// Number of singular values kept under a hard cap and a relative energy
/// threshold `eps`.
fn truncation_rank(s: &[f32], cap: usize, eps: f32) -> usize {
    let total: f32 = s.iter().map(|&x| x * x).sum();
    if total <= 0.0 {
        return 1;
    }
    let budget = (eps * eps) * total;
    // Keep the smallest prefix whose discarded tail energy ≤ budget.
    let mut tail = total;
    let mut kept = s.len();
    for (k, &sv) in s.iter().enumerate() {
        if tail <= budget {
            kept = k;
            break;
        }
        tail -= sv * sv;
    }
    kept.clamp(1, cap.max(1)).min(s.len().max(1))
}

fn take_cols(m: &Tensor, k: usize) -> Result<Tensor> {
    let (rows, cols) = (m.dims()[0], m.dims()[1]);
    if k > cols {
        return Err(TensorError::IndexOutOfRange { index: k, len: cols });
    }
    let mut out = Tensor::zeros(&[rows, k]);
    for i in 0..rows {
        let src = &m.data()[i * cols..i * cols + k];
        out.data_mut()[i * k..(i + 1) * k].copy_from_slice(src);
    }
    Ok(out)
}

fn take_rows(m: &Tensor, k: usize) -> Result<Tensor> {
    let (rows, cols) = (m.dims()[0], m.dims()[1]);
    if k > rows {
        return Err(TensorError::IndexOutOfRange { index: k, len: rows });
    }
    Tensor::from_vec(m.data()[..k * cols].to_vec(), &[k, cols])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, init};

    #[test]
    fn reconstruct_matches_naive() {
        let mut rng = init::rng(1);
        let tr = TrFormat::random(&[3, 4, 5], 2, &mut rng).unwrap();
        let fast = tr.reconstruct().unwrap();
        let slow = tr.reconstruct_naive().unwrap();
        assert_eq!(fast.dims(), &[3, 4, 5]);
        assert!(approx_eq(&fast, &slow, 1e-4));
    }

    #[test]
    fn reconstruct_matrix_case() {
        // 2-mode ring: X[i,j] = Σ_{a,b} G1[a,i,b]·G2[b,j,a].
        let mut rng = init::rng(2);
        let tr = TrFormat::random(&[4, 3], 2, &mut rng).unwrap();
        let x = tr.reconstruct().unwrap();
        let naive = tr.reconstruct_naive().unwrap();
        assert!(approx_eq(&x, &naive, 1e-4));
    }

    #[test]
    fn new_validates_ring() {
        // Broken bond: 2→3 vs 2.
        let c1 = Tensor::zeros(&[2, 4, 3]);
        let c2 = Tensor::zeros(&[2, 5, 2]);
        assert!(TrFormat::new(vec![c1, c2]).is_err());
        assert!(TrFormat::new(vec![]).is_err());
        assert!(TrFormat::new(vec![Tensor::zeros(&[2, 2])]).is_err());
        // Open ring (last r_out ≠ first r_in).
        let c1 = Tensor::zeros(&[2, 4, 3]);
        let c2 = Tensor::zeros(&[3, 5, 5]);
        assert!(TrFormat::new(vec![c1, c2]).is_err());
    }

    #[test]
    fn ranks_dims_params() {
        let mut rng = init::rng(3);
        let tr = TrFormat::random(&[3, 4], 2, &mut rng).unwrap();
        assert_eq!(tr.ranks(), vec![2, 2]);
        assert_eq!(tr.dims(), vec![3, 4]);
        assert_eq!(tr.num_params(), 2 * 3 * 2 + 2 * 4 * 2);
    }

    #[test]
    fn tr_svd_recovers_exact_ring() {
        // A tensor that *is* a rank-2 ring should decompose to low error.
        let mut rng = init::rng(4);
        let tr = TrFormat::random(&[4, 5, 3], 2, &mut rng).unwrap();
        let target = tr.reconstruct().unwrap();
        let rec = tr_svd(&target, 4, 1e-6).unwrap();
        let err = rec.relative_error(&target).unwrap();
        assert!(err < 2e-2, "relative error {err}");
    }

    #[test]
    fn tr_svd_matrix() {
        let mut rng = init::rng(5);
        let m = init::uniform(&[6, 8], -1.0, 1.0, &mut rng);
        let rec = tr_svd(&m, 8, 1e-6).unwrap();
        let err = rec.relative_error(&m).unwrap();
        assert!(err < 5e-2, "full-rank matrix should reconstruct, err {err}");
    }

    #[test]
    fn tr_svd_error_decreases_with_rank() {
        let mut rng = init::rng(6);
        let x = init::uniform(&[5, 5, 5], -1.0, 1.0, &mut rng);
        let e1 = tr_svd(&x, 1, 1e-9).unwrap().relative_error(&x).unwrap();
        let e4 = tr_svd(&x, 5, 1e-9).unwrap().relative_error(&x).unwrap();
        assert!(e4 < e1, "rank1={e1} rank5={e4}");
    }

    #[test]
    fn tr_svd_validation() {
        assert!(tr_svd(&Tensor::zeros(&[3]), 2, 1e-6).is_err());
        assert!(tr_svd(&Tensor::zeros(&[3, 3]), 0, 1e-6).is_err());
    }

    #[test]
    fn truncation_rank_behaviour() {
        let s = vec![10.0, 5.0, 1.0, 0.5];
        assert_eq!(truncation_rank(&s, 10, 0.0), 4);
        assert_eq!(truncation_rank(&s, 2, 0.0), 2);
        // Large eps keeps only the dominant value.
        assert_eq!(truncation_rank(&s, 10, 0.6), 1);
        assert_eq!(truncation_rank(&[0.0], 3, 0.1), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = init::rng(7);
        let tr = TrFormat::random(&[3, 4], 2, &mut rng).unwrap();
        let json = serde_json::to_string(&tr).unwrap();
        let back: TrFormat = serde_json::from_str(&json).unwrap();
        assert!(approx_eq(
            &tr.reconstruct().unwrap(),
            &back.reconstruct().unwrap(),
            1e-6
        ));
    }
}
