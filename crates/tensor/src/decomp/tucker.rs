//! Tucker format and HOSVD/HOOI decomposition drivers — the third format
//! the paper's related-work section names ("CP decomposition and Tucker
//! decomposition effectively reduce model size").

use super::unfold;
use crate::contract::contract;
use crate::linalg::{svd, Svd};
use crate::{init, Result, Tensor, TensorError};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A tensor in Tucker format:
/// `X ≈ 𝒢 ×₁ U¹ ×₂ U² ⋯ ×_N U^N` with core `𝒢:[r₁..r_N]` and factor
/// matrices `Uⁿ:[I_n, r_n]` (orthonormal columns after decomposition).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuckerFormat {
    /// Core tensor `𝒢`.
    pub core: Tensor,
    /// Per-mode factor matrices `Uⁿ : [I_n, r_n]`.
    pub factors: Vec<Tensor>,
}

impl TuckerFormat {
    /// Validates core/factor shape agreement.
    pub fn new(core: Tensor, factors: Vec<Tensor>) -> Result<Self> {
        if factors.len() != core.rank() {
            return Err(TensorError::InvalidArgument(format!(
                "{} factors for a rank-{} core",
                factors.len(),
                core.rank()
            )));
        }
        for (n, f) in factors.iter().enumerate() {
            if f.rank() != 2 || f.dims()[1] != core.dims()[n] {
                return Err(TensorError::ShapeMismatch {
                    op: "TuckerFormat",
                    lhs: f.dims().to_vec(),
                    rhs: core.dims().to_vec(),
                });
            }
        }
        Ok(TuckerFormat { core, factors })
    }

    /// Random Tucker tensor with every core rank equal to `rank`.
    pub fn random(dims: &[usize], rank: usize, rng: &mut StdRng) -> Result<Self> {
        if dims.is_empty() || rank == 0 {
            return Err(TensorError::InvalidArgument(
                "Tucker random: empty dims or zero rank".into(),
            ));
        }
        let core_dims = vec![rank; dims.len()];
        let scale = (1.0 / (rank as f32)).powf(0.5);
        let core = init::normal(&core_dims, 0.0, 1.0, rng);
        let factors = dims
            .iter()
            .map(|&d| init::normal(&[d, rank], 0.0, scale, rng))
            .collect();
        Ok(TuckerFormat { core, factors })
    }

    /// Target tensor dimensions.
    pub fn dims(&self) -> Vec<usize> {
        self.factors.iter().map(|f| f.dims()[0]).collect()
    }

    /// Core ranks `r₁..r_N`.
    pub fn ranks(&self) -> Vec<usize> {
        self.core.dims().to_vec()
    }

    /// Number of parameters stored by the format.
    pub fn num_params(&self) -> usize {
        self.core.len() + self.factors.iter().map(|f| f.len()).sum::<usize>()
    }

    /// Materialises the full tensor by successive mode products.
    pub fn reconstruct(&self) -> Result<Tensor> {
        let mut acc = self.core.clone();
        for (n, u) in self.factors.iter().enumerate() {
            // Mode-n product: contract acc's axis n with Uᵀ's second axis,
            // then bring the new axis back to position n.
            // contract(acc, u, [n], [1]) puts the new I_n axis last.
            let rank_before = acc.rank();
            let c = contract(&acc, u, &[n], &[1])?;
            // Move last axis back to position n.
            let mut perm: Vec<usize> = (0..rank_before - 1).collect();
            perm.insert(n, rank_before - 1);
            acc = crate::ops::permute(&c, &perm)?;
        }
        Ok(acc)
    }

    /// Relative Frobenius reconstruction error against `target`.
    pub fn relative_error(&self, target: &Tensor) -> Result<f32> {
        let rec = self.reconstruct()?;
        if rec.shape() != target.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "relative_error",
                lhs: rec.dims().to_vec(),
                rhs: target.dims().to_vec(),
            });
        }
        let diff: f32 = rec
            .data()
            .iter()
            .zip(target.data())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum();
        Ok(diff.sqrt() / target.norm().max(1e-12))
    }
}

fn leading_singular_vectors(m: &Tensor, k: usize) -> Result<Tensor> {
    let Svd { u, .. } = svd(m)?;
    let (rows, cols) = (u.dims()[0], u.dims()[1]);
    let k = k.min(cols).max(1);
    let mut out = Tensor::zeros(&[rows, k]);
    for i in 0..rows {
        out.data_mut()[i * k..(i + 1) * k]
            .copy_from_slice(&u.data()[i * cols..i * cols + k]);
    }
    Ok(out)
}

/// Higher-order SVD (HOSVD): factor `Uⁿ` = leading left singular vectors
/// of the mode-`n` unfolding; core = projections of `X` onto the factors.
pub fn hosvd(x: &Tensor, rank: usize) -> Result<TuckerFormat> {
    if x.rank() < 2 {
        return Err(TensorError::InvalidArgument(
            "hosvd needs a tensor of rank >= 2".into(),
        ));
    }
    if rank == 0 {
        return Err(TensorError::InvalidArgument("hosvd rank 0".into()));
    }
    let n_modes = x.rank();
    let mut factors = Vec::with_capacity(n_modes);
    for mode in 0..n_modes {
        let xn = unfold(x, mode)?;
        factors.push(leading_singular_vectors(&xn, rank)?);
    }
    let core = project_core(x, &factors)?;
    TuckerFormat::new(core, factors)
}

/// Higher-order orthogonal iteration (HOOI): alternating refinement of
/// the HOSVD factors for `sweeps` passes.
pub fn hooi(x: &Tensor, rank: usize, sweeps: usize) -> Result<TuckerFormat> {
    let mut t = hosvd(x, rank)?;
    let n_modes = x.rank();
    for _ in 0..sweeps {
        for mode in 0..n_modes {
            // Project X by all factors except `mode`, then refresh that
            // factor from the leading subspace of the projection.
            let mut acc = x.clone();
            for (m, u) in t.factors.iter().enumerate() {
                if m == mode {
                    continue;
                }
                // Contract axis: the axis index of mode m in `acc` is m
                // (axes keep positions because we reinsert in place).
                let rank_before = acc.rank();
                let c = contract(&acc, u, &[m], &[0])?; // project: Uᵀ x
                let mut perm: Vec<usize> = (0..rank_before - 1).collect();
                perm.insert(m, rank_before - 1);
                acc = crate::ops::permute(&c, &perm)?;
            }
            let an = unfold(&acc, mode)?;
            t.factors[mode] = leading_singular_vectors(&an, rank)?;
        }
        t.core = project_core(x, &t.factors)?;
    }
    Ok(t)
}

/// Core `𝒢 = X ×₁ U¹ᵀ ⋯ ×_N U^Nᵀ`.
fn project_core(x: &Tensor, factors: &[Tensor]) -> Result<Tensor> {
    let mut acc = x.clone();
    for (n, u) in factors.iter().enumerate() {
        let rank_before = acc.rank();
        let c = contract(&acc, u, &[n], &[0])?;
        let mut perm: Vec<usize> = (0..rank_before - 1).collect();
        perm.insert(n, rank_before - 1);
        acc = crate::ops::permute(&c, &perm)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::ops::{matmul, matmul_transpose_a};

    #[test]
    fn reconstruct_matrix_case_is_u_core_vt() {
        // 2-mode Tucker: X = U1 · G · U2ᵀ.
        let mut rng = init::rng(1);
        let t = TuckerFormat::random(&[5, 4], 2, &mut rng).unwrap();
        let x = t.reconstruct().unwrap();
        let g2 = matmul(&t.factors[0], &t.core.reshaped(&[2, 2]).unwrap()).unwrap();
        let expect = crate::ops::matmul_transpose_b(&g2, &t.factors[1]).unwrap();
        assert!(approx_eq(&x, &expect, 1e-4));
    }

    #[test]
    fn new_validates() {
        let core = Tensor::zeros(&[2, 2]);
        assert!(TuckerFormat::new(core.clone(), vec![Tensor::zeros(&[3, 2])]).is_err());
        assert!(TuckerFormat::new(
            core.clone(),
            vec![Tensor::zeros(&[3, 2]), Tensor::zeros(&[4, 3])]
        )
        .is_err());
        assert!(TuckerFormat::new(
            core,
            vec![Tensor::zeros(&[3, 2]), Tensor::zeros(&[4, 2])]
        )
        .is_ok());
        assert!(TuckerFormat::random(&[], 2, &mut init::rng(0)).is_err());
        assert!(TuckerFormat::random(&[2], 0, &mut init::rng(0)).is_err());
    }

    #[test]
    fn hosvd_recovers_exact_low_rank() {
        let mut rng = init::rng(2);
        let target = TuckerFormat::random(&[6, 5, 4], 2, &mut rng)
            .unwrap()
            .reconstruct()
            .unwrap();
        let rec = hosvd(&target, 2).unwrap();
        let err = rec.relative_error(&target).unwrap();
        assert!(err < 1e-3, "HOSVD on exact rank-2 target: err {err}");
        assert_eq!(rec.ranks(), vec![2, 2, 2]);
        assert_eq!(rec.dims(), vec![6, 5, 4]);
    }

    #[test]
    fn hosvd_factors_are_orthonormal() {
        let mut rng = init::rng(3);
        let x = init::uniform(&[6, 5, 4], -1.0, 1.0, &mut rng);
        let t = hosvd(&x, 3).unwrap();
        for u in &t.factors {
            let g = matmul_transpose_a(u, u).unwrap();
            assert!(approx_eq(&g, &Tensor::eye(u.dims()[1]), 1e-3));
        }
    }

    #[test]
    fn hooi_improves_or_matches_hosvd() {
        let mut rng = init::rng(4);
        let x = init::uniform(&[6, 6, 6], -1.0, 1.0, &mut rng);
        let e0 = hosvd(&x, 3).unwrap().relative_error(&x).unwrap();
        let e1 = hooi(&x, 3, 3).unwrap().relative_error(&x).unwrap();
        assert!(e1 <= e0 + 1e-4, "HOOI {e1} vs HOSVD {e0}");
    }

    #[test]
    fn error_decreases_with_rank() {
        let mut rng = init::rng(5);
        let x = init::uniform(&[5, 5, 5], -1.0, 1.0, &mut rng);
        let e1 = hosvd(&x, 1).unwrap().relative_error(&x).unwrap();
        let e5 = hosvd(&x, 5).unwrap().relative_error(&x).unwrap();
        assert!(e5 < e1);
        assert!(e5 < 1e-3, "full-rank HOSVD reconstructs: {e5}");
    }

    #[test]
    fn num_params_and_compression() {
        let mut rng = init::rng(6);
        let t = TuckerFormat::random(&[8, 8, 8], 2, &mut rng).unwrap();
        assert_eq!(t.num_params(), 8 + 3 * 16);
        assert!(t.num_params() < 512);
    }

    #[test]
    fn drivers_validate_input() {
        assert!(hosvd(&Tensor::zeros(&[3]), 2).is_err());
        assert!(hosvd(&Tensor::zeros(&[3, 3]), 0).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = init::rng(7);
        let t = TuckerFormat::random(&[4, 3], 2, &mut rng).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: TuckerFormat = serde_json::from_str(&json).unwrap();
        assert!(approx_eq(
            &t.reconstruct().unwrap(),
            &back.reconstruct().unwrap(),
            1e-6
        ));
    }
}
