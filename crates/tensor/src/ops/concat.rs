//! Concatenation along an arbitrary axis.

use crate::{Result, Tensor, TensorError};

/// Concatenates tensors along `axis`. All other axes must agree.
pub fn concat(parts: &[&Tensor], axis: usize) -> Result<Tensor> {
    let first = parts
        .first()
        .ok_or_else(|| TensorError::InvalidArgument("concat of zero tensors".into()))?;
    let rank = first.rank();
    if axis >= rank {
        return Err(TensorError::AxisOutOfRange { axis, rank });
    }
    let mut axis_total = 0usize;
    for p in parts {
        if p.rank() != rank {
            return Err(TensorError::ShapeMismatch {
                op: "concat",
                lhs: first.dims().to_vec(),
                rhs: p.dims().to_vec(),
            });
        }
        for (k, (&a, &b)) in first.dims().iter().zip(p.dims()).enumerate() {
            if k != axis && a != b {
                return Err(TensorError::ShapeMismatch {
                    op: "concat",
                    lhs: first.dims().to_vec(),
                    rhs: p.dims().to_vec(),
                });
            }
        }
        axis_total += p.dims()[axis];
    }
    let mut out_dims = first.dims().to_vec();
    out_dims[axis] = axis_total;

    let outer: usize = first.dims()[..axis].iter().product();
    let inner: usize = first.dims()[axis + 1..].iter().product();
    let out_row = axis_total * inner;
    let mut out = vec![0.0f32; outer * out_row];
    let mut offset = 0usize; // running offset along the concat axis, in elements of `inner`
    for p in parts {
        let mid = p.dims()[axis];
        let src = p.data();
        for o in 0..outer {
            let src_base = o * mid * inner;
            let dst_base = o * out_row + offset;
            out[dst_base..dst_base + mid * inner]
                .copy_from_slice(&src[src_base..src_base + mid * inner]);
        }
        offset += mid * inner;
    }
    Tensor::from_vec(out, &out_dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn concat_vectors() {
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![3.0], &[1]);
        let c = concat(&[&a, &b], 0).unwrap();
        assert_eq!(c.data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn concat_matrix_axis0_and_axis1() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![5.0, 6.0], &[1, 2]);
        let c = concat(&[&a, &b], 0).unwrap();
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);

        let d = t(vec![7.0, 8.0], &[2, 1]);
        let e = concat(&[&a, &d], 1).unwrap();
        assert_eq!(e.dims(), &[2, 3]);
        assert_eq!(e.data(), &[1.0, 2.0, 7.0, 3.0, 4.0, 8.0]);
    }

    #[test]
    fn concat_validates_shapes() {
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![1.0, 2.0], &[1, 2]);
        assert!(concat(&[&a, &b], 0).is_err());
        let c = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let d = t(vec![1.0, 2.0, 3.0], &[1, 3]);
        assert!(concat(&[&c, &d], 0).is_err());
        assert!(concat(&[], 0).is_err());
        assert!(concat(&[&a], 1).is_err());
    }

    #[test]
    fn concat_3d_middle_axis() {
        let a = Tensor::ones(&[2, 1, 2]);
        let b = Tensor::full(&[2, 2, 2], 3.0);
        let c = concat(&[&a, &b], 1).unwrap();
        assert_eq!(c.dims(), &[2, 3, 2]);
        assert_eq!(c.get(&[0, 0, 0]).unwrap(), 1.0);
        assert_eq!(c.get(&[0, 1, 0]).unwrap(), 3.0);
        assert_eq!(c.get(&[1, 2, 1]).unwrap(), 3.0);
    }
}
