//! Reductions: full and per-axis sums, means, maxima and argmax.
//!
//! Per-axis reductions parallelise over the `outer` lanes — each output
//! element still accumulates in increasing `m` order, so results stay
//! bitwise identical to serial. The full reductions ([`sum_all`],
//! [`mean_all`]) deliberately stay serial: splitting them would require
//! combining per-thread partials, changing the accumulation order.

use crate::par::par_row_blocks;
use crate::{Result, Tensor, TensorError};

/// Sum of all elements. Always serial (see module docs).
pub fn sum_all(t: &Tensor) -> f32 {
    t.data().iter().sum()
}

/// Mean of all elements (0 for an empty tensor).
pub fn mean_all(t: &Tensor) -> f32 {
    if t.is_empty() {
        0.0
    } else {
        sum_all(t) / t.len() as f32
    }
}

/// Decomposes a shape around `axis` into `(outer, mid, inner)` extents so a
/// reduction walks `outer × inner` strided lanes of length `mid`.
fn axis_split(t: &Tensor, axis: usize) -> Result<(usize, usize, usize)> {
    if axis >= t.rank() {
        return Err(TensorError::AxisOutOfRange {
            axis,
            rank: t.rank(),
        });
    }
    let dims = t.dims();
    let outer: usize = dims[..axis].iter().product();
    let mid = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product();
    Ok((outer, mid, inner))
}

fn reduced_dims(t: &Tensor, axis: usize) -> Vec<usize> {
    let mut dims = t.dims().to_vec();
    dims.remove(axis);
    dims
}

/// Sums over one axis; the output drops that axis.
pub fn sum_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    let (outer, mid, inner) = axis_split(t, axis)?;
    let src = t.data();
    let mut out = vec![0.0f32; outer * inner];
    par_row_blocks(&mut out, inner.max(1), mid * inner, |first, block| {
        for (r, dst) in block.chunks_mut(inner.max(1)).enumerate() {
            let o = first + r;
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                for (d, &s) in dst.iter_mut().zip(&src[base..base + inner]) {
                    *d += s;
                }
            }
        }
    });
    Tensor::from_vec(out, &reduced_dims(t, axis))
}

/// Mean over one axis; the output drops that axis.
pub fn mean_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    let n = t.shape().dim(axis)? as f32;
    let summed = sum_axis(t, axis)?;
    Ok(crate::ops::scale(&summed, 1.0 / n))
}

/// Maximum over one axis; the output drops that axis. Errors if the axis
/// has extent 0.
pub fn max_axis(t: &Tensor, axis: usize) -> Result<Tensor> {
    let (outer, mid, inner) = axis_split(t, axis)?;
    if mid == 0 {
        return Err(TensorError::InvalidArgument(
            "max over empty axis".into(),
        ));
    }
    let src = t.data();
    let mut out = vec![f32::NEG_INFINITY; outer * inner];
    par_row_blocks(&mut out, inner.max(1), mid * inner, |first, block| {
        for (r, dst) in block.chunks_mut(inner.max(1)).enumerate() {
            let o = first + r;
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                for (d, &s) in dst.iter_mut().zip(&src[base..base + inner]) {
                    if s > *d {
                        *d = s;
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &reduced_dims(t, axis))
}

/// Index of the maximum along the *last* axis, for a rank-≥1 tensor.
/// Returns a `Vec<usize>` with one entry per leading-lane (e.g. per batch
/// row for logits `[batch, classes]`). Ties resolve to the first maximum.
pub fn argmax(t: &Tensor) -> Result<Vec<usize>> {
    if t.rank() == 0 {
        return Err(TensorError::InvalidArgument("argmax on scalar".into()));
    }
    let last = *t.dims().last().expect("rank >= 1");
    if last == 0 {
        return Err(TensorError::InvalidArgument(
            "argmax over empty axis".into(),
        ));
    }
    let lanes = t.len() / last;
    let src = t.data();
    let mut out = vec![0usize; lanes];
    par_row_blocks(&mut out, 1, last, |first, block| {
        for (r, slot) in block.iter_mut().enumerate() {
            let l = first + r;
            let row = &src[l * last..(l + 1) * last];
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            debug_assert!(!row[best].is_nan(), "argmax over NaN data");
            *slot = best;
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn sum_and_mean_all() {
        let a = Tensor::arange(1.0, 1.0, 4);
        assert_eq!(sum_all(&a), 10.0);
        assert_eq!(mean_all(&a), 2.5);
        assert_eq!(mean_all(&Tensor::zeros(&[0])), 0.0);
    }

    #[test]
    fn sum_axis_matrix() {
        let m = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(sum_axis(&m, 0).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(sum_axis(&m, 1).unwrap().data(), &[6.0, 15.0]);
        assert!(sum_axis(&m, 2).is_err());
    }

    #[test]
    fn sum_axis_3d_middle() {
        let c = Tensor::arange(0.0, 1.0, 24).reshape(&[2, 3, 4]).unwrap();
        let s = sum_axis(&c, 1).unwrap();
        assert_eq!(s.dims(), &[2, 4]);
        // s[0,0] = c[0,0,0] + c[0,1,0] + c[0,2,0] = 0 + 4 + 8.
        assert_eq!(s.get(&[0, 0]).unwrap(), 12.0);
        assert_eq!(s.get(&[1, 3]).unwrap(), 15.0 + 19.0 + 23.0);
    }

    #[test]
    fn mean_axis_matches_manual() {
        let m = t(vec![2.0, 4.0, 6.0, 8.0], &[2, 2]);
        assert_eq!(mean_axis(&m, 0).unwrap().data(), &[4.0, 6.0]);
    }

    #[test]
    fn max_axis_behaviour() {
        let m = t(vec![1.0, 9.0, -3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(max_axis(&m, 1).unwrap().data(), &[9.0, 6.0]);
        assert_eq!(max_axis(&m, 0).unwrap().data(), &[4.0, 9.0, 6.0]);
        assert!(max_axis(&Tensor::zeros(&[2, 0]), 1).is_err());
    }

    #[test]
    fn argmax_rows_and_ties() {
        let m = t(vec![0.1, 0.9, 0.0, 0.5, 0.5, 0.2], &[2, 3]);
        assert_eq!(argmax(&m).unwrap(), vec![1, 0]);
        let v = t(vec![3.0, 1.0, 2.0], &[3]);
        assert_eq!(argmax(&v).unwrap(), vec![0]);
        assert!(argmax(&Tensor::scalar(1.0)).is_err());
    }
}
