//! Packed, register-tiled GEMM microkernel.
//!
//! All seven matmul-family entry points (plain / transposed / batched /
//! matvec) reduce to the same computation — `C[i,j] += Σ_k A[i,k]·B[k,j]`
//! over strided operands — so they all funnel into one driver here:
//!
//! 1. **Pack** `B` once per call into KC-tall panels of [`NR`]-wide column
//!    tiles (`[kc×NR]`, k-major), and each thread's block of `A` rows into
//!    [`MR`]-tall row tiles (`[kc×MR]`, k-major). Packing linearises the
//!    strided loads of the transposed variants, so the inner kernel always
//!    streams two contiguous panels.
//! 2. Run an `MR×NR` **register-tiled kernel** per tile pair: the 4×16
//!    accumulator block lives in SIMD registers, `C` is loaded into it at
//!    the start of each KC tile and stored back after, and `k` advances one
//!    step at a time.
//! 3. Ragged edges (`m % MR`, `n % NR`) fall to a bounds-checked edge
//!    kernel with the identical accumulation order.
//!
//! # Bitwise equivalence to the legacy scalar kernels
//!
//! Every output element still receives exactly one `f32` multiply and one
//! add per `k` step, in strictly increasing `k` order, starting from the
//! zero-initialised output — the same abstract sequence the legacy `ikj`
//! axpy loop, the dot-product loops and `matvec`'s `sum()` perform.
//! Spilling the accumulator to `C` between KC tiles is exact (an `f32`
//! store/load round-trip loses nothing), and rustc never contracts
//! `mul`+`add` into an FMA, so vector width cannot change any element
//! either. Hence packed results are **bitwise identical** to the legacy
//! path — which is why the two can be toggled freely (see
//! [`set_packing_enabled`]) and why `par_row_blocks` row splits, which may
//! cut through an `MR` tile, are harmless.
//!
//! # SIMD dispatch
//!
//! The kernel body is a plain Rust loop nest the autovectorizer unrolls;
//! `#[target_feature]` wrappers re-instantiate it for AVX2 and AVX-512F
//! (detected once at runtime). The `fma` feature is deliberately **not**
//! enabled: contraction would fuse the rounding step away and break
//! bitwise equality.

use crate::par::par_row_blocks;
use crate::workspace;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering::Relaxed};

/// Rows of the register tile (accumulator rows per kernel invocation).
pub const MR: usize = 4;
/// Columns of the register tile (one or two SIMD vectors wide).
pub const NR: usize = 16;
/// k-dimension tile, shared with the legacy kernels: the packed `KC×NR`
/// panel of `B` stays cache-resident while a row block streams past it.
pub const KC: usize = 128;

// ---------------------------------------------------------------------------
// Gating: packed vs legacy
// ---------------------------------------------------------------------------

static PACKING_ENABLED: AtomicBool = AtomicBool::new(true);
/// Matmuls below this flop count stay on the legacy scalar path — packing
/// two operands cannot pay for itself on tiny products.
static PACK_MIN_FLOPS: AtomicUsize = AtomicUsize::new(1 << 15);

/// Globally enables/disables the packed path (both paths are bitwise
/// identical; the toggle exists for benchmarking and bisection).
pub fn set_packing_enabled(on: bool) {
    PACKING_ENABLED.store(on, Relaxed);
}

/// Whether the packed path is globally enabled.
pub fn packing_enabled() -> bool {
    PACKING_ENABLED.load(Relaxed)
}

/// Sets the minimum flop count for taking the packed path (`0` forces it
/// for every size — used by the equivalence tests).
pub fn set_pack_min_flops(flops: usize) {
    PACK_MIN_FLOPS.store(flops, Relaxed);
}

/// `true` when a product of `flops` multiply-adds should take the packed
/// path under the current gates.
pub fn use_packed(flops: usize) -> bool {
    packing_enabled() && flops >= PACK_MIN_FLOPS.load(Relaxed)
}

// ---------------------------------------------------------------------------
// SIMD level detection
// ---------------------------------------------------------------------------

/// Instruction-set level the kernel wrappers were dispatched to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimdLevel {
    /// Baseline autovectorization (SSE2 on x86_64).
    Scalar = 0,
    /// 256-bit vectors.
    Avx2 = 1,
    /// 512-bit vectors.
    Avx512 = 2,
}

impl SimdLevel {
    /// Stable lowercase name for logs and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

static SIMD_LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);

/// Best SIMD level the host supports (detected once, then cached).
pub fn simd_level() -> SimdLevel {
    match SIMD_LEVEL.load(Relaxed) {
        0 => SimdLevel::Scalar,
        1 => SimdLevel::Avx2,
        2 => SimdLevel::Avx512,
        _ => {
            let l = detect();
            SIMD_LEVEL.store(l as u8, Relaxed);
            l
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn detect() -> SimdLevel {
    if std::arch::is_x86_feature_detected!("avx512f") {
        SimdLevel::Avx512
    } else if std::arch::is_x86_feature_detected!("avx2") {
        SimdLevel::Avx2
    } else {
        SimdLevel::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> SimdLevel {
    SimdLevel::Scalar
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Packs all `k×n` of `B` (element `(kk, j)` at `bd[base + kk*ks + j*cs]`)
/// into KC-tile-major panels: the tile for `kk ∈ [kb, kb+kc)` starts at
/// `kb*n` and holds the full-width column tiles `[kc×NR]` (element
/// `(kk-kb, jj)` at `jt*NR*kc + (kk-kb)*NR + jj`) followed by one ragged
/// tile `[kc×ne]`, `ne = n % NR`.
pub fn pack_b(bd: &[f32], base: usize, k: usize, n: usize, ks: usize, cs: usize, packed: &mut [f32]) {
    debug_assert!(packed.len() >= k * n);
    let n_full = n - n % NR;
    for kb in (0..k).step_by(KC) {
        let kc = (kb + KC).min(k) - kb;
        let tile = &mut packed[kb * n..kb * n + kc * n];
        for j0 in (0..n_full).step_by(NR) {
            let dst = &mut tile[j0 * kc..j0 * kc + kc * NR];
            for dk in 0..kc {
                let src = base + (kb + dk) * ks + j0 * cs;
                for jj in 0..NR {
                    dst[dk * NR + jj] = bd[src + jj * cs];
                }
            }
        }
        let ne = n - n_full;
        if ne > 0 {
            let dst = &mut tile[n_full * kc..];
            for dk in 0..kc {
                let src = base + (kb + dk) * ks + n_full * cs;
                for jj in 0..ne {
                    dst[dk * ne + jj] = bd[src + jj * cs];
                }
            }
        }
    }
}

/// Packs `rows` rows of `A` starting at row `first` (element `(i, kk)` at
/// `ad[base + i*rs + kk*ks]`) into KC-tile-major panels: the tile for
/// `kk ∈ [kb, kb+kc)` starts at `kb*rows` and holds MR-tall row tiles
/// `[kc×MR]` (element `(kk-kb, r)` at `it*MR*kc + (kk-kb)*MR + r`) followed
/// by one ragged tile `[kc×me]`, `me = rows % MR`.
pub fn pack_a(
    ad: &[f32],
    base: usize,
    first: usize,
    rows: usize,
    k: usize,
    rs: usize,
    ks: usize,
    packed: &mut [f32],
) {
    debug_assert!(packed.len() >= rows * k);
    let rows_full = rows - rows % MR;
    for kb in (0..k).step_by(KC) {
        let kc = (kb + KC).min(k) - kb;
        let tile = &mut packed[kb * rows..kb * rows + kc * rows];
        for i0 in (0..rows_full).step_by(MR) {
            let dst = &mut tile[i0 * kc..i0 * kc + kc * MR];
            for dk in 0..kc {
                let src = base + (first + i0) * rs + (kb + dk) * ks;
                for r in 0..MR {
                    dst[dk * MR + r] = ad[src + r * rs];
                }
            }
        }
        let me = rows - rows_full;
        if me > 0 {
            let dst = &mut tile[rows_full * kc..];
            for dk in 0..kc {
                let src = base + (first + rows_full) * rs + (kb + dk) * ks;
                for r in 0..me {
                    dst[dk * me + r] = ad[src + r * rs];
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Register-tiled kernels
// ---------------------------------------------------------------------------

/// Full `MR×NR` tile: `ap` is a `[kc×MR]` packed A tile, `bp` a `[kc×NR]`
/// packed B tile, `c` the top-left of the destination tile with row stride
/// `ldc`. The accumulator block is loaded from `C`, updated in increasing
/// `k` order, and stored back — never zero-initialised, so KC tiling keeps
/// the per-element accumulation sequence intact.
///
/// # Safety
/// `ap`/`bp` must be valid for `kc*MR` / `kc*NR` reads and `c` for an
/// `MR×NR` block at row stride `ldc`.
#[inline(always)]
unsafe fn kernel_full_body(ap: *const f32, bp: *const f32, kc: usize, c: *mut f32, ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for r in 0..MR {
        for j in 0..NR {
            acc[r][j] = *c.add(r * ldc + j);
        }
    }
    for kk in 0..kc {
        let mut b = [0.0f32; NR];
        for j in 0..NR {
            b[j] = *bp.add(kk * NR + j);
        }
        for r in 0..MR {
            let a = *ap.add(kk * MR + r);
            for j in 0..NR {
                acc[r][j] += a * b[j];
            }
        }
    }
    for r in 0..MR {
        for j in 0..NR {
            *c.add(r * ldc + j) = acc[r][j];
        }
    }
}

/// Ragged-edge tile: like [`kernel_full_body`] but for `me ≤ MR` rows of a
/// `[kc×me]` A tile and `ne ≤ NR` columns of a `[kc×ne]` B tile. The
/// fixed-size accumulator keeps `me` independent chains per `k` step, which
/// also makes this the matvec kernel (`ne = 1`).
///
/// # Safety
/// `ap`/`bp` must be valid for `kc*me` / `kc*ne` reads and `c` for an
/// `me×ne` block at row stride `ldc`; `me ≤ MR`, `ne ≤ NR`.
#[inline(always)]
unsafe fn kernel_edge_body(
    ap: *const f32,
    me: usize,
    bp: *const f32,
    ne: usize,
    kc: usize,
    c: *mut f32,
    ldc: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for r in 0..me {
        for j in 0..ne {
            acc[r][j] = *c.add(r * ldc + j);
        }
    }
    for kk in 0..kc {
        for r in 0..me {
            let a = *ap.add(kk * me + r);
            for j in 0..ne {
                acc[r][j] += a * *bp.add(kk * ne + j);
            }
        }
    }
    for r in 0..me {
        for j in 0..ne {
            *c.add(r * ldc + j) = acc[r][j];
        }
    }
}

// Per-level instantiations. The bodies are identical; the target_feature
// attribute is what lets LLVM widen the inner loops to 256/512-bit ops.

unsafe fn kernel_full_scalar(ap: *const f32, bp: *const f32, kc: usize, c: *mut f32, ldc: usize) {
    kernel_full_body(ap, bp, kc, c, ldc)
}

unsafe fn kernel_edge_scalar(
    ap: *const f32,
    me: usize,
    bp: *const f32,
    ne: usize,
    kc: usize,
    c: *mut f32,
    ldc: usize,
) {
    kernel_edge_body(ap, me, bp, ne, kc, c, ldc)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn kernel_full_avx2(ap: *const f32, bp: *const f32, kc: usize, c: *mut f32, ldc: usize) {
    kernel_full_body(ap, bp, kc, c, ldc)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn kernel_edge_avx2(
    ap: *const f32,
    me: usize,
    bp: *const f32,
    ne: usize,
    kc: usize,
    c: *mut f32,
    ldc: usize,
) {
    kernel_edge_body(ap, me, bp, ne, kc, c, ldc)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn kernel_full_avx512(ap: *const f32, bp: *const f32, kc: usize, c: *mut f32, ldc: usize) {
    kernel_full_body(ap, bp, kc, c, ldc)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn kernel_edge_avx512(
    ap: *const f32,
    me: usize,
    bp: *const f32,
    ne: usize,
    kc: usize,
    c: *mut f32,
    ldc: usize,
) {
    kernel_edge_body(ap, me, bp, ne, kc, c, ldc)
}

#[inline]
unsafe fn run_full(lvl: SimdLevel, ap: *const f32, bp: *const f32, kc: usize, c: *mut f32, ldc: usize) {
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => kernel_full_avx512(ap, bp, kc, c, ldc),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => kernel_full_avx2(ap, bp, kc, c, ldc),
        _ => kernel_full_scalar(ap, bp, kc, c, ldc),
    }
}

#[inline]
#[allow(clippy::too_many_arguments)]
unsafe fn run_edge(
    lvl: SimdLevel,
    ap: *const f32,
    me: usize,
    bp: *const f32,
    ne: usize,
    kc: usize,
    c: *mut f32,
    ldc: usize,
) {
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => kernel_edge_avx512(ap, me, bp, ne, kc, c, ldc),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => kernel_edge_avx2(ap, me, bp, ne, kc, c, ldc),
        _ => kernel_edge_scalar(ap, me, bp, ne, kc, c, ldc),
    }
}

// ---------------------------------------------------------------------------
// Block driver
// ---------------------------------------------------------------------------

/// Multiplies one packed A row block (`rows×k`, [`pack_a`] layout) by the
/// packed `B` (`k×n`, [`pack_b`] layout) into `block` (`rows×n`,
/// row-major, zero-initialised by the caller).
fn gemm_block(apack: &[f32], bpack: &[f32], rows: usize, n: usize, k: usize, block: &mut [f32]) {
    let lvl = simd_level();
    let rows_full = rows - rows % MR;
    let n_full = n - n % NR;
    let (me, ne) = (rows - rows_full, n - n_full);
    let cptr = block.as_mut_ptr();
    for kb in (0..k).step_by(KC) {
        let kc = (kb + KC).min(k) - kb;
        let a_tiles = &apack[kb * rows..];
        let b_tiles = &bpack[kb * n..];
        for i0 in (0..rows_full).step_by(MR) {
            let ap = a_tiles[i0 * kc..].as_ptr();
            for j0 in (0..n_full).step_by(NR) {
                // Safety: each (i0, j0) pair addresses a disjoint MR×NR
                // region of `block`; packed tiles were sized by pack_a/b.
                unsafe {
                    run_full(lvl, ap, b_tiles[j0 * kc..].as_ptr(), kc, cptr.add(i0 * n + j0), n);
                }
            }
            if ne > 0 {
                unsafe {
                    run_edge(
                        lvl,
                        ap,
                        MR,
                        b_tiles[n_full * kc..].as_ptr(),
                        ne,
                        kc,
                        cptr.add(i0 * n + n_full),
                        n,
                    );
                }
            }
        }
        if me > 0 {
            let ap = a_tiles[rows_full * kc..].as_ptr();
            for j0 in (0..n_full).step_by(NR) {
                unsafe {
                    run_edge(lvl, ap, me, b_tiles[j0 * kc..].as_ptr(), NR, kc, cptr.add(rows_full * n + j0), n);
                }
            }
            if ne > 0 {
                unsafe {
                    run_edge(
                        lvl,
                        ap,
                        me,
                        b_tiles[n_full * kc..].as_ptr(),
                        ne,
                        kc,
                        cptr.add(rows_full * n + n_full),
                        n,
                    );
                }
            }
        }
    }
}

/// Packed GEMM over strided operands, batched:
/// `out[bi, i, j] = Σ_k ad[a_base(bi) + i·a_rs + kk·a_ks] · bd[b_base(bi) + kk·b_ks + j·b_cs]`
/// with `x_base(bi) = bi * x_batch`. `out` must be zero-initialised
/// (`bs*m*n`, row-major). Covers every matmul-family variant: strides
/// express the transposes, `bs = 1` the unbatched calls, `n = 1` matvec.
///
/// `B` is packed once up front (shared read-only across the thread team);
/// each row block packs its own slice of `A` from the workspace arena
/// inside the `par_row_blocks` closure.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_packed(
    ad: &[f32],
    a_batch: usize,
    a_rs: usize,
    a_ks: usize,
    bd: &[f32],
    b_batch: usize,
    b_ks: usize,
    b_cs: usize,
    bs: usize,
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), bs * m * n);
    if bs * m * n == 0 {
        return;
    }
    let mut bpack = workspace::take(bs * k * n);
    for bi in 0..bs {
        pack_b(bd, bi * b_batch, k, n, b_ks, b_cs, &mut bpack[bi * k * n..(bi + 1) * k * n]);
    }
    let bp: &[f32] = &bpack;
    par_row_blocks(out, n, 2 * k * n, |first, block| {
        let rows = block.len() / n;
        let mut apack = workspace::take(rows * k);
        // A row block may straddle batch boundaries; process it one batch
        // segment at a time (each segment is self-contained, so this stays
        // independent of how par_row_blocks cut the rows).
        let mut r0 = 0;
        while r0 < rows {
            let abs = first + r0;
            let (bi, i0) = (abs / m, abs % m);
            let seg = (m - i0).min(rows - r0);
            pack_a(ad, bi * a_batch, i0, seg, k, a_rs, a_ks, &mut apack[..seg * k]);
            gemm_block(&apack[..seg * k], &bp[bi * k * n..(bi + 1) * k * n], seg, n, k, &mut block[r0 * n..(r0 + seg) * n]);
            r0 += seg;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simd_level_is_cached_and_consistent() {
        let a = simd_level();
        let b = simd_level();
        assert_eq!(a, b);
        assert!(!a.name().is_empty());
    }

    #[test]
    fn pack_b_roundtrip_identity_layout() {
        // 2 KC tiles, ragged n: every element must land exactly once.
        let k = KC + 3;
        let n = NR + 5;
        let bd: Vec<f32> = (0..k * n).map(|x| x as f32).collect();
        let mut packed = vec![f32::NAN; k * n];
        pack_b(&bd, 0, k, n, n, 1, &mut packed);
        assert!(packed.iter().all(|x| !x.is_nan()));
        // Spot-check the documented layout: tile kb=KC, full tile 0,
        // dk=1, jj=2 holds B[KC+1, 2].
        let off = KC * n + NR + 2;
        assert_eq!(packed[off], bd[(KC + 1) * n + 2]);
    }

    #[test]
    fn pack_a_covers_ragged_rows() {
        let (rows, k) = (MR + 2, KC + 1);
        let ad: Vec<f32> = (0..rows * k).map(|x| x as f32).collect();
        let mut packed = vec![f32::NAN; rows * k];
        pack_a(&ad, 0, 0, rows, k, k, 1, &mut packed);
        assert!(packed.iter().all(|x| !x.is_nan()));
        // Full tile 0, dk=0, r=3 holds A[3, 0].
        assert_eq!(packed[3], ad[3 * k]);
        // Edge tile (rows 4..6), tile kb=0 starts after the full tiles.
        assert_eq!(packed[MR * KC], ad[MR * k]);
    }

    #[test]
    fn gating_toggles() {
        assert!(packing_enabled());
        set_packing_enabled(false);
        assert!(!use_packed(usize::MAX));
        set_packing_enabled(true);
        assert!(use_packed(1 << 20));
        assert!(!use_packed(8));
    }
}
