//! Packed, register-tiled GEMM microkernel with a parallel tile-grid
//! scheduler.
//!
//! All seven matmul-family entry points (plain / transposed / batched /
//! matvec) reduce to the same computation — `C[i,j] += Σ_k A[i,k]·B[k,j]`
//! over strided operands — so they all funnel into one driver here:
//!
//! 1. **Pack `B` once per call** into KC-tall panels of [`NR`]-wide column
//!    tiles (`[kc×NR]`, k-major) — shared, read-only, visible to every
//!    worker. Packing linearises the strided loads of the transposed
//!    variants, so the inner kernel always streams two contiguous panels.
//! 2. **Claim C-tile blocks from a shared atomic queue**
//!    ([`crate::par::par_task_queue`]): the output is a grid of
//!    `MR`-row strips × `NC`-column groups, and each team worker claims
//!    grid cells until the queue is dry. On first touch of a strip the
//!    worker packs that strip's `A` rows into its **private arena lease**
//!    (`[kc×MR]` row tiles, k-major) and keeps it for subsequent claims
//!    of the same strip — `A` is packed at most once per (strip, worker)
//!    and `B` is never re-packed, which is what lets the packed path
//!    scale instead of fighting the thread team (the old design split
//!    rows *above* the packing).
//! 3. Per claimed cell, run the `MR×NR` **register-tiled kernel** for
//!    each column tile: the 4×16 accumulator block lives in SIMD
//!    registers, `C` is loaded into it at the start of each KC tile and
//!    stored back after, and `k` advances one step at a time. Ragged
//!    edges (`m % MR`, `n % NR`) fall to a bounds-checked edge kernel
//!    with the identical accumulation order.
//!
//! # Bitwise equivalence to the legacy scalar kernels
//!
//! Every output element still receives exactly one `f32` multiply and one
//! add per `k` step, in strictly increasing `k` order, starting from the
//! zero-initialised output — the same abstract sequence the legacy `ikj`
//! axpy loop, the dot-product loops and `matvec`'s `sum()` perform.
//! Spilling the accumulator to `C` between KC tiles is exact (an `f32`
//! store/load round-trip loses nothing), and rustc never contracts
//! `mul`+`add` into an FMA, so vector width cannot change any element
//! either. Hence packed results are **bitwise identical** to the legacy
//! path — which is why the two can be toggled freely (see
//! [`set_packing_enabled`]).
//!
//! Work *stealing* cannot move a bit either: each grid cell is a
//! self-contained block of output elements, computed by exactly one
//! worker from shared immutable packed panels over the full `k` range.
//! Which worker computes which cell — and in which order — changes
//! nothing about any element's operation sequence, so the scheduler is
//! free to interleave claims arbitrarily (tallied by the obs
//! `tile_steals` counter) while staying bitwise equal to the serial
//! claim order.
//!
//! # SIMD dispatch
//!
//! The kernel body is a plain Rust loop nest the autovectorizer unrolls;
//! `#[target_feature]` wrappers re-instantiate it for AVX2 and AVX-512F
//! (detected once at runtime). The `fma` feature is deliberately **not**
//! enabled: contraction would fuse the rounding step away and break
//! bitwise equality.
//!
//! # Fused epilogues
//!
//! A GEMM call may carry an [`Epilogue`] — a per-output-column bias and/or
//! a scalar [`Activation`] — which each worker applies to a column tile
//! immediately after that tile's final KC tile stores, i.e. once the full
//! `k` accumulation of those elements is complete. The per-element value
//! is `act(acc + bias[j])`, exactly what the separate `ops::add` +
//! `ops::map` passes compute; the sequence is pure per element, so store
//! time vs. a second full output pass cannot change a bit (see
//! DESIGN.md "Epilogue fusion & static plan"). The `METALORA_FUSE`
//! kill-switch ([`set_fuse_enabled`]) restores the unfused passes.

use crate::bf16::bf16_to_f32;
use crate::par::{par_task_queue, TaskQueue};
use crate::workspace;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering::Relaxed};
use std::sync::OnceLock;

/// Rows of the register tile (accumulator rows per kernel invocation).
pub const MR: usize = 4;
/// Columns of the register tile (one or two SIMD vectors wide).
pub const NR: usize = 16;
/// k-dimension tile, shared with the legacy kernels: the packed `KC×NR`
/// panel of `B` stays cache-resident while a row block streams past it.
pub const KC: usize = 128;
/// Columns per tile-grid cell (a multiple of [`NR`]): one claimed cell is
/// an `MR`-row strip crossed with up to `NC` columns. Wide outputs split
/// into several cells per strip so short-and-wide products still expose
/// enough parallelism; `NC·KC` floats of `B` per cell stay cache-resident
/// while the strip streams past.
pub const NC: usize = 256;

// ---------------------------------------------------------------------------
// Gating: packed vs legacy
// ---------------------------------------------------------------------------

static PACKING_ENABLED: AtomicBool = AtomicBool::new(true);
/// Matmuls below this flop count stay on the legacy scalar path — packing
/// two operands cannot pay for itself on tiny products.
static PACK_MIN_FLOPS: AtomicUsize = AtomicUsize::new(1 << 15);

/// Globally enables/disables the packed path (both paths are bitwise
/// identical; the toggle exists for benchmarking and bisection).
pub fn set_packing_enabled(on: bool) {
    PACKING_ENABLED.store(on, Relaxed);
}

/// Whether the packed path is globally enabled.
pub fn packing_enabled() -> bool {
    PACKING_ENABLED.load(Relaxed)
}

/// Sets the minimum flop count for taking the packed path (`0` forces it
/// for every size — used by the equivalence tests).
pub fn set_pack_min_flops(flops: usize) {
    PACK_MIN_FLOPS.store(flops, Relaxed);
}

/// `true` when a product of `flops` multiply-adds should take the packed
/// path under the current gates.
pub fn use_packed(flops: usize) -> bool {
    packing_enabled() && flops >= PACK_MIN_FLOPS.load(Relaxed)
}

// Tri-state override for the tile-grid scheduler's parallelism: 0/1 set
// programmatically, 2 = unset (fall back to METALORA_TILE_GRID, then on).
static TILE_GRID_OVERRIDE: AtomicU8 = AtomicU8::new(2);

/// Enables/disables parallel scheduling of the packed GEMM's tile grid
/// (`false` runs the identical grid serially on the calling thread —
/// a bisection/debug knob, both modes are bitwise identical). Overrides
/// the `METALORA_TILE_GRID` environment variable; the default is on.
pub fn set_tile_grid_parallel(on: bool) {
    TILE_GRID_OVERRIDE.store(on as u8, Relaxed);
}

/// Whether the tile-grid scheduler may spawn a worker team (the
/// [`set_tile_grid_parallel`] override if set, else `METALORA_TILE_GRID`
/// — `0` disables — else on).
pub fn tile_grid_parallel() -> bool {
    match TILE_GRID_OVERRIDE.load(Relaxed) {
        0 => false,
        1 => true,
        _ => {
            static FROM_ENV: OnceLock<bool> = OnceLock::new();
            *FROM_ENV.get_or_init(|| {
                std::env::var("METALORA_TILE_GRID").map(|s| s.trim() != "0").unwrap_or(true)
            })
        }
    }
}

// Tri-state override for epilogue fusion: 0/1 set programmatically,
// 2 = unset (fall back to METALORA_FUSE, then on).
static FUSE_OVERRIDE: AtomicU8 = AtomicU8::new(2);

/// Enables/disables fusing the linear/conv epilogue (bias add +
/// activation) into the GEMM store. Fused and unfused are bitwise
/// identical — the kill-switch exists for benchmarking and bisection.
/// Overrides the `METALORA_FUSE` environment variable; the default is on.
pub fn set_fuse_enabled(on: bool) {
    FUSE_OVERRIDE.store(on as u8, Relaxed);
}

/// Whether fused epilogues are enabled (the [`set_fuse_enabled`] override
/// if set, else `METALORA_FUSE` — `0` disables — else on).
pub fn fuse_enabled() -> bool {
    match FUSE_OVERRIDE.load(Relaxed) {
        0 => false,
        1 => true,
        _ => {
            static FROM_ENV: OnceLock<bool> = OnceLock::new();
            *FROM_ENV.get_or_init(|| {
                std::env::var("METALORA_FUSE").map(|s| s.trim() != "0").unwrap_or(true)
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Fused epilogue
// ---------------------------------------------------------------------------

/// Scalar activation a fused epilogue may apply. Each variant computes the
/// exact same f32 expression the separate `ops::map` pass computes, so
/// applying it at store time cannot change a bit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Activation {
    /// `max(x, 0)`.
    Relu,
    /// The tanh-approximated GELU the autograd tape uses
    /// (`metalora_autograd::gelu_fwd` delegates here).
    Gelu,
    /// `x.tanh()`.
    Tanh,
}

impl Activation {
    /// Applies the activation to one element.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Gelu => gelu(x),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Stable lowercase name for bench reports.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::Gelu => "gelu",
            Activation::Tanh => "tanh",
        }
    }
}

/// Tanh-approximated GELU, the single shared definition: the autograd
/// tape's forward delegates here, so fused inference and tape training
/// compute bit-identical activations.
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// Epilogue fused into the C-tile store: per element, `bias[j]` (the
/// output-column bias, if any) is added and the activation (if any) is
/// applied — `act(acc + bias[j])` — immediately after that element's full
/// `k` accumulation completes. The unfused path computes the identical
/// per-element scalar sequence in two separate full passes (`ops::add`
/// broadcast, then `ops::map`); since the sequence is pure per element,
/// the order elements are visited in is irrelevant and fused output is
/// bitwise identical to unfused.
#[derive(Clone, Copy)]
pub struct Epilogue<'a> {
    /// Per-output-column bias (length `n`), added before the activation.
    pub bias: Option<&'a [f32]>,
    /// Activation applied after the bias.
    pub act: Option<Activation>,
}

impl<'a> Epilogue<'a> {
    /// The identity epilogue (plain GEMM store).
    pub fn none() -> Epilogue<'static> {
        Epilogue { bias: None, act: None }
    }

    /// `true` when there is nothing to apply.
    #[inline]
    pub fn is_noop(&self) -> bool {
        self.bias.is_none() && self.act.is_none()
    }

    /// Applies the epilogue to the element in output column `j`.
    #[inline]
    pub fn apply_one(&self, j: usize, v: f32) -> f32 {
        let v = match self.bias {
            Some(b) => v + b[j],
            None => v,
        };
        match self.act {
            Some(a) => a.apply(v),
            None => v,
        }
    }

    /// Applies the epilogue in place to a row-major block of `rows` rows
    /// whose first element sits in output column `j0`, row stride `ldc`.
    ///
    /// # Safety
    /// `c` must be valid for a `rows × cols` block at row stride `ldc`,
    /// not accessed concurrently; `j0 + cols` must not exceed the bias
    /// length when a bias is present.
    unsafe fn apply_tile(&self, c: *mut f32, ldc: usize, rows: usize, j0: usize, cols: usize) {
        for r in 0..rows {
            let row = c.add(r * ldc + j0);
            for jj in 0..cols {
                *row.add(jj) = self.apply_one(j0 + jj, *row.add(jj));
            }
        }
    }

    /// Applies the epilogue in place to contiguous row-major `rows × n`
    /// output rows (the legacy-path variant — safe slices, same
    /// per-element sequence).
    pub fn apply_rows(&self, out: &mut [f32], n: usize) {
        if self.is_noop() || n == 0 {
            return;
        }
        for row in out.chunks_mut(n) {
            for (j, v) in row.iter_mut().enumerate() {
                *v = self.apply_one(j, *v);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SIMD level detection
// ---------------------------------------------------------------------------

/// Instruction-set level the kernel wrappers were dispatched to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimdLevel {
    /// Baseline autovectorization (SSE2 on x86_64).
    Scalar = 0,
    /// 256-bit vectors.
    Avx2 = 1,
    /// 512-bit vectors.
    Avx512 = 2,
}

impl SimdLevel {
    /// Stable lowercase name for logs and bench reports.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

static SIMD_LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);

/// Best SIMD level the host supports (detected once, then cached).
pub fn simd_level() -> SimdLevel {
    match SIMD_LEVEL.load(Relaxed) {
        0 => SimdLevel::Scalar,
        1 => SimdLevel::Avx2,
        2 => SimdLevel::Avx512,
        _ => {
            let l = detect();
            SIMD_LEVEL.store(l as u8, Relaxed);
            l
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn detect() -> SimdLevel {
    if std::arch::is_x86_feature_detected!("avx512f") {
        SimdLevel::Avx512
    } else if std::arch::is_x86_feature_detected!("avx2") {
        SimdLevel::Avx2
    } else {
        SimdLevel::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> SimdLevel {
    SimdLevel::Scalar
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Packs all `k×n` of `B` (element `(kk, j)` at `bd[base + kk*ks + j*cs]`)
/// into KC-tile-major panels: the tile for `kk ∈ [kb, kb+kc)` starts at
/// `kb*n` and holds the full-width column tiles `[kc×NR]` (element
/// `(kk-kb, jj)` at `jt*NR*kc + (kk-kb)*NR + jj`) followed by one ragged
/// tile `[kc×ne]`, `ne = n % NR`.
pub fn pack_b(bd: &[f32], base: usize, k: usize, n: usize, ks: usize, cs: usize, packed: &mut [f32]) {
    debug_assert!(packed.len() >= k * n);
    let n_full = n - n % NR;
    for kb in (0..k).step_by(KC) {
        let kc = (kb + KC).min(k) - kb;
        let tile = &mut packed[kb * n..kb * n + kc * n];
        for j0 in (0..n_full).step_by(NR) {
            let dst = &mut tile[j0 * kc..j0 * kc + kc * NR];
            for dk in 0..kc {
                let src = base + (kb + dk) * ks + j0 * cs;
                for jj in 0..NR {
                    dst[dk * NR + jj] = bd[src + jj * cs];
                }
            }
        }
        let ne = n - n_full;
        if ne > 0 {
            let dst = &mut tile[n_full * kc..];
            for dk in 0..kc {
                let src = base + (kb + dk) * ks + n_full * cs;
                for jj in 0..ne {
                    dst[dk * ne + jj] = bd[src + jj * cs];
                }
            }
        }
    }
}

/// Packs `rows` rows of `A` starting at row `first` (element `(i, kk)` at
/// `ad[base + i*rs + kk*ks]`) into KC-tile-major panels: the tile for
/// `kk ∈ [kb, kb+kc)` starts at `kb*rows` and holds MR-tall row tiles
/// `[kc×MR]` (element `(kk-kb, r)` at `it*MR*kc + (kk-kb)*MR + r`) followed
/// by one ragged tile `[kc×me]`, `me = rows % MR`.
pub fn pack_a(
    ad: &[f32],
    base: usize,
    first: usize,
    rows: usize,
    k: usize,
    rs: usize,
    ks: usize,
    packed: &mut [f32],
) {
    debug_assert!(packed.len() >= rows * k);
    let rows_full = rows - rows % MR;
    for kb in (0..k).step_by(KC) {
        let kc = (kb + KC).min(k) - kb;
        let tile = &mut packed[kb * rows..kb * rows + kc * rows];
        for i0 in (0..rows_full).step_by(MR) {
            let dst = &mut tile[i0 * kc..i0 * kc + kc * MR];
            for dk in 0..kc {
                let src = base + (first + i0) * rs + (kb + dk) * ks;
                for r in 0..MR {
                    dst[dk * MR + r] = ad[src + r * rs];
                }
            }
        }
        let me = rows - rows_full;
        if me > 0 {
            let dst = &mut tile[rows_full * kc..];
            for dk in 0..kc {
                let src = base + (first + rows_full) * rs + (kb + dk) * ks;
                for r in 0..me {
                    dst[dk * me + r] = ad[src + r * rs];
                }
            }
        }
    }
}

/// [`pack_b`] reading bf16 bits: each element is widened to f32 as it is
/// packed (exact — bf16 is the top half of f32), producing the identical
/// panel layout. Packing is the *only* point the storage format is
/// visible; the inner kernels stream packed f32 panels either way, so the
/// bf16 GEMM is bitwise identical to the f32 GEMM on widened inputs.
#[inline(always)]
fn pack_b_bf16_body(
    bd: &[u16],
    base: usize,
    k: usize,
    n: usize,
    ks: usize,
    cs: usize,
    packed: &mut [f32],
) {
    debug_assert!(packed.len() >= k * n);
    let n_full = n - n % NR;
    for kb in (0..k).step_by(KC) {
        let kc = (kb + KC).min(k) - kb;
        let tile = &mut packed[kb * n..kb * n + kc * n];
        for j0 in (0..n_full).step_by(NR) {
            let dst = &mut tile[j0 * kc..j0 * kc + kc * NR];
            for dk in 0..kc {
                let src = base + (kb + dk) * ks + j0 * cs;
                for jj in 0..NR {
                    dst[dk * NR + jj] = bf16_to_f32(bd[src + jj * cs]);
                }
            }
        }
        let ne = n - n_full;
        if ne > 0 {
            let dst = &mut tile[n_full * kc..];
            for dk in 0..kc {
                let src = base + (kb + dk) * ks + n_full * cs;
                for jj in 0..ne {
                    dst[dk * ne + jj] = bf16_to_f32(bd[src + jj * cs]);
                }
            }
        }
    }
}

/// [`pack_a`] reading bf16 bits — see [`pack_b_bf16_body`].
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn pack_a_bf16_body(
    ad: &[u16],
    base: usize,
    first: usize,
    rows: usize,
    k: usize,
    rs: usize,
    ks: usize,
    packed: &mut [f32],
) {
    debug_assert!(packed.len() >= rows * k);
    let rows_full = rows - rows % MR;
    for kb in (0..k).step_by(KC) {
        let kc = (kb + KC).min(k) - kb;
        let tile = &mut packed[kb * rows..kb * rows + kc * rows];
        for i0 in (0..rows_full).step_by(MR) {
            let dst = &mut tile[i0 * kc..i0 * kc + kc * MR];
            for dk in 0..kc {
                let src = base + (first + i0) * rs + (kb + dk) * ks;
                for r in 0..MR {
                    dst[dk * MR + r] = bf16_to_f32(ad[src + r * rs]);
                }
            }
        }
        let me = rows - rows_full;
        if me > 0 {
            let dst = &mut tile[rows_full * kc..];
            for dk in 0..kc {
                let src = base + (first + rows_full) * rs + (kb + dk) * ks;
                for r in 0..me {
                    dst[dk * me + r] = bf16_to_f32(ad[src + r * rs]);
                }
            }
        }
    }
}

// The widening loop is shift-and-reinterpret per element — pure integer
// lane work the autovectorizer widens under the same target_feature
// re-instantiation scheme the kernels use (256/512-bit where available,
// baseline autovectorization otherwise). The widening value is identical
// at every level, so SIMD dispatch cannot change a packed bit.

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn pack_b_bf16_avx2(bd: &[u16], base: usize, k: usize, n: usize, ks: usize, cs: usize, packed: &mut [f32]) {
    pack_b_bf16_body(bd, base, k, n, ks, cs, packed)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512bw")]
unsafe fn pack_b_bf16_avx512(bd: &[u16], base: usize, k: usize, n: usize, ks: usize, cs: usize, packed: &mut [f32]) {
    pack_b_bf16_body(bd, base, k, n, ks, cs, packed)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn pack_a_bf16_avx2(
    ad: &[u16],
    base: usize,
    first: usize,
    rows: usize,
    k: usize,
    rs: usize,
    ks: usize,
    packed: &mut [f32],
) {
    pack_a_bf16_body(ad, base, first, rows, k, rs, ks, packed)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f", enable = "avx512bw")]
#[allow(clippy::too_many_arguments)]
unsafe fn pack_a_bf16_avx512(
    ad: &[u16],
    base: usize,
    first: usize,
    rows: usize,
    k: usize,
    rs: usize,
    ks: usize,
    packed: &mut [f32],
) {
    pack_a_bf16_body(ad, base, first, rows, k, rs, ks, packed)
}

/// Packs bf16-stored `B` into f32 panels, widening each element — same
/// layout contract as [`pack_b`], dispatched to the best SIMD level.
pub fn pack_b_bf16(bd: &[u16], base: usize, k: usize, n: usize, ks: usize, cs: usize, packed: &mut [f32]) {
    match simd_level() {
        // Safety: levels are only ever reported when the CPU has them.
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 if std::arch::is_x86_feature_detected!("avx512bw") => unsafe {
            pack_b_bf16_avx512(bd, base, k, n, ks, cs, packed)
        },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 | SimdLevel::Avx2 => unsafe {
            pack_b_bf16_avx2(bd, base, k, n, ks, cs, packed)
        },
        _ => pack_b_bf16_body(bd, base, k, n, ks, cs, packed),
    }
}

/// Packs bf16-stored `A` rows into f32 panels, widening each element —
/// same layout contract as [`pack_a`], dispatched to the best SIMD level.
#[allow(clippy::too_many_arguments)]
pub fn pack_a_bf16(
    ad: &[u16],
    base: usize,
    first: usize,
    rows: usize,
    k: usize,
    rs: usize,
    ks: usize,
    packed: &mut [f32],
) {
    match simd_level() {
        // Safety: levels are only ever reported when the CPU has them.
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 if std::arch::is_x86_feature_detected!("avx512bw") => unsafe {
            pack_a_bf16_avx512(ad, base, first, rows, k, rs, ks, packed)
        },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 | SimdLevel::Avx2 => unsafe {
            pack_a_bf16_avx2(ad, base, first, rows, k, rs, ks, packed)
        },
        _ => pack_a_bf16_body(ad, base, first, rows, k, rs, ks, packed),
    }
}

/// Storage an operand is packed *from*. f32 packs verbatim; bf16 widens
/// to f32 at pack time (exact), so downstream of packing the two are
/// indistinguishable — one scheduler and one set of inner kernels serve
/// every storage combination.
#[derive(Clone, Copy)]
pub enum PanelSrc<'a> {
    /// Plain f32 storage (the golden path).
    F32(&'a [f32]),
    /// bf16 bit patterns, widened during packing.
    Bf16(&'a [u16]),
}

impl PanelSrc<'_> {
    fn pack_b(&self, base: usize, k: usize, n: usize, ks: usize, cs: usize, packed: &mut [f32]) {
        match self {
            PanelSrc::F32(d) => pack_b(d, base, k, n, ks, cs, packed),
            PanelSrc::Bf16(d) => pack_b_bf16(d, base, k, n, ks, cs, packed),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn pack_a(
        &self,
        base: usize,
        first: usize,
        rows: usize,
        k: usize,
        rs: usize,
        ks: usize,
        packed: &mut [f32],
    ) {
        match self {
            PanelSrc::F32(d) => pack_a(d, base, first, rows, k, rs, ks, packed),
            PanelSrc::Bf16(d) => pack_a_bf16(d, base, first, rows, k, rs, ks, packed),
        }
    }
}

// ---------------------------------------------------------------------------
// Register-tiled kernels
// ---------------------------------------------------------------------------

/// Full `MR×NR` tile: `ap` is a `[kc×MR]` packed A tile, `bp` a `[kc×NR]`
/// packed B tile, `c` the top-left of the destination tile with row stride
/// `ldc`. The accumulator block is loaded from `C`, updated in increasing
/// `k` order, and stored back — never zero-initialised, so KC tiling keeps
/// the per-element accumulation sequence intact.
///
/// # Safety
/// `ap`/`bp` must be valid for `kc*MR` / `kc*NR` reads and `c` for an
/// `MR×NR` block at row stride `ldc`.
#[inline(always)]
unsafe fn kernel_full_body(ap: *const f32, bp: *const f32, kc: usize, c: *mut f32, ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for r in 0..MR {
        for j in 0..NR {
            acc[r][j] = *c.add(r * ldc + j);
        }
    }
    for kk in 0..kc {
        let mut b = [0.0f32; NR];
        for j in 0..NR {
            b[j] = *bp.add(kk * NR + j);
        }
        for r in 0..MR {
            let a = *ap.add(kk * MR + r);
            for j in 0..NR {
                acc[r][j] += a * b[j];
            }
        }
    }
    for r in 0..MR {
        for j in 0..NR {
            *c.add(r * ldc + j) = acc[r][j];
        }
    }
}

/// Ragged-edge tile: like [`kernel_full_body`] but for `me ≤ MR` rows of a
/// `[kc×me]` A tile and `ne ≤ NR` columns of a `[kc×ne]` B tile. The
/// fixed-size accumulator keeps `me` independent chains per `k` step, which
/// also makes this the matvec kernel (`ne = 1`).
///
/// # Safety
/// `ap`/`bp` must be valid for `kc*me` / `kc*ne` reads and `c` for an
/// `me×ne` block at row stride `ldc`; `me ≤ MR`, `ne ≤ NR`.
#[inline(always)]
unsafe fn kernel_edge_body(
    ap: *const f32,
    me: usize,
    bp: *const f32,
    ne: usize,
    kc: usize,
    c: *mut f32,
    ldc: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for r in 0..me {
        for j in 0..ne {
            acc[r][j] = *c.add(r * ldc + j);
        }
    }
    for kk in 0..kc {
        for r in 0..me {
            let a = *ap.add(kk * me + r);
            for j in 0..ne {
                acc[r][j] += a * *bp.add(kk * ne + j);
            }
        }
    }
    for r in 0..me {
        for j in 0..ne {
            *c.add(r * ldc + j) = acc[r][j];
        }
    }
}

// Per-level instantiations. The bodies are identical; the target_feature
// attribute is what lets LLVM widen the inner loops to 256/512-bit ops.

unsafe fn kernel_full_scalar(ap: *const f32, bp: *const f32, kc: usize, c: *mut f32, ldc: usize) {
    kernel_full_body(ap, bp, kc, c, ldc)
}

unsafe fn kernel_edge_scalar(
    ap: *const f32,
    me: usize,
    bp: *const f32,
    ne: usize,
    kc: usize,
    c: *mut f32,
    ldc: usize,
) {
    kernel_edge_body(ap, me, bp, ne, kc, c, ldc)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn kernel_full_avx2(ap: *const f32, bp: *const f32, kc: usize, c: *mut f32, ldc: usize) {
    kernel_full_body(ap, bp, kc, c, ldc)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn kernel_edge_avx2(
    ap: *const f32,
    me: usize,
    bp: *const f32,
    ne: usize,
    kc: usize,
    c: *mut f32,
    ldc: usize,
) {
    kernel_edge_body(ap, me, bp, ne, kc, c, ldc)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn kernel_full_avx512(ap: *const f32, bp: *const f32, kc: usize, c: *mut f32, ldc: usize) {
    kernel_full_body(ap, bp, kc, c, ldc)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn kernel_edge_avx512(
    ap: *const f32,
    me: usize,
    bp: *const f32,
    ne: usize,
    kc: usize,
    c: *mut f32,
    ldc: usize,
) {
    kernel_edge_body(ap, me, bp, ne, kc, c, ldc)
}

#[inline]
unsafe fn run_full(lvl: SimdLevel, ap: *const f32, bp: *const f32, kc: usize, c: *mut f32, ldc: usize) {
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => kernel_full_avx512(ap, bp, kc, c, ldc),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => kernel_full_avx2(ap, bp, kc, c, ldc),
        _ => kernel_full_scalar(ap, bp, kc, c, ldc),
    }
}

#[inline]
#[allow(clippy::too_many_arguments)]
unsafe fn run_edge(
    lvl: SimdLevel,
    ap: *const f32,
    me: usize,
    bp: *const f32,
    ne: usize,
    kc: usize,
    c: *mut f32,
    ldc: usize,
) {
    match lvl {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => kernel_edge_avx512(ap, me, bp, ne, kc, c, ldc),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => kernel_edge_avx2(ap, me, bp, ne, kc, c, ldc),
        _ => kernel_edge_scalar(ap, me, bp, ne, kc, c, ldc),
    }
}

// ---------------------------------------------------------------------------
// Tile-grid scheduler
// ---------------------------------------------------------------------------

/// Raw output pointer a scoped worker team shares. Safety rests on the
/// grid geometry: every task index maps to a distinct (row strip ×
/// column group) block of `C`, so no two workers ever write the same
/// element.
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    // Accessor (rather than a public field) so closures capture the whole
    // `SendPtr` — precise closure capture would otherwise grab the bare
    // `*mut f32` field, which is not `Sync`.
    #[inline]
    fn get(&self) -> *mut f32 {
        self.0
    }
}

/// Computes one claimed grid cell: the `me ≤ MR` rows of a packed A strip
/// (`[kc×me]` tiles at `kb·me`, [`pack_a`] layout) times columns
/// `j_lo..j_hi` of one batch's packed `B` (`bp`, [`pack_b`] layout), into
/// `C` at `c_row` (top-left of the strip, row stride `n`).
///
/// Column tiles advance in the outer loop so each `MR×NR` accumulator
/// block only spills to `C` between KC tiles (an exact f32 round trip);
/// `kb` advances inner, keeping every element's accumulation in strictly
/// increasing `k` order. A non-noop `ep` is applied to each column tile
/// right after its final KC tile stores — every element's accumulation
/// over the full `k` range is complete at that point, so this is the
/// store-time equivalent of a separate post-pass.
///
/// # Safety
/// `c_row` must be valid for an `me × (j_hi - j_lo)` block at row stride
/// `n`, not written concurrently by any other thread; `apack`/`bp` must
/// hold `me*k` / `k*n` packed floats; `j_lo` must be `NR`-aligned; a bias
/// in `ep` must have length `≥ n`.
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_cell(
    lvl: SimdLevel,
    apack: &[f32],
    me: usize,
    bp: &[f32],
    n: usize,
    k: usize,
    j_lo: usize,
    j_hi: usize,
    c_row: *mut f32,
    ep: Epilogue,
) {
    let n_full = n - n % NR;
    for j0 in (j_lo..j_hi.min(n_full)).step_by(NR) {
        for kb in (0..k).step_by(KC) {
            let kc = (kb + KC).min(k) - kb;
            let ap = apack.as_ptr().add(kb * me);
            let bt = bp.as_ptr().add(kb * n + j0 * kc);
            if me == MR {
                run_full(lvl, ap, bt, kc, c_row.add(j0), n);
            } else {
                run_edge(lvl, ap, me, bt, NR, kc, c_row.add(j0), n);
            }
        }
        if !ep.is_noop() {
            // Full k range accumulated for these NR columns: fuse the
            // epilogue into the store (also correct for k == 0, where
            // the accumulation over an empty range left zeros).
            ep.apply_tile(c_row, n, me, j0, NR);
        }
    }
    // The ragged column tile (ne = n % NR) always lands in the grid's
    // last column group (ne < NR ≤ NC).
    let ne = n - n_full;
    if ne > 0 && j_hi == n {
        for kb in (0..k).step_by(KC) {
            let kc = (kb + KC).min(k) - kb;
            let ap = apack.as_ptr().add(kb * me);
            let bt = bp.as_ptr().add(kb * n + n_full * kc);
            run_edge(lvl, ap, me, bt, ne, kc, c_row.add(n_full), n);
        }
        if !ep.is_noop() {
            ep.apply_tile(c_row, n, me, n_full, ne);
        }
    }
}

/// Packed GEMM over strided operands, batched:
/// `out[bi, i, j] = Σ_k ad[a_base(bi) + i·a_rs + kk·a_ks] · bd[b_base(bi) + kk·b_ks + j·b_cs]`
/// with `x_base(bi) = bi * x_batch`. `out` must be zero-initialised
/// (`bs*m*n`, row-major). Covers every matmul-family variant: strides
/// express the transposes, `bs = 1` the unbatched calls, `n = 1` matvec.
///
/// `B` is packed **once** up front (shared read-only across the worker
/// team — the obs `tile_bpacks` counter asserts exactly one pass per
/// call). The output is then a grid of `MR`-row strips × `NC`-column
/// groups — a fixed function of the problem shape, never of the thread
/// count — and [`par_task_queue`] workers claim cells from a shared
/// atomic queue. Each worker leases one `MR×k` A-panel buffer from the
/// workspace arena for its whole lifetime (no cross-thread aliasing: the
/// arena hands out disjoint buffers) and re-packs it only when it claims
/// a cell from a different strip than its previous one.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_packed(
    ad: &[f32],
    a_batch: usize,
    a_rs: usize,
    a_ks: usize,
    bd: &[f32],
    b_batch: usize,
    b_ks: usize,
    b_cs: usize,
    bs: usize,
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
) {
    gemm_packed_src(
        PanelSrc::F32(ad),
        a_batch,
        a_rs,
        a_ks,
        PanelSrc::F32(bd),
        b_batch,
        b_ks,
        b_cs,
        bs,
        m,
        n,
        k,
        out,
    )
}

/// [`gemm_packed`] with a fused epilogue applied at C-tile store time.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_packed_ep(
    ad: &[f32],
    a_batch: usize,
    a_rs: usize,
    a_ks: usize,
    bd: &[f32],
    b_batch: usize,
    b_ks: usize,
    b_cs: usize,
    bs: usize,
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
    ep: Epilogue,
) {
    gemm_packed_src_ep(
        PanelSrc::F32(ad),
        a_batch,
        a_rs,
        a_ks,
        PanelSrc::F32(bd),
        b_batch,
        b_ks,
        b_cs,
        bs,
        m,
        n,
        k,
        out,
        ep,
    )
}

/// [`gemm_packed`] over [`PanelSrc`] operands — the mixed-precision entry:
/// bf16 operands are widened into the packed f32 panels during packing,
/// and from there the scheduler, kernels and f32 accumulation order are
/// exactly the f32 path's. Output is always f32; callers that want bf16
/// results round once after the full accumulation.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_packed_src(
    a: PanelSrc,
    a_batch: usize,
    a_rs: usize,
    a_ks: usize,
    b: PanelSrc,
    b_batch: usize,
    b_ks: usize,
    b_cs: usize,
    bs: usize,
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
) {
    gemm_packed_src_ep(a, a_batch, a_rs, a_ks, b, b_batch, b_ks, b_cs, bs, m, n, k, out, Epilogue::none())
}

/// [`gemm_packed_src`] with a fused [`Epilogue`]: each claimed cell
/// applies `ep` to a column tile immediately after that tile's last KC
/// tile stores (full-`k` accumulation complete), instead of a separate
/// pass over the whole output afterwards. Bias indices are the absolute
/// output column, so batched calls see the same per-column bias in every
/// batch.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_packed_src_ep(
    a: PanelSrc,
    a_batch: usize,
    a_rs: usize,
    a_ks: usize,
    b: PanelSrc,
    b_batch: usize,
    b_ks: usize,
    b_cs: usize,
    bs: usize,
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
    ep: Epilogue,
) {
    debug_assert_eq!(out.len(), bs * m * n);
    if bs * m * n == 0 {
        return;
    }
    let mut bpack = workspace::take(bs * k * n);
    for bi in 0..bs {
        b.pack_b(bi * b_batch, k, n, b_ks, b_cs, &mut bpack[bi * k * n..(bi + 1) * k * n]);
    }
    metalora_obs::counters::record_tile_grid_bpack();
    let bp: &[f32] = &bpack;

    // The tile grid: strips never straddle batch boundaries, column
    // groups are NR-aligned. Task index → (strip, group) with groups
    // adjacent for the same strip, so a worker draining consecutive
    // indices keeps its packed A strip.
    let strips_per_batch = m.div_ceil(MR);
    let col_groups = n.div_ceil(NC);
    let tasks = bs * strips_per_batch * col_groups;
    let lvl = simd_level();
    let c_out = SendPtr(out.as_mut_ptr());
    let worker = |slot: usize, queue: &TaskQueue| {
        let mut apack = workspace::take(MR * k);
        let mut packed_strip = usize::MAX;
        let (mut claimed, mut steals, mut last) = (0u64, 0u64, usize::MAX);
        while let Some(task) = queue.claim() {
            claimed += 1;
            if last != usize::MAX && task != last + 1 {
                steals += 1;
            }
            last = task;
            let (strip, g) = (task / col_groups, task % col_groups);
            let (bi, i0) = (strip / strips_per_batch, (strip % strips_per_batch) * MR);
            let me = (m - i0).min(MR);
            if strip != packed_strip {
                a.pack_a(bi * a_batch, i0, me, k, a_rs, a_ks, &mut apack[..me * k]);
                packed_strip = strip;
            }
            let (j_lo, j_hi) = (g * NC, ((g + 1) * NC).min(n));
            // Safety: task indices are claimed exactly once, and each maps
            // to a disjoint me×(j_hi-j_lo) block of `out`; the packed
            // panels were sized by pack_a/pack_b above.
            unsafe {
                gemm_cell(
                    lvl,
                    &apack[..me * k],
                    me,
                    &bp[bi * k * n..(bi + 1) * k * n],
                    n,
                    k,
                    j_lo,
                    j_hi,
                    c_out.get().add(bi * m * n + i0 * n),
                    ep,
                );
            }
        }
        metalora_obs::counters::record_tile_grid_worker(slot, claimed, steals);
    };
    if tile_grid_parallel() {
        par_task_queue("tile_grid", tasks, 2 * MR * k * NC.min(n.max(1)), worker);
    } else {
        // Bisection knob: identical grid, single worker, no team.
        metalora_obs::counters::record_dispatch(false);
        worker(0, &TaskQueue::new(tasks));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simd_level_is_cached_and_consistent() {
        let a = simd_level();
        let b = simd_level();
        assert_eq!(a, b);
        assert!(!a.name().is_empty());
    }

    #[test]
    fn pack_b_roundtrip_identity_layout() {
        // 2 KC tiles, ragged n: every element must land exactly once.
        let k = KC + 3;
        let n = NR + 5;
        let bd: Vec<f32> = (0..k * n).map(|x| x as f32).collect();
        let mut packed = vec![f32::NAN; k * n];
        pack_b(&bd, 0, k, n, n, 1, &mut packed);
        assert!(packed.iter().all(|x| !x.is_nan()));
        // Spot-check the documented layout: tile kb=KC, full tile 0,
        // dk=1, jj=2 holds B[KC+1, 2].
        let off = KC * n + NR + 2;
        assert_eq!(packed[off], bd[(KC + 1) * n + 2]);
    }

    #[test]
    fn pack_a_covers_ragged_rows() {
        let (rows, k) = (MR + 2, KC + 1);
        let ad: Vec<f32> = (0..rows * k).map(|x| x as f32).collect();
        let mut packed = vec![f32::NAN; rows * k];
        pack_a(&ad, 0, 0, rows, k, k, 1, &mut packed);
        assert!(packed.iter().all(|x| !x.is_nan()));
        // Full tile 0, dk=0, r=3 holds A[3, 0].
        assert_eq!(packed[3], ad[3 * k]);
        // Edge tile (rows 4..6), tile kb=0 starts after the full tiles.
        assert_eq!(packed[MR * KC], ad[MR * k]);
    }

    #[test]
    fn gating_toggles() {
        assert!(packing_enabled());
        set_packing_enabled(false);
        assert!(!use_packed(usize::MAX));
        set_packing_enabled(true);
        assert!(use_packed(1 << 20));
        assert!(!use_packed(8));
    }

    /// Serialises the tests that flip the global tile-grid knob.
    fn grid_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn tile_grid_toggle_round_trips() {
        let _g = grid_lock();
        set_tile_grid_parallel(false);
        assert!(!tile_grid_parallel());
        set_tile_grid_parallel(true);
        assert!(tile_grid_parallel());
    }

    #[test]
    fn fuse_toggle_round_trips() {
        let _g = grid_lock();
        set_fuse_enabled(false);
        assert!(!fuse_enabled());
        set_fuse_enabled(true);
        assert!(fuse_enabled());
    }

    #[test]
    fn fused_epilogue_is_bitwise_separate_pass() {
        let _g = grid_lock();
        // Ragged m/n, 2 KC tiles, 2 column groups: the fused store must
        // reproduce the exact bits of GEMM followed by two full passes
        // (bias broadcast, then activation) in the same scalar order.
        let (m, k, n) = (37, 150, 290);
        let ad: Vec<f32> = (0..m * k).map(|x| (x % 17) as f32 * 0.25 - 2.0).collect();
        let bd: Vec<f32> = (0..k * n).map(|x| (x % 13) as f32 * 0.5 - 3.0).collect();
        let bias: Vec<f32> = (0..n).map(|j| (j % 7) as f32 * 0.125 - 0.4).collect();
        for act in [None, Some(Activation::Relu), Some(Activation::Gelu), Some(Activation::Tanh)] {
            let mut separate = vec![0.0f32; m * n];
            gemm_packed(&ad, 0, k, 1, &bd, 0, n, 1, 1, m, n, k, &mut separate);
            for row in separate.chunks_mut(n) {
                for (j, v) in row.iter_mut().enumerate() {
                    *v += bias[j];
                }
            }
            if let Some(a) = act {
                for v in &mut separate {
                    *v = a.apply(*v);
                }
            }
            let mut fused = vec![0.0f32; m * n];
            gemm_packed_ep(
                &ad, 0, k, 1, &bd, 0, n, 1, 1, m, n, k,
                &mut fused,
                Epilogue { bias: Some(&bias), act },
            );
            assert!(fused.iter().zip(&separate).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn bf16_packs_match_f32_packs_on_widened_data() {
        use crate::bf16::{bf16_to_f32, f32_to_bf16};
        // Ragged in both dimensions, 2 KC tiles: packing from bf16 must
        // produce bit-for-bit the panels packed from the widened f32 copy.
        let (rows, k, n) = (MR + 2, KC + 3, NR + 5);
        let hb: Vec<u16> =
            (0..k * n.max(rows)).map(|x| f32_to_bf16((x % 29) as f32 * 0.375 - 4.0)).collect();
        let wide: Vec<f32> = hb.iter().map(|&h| bf16_to_f32(h)).collect();

        let mut p16 = vec![f32::NAN; k * n];
        let mut p32 = vec![f32::NAN; k * n];
        pack_b_bf16(&hb, 0, k, n, n, 1, &mut p16);
        pack_b(&wide, 0, k, n, n, 1, &mut p32);
        assert!(p16.iter().zip(&p32).all(|(a, b)| a.to_bits() == b.to_bits()));

        let mut a16 = vec![f32::NAN; rows * k];
        let mut a32 = vec![f32::NAN; rows * k];
        pack_a_bf16(&hb, 0, 0, rows, k, k, 1, &mut a16);
        pack_a(&wide, 0, 0, rows, k, k, 1, &mut a32);
        assert!(a16.iter().zip(&a32).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn bf16_gemm_is_bitwise_f32_gemm_on_widened_inputs() {
        use crate::bf16::{bf16_to_f32, f32_to_bf16};
        let _g = grid_lock();
        let (m, k, n) = (19, KC + 21, NR * 3 + 7);
        let ah: Vec<u16> = (0..m * k).map(|x| f32_to_bf16((x % 17) as f32 * 0.25 - 2.0)).collect();
        let bh: Vec<u16> = (0..k * n).map(|x| f32_to_bf16((x % 13) as f32 * 0.5 - 3.0)).collect();
        let aw: Vec<f32> = ah.iter().map(|&h| bf16_to_f32(h)).collect();
        let bw: Vec<f32> = bh.iter().map(|&h| bf16_to_f32(h)).collect();

        let mut from_bf16 = vec![0.0f32; m * n];
        gemm_packed_src(
            PanelSrc::Bf16(&ah), 0, k, 1, PanelSrc::Bf16(&bh), 0, n, 1, 1, m, n, k,
            &mut from_bf16,
        );
        let mut from_f32 = vec![0.0f32; m * n];
        gemm_packed(&aw, 0, k, 1, &bw, 0, n, 1, 1, m, n, k, &mut from_f32);
        // Widening at pack time is exact, so the full f32 accumulation —
        // and hence every output bit — is identical.
        assert!(from_bf16.iter().zip(&from_f32).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn serial_tile_grid_matches_parallel_tile_grid() {
        let _g = grid_lock();
        // The bisection knob must not change a bit (both claim the same
        // grid; only the team size differs).
        let (m, k, n) = (37, 150, 290); // ragged in every dimension, 2 KC tiles, 2 col groups
        let ad: Vec<f32> = (0..m * k).map(|x| (x % 17) as f32 * 0.25 - 2.0).collect();
        let bd: Vec<f32> = (0..k * n).map(|x| (x % 13) as f32 * 0.5 - 3.0).collect();
        let run = |parallel: bool| {
            set_tile_grid_parallel(parallel);
            let mut out = vec![0.0f32; m * n];
            gemm_packed(&ad, 0, k, 1, &bd, 0, n, 1, 1, m, n, k, &mut out);
            out
        };
        let serial = run(false);
        crate::par::set_num_threads(4);
        crate::par::set_par_threshold(0);
        let parallel = run(true);
        crate::par::set_num_threads(0);
        crate::par::set_par_threshold(usize::MAX);
        assert!(serial.iter().zip(&parallel).all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}
