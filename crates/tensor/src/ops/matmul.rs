//! Dense matrix multiplication kernels.
//!
//! Two interchangeable paths compute every variant:
//!
//! * the **packed register-tiled microkernel**
//!   ([`super::microkernel`]) — packs both operands and runs an `MR×NR`
//!   SIMD register tile; taken for products above a small flop threshold.
//!   All seven variants (plus `matvec`) route through its
//!   `gemm_packed` entry, whose **tile-grid scheduler** owns the
//!   parallelism: `B` is packed once and a worker team claims C-tile
//!   blocks from a shared atomic queue ([`crate::par::par_task_queue`]).
//!   Packing happens *under* the parallel split, never per-thread.
//! * the **legacy scalar kernels** below — a cache-blocked `ikj` loop
//!   ordering (k-tiled by `KC` so the active panel of `B` stays in L2);
//!   retained for tiny products, as the reference the packed path is
//!   tested bitwise-equal against, and as a bisection fallback
//!   ([`super::microkernel::set_packing_enabled`]). The legacy path
//!   hands its output to [`crate::par::par_row_blocks`] row splits.
//!
//! Per-element accumulation runs in increasing `k` order everywhere, so
//! parallel, packed and legacy results are all bitwise identical.

use super::microkernel::{self, use_packed, Activation, Epilogue, PanelSrc};
use crate::bf16::{self, Bf16Buf};
use crate::par::par_row_blocks;
use crate::{workspace, Result, Tensor, TensorError};

/// k-dimension tile: the `KC×n` panel of `B` revisited per row block stays
/// L2-resident. Shared with the packed path.
const KC: usize = microkernel::KC;

/// Reports one matmul-family invocation to the observability layer:
/// `flops` multiply-adds counted as 2 ops each, bytes = all three
/// operands at 4 bytes per element, plus which microkernel path ran.
#[inline]
fn record_mm(packed: bool, in_elems: usize, out_elems: usize, flops: usize) {
    metalora_obs::counters::record_kernel(
        metalora_obs::counters::Kernel::Matmul,
        flops as u64,
        (4 * (in_elems + out_elems)) as u64,
    );
    metalora_obs::counters::record_matmul_path(packed);
}

/// `C = A·B` for `A:[m,k]`, `B:[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = as_matrix_dims(a, "matmul lhs")?;
    let (k2, n) = as_matrix_dims(b, "matmul rhs")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    let packed = use_packed(2 * m * k * n);
    if packed {
        microkernel::gemm_packed(ad, 0, k, 1, bd, 0, n, 1, 1, m, n, k, &mut out);
    } else {
        par_row_blocks(&mut out, n.max(1), 2 * k * n, |first, block| {
            matmul_rows(ad, bd, k, n, first, block);
        });
    }
    record_mm(packed, a.len() + b.len(), out.len(), 2 * m * k * n);
    Tensor::from_vec(out, &[m, n])
}

/// ikj-order kernel for rows `first..` of `C = A·B`, k-tiled. For each
/// `(i, kk)` scalar of `A`, axpy a row of `B` into a row of `C`; the inner
/// loop is contiguous in both `B` and `C`, and each output element
/// accumulates in increasing `kk` order regardless of the tiling.
fn matmul_rows(ad: &[f32], bd: &[f32], k: usize, n: usize, first: usize, out: &mut [f32]) {
    let rows = out.len() / n.max(1);
    for kb in (0..k).step_by(KC) {
        let kend = (kb + KC).min(k);
        for r in 0..rows {
            let i = first + r;
            let out_row = &mut out[r * n..(r + 1) * n];
            for kk in kb..kend {
                let aik = ad[i * k + kk];
                let b_row = &bd[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
    }
}

/// `C = Aᵀ·B` for `A:[k,m]`, `B:[k,n]` without materialising `Aᵀ`.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = as_matrix_dims(a, "matmul_transpose_a lhs")?;
    let (k2, n) = as_matrix_dims(b, "matmul_transpose_a rhs")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_transpose_a",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    let packed = use_packed(2 * m * k * n);
    if packed {
        // Packing absorbs the transpose: A element (i, kk) sits at stride
        // (1, m).
        microkernel::gemm_packed(ad, 0, 1, m, bd, 0, n, 1, 1, m, n, k, &mut out);
    } else {
        par_row_blocks(&mut out, n.max(1), 2 * k * n, |first, block| {
            let rows = block.len() / n.max(1);
            for kb in (0..k).step_by(KC) {
                let kend = (kb + KC).min(k);
                for r in 0..rows {
                    let i = first + r;
                    let out_row = &mut block[r * n..(r + 1) * n];
                    // A is walked down a column (stride m); B panel reuse
                    // from the k-tile is what pays here.
                    for kk in kb..kend {
                        let aki = ad[kk * m + i];
                        let b_row = &bd[kk * n..(kk + 1) * n];
                        for (o, &bv) in out_row.iter_mut().zip(b_row) {
                            *o += aki * bv;
                        }
                    }
                }
            }
        });
    }
    record_mm(packed, a.len() + b.len(), out.len(), 2 * m * k * n);
    Tensor::from_vec(out, &[m, n])
}

/// `C = A·Bᵀ` for `A:[m,k]`, `B:[n,k]` without materialising `Bᵀ`.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = as_matrix_dims(a, "matmul_transpose_b lhs")?;
    let (n, k2) = as_matrix_dims(b, "matmul_transpose_b rhs")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_transpose_b",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    let packed = use_packed(2 * m * k * n);
    if packed {
        // B element (kk, j) sits at stride (1, k); the legacy dot loop's
        // fresh `acc = 0.0` matches the packed path's zeroed output bitwise.
        microkernel::gemm_packed(ad, 0, k, 1, bd, 0, 1, k, 1, m, n, k, &mut out);
    } else {
        // Dot products of contiguous rows — ideal memory order for this
        // layout.
        par_row_blocks(&mut out, n.max(1), 2 * k * n, |first, block| {
            for (r, out_row) in block.chunks_mut(n.max(1)).enumerate() {
                let i = first + r;
                let a_row = &ad[i * k..(i + 1) * k];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &bd[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&x, &y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    *o = acc;
                }
            }
        });
    }
    record_mm(packed, a.len() + b.len(), out.len(), 2 * m * k * n);
    Tensor::from_vec(out, &[m, n])
}

/// Matrix–vector product `y = A·x` for `A:[m,k]`, `x:[k]`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    let (m, k) = as_matrix_dims(a, "matvec lhs")?;
    if x.rank() != 1 || x.len() != k {
        return Err(TensorError::ShapeMismatch {
            op: "matvec",
            lhs: a.dims().to_vec(),
            rhs: x.dims().to_vec(),
        });
    }
    let (ad, xd) = (a.data(), x.data());
    let mut out = vec![0.0f32; m];
    let packed = use_packed(2 * m * k);
    if packed {
        // A matmul with n = 1: every column tile is the ragged edge, whose
        // kernel runs MR independent accumulation chains per k step —
        // bitwise the same sequence as the legacy `sum()` fold from 0.0.
        microkernel::gemm_packed(ad, 0, k, 1, xd, 0, 1, 1, 1, m, 1, k, &mut out);
    } else {
        par_row_blocks(&mut out, 1, 2 * k, |first, block| {
            for (r, o) in block.iter_mut().enumerate() {
                let i = first + r;
                let row = &ad[i * k..(i + 1) * k];
                *o = row.iter().zip(xd).map(|(&a, &b)| a * b).sum();
            }
        });
    }
    record_mm(packed, a.len() + x.len(), out.len(), 2 * m * k);
    Tensor::from_vec(out, &[m])
}

/// Batched matrix product `C[b] = A[b]·B[b]` for `A:[B,m,k]`, `B:[B,k,n]`.
///
/// Parallelised over the `B·m` output rows jointly, so a few large batches
/// and many small ones spread equally well.
pub fn bmm(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (bs, m, k) = as_batch_dims(a, "bmm lhs")?;
    let (bs2, k2, n) = as_batch_dims(b, "bmm rhs")?;
    if bs != bs2 || k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "bmm",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; bs * m * n];
    let (ad, bd) = (a.data(), b.data());
    let packed = use_packed(2 * bs * m * k * n);
    if packed {
        microkernel::gemm_packed(ad, m * k, k, 1, bd, k * n, n, 1, bs, m, n, k, &mut out);
    } else {
        par_row_blocks(&mut out, n.max(1), 2 * k * n, |first, block| {
            for (r, out_row) in block.chunks_mut(n.max(1)).enumerate() {
                let (bi, i) = ((first + r) / m.max(1), (first + r) % m.max(1));
                let a_row = &ad[bi * m * k + i * k..bi * m * k + (i + 1) * k];
                let b_base = bi * k * n;
                for (kk, &aik) in a_row.iter().enumerate() {
                    let b_row = &bd[b_base + kk * n..b_base + (kk + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += aik * bv;
                    }
                }
            }
        });
    }
    record_mm(packed, a.len() + b.len(), out.len(), 2 * bs * m * k * n);
    Tensor::from_vec(out, &[bs, m, n])
}

/// Batched `C[b] = A[b]ᵀ·B[b]` for `A:[B,k,m]`, `B:[B,k,n]`.
pub fn bmm_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (bs, k, m) = as_batch_dims(a, "bmm_transpose_a lhs")?;
    let (bs2, k2, n) = as_batch_dims(b, "bmm_transpose_a rhs")?;
    if bs != bs2 || k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "bmm_transpose_a",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; bs * m * n];
    let (ad, bd) = (a.data(), b.data());
    let packed = use_packed(2 * bs * m * k * n);
    if packed {
        microkernel::gemm_packed(ad, k * m, 1, m, bd, k * n, n, 1, bs, m, n, k, &mut out);
    } else {
        par_row_blocks(&mut out, n.max(1), 2 * k * n, |first, block| {
            for (r, out_row) in block.chunks_mut(n.max(1)).enumerate() {
                let (bi, i) = ((first + r) / m.max(1), (first + r) % m.max(1));
                let a_base = bi * k * m;
                let b_base = bi * k * n;
                for kk in 0..k {
                    let aki = ad[a_base + kk * m + i];
                    let b_row = &bd[b_base + kk * n..b_base + (kk + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o += aki * bv;
                    }
                }
            }
        });
    }
    record_mm(packed, a.len() + b.len(), out.len(), 2 * bs * m * k * n);
    Tensor::from_vec(out, &[bs, m, n])
}

/// Batched `C[b] = A[b]·B[b]ᵀ` for `A:[B,m,k]`, `B:[B,n,k]`.
pub fn bmm_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (bs, m, k) = as_batch_dims(a, "bmm_transpose_b lhs")?;
    let (bs2, n, k2) = as_batch_dims(b, "bmm_transpose_b rhs")?;
    if bs != bs2 || k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "bmm_transpose_b",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; bs * m * n];
    let (ad, bd) = (a.data(), b.data());
    let packed = use_packed(2 * bs * m * k * n);
    if packed {
        microkernel::gemm_packed(ad, m * k, k, 1, bd, n * k, 1, k, bs, m, n, k, &mut out);
    } else {
        par_row_blocks(&mut out, n.max(1), 2 * k * n, |first, block| {
            for (r, out_row) in block.chunks_mut(n.max(1)).enumerate() {
                let (bi, i) = ((first + r) / m.max(1), (first + r) % m.max(1));
                let a_row = &ad[bi * m * k + i * k..bi * m * k + (i + 1) * k];
                let b_base = bi * n * k;
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &bd[b_base + j * k..b_base + (j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&x, &y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    *o = acc;
                }
            }
        });
    }
    record_mm(packed, a.len() + b.len(), out.len(), 2 * bs * m * k * n);
    Tensor::from_vec(out, &[bs, m, n])
}

// ---------------------------------------------------------------------------
// bf16 storage entries
// ---------------------------------------------------------------------------
//
// Same kernels, half the stored bytes: bf16 operands are widened to f32
// at pack time (exactly — see `crate::bf16`), accumulate through the
// identical f32 paths, and only a *stored* bf16 result is rounded (once,
// after the full accumulation). The byte accounting below is what the
// bench sweeps compare: a bf16 operand moves 2 bytes per element where
// the f32 entry points above move 4.

/// Like [`record_mm`] but with explicitly counted bytes, for the
/// mixed-precision entries whose operands are not all 4 bytes wide.
#[inline]
fn record_mm_bytes(packed: bool, bytes: usize, flops: usize) {
    metalora_obs::counters::record_kernel(
        metalora_obs::counters::Kernel::Matmul,
        flops as u64,
        bytes as u64,
    );
    metalora_obs::counters::record_matmul_path(packed);
}

fn as_bf16_matrix_dims(b: &Bf16Buf, what: &'static str) -> Result<(usize, usize)> {
    if b.rank() != 2 {
        return Err(TensorError::InvalidArgument(format!(
            "{what}: expected rank-2 bf16 buffer, got rank {}",
            b.rank()
        )));
    }
    Ok((b.dims()[0], b.dims()[1]))
}

/// `C = X·W` for f32 activations `X:[m,k]` and bf16-stored weights
/// `W:[k,n]`, f32 output — the serving hot path: weights stream at half
/// the bytes, activations and accumulation stay f32. Bitwise identical to
/// [`matmul`] of `X` with the widened copy of `W`.
pub fn matmul_bf16_weights(x: &Tensor, w: &Bf16Buf) -> Result<Tensor> {
    let (m, k) = as_matrix_dims(x, "matmul_bf16_weights lhs")?;
    let (k2, n) = as_bf16_matrix_dims(w, "matmul_bf16_weights rhs")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_bf16_weights",
            lhs: x.dims().to_vec(),
            rhs: w.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let xd = x.data();
    let packed = use_packed(2 * m * k * n);
    if packed {
        microkernel::gemm_packed_src(
            PanelSrc::F32(xd), 0, k, 1, PanelSrc::Bf16(w.data()), 0, n, 1, 1, m, n, k, &mut out,
        );
    } else {
        // Tiny product: widen the weights into an arena lease and run the
        // legacy kernel — the widened values are the same ones packing
        // would produce, so the bitwise contract holds on this path too.
        let mut wf = workspace::take(k * n);
        bf16::widen_slice(w.data(), &mut wf);
        par_row_blocks(&mut out, n.max(1), 2 * k * n, |first, block| {
            matmul_rows(xd, &wf, k, n, first, block);
        });
    }
    record_mm_bytes(packed, 4 * x.len() + 2 * w.len() + 4 * m * n, 2 * m * k * n);
    Tensor::from_vec(out, &[m, n])
}

/// `C = A·B` with **all three** matrices stored bf16: operands widen at
/// pack time, the product accumulates in f32, and the result rounds to
/// bf16 once at the end (RNE). Moves half the bytes of [`matmul`] at
/// equal shape. The f32 accumulation equals `matmul` of the widened
/// operands bitwise; only the final stored rounding differs.
pub fn matmul_bf16(a: &Bf16Buf, b: &Bf16Buf) -> Result<Bf16Buf> {
    let (m, k) = as_bf16_matrix_dims(a, "matmul_bf16 lhs")?;
    let (k2, n) = as_bf16_matrix_dims(b, "matmul_bf16 rhs")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_bf16",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut acc = workspace::take_zeroed(m * n);
    let packed = use_packed(2 * m * k * n);
    if packed {
        microkernel::gemm_packed_src(
            PanelSrc::Bf16(a.data()), 0, k, 1, PanelSrc::Bf16(b.data()), 0, n, 1, 1, m, n, k,
            &mut acc,
        );
    } else {
        let mut af = workspace::take(m * k);
        bf16::widen_slice(a.data(), &mut af);
        let mut bf = workspace::take(k * n);
        bf16::widen_slice(b.data(), &mut bf);
        let (afr, bfr) = (&af[..], &bf[..]);
        par_row_blocks(&mut acc, n.max(1), 2 * k * n, |first, block| {
            matmul_rows(afr, bfr, k, n, first, block);
        });
    }
    record_mm_bytes(packed, 2 * (a.len() + b.len() + m * n), 2 * m * k * n);
    Bf16Buf::from_f32(&acc, &[m, n])
}

// ---------------------------------------------------------------------------
// Fused-epilogue entries
// ---------------------------------------------------------------------------
//
// `act(X·W + bias)` in one pass: the epilogue is applied per element at
// C-tile store time (packed path) or at the end of each row block's
// accumulation (legacy path), eliminating the separate full passes
// `ops::add` + `ops::map` would make over the output. Per element the
// scalar sequence — `act(acc + bias[j])` after the complete `k`
// accumulation — is identical either way, so fused output is bitwise
// equal to unfused (asserted by `tests/fuse_equiv.rs`). The
// `METALORA_FUSE` kill-switch routes back through the separate passes.

/// Validates an optional bias against output width `n` and returns its
/// data slice.
fn check_bias<'a>(
    bias: Option<&'a Tensor>,
    n: usize,
    op: &'static str,
) -> Result<Option<&'a [f32]>> {
    match bias {
        Some(b) if b.len() != n => Err(TensorError::ShapeMismatch {
            op,
            lhs: b.dims().to_vec(),
            rhs: vec![n],
        }),
        Some(b) => Ok(Some(b.data())),
        None => Ok(None),
    }
}

/// The unfused epilogue: the exact separate full output passes the fused
/// store replaces — a broadcast bias add, then an activation map. Each
/// pass is tallied by the obs `output_passes` counter, which is how the
/// serve bench proves the fused path eliminated them.
pub fn epilogue_pass(y: Tensor, bias: Option<&Tensor>, act: Option<Activation>) -> Result<Tensor> {
    let y = match bias {
        Some(b) => {
            metalora_obs::counters::record_output_pass();
            super::elementwise::add(&y, b)?
        }
        None => y,
    };
    Ok(match act {
        Some(a) => {
            metalora_obs::counters::record_output_pass();
            super::elementwise::map(&y, move |v| a.apply(v))
        }
        None => y,
    })
}

/// `C = act(X·W + bias)` for `X:[m,k]`, `W:[k,n]`, `bias:[n]` — the fused
/// linear forward. Bitwise identical to [`matmul`] followed by
/// [`epilogue_pass`]; with fusion disabled it *is* that sequence.
pub fn matmul_bias_act(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    act: Option<Activation>,
) -> Result<Tensor> {
    let (m, k) = as_matrix_dims(x, "matmul_bias_act lhs")?;
    let (k2, n) = as_matrix_dims(w, "matmul_bias_act rhs")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_bias_act",
            lhs: x.dims().to_vec(),
            rhs: w.dims().to_vec(),
        });
    }
    let ep = Epilogue { bias: check_bias(bias, n, "matmul_bias_act bias")?, act };
    if ep.is_noop() {
        return matmul(x, w);
    }
    if !microkernel::fuse_enabled() {
        return epilogue_pass(matmul(x, w)?, bias, act);
    }
    let mut out = vec![0.0f32; m * n];
    let (xd, wd) = (x.data(), w.data());
    let packed = use_packed(2 * m * k * n);
    if packed {
        microkernel::gemm_packed_ep(xd, 0, k, 1, wd, 0, n, 1, 1, m, n, k, &mut out, ep);
    } else {
        par_row_blocks(&mut out, n.max(1), 2 * k * n, |first, block| {
            matmul_rows(xd, wd, k, n, first, block);
            // The row block's full-k accumulation is complete: apply the
            // epilogue here, in the same walk, instead of a second full
            // pass over the output.
            ep.apply_rows(block, n);
        });
    }
    record_mm(packed, x.len() + w.len() + bias.map_or(0, Tensor::len), out.len(), 2 * m * k * n);
    metalora_obs::counters::record_fused_epilogue((m * n) as u64);
    Tensor::from_vec(out, &[m, n])
}

/// [`matmul_bias_act`] with bf16-stored weights — the fused serving hot
/// path. Bitwise identical to [`matmul_bf16_weights`] followed by
/// [`epilogue_pass`].
pub fn matmul_bf16_weights_bias_act(
    x: &Tensor,
    w: &Bf16Buf,
    bias: Option<&Tensor>,
    act: Option<Activation>,
) -> Result<Tensor> {
    let (m, k) = as_matrix_dims(x, "matmul_bf16_weights_bias_act lhs")?;
    let (k2, n) = as_bf16_matrix_dims(w, "matmul_bf16_weights_bias_act rhs")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_bf16_weights_bias_act",
            lhs: x.dims().to_vec(),
            rhs: w.dims().to_vec(),
        });
    }
    let ep = Epilogue { bias: check_bias(bias, n, "matmul_bf16_weights_bias_act bias")?, act };
    if ep.is_noop() {
        return matmul_bf16_weights(x, w);
    }
    if !microkernel::fuse_enabled() {
        return epilogue_pass(matmul_bf16_weights(x, w)?, bias, act);
    }
    let mut out = vec![0.0f32; m * n];
    let xd = x.data();
    let packed = use_packed(2 * m * k * n);
    if packed {
        microkernel::gemm_packed_src_ep(
            PanelSrc::F32(xd), 0, k, 1, PanelSrc::Bf16(w.data()), 0, n, 1, 1, m, n, k, &mut out,
            ep,
        );
    } else {
        let mut wf = workspace::take(k * n);
        bf16::widen_slice(w.data(), &mut wf);
        let wfr = &wf[..];
        par_row_blocks(&mut out, n.max(1), 2 * k * n, |first, block| {
            matmul_rows(xd, wfr, k, n, first, block);
            ep.apply_rows(block, n);
        });
    }
    record_mm_bytes(
        packed,
        4 * x.len() + 2 * w.len() + 4 * m * n + 4 * bias.map_or(0, Tensor::len),
        2 * m * k * n,
    );
    metalora_obs::counters::record_fused_epilogue((m * n) as u64);
    Tensor::from_vec(out, &[m, n])
}

fn as_batch_dims(t: &Tensor, what: &'static str) -> Result<(usize, usize, usize)> {
    if t.rank() != 3 {
        return Err(TensorError::InvalidArgument(format!(
            "{what}: expected rank-3 tensor, got rank {}",
            t.rank()
        )));
    }
    Ok((t.dims()[0], t.dims()[1], t.dims()[2]))
}

fn as_matrix_dims(t: &Tensor, what: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::InvalidArgument(format!(
            "{what}: expected rank-2 tensor, got rank {}",
            t.rank()
        )));
    }
    Ok((t.dims()[0], t.dims()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::transpose2d;
    use crate::{approx_eq, init, par};

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn matmul_small_known() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::arange(1.0, 1.0, 6).reshape(&[2, 3]).unwrap();
        let b = Tensor::arange(1.0, 1.0, 12).reshape(&[3, 4]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 4]);
        // Row 0: [1,2,3]·cols of b.
        assert_eq!(c.get(&[0, 0]).unwrap(), 1.0 + 2.0 * 5.0 + 3.0 * 9.0);
    }

    #[test]
    fn matmul_identity() {
        let mut r = init::rng(1);
        let a = init::uniform(&[4, 4], -1.0, 1.0, &mut r);
        let i = Tensor::eye(4);
        assert!(approx_eq(&matmul(&a, &i).unwrap(), &a, 1e-6));
        assert!(approx_eq(&matmul(&i, &a).unwrap(), &a, 1e-6));
    }

    #[test]
    fn matmul_shape_errors() {
        assert!(matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2])).is_err());
        assert!(matmul(&Tensor::zeros(&[2]), &Tensor::zeros(&[2, 2])).is_err());
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let mut r = init::rng(3);
        let a = init::uniform(&[5, 7], -1.0, 1.0, &mut r);
        let b = init::uniform(&[5, 4], -1.0, 1.0, &mut r);
        let expect = matmul(&transpose2d(&a).unwrap(), &b).unwrap();
        assert!(approx_eq(&matmul_transpose_a(&a, &b).unwrap(), &expect, 1e-5));

        let c = init::uniform(&[6, 7], -1.0, 1.0, &mut r);
        let expect = matmul(&a, &transpose2d(&c).unwrap()).unwrap();
        assert!(approx_eq(&matmul_transpose_b(&a, &c).unwrap(), &expect, 1e-5));
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut r = init::rng(5);
        let a = init::uniform(&[4, 6], -1.0, 1.0, &mut r);
        let x = init::uniform(&[6], -1.0, 1.0, &mut r);
        let y = matvec(&a, &x).unwrap();
        let y2 = matmul(&a, &x.reshaped(&[6, 1]).unwrap()).unwrap();
        assert!(approx_eq(&y, &y2.reshape(&[4]).unwrap(), 1e-5));
        assert!(matvec(&a, &Tensor::zeros(&[5])).is_err());
    }

    #[test]
    fn matmul_zero_dims() {
        // Degenerate but legal: inner dimension 0 produces all-zero output.
        let a = Tensor::zeros(&[2, 0]);
        let b = Tensor::zeros(&[0, 3]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 3]);
        assert!(c.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn matmul_zero_width_output() {
        let a = Tensor::zeros(&[3, 2]);
        let b = Tensor::zeros(&[2, 0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[3, 0]);
    }

    #[test]
    fn matmul_tiling_exceeds_kc() {
        // k > KC exercises more than one k-tile; compare against a plain
        // untiled reference computed inline.
        let mut r = init::rng(11);
        let k = KC + 37;
        let a = init::uniform(&[3, k], -1.0, 1.0, &mut r);
        let b = init::uniform(&[k, 5], -1.0, 1.0, &mut r);
        let c = matmul(&a, &b).unwrap();
        for i in 0..3 {
            for j in 0..5 {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.data()[i * k + kk] * b.data()[kk * 5 + j];
                }
                assert_eq!(c.data()[i * 5 + j], acc, "tiled result must be bitwise ikj");
            }
        }
    }

    #[test]
    fn forced_parallel_is_bitwise_serial() {
        let mut r = init::rng(13);
        let a = init::uniform(&[65, 40], -1.0, 1.0, &mut r);
        let b = init::uniform(&[40, 33], -1.0, 1.0, &mut r);
        par::set_num_threads(1);
        let serial = matmul(&a, &b).unwrap();
        par::set_num_threads(4);
        par::set_par_threshold(0);
        let parallel = matmul(&a, &b).unwrap();
        par::set_num_threads(0);
        par::set_par_threshold(usize::MAX);
        assert_eq!(serial.data(), parallel.data());
    }

    #[test]
    fn bmm_matches_per_slice_matmul() {
        let mut r = init::rng(8);
        let a = init::uniform(&[3, 4, 5], -1.0, 1.0, &mut r);
        let b = init::uniform(&[3, 5, 6], -1.0, 1.0, &mut r);
        let c = bmm(&a, &b).unwrap();
        assert_eq!(c.dims(), &[3, 4, 6]);
        for bi in 0..3 {
            let ai = a.index_axis0(bi).unwrap();
            let bi_m = b.index_axis0(bi).unwrap();
            let expect = matmul(&ai, &bi_m).unwrap();
            assert!(approx_eq(&c.index_axis0(bi).unwrap(), &expect, 1e-5));
        }
    }

    #[test]
    fn bmm_transposed_variants() {
        let mut r = init::rng(9);
        let a = init::uniform(&[2, 5, 4], -1.0, 1.0, &mut r);
        let b = init::uniform(&[2, 5, 3], -1.0, 1.0, &mut r);
        let c = bmm_transpose_a(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 4, 3]);
        for bi in 0..2 {
            let expect = matmul_transpose_a(
                &a.index_axis0(bi).unwrap(),
                &b.index_axis0(bi).unwrap(),
            )
            .unwrap();
            assert!(approx_eq(&c.index_axis0(bi).unwrap(), &expect, 1e-5));
        }

        let a = init::uniform(&[2, 4, 5], -1.0, 1.0, &mut r);
        let b = init::uniform(&[2, 3, 5], -1.0, 1.0, &mut r);
        let c = bmm_transpose_b(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 4, 3]);
        for bi in 0..2 {
            let expect = matmul_transpose_b(
                &a.index_axis0(bi).unwrap(),
                &b.index_axis0(bi).unwrap(),
            )
            .unwrap();
            assert!(approx_eq(&c.index_axis0(bi).unwrap(), &expect, 1e-5));
        }
    }

    #[test]
    fn matmul_bf16_weights_matches_widened_matmul_bitwise() {
        let mut r = init::rng(21);
        // Large enough for the packed path and small enough for legacy:
        // both must equal matmul against the widened weights to the bit.
        for (m, k, n) in [(3, 5, 4), (40, 140, 50)] {
            let x = init::uniform(&[m, k], -1.0, 1.0, &mut r);
            let w = Bf16Buf::from_tensor(&init::uniform(&[k, n], -1.0, 1.0, &mut r));
            let got = matmul_bf16_weights(&x, &w).unwrap();
            let expect = matmul(&x, &w.widen()).unwrap();
            assert_eq!(got.dims(), expect.dims());
            assert!(got
                .data()
                .iter()
                .zip(expect.data())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn matmul_bf16_equals_rounded_widened_product() {
        let mut r = init::rng(22);
        for (m, k, n) in [(4, 6, 3), (36, 130, 40)] {
            let a = Bf16Buf::from_tensor(&init::uniform(&[m, k], -1.0, 1.0, &mut r));
            let b = Bf16Buf::from_tensor(&init::uniform(&[k, n], -1.0, 1.0, &mut r));
            let got = matmul_bf16(&a, &b).unwrap();
            let expect = matmul(&a.widen(), &b.widen()).unwrap();
            // The accumulation is the f32 one; only the final store
            // rounds, so rounding the reference must reproduce the
            // result exactly.
            let expect16 = Bf16Buf::from_tensor(&expect);
            assert_eq!(got, expect16);
        }
    }

    #[test]
    fn bf16_matmul_validates_shapes() {
        let a = Bf16Buf::from_f32(&[0.0; 6], &[2, 3]).unwrap();
        let b = Bf16Buf::from_f32(&[0.0; 8], &[4, 2]).unwrap();
        assert!(matmul_bf16(&a, &b).is_err());
        assert!(matmul_bf16_weights(&Tensor::zeros(&[2, 4]), &a).is_err());
        assert!(matmul_bf16_weights(&Tensor::zeros(&[2]), &a).is_err());
    }

    #[test]
    fn matmul_bias_act_matches_separate_passes_bitwise() {
        let mut r = init::rng(31);
        // Legacy-sized and packed-sized: both must equal matmul followed
        // by the separate broadcast-add and map passes to the bit.
        for (m, k, n) in [(3, 5, 4), (40, 140, 50)] {
            let x = init::uniform(&[m, k], -1.0, 1.0, &mut r);
            let w = init::uniform(&[k, n], -1.0, 1.0, &mut r);
            let b = init::uniform(&[n], -1.0, 1.0, &mut r);
            let fused = matmul_bias_act(&x, &w, Some(&b), Some(Activation::Gelu)).unwrap();
            let y = crate::ops::add(&matmul(&x, &w).unwrap(), &b).unwrap();
            let expect = crate::ops::map(&y, |v| Activation::Gelu.apply(v));
            assert_eq!(fused.dims(), expect.dims());
            assert!(fused
                .data()
                .iter()
                .zip(expect.data())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn matmul_bf16_weights_bias_act_matches_separate_passes_bitwise() {
        let mut r = init::rng(32);
        for (m, k, n) in [(3, 5, 4), (40, 140, 50)] {
            let x = init::uniform(&[m, k], -1.0, 1.0, &mut r);
            let w = Bf16Buf::from_tensor(&init::uniform(&[k, n], -1.0, 1.0, &mut r));
            let b = init::uniform(&[n], -1.0, 1.0, &mut r);
            let fused =
                matmul_bf16_weights_bias_act(&x, &w, Some(&b), Some(Activation::Tanh)).unwrap();
            let y = crate::ops::add(&matmul_bf16_weights(&x, &w).unwrap(), &b).unwrap();
            let expect = crate::ops::map(&y, |v| Activation::Tanh.apply(v));
            assert!(fused
                .data()
                .iter()
                .zip(expect.data())
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn fused_entries_validate_bias_width() {
        let x = Tensor::zeros(&[2, 3]);
        let w = Tensor::zeros(&[3, 4]);
        let bad = Tensor::zeros(&[5]);
        assert!(matmul_bias_act(&x, &w, Some(&bad), None).is_err());
        let wh = Bf16Buf::from_f32(&[0.0; 12], &[3, 4]).unwrap();
        assert!(matmul_bf16_weights_bias_act(&x, &wh, Some(&bad), None).is_err());
        // Noop epilogue degenerates to the plain product.
        let ok = matmul_bias_act(&x, &w, None, None).unwrap();
        assert_eq!(ok.dims(), &[2, 4]);
    }

    #[test]
    fn bmm_validates() {
        assert!(bmm(&Tensor::zeros(&[2, 3, 4]), &Tensor::zeros(&[3, 4, 5])).is_err());
        assert!(bmm(&Tensor::zeros(&[2, 3, 4]), &Tensor::zeros(&[2, 5, 6])).is_err());
        assert!(bmm(&Tensor::zeros(&[3, 4]), &Tensor::zeros(&[2, 4, 5])).is_err());
    }
}
