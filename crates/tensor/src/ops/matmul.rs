//! Dense matrix multiplication kernels.
//!
//! A cache-friendly `ikj` loop ordering with the inner product vectorising
//! over the contiguous last axis. At the model sizes of the MetaLoRA
//! experiments (≤ a few hundred per dimension) this is within a small factor
//! of BLAS and keeps the crate dependency-free.

use crate::{Result, Tensor, TensorError};

/// `C = A·B` for `A:[m,k]`, `B:[k,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = as_matrix_dims(a, "matmul lhs")?;
    let (k2, n) = as_matrix_dims(b, "matmul rhs")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    // ikj order: for each (i, kk) scalar of A, axpy a row of B into a row
    // of C. Inner loop is contiguous in both B and C.
    for i in 0..m {
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in ad[i * k..(i + 1) * k].iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &bd[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aik * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = Aᵀ·B` for `A:[k,m]`, `B:[k,n]` without materialising `Aᵀ`.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = as_matrix_dims(a, "matmul_transpose_a lhs")?;
    let (k2, n) = as_matrix_dims(b, "matmul_transpose_a rhs")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_transpose_a",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    for kk in 0..k {
        let a_row = &ad[kk * m..(kk + 1) * m];
        let b_row = &bd[kk * n..(kk + 1) * n];
        for (i, &aki) in a_row.iter().enumerate() {
            if aki == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += aki * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = A·Bᵀ` for `A:[m,k]`, `B:[n,k]` without materialising `Bᵀ`.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = as_matrix_dims(a, "matmul_transpose_b lhs")?;
    let (n, k2) = as_matrix_dims(b, "matmul_transpose_b rhs")?;
    if k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_transpose_b",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let (ad, bd) = (a.data(), b.data());
    // Dot products of contiguous rows — ideal memory order for this layout.
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Matrix–vector product `y = A·x` for `A:[m,k]`, `x:[k]`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Result<Tensor> {
    let (m, k) = as_matrix_dims(a, "matvec lhs")?;
    if x.rank() != 1 || x.len() != k {
        return Err(TensorError::ShapeMismatch {
            op: "matvec",
            lhs: a.dims().to_vec(),
            rhs: x.dims().to_vec(),
        });
    }
    let (ad, xd) = (a.data(), x.data());
    let mut out = vec![0.0f32; m];
    for i in 0..m {
        let row = &ad[i * k..(i + 1) * k];
        out[i] = row.iter().zip(xd).map(|(&a, &b)| a * b).sum();
    }
    Tensor::from_vec(out, &[m])
}


/// Batched matrix product `C[b] = A[b]·B[b]` for `A:[B,m,k]`, `B:[B,k,n]`.
pub fn bmm(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (bs, m, k) = as_batch_dims(a, "bmm lhs")?;
    let (bs2, k2, n) = as_batch_dims(b, "bmm rhs")?;
    if bs != bs2 || k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "bmm",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; bs * m * n];
    let (ad, bd) = (a.data(), b.data());
    for bi in 0..bs {
        let a_base = bi * m * k;
        let b_base = bi * k * n;
        let o_base = bi * m * n;
        for i in 0..m {
            let out_row = &mut out[o_base + i * n..o_base + (i + 1) * n];
            for (kk, &aik) in ad[a_base + i * k..a_base + (i + 1) * k].iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &bd[b_base + kk * n..b_base + (kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aik * bv;
                }
            }
        }
    }
    Tensor::from_vec(out, &[bs, m, n])
}

/// Batched `C[b] = A[b]ᵀ·B[b]` for `A:[B,k,m]`, `B:[B,k,n]`.
pub fn bmm_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (bs, k, m) = as_batch_dims(a, "bmm_transpose_a lhs")?;
    let (bs2, k2, n) = as_batch_dims(b, "bmm_transpose_a rhs")?;
    if bs != bs2 || k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "bmm_transpose_a",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; bs * m * n];
    let (ad, bd) = (a.data(), b.data());
    for bi in 0..bs {
        let a_base = bi * k * m;
        let b_base = bi * k * n;
        let o_base = bi * m * n;
        for kk in 0..k {
            let a_row = &ad[a_base + kk * m..a_base + (kk + 1) * m];
            let b_row = &bd[b_base + kk * n..b_base + (kk + 1) * n];
            for (i, &aki) in a_row.iter().enumerate() {
                if aki == 0.0 {
                    continue;
                }
                let out_row = &mut out[o_base + i * n..o_base + (i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += aki * bv;
                }
            }
        }
    }
    Tensor::from_vec(out, &[bs, m, n])
}

/// Batched `C[b] = A[b]·B[b]ᵀ` for `A:[B,m,k]`, `B:[B,n,k]`.
pub fn bmm_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (bs, m, k) = as_batch_dims(a, "bmm_transpose_b lhs")?;
    let (bs2, n, k2) = as_batch_dims(b, "bmm_transpose_b rhs")?;
    if bs != bs2 || k != k2 {
        return Err(TensorError::ShapeMismatch {
            op: "bmm_transpose_b",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; bs * m * n];
    let (ad, bd) = (a.data(), b.data());
    for bi in 0..bs {
        let a_base = bi * m * k;
        let b_base = bi * n * k;
        let o_base = bi * m * n;
        for i in 0..m {
            let a_row = &ad[a_base + i * k..a_base + (i + 1) * k];
            for j in 0..n {
                let b_row = &bd[b_base + j * k..b_base + (j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                out[o_base + i * n + j] = acc;
            }
        }
    }
    Tensor::from_vec(out, &[bs, m, n])
}

fn as_batch_dims(t: &Tensor, what: &'static str) -> Result<(usize, usize, usize)> {
    if t.rank() != 3 {
        return Err(TensorError::InvalidArgument(format!(
            "{what}: expected rank-3 tensor, got rank {}",
            t.rank()
        )));
    }
    Ok((t.dims()[0], t.dims()[1], t.dims()[2]))
}

fn as_matrix_dims(t: &Tensor, what: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::InvalidArgument(format!(
            "{what}: expected rank-2 tensor, got rank {}",
            t.rank()
        )));
    }
    Ok((t.dims()[0], t.dims()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::transpose2d;
    use crate::{approx_eq, init};

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn matmul_small_known() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::arange(1.0, 1.0, 6).reshape(&[2, 3]).unwrap();
        let b = Tensor::arange(1.0, 1.0, 12).reshape(&[3, 4]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 4]);
        // Row 0: [1,2,3]·cols of b.
        assert_eq!(c.get(&[0, 0]).unwrap(), 1.0 + 2.0 * 5.0 + 3.0 * 9.0);
    }

    #[test]
    fn matmul_identity() {
        let mut r = init::rng(1);
        let a = init::uniform(&[4, 4], -1.0, 1.0, &mut r);
        let i = Tensor::eye(4);
        assert!(approx_eq(&matmul(&a, &i).unwrap(), &a, 1e-6));
        assert!(approx_eq(&matmul(&i, &a).unwrap(), &a, 1e-6));
    }

    #[test]
    fn matmul_shape_errors() {
        assert!(matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2])).is_err());
        assert!(matmul(&Tensor::zeros(&[2]), &Tensor::zeros(&[2, 2])).is_err());
    }

    #[test]
    fn transposed_variants_match_explicit_transpose() {
        let mut r = init::rng(3);
        let a = init::uniform(&[5, 7], -1.0, 1.0, &mut r);
        let b = init::uniform(&[5, 4], -1.0, 1.0, &mut r);
        let expect = matmul(&transpose2d(&a).unwrap(), &b).unwrap();
        assert!(approx_eq(&matmul_transpose_a(&a, &b).unwrap(), &expect, 1e-5));

        let c = init::uniform(&[6, 7], -1.0, 1.0, &mut r);
        let expect = matmul(&a, &transpose2d(&c).unwrap()).unwrap();
        assert!(approx_eq(&matmul_transpose_b(&a, &c).unwrap(), &expect, 1e-5));
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut r = init::rng(5);
        let a = init::uniform(&[4, 6], -1.0, 1.0, &mut r);
        let x = init::uniform(&[6], -1.0, 1.0, &mut r);
        let y = matvec(&a, &x).unwrap();
        let y2 = matmul(&a, &x.reshaped(&[6, 1]).unwrap()).unwrap();
        assert!(approx_eq(&y, &y2.reshape(&[4]).unwrap(), 1e-5));
        assert!(matvec(&a, &Tensor::zeros(&[5])).is_err());
    }

    #[test]
    fn matmul_zero_dims() {
        // Degenerate but legal: inner dimension 0 produces all-zero output.
        let a = Tensor::zeros(&[2, 0]);
        let b = Tensor::zeros(&[0, 3]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 3]);
        assert!(c.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn bmm_matches_per_slice_matmul() {
        let mut r = init::rng(8);
        let a = init::uniform(&[3, 4, 5], -1.0, 1.0, &mut r);
        let b = init::uniform(&[3, 5, 6], -1.0, 1.0, &mut r);
        let c = bmm(&a, &b).unwrap();
        assert_eq!(c.dims(), &[3, 4, 6]);
        for bi in 0..3 {
            let ai = a.index_axis0(bi).unwrap();
            let bi_m = b.index_axis0(bi).unwrap();
            let expect = matmul(&ai, &bi_m).unwrap();
            assert!(approx_eq(&c.index_axis0(bi).unwrap(), &expect, 1e-5));
        }
    }

    #[test]
    fn bmm_transposed_variants() {
        let mut r = init::rng(9);
        let a = init::uniform(&[2, 5, 4], -1.0, 1.0, &mut r);
        let b = init::uniform(&[2, 5, 3], -1.0, 1.0, &mut r);
        let c = bmm_transpose_a(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 4, 3]);
        for bi in 0..2 {
            let expect = matmul_transpose_a(
                &a.index_axis0(bi).unwrap(),
                &b.index_axis0(bi).unwrap(),
            )
            .unwrap();
            assert!(approx_eq(&c.index_axis0(bi).unwrap(), &expect, 1e-5));
        }

        let a = init::uniform(&[2, 4, 5], -1.0, 1.0, &mut r);
        let b = init::uniform(&[2, 3, 5], -1.0, 1.0, &mut r);
        let c = bmm_transpose_b(&a, &b).unwrap();
        assert_eq!(c.dims(), &[2, 4, 3]);
        for bi in 0..2 {
            let expect = matmul_transpose_b(
                &a.index_axis0(bi).unwrap(),
                &b.index_axis0(bi).unwrap(),
            )
            .unwrap();
            assert!(approx_eq(&c.index_axis0(bi).unwrap(), &expect, 1e-5));
        }
    }

    #[test]
    fn bmm_validates() {
        assert!(bmm(&Tensor::zeros(&[2, 3, 4]), &Tensor::zeros(&[3, 4, 5])).is_err());
        assert!(bmm(&Tensor::zeros(&[2, 3, 4]), &Tensor::zeros(&[2, 5, 6])).is_err());
        assert!(bmm(&Tensor::zeros(&[3, 4]), &Tensor::zeros(&[2, 4, 5])).is_err());
    }
}
