//! Axis permutation (generalised transpose). Output is materialised
//! contiguously so downstream kernels never see strided data.

use crate::shape::validate_permutation;
use crate::{Result, Tensor, TensorError};

/// Reorders axes so output axis `k` is input axis `perm[k]`.
pub fn permute(t: &Tensor, perm: &[usize]) -> Result<Tensor> {
    validate_permutation(perm, t.rank())?;
    let out_shape = t.shape().permuted(perm)?;
    let in_strides = t.shape().strides();
    // Stride of output axis k in the *input* buffer.
    let gather_strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
    let out_dims = out_shape.dims().to_vec();
    let n = t.len();
    let mut out = vec![0.0f32; n];
    let src = t.data();
    if n > 0 {
        let mut idx = vec![0usize; out_dims.len()];
        let mut src_off = 0usize;
        for o in out.iter_mut() {
            *o = src[src_off];
            // Odometer increment, maintaining src_off incrementally.
            for k in (0..out_dims.len()).rev() {
                idx[k] += 1;
                src_off += gather_strides[k];
                if idx[k] < out_dims[k] {
                    break;
                }
                src_off -= out_dims[k] * gather_strides[k];
                idx[k] = 0;
            }
        }
    }
    Tensor::from_vec(out, out_shape.dims())
}

/// Swaps two axes (special case of [`permute`]).
pub fn swap_axes(t: &Tensor, a: usize, b: usize) -> Result<Tensor> {
    let r = t.rank();
    if a >= r {
        return Err(TensorError::AxisOutOfRange { axis: a, rank: r });
    }
    if b >= r {
        return Err(TensorError::AxisOutOfRange { axis: b, rank: r });
    }
    let mut perm: Vec<usize> = (0..r).collect();
    perm.swap(a, b);
    permute(t, &perm)
}

/// Matrix transpose, with a blocked kernel for cache friendliness.
pub fn transpose2d(t: &Tensor) -> Result<Tensor> {
    if t.rank() != 2 {
        return Err(TensorError::InvalidArgument(format!(
            "transpose2d on rank-{} tensor",
            t.rank()
        )));
    }
    let (m, n) = (t.dims()[0], t.dims()[1]);
    let src = t.data();
    let mut out = vec![0.0f32; m * n];
    const B: usize = 32;
    for ib in (0..m).step_by(B) {
        for jb in (0..n).step_by(B) {
            for i in ib..(ib + B).min(m) {
                for j in jb..(jb + B).min(n) {
                    out[j * m + i] = src[i * n + j];
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, m])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, init};

    #[test]
    fn transpose2d_known() {
        let t = Tensor::arange(0.0, 1.0, 6).reshape(&[2, 3]).unwrap();
        let tt = transpose2d(&t).unwrap();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.data(), &[0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
    }

    #[test]
    fn transpose2d_involution() {
        let mut r = init::rng(11);
        let t = init::uniform(&[37, 53], -1.0, 1.0, &mut r);
        let back = transpose2d(&transpose2d(&t).unwrap()).unwrap();
        assert!(approx_eq(&t, &back, 0.0));
    }

    #[test]
    fn permute_matches_manual_indexing() {
        let t = Tensor::arange(0.0, 1.0, 24).reshape(&[2, 3, 4]).unwrap();
        let p = permute(&t, &[2, 0, 1]).unwrap();
        assert_eq!(p.dims(), &[4, 2, 3]);
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(
                        p.get(&[k, i, j]).unwrap(),
                        t.get(&[i, j, k]).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn permute_identity_is_noop() {
        let t = Tensor::arange(0.0, 1.0, 12).reshape(&[3, 4]).unwrap();
        let p = permute(&t, &[0, 1]).unwrap();
        assert_eq!(p, t);
    }

    #[test]
    fn permute_agrees_with_transpose2d() {
        let mut r = init::rng(7);
        let t = init::uniform(&[9, 13], -1.0, 1.0, &mut r);
        assert!(approx_eq(
            &permute(&t, &[1, 0]).unwrap(),
            &transpose2d(&t).unwrap(),
            0.0
        ));
    }

    #[test]
    fn swap_axes_checks_range() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(swap_axes(&t, 0, 2).is_err());
        assert_eq!(swap_axes(&t, 0, 1).unwrap().dims(), &[3, 2]);
    }

    #[test]
    fn permute_rejects_bad_permutations() {
        let t = Tensor::zeros(&[2, 3]);
        assert!(permute(&t, &[0]).is_err());
        assert!(permute(&t, &[1, 1]).is_err());
        assert!(transpose2d(&Tensor::zeros(&[2])).is_err());
    }

    #[test]
    fn permute_empty_tensor() {
        let t = Tensor::zeros(&[0, 3]);
        let p = permute(&t, &[1, 0]).unwrap();
        assert_eq!(p.dims(), &[3, 0]);
    }
}
