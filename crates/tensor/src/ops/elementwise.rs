//! Elementwise operations with NumPy-style broadcasting.
//!
//! The same-shape paths run through [`crate::par::par_row_blocks`]; each
//! output element depends on one input slot, so the parallel split is
//! trivially bitwise-deterministic. The broadcast path keeps its serial
//! odometer walk.

use crate::par::par_row_blocks;
use crate::shape::Shape;
use crate::{Result, Tensor, TensorError};

/// Applies `f` to every element, producing a new tensor of the same shape.
pub fn map(t: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    let src = t.data();
    let mut data = vec![0.0f32; src.len()];
    par_row_blocks(&mut data, 1, 1, |first, block| {
        let end = first + block.len();
        for (o, &x) in block.iter_mut().zip(&src[first..end]) {
            *o = f(x);
        }
    });
    Tensor::from_vec(data, t.dims()).expect("same shape")
}

/// Combines two tensors elementwise with broadcasting.
///
/// Shapes are aligned on trailing axes; an axis of extent 1 is repeated.
pub fn zip_with(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Result<Tensor> {
    if a.shape() == b.shape() {
        // Fast path: identical shapes, no index arithmetic.
        let (ad, bd) = (a.data(), b.data());
        let mut data = vec![0.0f32; ad.len()];
        par_row_blocks(&mut data, 1, 1, |first, block| {
            let end = first + block.len();
            for ((o, &x), &y) in block.iter_mut().zip(&ad[first..end]).zip(&bd[first..end]) {
                *o = f(x, y);
            }
        });
        return Tensor::from_vec(data, a.dims());
    }
    let out_shape = a.shape().broadcast(b.shape())?;
    let mut out = Tensor::zeros(out_shape.dims());
    let a_strides = broadcast_strides(a.shape(), &out_shape)?;
    let b_strides = broadcast_strides(b.shape(), &out_shape)?;
    let out_dims = out_shape.dims().to_vec();
    let (a_data, b_data) = (a.data(), b.data());
    let out_data = out.data_mut();
    let mut idx = vec![0usize; out_dims.len()];
    for out_slot in out_data.iter_mut() {
        let mut a_off = 0usize;
        let mut b_off = 0usize;
        for (k, &i) in idx.iter().enumerate() {
            a_off += i * a_strides[k];
            b_off += i * b_strides[k];
        }
        *out_slot = f(a_data[a_off], b_data[b_off]);
        // Odometer increment.
        for k in (0..out_dims.len()).rev() {
            idx[k] += 1;
            if idx[k] < out_dims[k] {
                break;
            }
            idx[k] = 0;
        }
    }
    Ok(out)
}

/// Strides of `src` viewed under the broadcast `target` shape: broadcast
/// axes get stride 0 so the same element is reused.
fn broadcast_strides(src: &Shape, target: &Shape) -> Result<Vec<usize>> {
    let offset = target.rank() - src.rank();
    let src_strides = src.strides();
    let mut out = vec![0usize; target.rank()];
    for k in 0..target.rank() {
        if k < offset {
            out[k] = 0;
        } else {
            let sd = src.dims()[k - offset];
            let td = target.dims()[k];
            if sd == td {
                out[k] = src_strides[k - offset];
            } else if sd == 1 {
                out[k] = 0;
            } else {
                return Err(TensorError::ShapeMismatch {
                    op: "broadcast",
                    lhs: src.dims().to_vec(),
                    rhs: target.dims().to_vec(),
                });
            }
        }
    }
    Ok(out)
}

/// `a + b` with broadcasting.
pub fn add(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_with(a, b, |x, y| x + y)
}

/// `a - b` with broadcasting.
pub fn sub(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_with(a, b, |x, y| x - y)
}

/// Hadamard product with broadcasting.
pub fn mul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_with(a, b, |x, y| x * y)
}

/// Elementwise division with broadcasting.
pub fn div(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    zip_with(a, b, |x, y| x / y)
}

/// `s * t`.
pub fn scale(t: &Tensor, s: f32) -> Tensor {
    map(t, |x| s * x)
}

/// `-t`.
pub fn neg(t: &Tensor) -> Tensor {
    map(t, |x| -x)
}

/// `a + s * b` for same-shaped tensors — the axpy workhorse of the
/// optimisers, done in a single pass.
pub fn add_scaled(a: &Tensor, b: &Tensor, s: f32) -> Result<Tensor> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "add_scaled",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    let (ad, bd) = (a.data(), b.data());
    let mut data = vec![0.0f32; ad.len()];
    par_row_blocks(&mut data, 1, 2, |first, block| {
        let end = first + block.len();
        for ((o, &x), &y) in block.iter_mut().zip(&ad[first..end]).zip(&bd[first..end]) {
            *o = x + s * y;
        }
    });
    Tensor::from_vec(data, a.dims())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, d: &[usize]) -> Tensor {
        Tensor::from_vec(v, d).unwrap()
    }

    #[test]
    fn same_shape_ops() {
        let a = t(vec![1.0, 2.0, 3.0], &[3]);
        let b = t(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(add(&a, &b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(sub(&b, &a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(mul(&a, &b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(div(&b, &a).unwrap().data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn broadcast_row_and_column() {
        // [2,3] + [3] — bias add pattern.
        let m = t(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], &[2, 3]);
        let row = t(vec![10.0, 20.0, 30.0], &[3]);
        let r = add(&m, &row).unwrap();
        assert_eq!(r.data(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);

        // [2,1] * [1,3] — outer-product pattern.
        let c = t(vec![2.0, 3.0], &[2, 1]);
        let d = t(vec![1.0, 10.0, 100.0], &[1, 3]);
        let r = mul(&c, &d).unwrap();
        assert_eq!(r.dims(), &[2, 3]);
        assert_eq!(r.data(), &[2.0, 20.0, 200.0, 3.0, 30.0, 300.0]);
    }

    #[test]
    fn broadcast_with_scalar_tensor() {
        let m = t(vec![1.0, 2.0], &[2]);
        let s = Tensor::scalar(10.0);
        assert_eq!(add(&m, &s).unwrap().data(), &[11.0, 12.0]);
        assert_eq!(add(&s, &m).unwrap().data(), &[11.0, 12.0]);
    }

    #[test]
    fn broadcast_incompatible_errors() {
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![1.0, 2.0, 3.0], &[3]);
        assert!(add(&a, &b).is_err());
    }

    #[test]
    fn map_and_scale_and_neg() {
        let a = t(vec![1.0, -2.0], &[2]);
        assert_eq!(map(&a, f32::abs).data(), &[1.0, 2.0]);
        assert_eq!(scale(&a, 3.0).data(), &[3.0, -6.0]);
        assert_eq!(neg(&a).data(), &[-1.0, 2.0]);
    }

    #[test]
    fn add_scaled_requires_same_shape() {
        let a = t(vec![1.0, 1.0], &[2]);
        let b = t(vec![2.0, 4.0], &[2]);
        assert_eq!(add_scaled(&a, &b, 0.5).unwrap().data(), &[2.0, 3.0]);
        assert!(add_scaled(&a, &Tensor::zeros(&[3]), 1.0).is_err());
    }

    #[test]
    fn broadcast_3d() {
        // [2,2,2] + [2] broadcasts over the last axis.
        let a = Tensor::arange(0.0, 1.0, 8).reshape(&[2, 2, 2]).unwrap();
        let b = t(vec![100.0, 200.0], &[2]);
        let r = add(&a, &b).unwrap();
        assert_eq!(r.get(&[0, 0, 0]).unwrap(), 100.0);
        assert_eq!(r.get(&[1, 1, 1]).unwrap(), 207.0);
    }
}
