//! Numeric kernels over [`crate::Tensor`]: elementwise arithmetic with
//! broadcasting, reductions, axis permutation, concatenation and a blocked
//! matrix multiply.

mod concat;
mod elementwise;
mod matmul;
pub mod microkernel;
mod permute;
mod reduce;

pub use concat::concat;
pub use elementwise::{add, add_scaled, div, map, mul, neg, scale, sub, zip_with};
pub use matmul::{
    bmm, bmm_transpose_a, bmm_transpose_b, epilogue_pass, matmul, matmul_bf16,
    matmul_bf16_weights, matmul_bf16_weights_bias_act, matmul_bias_act, matmul_transpose_a,
    matmul_transpose_b, matvec,
};
pub use microkernel::{
    fuse_enabled, gelu, packing_enabled, set_fuse_enabled, set_pack_min_flops,
    set_packing_enabled, set_tile_grid_parallel, simd_level, tile_grid_parallel, Activation,
    Epilogue, PanelSrc, SimdLevel,
};
pub use permute::{permute, swap_axes, transpose2d};
pub use reduce::{argmax, max_axis, mean_all, mean_axis, sum_all, sum_axis};
