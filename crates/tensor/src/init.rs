//! Seeded random tensor initialisers.
//!
//! All randomness in the workspace flows through an explicit
//! [`rand::rngs::StdRng`] so every experiment is reproducible from a single
//! seed.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates the deterministic RNG used across the workspace.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Tensor with i.i.d. `U(lo, hi)` entries.
pub fn uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    let mut t = Tensor::zeros(dims);
    for x in t.data_mut() {
        *x = rng.gen_range(lo..hi);
    }
    t
}

/// Tensor with i.i.d. `N(mean, std²)` entries (Box–Muller).
pub fn normal(dims: &[usize], mean: f32, std: f32, rng: &mut StdRng) -> Tensor {
    let mut t = Tensor::zeros(dims);
    let data = t.data_mut();
    let mut i = 0;
    while i < data.len() {
        // Box–Muller transform produces two independent normals per draw.
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data[i] = mean + std * r * theta.cos();
        if i + 1 < data.len() {
            data[i + 1] = mean + std * r * theta.sin();
        }
        i += 2;
    }
    t
}

/// Kaiming/He normal initialisation for layers followed by ReLU:
/// `N(0, 2 / fan_in)`.
pub fn he_normal(dims: &[usize], fan_in: usize, rng: &mut StdRng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    normal(dims, 0.0, std, rng)
}

/// Xavier/Glorot uniform initialisation:
/// `U(-√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(
    dims: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut StdRng,
) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(dims, -limit, limit, rng)
}

/// The standard LoRA initialisation for the down-projection `A`:
/// Kaiming-uniform with `a = √5`, matching the reference implementation.
pub fn lora_a_init(dims: &[usize], fan_in: usize, rng: &mut StdRng) -> Tensor {
    // kaiming_uniform(a=sqrt(5)) reduces to U(-1/sqrt(fan_in), 1/sqrt(fan_in)).
    let limit = 1.0 / (fan_in.max(1) as f32).sqrt();
    uniform(dims, -limit, limit, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = uniform(&[100], -1.0, 1.0, &mut rng(7));
        let b = uniform(&[100], -1.0, 1.0, &mut rng(7));
        assert_eq!(a, b);
        let c = uniform(&[100], -1.0, 1.0, &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_bounds() {
        let t = uniform(&[1000], -0.5, 0.25, &mut rng(1));
        assert!(t.data().iter().all(|&x| (-0.5..0.25).contains(&x)));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let n = 20_000;
        let t = normal(&[n], 1.0, 2.0, &mut rng(42));
        let mean = t.data().iter().sum::<f32>() / n as f32;
        let var =
            t.data().iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.15, "var = {var}");
    }

    #[test]
    fn normal_odd_length() {
        let t = normal(&[7], 0.0, 1.0, &mut rng(3));
        assert_eq!(t.len(), 7);
        assert!(!t.has_non_finite());
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let n = 20_000;
        let t = he_normal(&[n], 50, &mut rng(9));
        let var = t.data().iter().map(|&x| x * x).sum::<f32>() / n as f32;
        assert!((var - 2.0 / 50.0).abs() < 0.01, "var = {var}");
    }

    #[test]
    fn xavier_uniform_bounds() {
        let t = xavier_uniform(&[1000], 30, 70, &mut rng(5));
        let limit = (6.0f32 / 100.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= limit));
    }

    #[test]
    fn lora_a_init_bounds() {
        let t = lora_a_init(&[64, 4], 64, &mut rng(2));
        let limit = 1.0 / 8.0;
        assert!(t.data().iter().all(|&x| x.abs() <= limit));
    }
}
