//! Convolution kernels.
//!
//! Two implementations, deliberately:
//!
//! * [`conv2d`] — the production path: im2col lowering followed by one
//!   matrix multiply (plus [`im2col`]/[`col2im`] exposed for the autograd
//!   backward pass). The multiply is an ordinary [`crate::ops::matmul`]
//!   call, so it inherits the packed microkernel's tile-grid scheduler —
//!   conv threading scales with the GEMM, not with anything here;
//! * the *dummy tensor* path of Eq. 2 / Fig. 2 of the paper —
//!   [`dummy_tensor`] materialises the binary tensor
//!   `𝒫 ∈ {0,1}^{α×α'×β}` with `𝒫[j,j',k] = 1 ⇔ j = s·j' + k − p`, and
//!   [`conv1d_via_dummy`]/[`conv2d_via_dummy`] evaluate convolution as a
//!   pure tensor-network contraction. The two paths agreeing numerically
//!   *is* the Fig. 2 reproduction (bench `dummy_conv`, binary
//!   `fig2_dummy_conv`).
//!
//! Convolution weights follow the paper's layout `𝒲 ∈ ℝ^{K_h×K_w×I×O}`
//! (spatial, in-channels, out-channels); activations are `[N, C, H, W]`.

use crate::contract::contract;
use crate::par::par_row_blocks;
use crate::{workspace, Result, Tensor, TensorError};

/// Spatial geometry of a convolution along one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Kernel extent.
    pub kernel: usize,
    /// Stride `s ≥ 1`.
    pub stride: usize,
    /// Symmetric zero padding `p`.
    pub pad: usize,
}

impl ConvSpec {
    /// Creates a spec, validating `kernel, stride ≥ 1`.
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Result<Self> {
        if kernel == 0 || stride == 0 {
            return Err(TensorError::InvalidArgument(format!(
                "conv spec kernel={kernel} stride={stride} must be >= 1"
            )));
        }
        Ok(ConvSpec {
            kernel,
            stride,
            pad,
        })
    }

    /// Output extent for an input of size `n`:
    /// `⌊(n + 2p − k)/s⌋ + 1`.
    pub fn out_size(&self, n: usize) -> Result<usize> {
        let padded = n + 2 * self.pad;
        if padded < self.kernel {
            return Err(TensorError::InvalidArgument(format!(
                "input {n} (+2×{} pad) smaller than kernel {}",
                self.pad, self.kernel
            )));
        }
        Ok((padded - self.kernel) / self.stride + 1)
    }
}

/// Builds the binary dummy tensor `𝒫 ∈ {0,1}^{α×α'×β}` of Eq. 2:
/// `𝒫[j, j', k] = 1` iff `j = s·j' + k − p`.
pub fn dummy_tensor(alpha: usize, spec: ConvSpec) -> Result<Tensor> {
    let alpha_p = spec.out_size(alpha)?;
    let beta = spec.kernel;
    let mut p = Tensor::zeros(&[alpha, alpha_p, beta]);
    for jp in 0..alpha_p {
        for k in 0..beta {
            let j = (spec.stride * jp + k) as isize - spec.pad as isize;
            if j >= 0 && (j as usize) < alpha {
                p.set(&[j as usize, jp, k], 1.0)?;
            }
        }
    }
    Ok(p)
}

/// Direct 1-D convolution (cross-correlation, as in Eq. 2):
/// `y[j'] = Σ_k a[s·j' + k − p]·b[k]` with zero padding.
pub fn conv1d_direct(a: &Tensor, b: &Tensor, spec: ConvSpec) -> Result<Tensor> {
    if a.rank() != 1 || b.rank() != 1 {
        return Err(TensorError::InvalidArgument(
            "conv1d_direct expects two vectors".into(),
        ));
    }
    if b.len() != spec.kernel {
        return Err(TensorError::InvalidArgument(format!(
            "kernel vector length {} != spec kernel {}",
            b.len(),
            spec.kernel
        )));
    }
    let alpha = a.len();
    let out_len = spec.out_size(alpha)?;
    let mut y = Tensor::zeros(&[out_len]);
    for jp in 0..out_len {
        let mut acc = 0.0f32;
        for k in 0..spec.kernel {
            let j = (spec.stride * jp + k) as isize - spec.pad as isize;
            if j >= 0 && (j as usize) < alpha {
                acc += a.data()[j as usize] * b.data()[k];
            }
        }
        y.data_mut()[jp] = acc;
    }
    Ok(y)
}

/// 1-D convolution evaluated as the tensor-network contraction of Eq. 2:
/// `y = (𝒫 ×ⱼ a) ×ₖ b`.
pub fn conv1d_via_dummy(a: &Tensor, b: &Tensor, spec: ConvSpec) -> Result<Tensor> {
    if a.rank() != 1 || b.rank() != 1 {
        return Err(TensorError::InvalidArgument(
            "conv1d_via_dummy expects two vectors".into(),
        ));
    }
    if b.len() != spec.kernel {
        return Err(TensorError::InvalidArgument(format!(
            "kernel vector length {} != spec kernel {}",
            b.len(),
            spec.kernel
        )));
    }
    let p = dummy_tensor(a.len(), spec)?; // [α, α', β]
    let pa = contract(&p, a, &[0], &[0])?; // [α', β]
    contract(&pa, b, &[1], &[0]) // [α']
}

/// Zero-pads the two spatial axes of an `[N, C, H, W]` tensor.
pub fn pad_hw(x: &Tensor, ph: usize, pw: usize) -> Result<Tensor> {
    if x.rank() != 4 {
        return Err(TensorError::InvalidArgument(
            "pad_hw expects [N, C, H, W]".into(),
        ));
    }
    if ph == 0 && pw == 0 {
        return Ok(x.clone());
    }
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (hp, wp) = (h + 2 * ph, w + 2 * pw);
    let mut out = Tensor::zeros(&[n, c, hp, wp]);
    pad_hw_into(x, ph, pw, out.data_mut());
    Ok(out)
}

/// Copies `x:[N,C,H,W]` into the interior of the pre-zeroed padded buffer
/// `dst:[N,C,H+2ph,W+2pw]`.
fn pad_hw_into(x: &Tensor, ph: usize, pw: usize, dst: &mut [f32]) {
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let (hp, wp) = (h + 2 * ph, w + 2 * pw);
    let src = x.data();
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..h {
                let s = ((ni * c + ci) * h + hi) * w;
                let d = ((ni * c + ci) * hp + hi + ph) * wp + pw;
                dst[d..d + w].copy_from_slice(&src[s..s + w]);
            }
        }
    }
}

/// im2col: lowers `[N, C, H, W]` to patch matrix
/// `[N·OH·OW, C·KH·KW]` (column layout: channel-major, then `kh`, `kw`).
pub fn im2col(x: &Tensor, h_spec: ConvSpec, w_spec: ConvSpec) -> Result<Tensor> {
    if x.rank() != 4 {
        return Err(TensorError::InvalidArgument(
            "im2col expects [N, C, H, W]".into(),
        ));
    }
    let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
    let oh = h_spec.out_size(h)?;
    let ow = w_spec.out_size(w)?;
    let (kh, kw) = (h_spec.kernel, w_spec.kernel);
    let (hp, wp) = (h + 2 * h_spec.pad, w + 2 * w_spec.pad);
    // With no padding the input image already has the gather layout; only
    // a real pad needs the enlarged copy, and that scratch comes from (and
    // returns to) the workspace arena.
    let padded: Option<workspace::WorkspaceGuard> =
        if h_spec.pad == 0 && w_spec.pad == 0 {
            None
        } else {
            let mut g = workspace::take_zeroed(n * c * hp * wp);
            pad_hw_into(x, h_spec.pad, w_spec.pad, &mut g);
            Some(g)
        };
    let src: &[f32] = match &padded {
        Some(g) => g,
        None => x.data(),
    };
    let cols_w = c * kh * kw;
    let mut cols = workspace::zeroed_tensor(&[n * oh * ow, cols_w]);
    // One patch row per (ni, ohi, owi); rows are pure gathers from the
    // shared padded image, so the split is trivially deterministic.
    par_row_blocks(cols.data_mut(), cols_w.max(1), cols_w, |first, block| {
        for (r, row) in block.chunks_mut(cols_w.max(1)).enumerate() {
            let ri = first + r;
            let (ni, rem) = (ri / (oh * ow), ri % (oh * ow));
            let (ohi, owi) = (rem / ow, rem % ow);
            let h0 = ohi * h_spec.stride;
            let w0 = owi * w_spec.stride;
            for ci in 0..c {
                for khi in 0..kh {
                    let s = ((ni * c + ci) * hp + h0 + khi) * wp + w0;
                    let d = (ci * kh + khi) * kw;
                    row[d..d + kw].copy_from_slice(&src[s..s + kw]);
                }
            }
        }
    });
    Ok(cols)
}

/// col2im: scatters the patch matrix back onto a zero image, summing
/// overlaps — the adjoint of [`im2col`], used by the conv backward pass.
pub fn col2im(
    cols: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    h_spec: ConvSpec,
    w_spec: ConvSpec,
) -> Result<Tensor> {
    let oh = h_spec.out_size(h)?;
    let ow = w_spec.out_size(w)?;
    let (kh, kw) = (h_spec.kernel, w_spec.kernel);
    let cols_w = c * kh * kw;
    if cols.dims() != [n * oh * ow, cols_w] {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: cols.dims().to_vec(),
            rhs: vec![n * oh * ow, cols_w],
        });
    }
    let (hp, wp) = (h + 2 * h_spec.pad, w + 2 * w_spec.pad);
    let src = cols.data();
    // Overlapping patches only ever collide *within* one batch image, so the
    // scatter parallelises over `ni` with the per-element accumulation order
    // (ohi, owi, ci, khi, kwi) unchanged from the serial loop.
    let img = c * hp * wp;
    let scatter = |first: usize, block: &mut [f32]| {
        for (r, image) in block.chunks_mut(img.max(1)).enumerate() {
            let ni = first + r;
            for ohi in 0..oh {
                let h0 = ohi * h_spec.stride;
                for owi in 0..ow {
                    let w0 = owi * w_spec.stride;
                    let row = ((ni * oh + ohi) * ow + owi) * cols_w;
                    for ci in 0..c {
                        for khi in 0..kh {
                            let d = (ci * hp + h0 + khi) * wp + w0;
                            let s = row + (ci * kh + khi) * kw;
                            for kwi in 0..kw {
                                image[d + kwi] += src[s + kwi];
                            }
                        }
                    }
                }
            }
        }
    };
    // No padding → the padded image *is* the output: scatter straight into
    // the output tensor and skip the crop copy.
    if h_spec.pad == 0 && w_spec.pad == 0 {
        let mut out = workspace::zeroed_tensor(&[n, c, h, w]);
        par_row_blocks(out.data_mut(), img.max(1), oh * ow * cols_w, scatter);
        return Ok(out);
    }
    let mut padded = workspace::take_zeroed(n * c * hp * wp);
    par_row_blocks(&mut padded, img.max(1), oh * ow * cols_w, scatter);
    // Crop the padding back off.
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let dst = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..h {
                let s = ((ni * c + ci) * hp + hi + h_spec.pad) * wp + w_spec.pad;
                let d = ((ni * c + ci) * h + hi) * w;
                dst[d..d + w].copy_from_slice(&padded[s..s + w]);
            }
        }
    }
    Ok(out)
}

/// Reshapes a paper-layout weight `𝒲:[KH, KW, I, O]` into the
/// `[C·KH·KW, O]` matrix matching the [`im2col`] column layout.
pub fn weight_to_matrix(w: &Tensor) -> Result<Tensor> {
    if w.rank() != 4 {
        return Err(TensorError::InvalidArgument(
            "weight_to_matrix expects [KH, KW, I, O]".into(),
        ));
    }
    let (kh, kw, i, o) = (w.dims()[0], w.dims()[1], w.dims()[2], w.dims()[3]);
    // [KH,KW,I,O] → [I,KH,KW,O] then flatten the first three axes.
    let p = crate::ops::permute(w, &[2, 0, 1, 3])?;
    p.reshape(&[i * kh * kw, o])
}

/// 2-D convolution (cross-correlation) of `x:[N, C, H, W]` with the
/// paper-layout weight `𝒲:[KH, KW, C, O]`. Output `[N, O, OH, OW]`.
pub fn conv2d(x: &Tensor, w: &Tensor, h_spec: ConvSpec, w_spec: ConvSpec) -> Result<Tensor> {
    if x.rank() != 4 || w.rank() != 4 {
        return Err(TensorError::InvalidArgument(
            "conv2d expects x:[N,C,H,W], w:[KH,KW,C,O]".into(),
        ));
    }
    if w.dims()[0] != h_spec.kernel || w.dims()[1] != w_spec.kernel {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d kernel",
            lhs: w.dims().to_vec(),
            rhs: vec![h_spec.kernel, w_spec.kernel],
        });
    }
    if x.dims()[1] != w.dims()[2] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d channels",
            lhs: x.dims().to_vec(),
            rhs: w.dims().to_vec(),
        });
    }
    let (n, h, ww) = (x.dims()[0], x.dims()[2], x.dims()[3]);
    let o = w.dims()[3];
    let oh = h_spec.out_size(h)?;
    let ow = w_spec.out_size(ww)?;
    let cols = im2col(x, h_spec, w_spec)?; // [N·OH·OW, C·KH·KW]
    let wm = weight_to_matrix(w)?; // [C·KH·KW, O]
    let out = crate::ops::matmul(&cols, &wm)?; // [N·OH·OW, O]
    // The patch matrix came from the arena; hand it straight back so the
    // next im2col (typically the same shape, next batch) reuses it.
    workspace::recycle(cols);
    // Counted at this entry point *and* inside the matmul above — see the
    // layering note in `metalora_obs::counters`.
    metalora_obs::counters::record_kernel(
        metalora_obs::counters::Kernel::Conv,
        (2 * n * oh * ow * w.len()) as u64,
        (4 * (x.len() + w.len() + out.len())) as u64,
    );
    // [N,OH,OW,O] → [N,O,OH,OW].
    let out = out.reshape(&[n, oh, ow, o])?;
    crate::ops::permute(&out, &[0, 3, 1, 2])
}

/// [`conv2d`] with a fused epilogue: per-output-channel `bias` (length `O`)
/// and/or `act` applied inside the production GEMM's C-tile store. The conv
/// bias broadcast (`[O,1,1]` over `[N,O,OH,OW]`) is exactly a per-column
/// bias on the pre-permute `[N·OH·OW, O]` GEMM output (column = output
/// channel), and the trailing permute is a pure element copy, so applying
/// the epilogue before the permute is bitwise-identical to the legacy
/// separate passes after it. With fusion disabled
/// ([`crate::ops::fuse_enabled`]) this runs the legacy sequence verbatim:
/// plain [`conv2d`] layout, then broadcast add, then activation map.
pub fn conv2d_bias_act(
    x: &Tensor,
    w: &Tensor,
    bias: Option<&Tensor>,
    act: Option<crate::ops::Activation>,
    h_spec: ConvSpec,
    w_spec: ConvSpec,
) -> Result<Tensor> {
    if x.rank() != 4 || w.rank() != 4 {
        return Err(TensorError::InvalidArgument(
            "conv2d_bias_act expects x:[N,C,H,W], w:[KH,KW,C,O]".into(),
        ));
    }
    if w.dims()[0] != h_spec.kernel || w.dims()[1] != w_spec.kernel {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_bias_act kernel",
            lhs: w.dims().to_vec(),
            rhs: vec![h_spec.kernel, w_spec.kernel],
        });
    }
    if x.dims()[1] != w.dims()[2] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_bias_act channels",
            lhs: x.dims().to_vec(),
            rhs: w.dims().to_vec(),
        });
    }
    let o = w.dims()[3];
    if let Some(b) = bias {
        if b.len() != o {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d_bias_act bias",
                lhs: b.dims().to_vec(),
                rhs: vec![o],
            });
        }
    }
    let fused = crate::ops::fuse_enabled() && (bias.is_some() || act.is_some());
    if !fused {
        // Legacy sequence: layout pass first, then one full output pass per
        // epilogue stage ([O,1,1] broadcast add, then activation map).
        let y = conv2d(x, w, h_spec, w_spec)?;
        let b = match bias {
            Some(b) => Some(b.reshaped(&[o, 1, 1])?),
            None => None,
        };
        return crate::ops::epilogue_pass(y, b.as_ref(), act);
    }
    let (n, h, ww) = (x.dims()[0], x.dims()[2], x.dims()[3]);
    let oh = h_spec.out_size(h)?;
    let ow = w_spec.out_size(ww)?;
    let cols = im2col(x, h_spec, w_spec)?; // [N·OH·OW, C·KH·KW]
    let wm = weight_to_matrix(w)?; // [C·KH·KW, O]
    // Bias and activation land at the GEMM store, per column = per output
    // channel; the permute below only moves finished elements.
    let out = crate::ops::matmul_bias_act(&cols, &wm, bias, act)?; // [N·OH·OW, O]
    workspace::recycle(cols);
    metalora_obs::counters::record_kernel(
        metalora_obs::counters::Kernel::Conv,
        (2 * n * oh * ow * w.len()) as u64,
        (4 * (x.len() + w.len() + out.len())) as u64,
    );
    // [N,OH,OW,O] → [N,O,OH,OW].
    let out = out.reshape(&[n, oh, ow, o])?;
    crate::ops::permute(&out, &[0, 3, 1, 2])
}

/// 2-D convolution evaluated as a pure tensor-network contraction with two
/// dummy tensors (the Fig. 2 construction):
///
/// `Y[n,o,h',w'] = Σ_{h,w,kh,kw,c} 𝒫_h[h,h',kh]·𝒫_w[w,w',kw]·X[n,c,h,w]·𝒲[kh,kw,c,o]`.
///
/// Exponentially clearer, polynomially slower — used as the oracle for
/// [`conv2d`] and by the Fig. 2 bench.
pub fn conv2d_via_dummy(
    x: &Tensor,
    w: &Tensor,
    h_spec: ConvSpec,
    w_spec: ConvSpec,
) -> Result<Tensor> {
    if x.rank() != 4 || w.rank() != 4 {
        return Err(TensorError::InvalidArgument(
            "conv2d_via_dummy expects x:[N,C,H,W], w:[KH,KW,C,O]".into(),
        ));
    }
    let (h, ww) = (x.dims()[2], x.dims()[3]);
    let ph = dummy_tensor(h, h_spec)?; // [H, OH, KH]
    let pw = dummy_tensor(ww, w_spec)?; // [W, OW, KW]

    // X ×_h 𝒫_h: [N,C,H,W] × [H,OH,KH] over h → [N,C,W,OH,KH].
    let t = contract(x, &ph, &[2], &[0])?;
    // × 𝒫_w over w → [N,C,OH,KH,OW,KW].
    let t = contract(&t, &pw, &[2], &[0])?;
    // × 𝒲 over (kh, kw, c) → [N,OH,OW,O].
    // t axes: [n, c, oh, kh, ow, kw]; w axes: [kh, kw, c, o].
    let y = contract(&t, w, &[3, 5, 1], &[0, 1, 2])?;
    // [N, OH, OW, O] → [N, O, OH, OW].
    crate::ops::permute(&y, &[0, 3, 1, 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, init};

    fn spec(k: usize, s: usize, p: usize) -> ConvSpec {
        ConvSpec::new(k, s, p).unwrap()
    }

    #[test]
    fn out_size_formula() {
        assert_eq!(spec(3, 1, 1).out_size(8).unwrap(), 8);
        assert_eq!(spec(3, 2, 1).out_size(8).unwrap(), 4);
        assert_eq!(spec(1, 1, 0).out_size(5).unwrap(), 5);
        assert_eq!(spec(5, 1, 0).out_size(5).unwrap(), 1);
        assert!(spec(7, 1, 0).out_size(5).is_err());
        assert!(ConvSpec::new(0, 1, 0).is_err());
        assert!(ConvSpec::new(3, 0, 0).is_err());
    }

    #[test]
    fn dummy_tensor_is_binary_and_correct() {
        let s = spec(3, 1, 1);
        let p = dummy_tensor(5, s).unwrap();
        assert_eq!(p.dims(), &[5, 5, 3]);
        for (idx, v) in p.indexed_iter() {
            let (j, jp, k) = (idx[0] as isize, idx[1] as isize, idx[2] as isize);
            let expect = if j == jp + k - 1 { 1.0 } else { 0.0 };
            assert_eq!(v, expect, "P[{j},{jp},{k}]");
        }
    }

    #[test]
    fn conv1d_dummy_matches_direct() {
        let mut r = init::rng(1);
        for (len, k, st, pad) in [(8, 3, 1, 1), (9, 3, 2, 0), (6, 1, 1, 0), (5, 5, 1, 2)] {
            let s = spec(k, st, pad);
            let a = init::uniform(&[len], -1.0, 1.0, &mut r);
            let b = init::uniform(&[k], -1.0, 1.0, &mut r);
            let direct = conv1d_direct(&a, &b, s).unwrap();
            let tn = conv1d_via_dummy(&a, &b, s).unwrap();
            assert!(
                approx_eq(&direct, &tn, 1e-4),
                "mismatch for len={len} k={k} s={st} p={pad}"
            );
        }
    }

    #[test]
    fn conv1d_known_values() {
        // [1,2,3] * [1,1] stride 1 pad 0 → [3, 5].
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let y = conv1d_direct(&a, &b, spec(2, 1, 0)).unwrap();
        assert_eq!(y.data(), &[3.0, 5.0]);
    }

    #[test]
    fn pad_hw_places_values() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let p = pad_hw(&x, 1, 1).unwrap();
        assert_eq!(p.dims(), &[1, 1, 4, 4]);
        assert_eq!(p.get(&[0, 0, 0, 0]).unwrap(), 0.0);
        assert_eq!(p.get(&[0, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(p.get(&[0, 0, 2, 2]).unwrap(), 1.0);
        assert_eq!(p.get(&[0, 0, 3, 3]).unwrap(), 0.0);
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 kernel with identity channel map leaves input unchanged.
        let mut r = init::rng(2);
        let x = init::uniform(&[2, 3, 4, 4], -1.0, 1.0, &mut r);
        let mut w = Tensor::zeros(&[1, 1, 3, 3]);
        for c in 0..3 {
            w.set(&[0, 0, c, c], 1.0).unwrap();
        }
        let y = conv2d(&x, &w, spec(1, 1, 0), spec(1, 1, 0)).unwrap();
        assert!(approx_eq(&y, &x, 1e-5));
    }

    #[test]
    fn conv2d_matches_dummy_tensor_network() {
        let mut r = init::rng(3);
        for (hw, k, st, pad) in [(6, 3, 1, 1), (8, 3, 2, 1), (5, 1, 1, 0)] {
            let x = init::uniform(&[2, 3, hw, hw], -1.0, 1.0, &mut r);
            let w = init::uniform(&[k, k, 3, 4], -1.0, 1.0, &mut r);
            let fast = conv2d(&x, &w, spec(k, st, pad), spec(k, st, pad)).unwrap();
            let tn = conv2d_via_dummy(&x, &w, spec(k, st, pad), spec(k, st, pad)).unwrap();
            assert!(
                approx_eq(&fast, &tn, 1e-3),
                "hw={hw} k={k} s={st} p={pad}, err={}",
                crate::max_rel_err(&fast, &tn)
            );
        }
    }

    #[test]
    fn conv2d_known_sum_kernel() {
        // All-ones 2x2 kernel on a single channel computes patch sums.
        let x = Tensor::arange(1.0, 1.0, 9).reshape(&[1, 1, 3, 3]).unwrap();
        let w = Tensor::ones(&[2, 2, 1, 1]);
        let y = conv2d(&x, &w, spec(2, 1, 0), spec(2, 1, 0)).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        // Patches: (1+2+4+5)=12, (2+3+5+6)=16, (4+5+7+8)=24, (5+6+8+9)=28.
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv2d_validates_shapes() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = Tensor::zeros(&[3, 3, 2, 4]); // wrong in-channels
        assert!(conv2d(&x, &w, spec(3, 1, 1), spec(3, 1, 1)).is_err());
        let w2 = Tensor::zeros(&[2, 3, 3, 4]); // kernel mismatch with spec
        assert!(conv2d(&x, &w2, spec(3, 1, 1), spec(3, 1, 1)).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint identity,
        // checked with random tensors.
        let mut r = init::rng(4);
        let (n, c, h, w) = (2, 2, 5, 5);
        let hs = spec(3, 2, 1);
        let ws = spec(3, 2, 1);
        let x = init::uniform(&[n, c, h, w], -1.0, 1.0, &mut r);
        let cols = im2col(&x, hs, ws).unwrap();
        let y = init::uniform(cols.dims(), -1.0, 1.0, &mut r);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let back = col2im(&y, n, c, h, w, hs, ws).unwrap();
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn conv2d_bias_act_matches_separate_passes_bitwise() {
        let mut r = init::rng(11);
        for (hw, k, st, pad) in [(6, 3, 1, 1), (8, 3, 2, 1), (5, 1, 1, 0)] {
            let x = init::uniform(&[2, 3, hw, hw], -1.0, 1.0, &mut r);
            let w = init::uniform(&[k, k, 3, 4], -1.0, 1.0, &mut r);
            let bias = init::uniform(&[4], -1.0, 1.0, &mut r);
            for act in [None, Some(crate::ops::Activation::Relu), Some(crate::ops::Activation::Gelu)] {
                let fused =
                    conv2d_bias_act(&x, &w, Some(&bias), act, spec(k, st, pad), spec(k, st, pad))
                        .unwrap();
                // Legacy sequence: conv, [O,1,1] broadcast add, then map.
                let y = conv2d(&x, &w, spec(k, st, pad), spec(k, st, pad)).unwrap();
                let b = bias.clone().reshape(&[4, 1, 1]).unwrap();
                let mut sep = crate::ops::add(&y, &b).unwrap();
                if let Some(a) = act {
                    sep = crate::ops::map(&sep, move |v| a.apply(v));
                }
                assert_eq!(fused.shape(), sep.shape());
                for (i, (f, s)) in fused.data().iter().zip(sep.data()).enumerate() {
                    assert_eq!(f.to_bits(), s.to_bits(), "elem {i} hw={hw} k={k}");
                }
            }
        }
    }

    #[test]
    fn conv2d_bias_act_validates_bias_width() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = Tensor::zeros(&[3, 3, 3, 4]);
        let bad = Tensor::zeros(&[5]); // o = 4
        assert!(
            conv2d_bias_act(&x, &w, Some(&bad), None, spec(3, 1, 1), spec(3, 1, 1)).is_err()
        );
        // A no-op epilogue still works and matches plain conv2d.
        let y = conv2d_bias_act(&x, &w, None, None, spec(3, 1, 1), spec(3, 1, 1)).unwrap();
        assert_eq!(y.dims(), &[1, 4, 4, 4]);
    }

    #[test]
    fn weight_to_matrix_layout() {
        // Single entry round-trips to the expected flat slot.
        let mut w = Tensor::zeros(&[2, 2, 3, 4]); // KH,KW,I,O
        w.set(&[1, 0, 2, 3], 7.0).unwrap();
        let m = weight_to_matrix(&w).unwrap();
        assert_eq!(m.dims(), &[3 * 2 * 2, 4]);
        // Column layout: (c=2, kh=1, kw=0) → 2*4 + 1*2 + 0 = 10.
        assert_eq!(m.get(&[10, 3]).unwrap(), 7.0);
    }
}
