//! Error type shared by every fallible tensor operation.

use std::fmt;

/// Errors produced by tensor construction, shape algebra and numeric
/// routines.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The number of data elements does not match the product of the shape.
    DataShapeMismatch {
        /// Number of elements supplied.
        data_len: usize,
        /// Shape the caller asked for.
        shape: Vec<usize>,
    },
    /// Two shapes that must agree (elementwise op, contraction axis, …)
    /// do not.
    ShapeMismatch {
        /// Human-readable operation name, e.g. `"matmul"`.
        op: &'static str,
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// An axis index is out of range for the tensor's rank.
    AxisOutOfRange {
        /// Offending axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// An index is out of range along some axis.
    IndexOutOfRange {
        /// Offending flat or per-axis index.
        index: usize,
        /// Length of that axis (or total length).
        len: usize,
    },
    /// Reshape target has a different element count.
    ReshapeMismatch {
        /// Source element count.
        from: usize,
        /// Target shape.
        to: Vec<usize>,
    },
    /// Invalid argument that is not a shape problem (rank 0 where ≥1 needed,
    /// zero-sized kernel, bad permutation, unparsable einsum spec, …).
    InvalidArgument(String),
    /// An iterative numeric routine (SVD, ALS) failed to converge or met a
    /// singular system.
    Numerical(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::DataShapeMismatch { data_len, shape } => write!(
                f,
                "data length {data_len} does not match shape {shape:?} (= {} elements)",
                shape.iter().product::<usize>()
            ),
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: incompatible shapes {lhs:?} and {rhs:?}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
            TensorError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            TensorError::ReshapeMismatch { from, to } => write!(
                f,
                "cannot reshape {from} elements into {to:?} (= {} elements)",
                to.iter().product::<usize>()
            ),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            TensorError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TensorError::DataShapeMismatch {
            data_len: 5,
            shape: vec![2, 3],
        };
        let s = e.to_string();
        assert!(s.contains('5') && s.contains("[2, 3]") && s.contains('6'), "{s}");

        let e = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 5],
        };
        assert!(e.to_string().contains("matmul"));

        let e = TensorError::ReshapeMismatch {
            from: 6,
            to: vec![4],
        };
        assert!(e.to_string().contains('6') && e.to_string().contains("[4]"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&TensorError::InvalidArgument("x".into()));
    }
}
