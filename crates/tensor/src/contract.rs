//! General pairwise tensor contraction — Eq. 1 of the paper and the
//! operation every tensor-network format in this crate is built from.
//!
//! `contract(A, B, axes_a, axes_b)` sums over the paired axes
//! `(axes_a[k], axes_b[k])`, producing a tensor whose axes are the free
//! axes of `A` (in order) followed by the free axes of `B` (in order) —
//! exactly the `𝒜 ×ᵐₙ ℬ` notation of Section II-B.
//!
//! The fast path permutes both operands so contracted axes are adjacent and
//! lowers the contraction to a single matrix multiply; [`contract_naive`]
//! is the direct nested-loop evaluation kept as the oracle for tests and
//! for the Fig. 1 verification bench.

use crate::ops::{matmul, permute};
use crate::shape::IndexIter;
use crate::{Result, Shape, Tensor, TensorError};

/// Validates contraction axes and returns the free axes of each operand.
fn split_axes(
    a: &Tensor,
    b: &Tensor,
    axes_a: &[usize],
    axes_b: &[usize],
) -> Result<(Vec<usize>, Vec<usize>)> {
    if axes_a.len() != axes_b.len() {
        return Err(TensorError::InvalidArgument(format!(
            "contract: {} axes for lhs but {} for rhs",
            axes_a.len(),
            axes_b.len()
        )));
    }
    let mut used_a = vec![false; a.rank()];
    let mut used_b = vec![false; b.rank()];
    for (&ax, &bx) in axes_a.iter().zip(axes_b) {
        if ax >= a.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis: ax,
                rank: a.rank(),
            });
        }
        if bx >= b.rank() {
            return Err(TensorError::AxisOutOfRange {
                axis: bx,
                rank: b.rank(),
            });
        }
        if used_a[ax] || used_b[bx] {
            return Err(TensorError::InvalidArgument(format!(
                "contract: repeated axis in {axes_a:?} / {axes_b:?}"
            )));
        }
        used_a[ax] = true;
        used_b[bx] = true;
        if a.dims()[ax] != b.dims()[bx] {
            return Err(TensorError::ShapeMismatch {
                op: "contract",
                lhs: a.dims().to_vec(),
                rhs: b.dims().to_vec(),
            });
        }
    }
    let free_a = (0..a.rank()).filter(|&k| !used_a[k]).collect();
    let free_b = (0..b.rank()).filter(|&k| !used_b[k]).collect();
    Ok((free_a, free_b))
}

/// Contracts `a` and `b` over the paired axes `(axes_a[k], axes_b[k])`.
///
/// Output shape: free dims of `a` followed by free dims of `b`.
pub fn contract(
    a: &Tensor,
    b: &Tensor,
    axes_a: &[usize],
    axes_b: &[usize],
) -> Result<Tensor> {
    let (free_a, free_b) = split_axes(a, b, axes_a, axes_b)?;

    // Move free axes first (lhs) / last (rhs), contracted axes adjacent.
    let mut perm_a = free_a.clone();
    perm_a.extend_from_slice(axes_a);
    let mut perm_b = axes_b.to_vec();
    perm_b.extend_from_slice(&free_b);

    let a_p = permute(a, &perm_a)?;
    let b_p = permute(b, &perm_b)?;

    let m: usize = free_a.iter().map(|&k| a.dims()[k]).product();
    let s: usize = axes_a.iter().map(|&k| a.dims()[k]).product();
    let n: usize = free_b.iter().map(|&k| b.dims()[k]).product();

    let a_mat = a_p.reshape(&[m, s])?;
    let b_mat = b_p.reshape(&[s, n])?;
    let out = matmul(&a_mat, &b_mat)?;
    // Counted at this entry point *and* inside the matmul it lowers to —
    // see the layering note in `metalora_obs::counters`.
    metalora_obs::counters::record_kernel(
        metalora_obs::counters::Kernel::Contract,
        (2 * m * s * n) as u64,
        (4 * (a.len() + b.len() + m * n)) as u64,
    );

    let mut out_dims: Vec<usize> = free_a.iter().map(|&k| a.dims()[k]).collect();
    out_dims.extend(free_b.iter().map(|&k| b.dims()[k]));
    out.reshape(&out_dims)
}

/// Reference nested-loop implementation of [`contract`], used as the oracle
/// in tests and the Fig. 1 bench. O(|out| · |contracted|).
pub fn contract_naive(
    a: &Tensor,
    b: &Tensor,
    axes_a: &[usize],
    axes_b: &[usize],
) -> Result<Tensor> {
    let (free_a, free_b) = split_axes(a, b, axes_a, axes_b)?;
    let mut out_dims: Vec<usize> = free_a.iter().map(|&k| a.dims()[k]).collect();
    out_dims.extend(free_b.iter().map(|&k| b.dims()[k]));
    let sum_dims: Vec<usize> = axes_a.iter().map(|&k| a.dims()[k]).collect();

    let out_shape = Shape::new(&out_dims);
    let sum_shape = Shape::new(&sum_dims);
    let mut out = Tensor::zeros(&out_dims);

    let mut ia = vec![0usize; a.rank()];
    let mut ib = vec![0usize; b.rank()];
    for (flat, out_idx) in IndexIter::new(&out_shape).enumerate() {
        let mut acc = 0.0f32;
        for sum_idx in IndexIter::new(&sum_shape) {
            for (k, &ax) in free_a.iter().enumerate() {
                ia[ax] = out_idx[k];
            }
            for (k, &ax) in axes_a.iter().enumerate() {
                ia[ax] = sum_idx[k];
            }
            for (k, &bx) in free_b.iter().enumerate() {
                ib[bx] = out_idx[free_a.len() + k];
            }
            for (k, &bx) in axes_b.iter().enumerate() {
                ib[bx] = sum_idx[k];
            }
            acc += a.get(&ia)? * b.get(&ib)?;
        }
        out.data_mut()[flat] = acc;
    }
    Ok(out)
}

/// Outer product: contraction over zero axes.
pub fn outer(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    contract(a, b, &[], &[])
}

/// Full inner product of two same-shaped tensors (contracts every axis).
pub fn inner(a: &Tensor, b: &Tensor) -> Result<f32> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            op: "inner",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }
    Ok(a.data().iter().zip(b.data()).map(|(&x, &y)| x * y).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, init, ops};

    #[test]
    fn contract_reduces_to_matmul() {
        let mut r = init::rng(1);
        let a = init::uniform(&[4, 5], -1.0, 1.0, &mut r);
        let b = init::uniform(&[5, 6], -1.0, 1.0, &mut r);
        let c = contract(&a, &b, &[1], &[0]).unwrap();
        let m = ops::matmul(&a, &b).unwrap();
        assert!(approx_eq(&c, &m, 1e-5));
    }

    #[test]
    fn contract_matches_naive_rank3() {
        let mut r = init::rng(2);
        let a = init::uniform(&[3, 4, 5], -1.0, 1.0, &mut r);
        let b = init::uniform(&[5, 4, 2], -1.0, 1.0, &mut r);
        // Contract a's axes (1,2) with b's axes (1,0).
        let fast = contract(&a, &b, &[1, 2], &[1, 0]).unwrap();
        let slow = contract_naive(&a, &b, &[1, 2], &[1, 0]).unwrap();
        assert_eq!(fast.dims(), &[3, 2]);
        assert!(approx_eq(&fast, &slow, 1e-4));
    }

    #[test]
    fn contract_output_axis_order() {
        // Free axes of a then free axes of b, in original order.
        let a = Tensor::zeros(&[2, 3, 4]);
        let b = Tensor::zeros(&[4, 5, 3]);
        let c = contract(&a, &b, &[2], &[0]).unwrap();
        assert_eq!(c.dims(), &[2, 3, 5, 3]);
    }

    #[test]
    fn contract_over_zero_axes_is_outer_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]).unwrap();
        let o = outer(&a, &b).unwrap();
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.data(), &[3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn full_contraction_yields_scalar_tensor() {
        let mut r = init::rng(3);
        let a = init::uniform(&[3, 4], -1.0, 1.0, &mut r);
        let b = init::uniform(&[3, 4], -1.0, 1.0, &mut r);
        let c = contract(&a, &b, &[0, 1], &[0, 1]).unwrap();
        assert_eq!(c.dims(), &[] as &[usize]);
        let expect = inner(&a, &b).unwrap();
        assert!((c.item().unwrap() - expect).abs() < 1e-4);
    }

    #[test]
    fn contract_validation() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 5]);
        assert!(contract(&a, &b, &[1], &[0]).is_err()); // 3 != 4
        assert!(contract(&a, &b, &[1], &[0, 1]).is_err()); // arity
        assert!(contract(&a, &b, &[2], &[0]).is_err()); // out of range
        assert!(contract(&a, &a, &[0, 0], &[0, 1]).is_err()); // repeated
    }

    #[test]
    fn inner_requires_same_shape() {
        assert!(inner(&Tensor::zeros(&[2]), &Tensor::zeros(&[3])).is_err());
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        assert_eq!(inner(&a, &a).unwrap(), 5.0);
    }

    #[test]
    fn contraction_order_invariance_matrix_chain() {
        // (A·B)·C == A·(B·C) via contract.
        let mut r = init::rng(9);
        let a = init::uniform(&[3, 4], -1.0, 1.0, &mut r);
        let b = init::uniform(&[4, 5], -1.0, 1.0, &mut r);
        let c = init::uniform(&[5, 2], -1.0, 1.0, &mut r);
        let left = contract(&contract(&a, &b, &[1], &[0]).unwrap(), &c, &[1], &[0]).unwrap();
        let right = contract(&a, &contract(&b, &c, &[1], &[0]).unwrap(), &[1], &[0]).unwrap();
        assert!(approx_eq(&left, &right, 1e-4));
    }
}
