//! Static inference plans: workspace demands computed once per shape.
//!
//! The workspace arena discovers buffer sizes dynamically — each kernel
//! call probes its size bucket and allocates on a miss. That discovery is
//! cheap but not free, and on the serving hot path it repeats identically
//! for every request of a batch because the shapes never change. A
//! [`Plan`] moves it off the hot path: built once per (shape, thread
//! count) signature, it records every arena checkout the planned calls
//! will make — packed GEMM `B` panels, per-worker `A` panels, bf16 widen
//! scratch, `im2col` padded images and column matrices — and
//! [`Plan::warm`] leases them all **up front** through
//! [`workspace::lease_all`].
//!
//! The lease's lifetime model: taking every planned size simultaneously
//! forces the arena to materialise one distinct buffer per concurrent
//! need (sequential warming could satisfy two same-bucket needs with the
//! same buffer); releasing parks them all back in the pool. Every
//! in-batch checkout of a planned size is then a guaranteed pool hit —
//! the bucket probe still happens, but it never allocates, so a whole
//! serve batch runs without touching the allocator. Plans are pure size
//! arithmetic over immutable shapes; they change **no numerics**.
//!
//! Sizing mirrors the kernel dispatch exactly: a product below the packed
//! threshold plans the legacy path's scratch (none for f32, a widen
//! buffer for bf16 weights), one above it plans the packed panels. The
//! worker count is capped by the plan's thread count and the tile-grid
//! task count, matching the scheduler's team size.

use crate::conv::ConvSpec;
use crate::ops::microkernel::{self, MR, NC};
use crate::workspace;

/// Accumulates the workspace demands of a sequence of planned kernel
/// calls. Finish with [`PlanBuilder::build`].
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    threads: usize,
    sizes: Vec<usize>,
}

impl PlanBuilder {
    /// A builder for a team of `threads` workers (`0` is treated as 1 —
    /// the serial fallback).
    pub fn new(threads: usize) -> PlanBuilder {
        PlanBuilder { threads: threads.max(1), sizes: Vec::new() }
    }

    /// Plans one f32 GEMM `[m,k]·[k,n]` (any matmul-family entry with
    /// these logical dims): on the packed path, the shared `B` panel plus
    /// one `A`-strip panel per worker; the legacy path takes no scratch.
    pub fn gemm(&mut self, m: usize, n: usize, k: usize) -> &mut PlanBuilder {
        if m * n == 0 {
            return self;
        }
        if microkernel::use_packed(2 * m * k * n) {
            self.pack_panels(m, n, k);
        }
        self
    }

    /// Plans one GEMM with bf16-stored weights: packed-path panels, or the
    /// legacy path's `k·n` widen buffer below the packed threshold.
    pub fn gemm_bf16_weights(&mut self, m: usize, n: usize, k: usize) -> &mut PlanBuilder {
        if m * n == 0 {
            return self;
        }
        if microkernel::use_packed(2 * m * k * n) {
            self.pack_panels(m, n, k);
        } else {
            self.sizes.push(k * n);
        }
        self
    }

    /// Plans one `conv2d` of an `[n,c,h,w]` input with `o` output
    /// channels: the padded-image scratch (when padding is in play), the
    /// `im2col` column matrix, and the production GEMM behind it.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(
        &mut self,
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        h_spec: ConvSpec,
        w_spec: ConvSpec,
        o: usize,
    ) -> &mut PlanBuilder {
        let (oh, ow) = match (h_spec.out_size(h), w_spec.out_size(w)) {
            (Ok(oh), Ok(ow)) => (oh, ow),
            // An invalid geometry will error in the kernel itself; there
            // is nothing to plan for it.
            _ => return self,
        };
        if h_spec.pad > 0 || w_spec.pad > 0 {
            let (hp, wp) = (h + 2 * h_spec.pad, w + 2 * w_spec.pad);
            self.sizes.push(n * c * hp * wp);
        }
        let (rows, cols) = (n * oh * ow, c * h_spec.kernel * w_spec.kernel);
        // The column matrix is a pooled tensor (`workspace::zeroed_tensor`).
        self.sizes.push(rows * cols);
        self.gemm(rows, o, cols)
    }

    /// The packed scheduler's leases for an `[m,k]·[k,n]` product: one
    /// shared `B` panel, one `MR×k` `A` panel per team worker.
    fn pack_panels(&mut self, m: usize, n: usize, k: usize) {
        self.sizes.push(k * n);
        let tasks = m.div_ceil(MR) * n.div_ceil(NC);
        let workers = if microkernel::tile_grid_parallel() { self.threads.min(tasks).max(1) } else { 1 };
        for _ in 0..workers {
            self.sizes.push(MR * k);
        }
    }

    /// Freezes the accumulated demands into a reusable [`Plan`].
    pub fn build(self) -> Plan {
        metalora_obs::counters::record_plan_built();
        Plan { threads: self.threads, sizes: self.sizes }
    }
}

/// The frozen workspace demands of one (shape, threads) signature. Build
/// once, [`warm`](Plan::warm) once per serve batch, reuse forever — the
/// plan itself is immutable and cheap to keep in a map keyed by the
/// signature.
#[derive(Debug, Clone)]
pub struct Plan {
    threads: usize,
    sizes: Vec<usize>,
}

impl Plan {
    /// Worker-team size the plan was built for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The planned checkout lengths (floats), in plan order.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Total bytes the planned checkouts cover.
    pub fn bytes(&self) -> usize {
        4 * self.sizes.iter().sum::<usize>()
    }

    /// Checks out every planned buffer at once and returns the live
    /// batch lease (all buffers distinct by construction).
    pub fn lease(&self) -> workspace::BatchLease {
        let lease = workspace::lease_all(&self.sizes);
        metalora_obs::counters::record_plan_lease(lease.buffers() as u64, 4 * lease.floats() as u64);
        lease
    }

    /// Leases and immediately releases every planned buffer: after this,
    /// the arena holds a distinct pooled buffer for each planned size, so
    /// every checkout the planned calls make during the batch is a
    /// guaranteed hit. Call once at the start of each serve batch.
    pub fn warm(&self) {
        self.lease().release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::microkernel::{set_pack_min_flops, set_packing_enabled};
    use std::sync::{Mutex, MutexGuard};

    /// Serialises tests that flip the global packing gates.
    fn gate_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    struct GateReset;
    impl Drop for GateReset {
        fn drop(&mut self) {
            set_packing_enabled(true);
            set_pack_min_flops(1 << 15);
        }
    }

    #[test]
    fn legacy_f32_gemm_plans_no_scratch() {
        let _g = gate_lock();
        let _r = GateReset;
        set_pack_min_flops(usize::MAX);
        let mut b = PlanBuilder::new(4);
        b.gemm(8, 8, 8);
        assert!(b.build().sizes().is_empty());
    }

    #[test]
    fn packed_gemm_plans_b_panel_plus_worker_a_panels() {
        let _g = gate_lock();
        let _r = GateReset;
        set_pack_min_flops(0);
        set_packing_enabled(true);
        let (m, n, k) = (37, 290, 150);
        let mut b = PlanBuilder::new(4);
        b.gemm(m, n, k);
        let plan = b.build();
        // B panel + min(threads, tasks) A panels; 37 rows × 290 cols is
        // 10 strips × 2 col groups = 20 tasks, so the team caps at 4.
        assert_eq!(plan.sizes()[0], k * n);
        assert_eq!(plan.sizes()[1..], [MR * k, MR * k, MR * k, MR * k]);
        assert_eq!(plan.bytes(), 4 * (k * n + 4 * MR * k));
    }

    #[test]
    fn bf16_legacy_plans_widen_buffer() {
        let _g = gate_lock();
        let _r = GateReset;
        set_pack_min_flops(usize::MAX);
        let mut b = PlanBuilder::new(2);
        b.gemm_bf16_weights(2, 8, 8);
        assert_eq!(b.build().sizes(), &[8 * 8]);
    }

    #[test]
    fn conv_plans_padded_image_cols_and_gemm() {
        let _g = gate_lock();
        let _r = GateReset;
        set_pack_min_flops(usize::MAX); // keep the production GEMM legacy
        let spec = ConvSpec { kernel: 3, stride: 1, pad: 1 };
        let (n, c, h, w, o) = (2, 3, 8, 8, 4);
        let mut b = PlanBuilder::new(1);
        b.conv2d(n, c, h, w, spec, spec, o);
        let plan = b.build();
        let (hp, wp) = (h + 2, w + 2);
        let (oh, ow) = (spec.out_size(h).unwrap(), spec.out_size(w).unwrap());
        assert_eq!(plan.sizes(), &[n * c * hp * wp, n * oh * ow * c * 9]);
    }

    #[test]
    fn warm_makes_every_planned_checkout_hit() {
        let _g = gate_lock();
        let _r = GateReset;
        set_pack_min_flops(0);
        set_packing_enabled(true);
        workspace::clear();
        let mut b = PlanBuilder::new(3);
        b.gemm(40, 50, 140).gemm_bf16_weights(40, 50, 140);
        let plan = b.build();
        plan.warm();
        // Every planned size (including the same-bucket duplicates) must
        // now check out simultaneously from the pool without allocating:
        // re-leasing returns exactly the warmed buffers.
        let lease = plan.lease();
        assert_eq!(lease.buffers(), plan.sizes().iter().filter(|&&s| s > 0).count());
        lease.release();
    }

    #[test]
    fn degenerate_shapes_plan_nothing() {
        let mut b = PlanBuilder::new(2);
        b.gemm(0, 8, 8).gemm(8, 0, 8).gemm_bf16_weights(0, 4, 4);
        assert!(b.build().sizes().is_empty());
    }
}
