//! The core dense tensor type.

use crate::shape::{IndexIter, Shape};
use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// A dense, row-major `f32` tensor of arbitrary rank.
///
/// Data is always contiguous; operations that change the logical layout
/// (permute, reshape-with-copy) materialise a new buffer. This keeps the
/// kernel code simple and predictable at the model scales used by the
/// MetaLoRA experiments.
///
/// Buffer lifetimes are reported to `metalora_obs` (peak tensor bytes
/// alive) when instrumentation is enabled; every construction must go
/// through [`Tensor::from_parts`] and every buffer hand-off through
/// [`Tensor::take_data`] so allocs and frees stay paired.
#[derive(Debug, PartialEq, Serialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor::from_parts(self.shape.clone(), self.data.clone())
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        metalora_obs::counters::track_free(self.data.capacity() * 4);
    }
}

impl Deserialize for Tensor {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let shape = Shape::from_value(v.field("shape")?)?;
        let data = Vec::<f32>::from_value(v.field("data")?)?;
        if data.len() != shape.num_elements() {
            return Err(serde::Error(format!(
                "tensor data length {} does not match shape {:?}",
                data.len(),
                shape.dims()
            )));
        }
        Ok(Tensor::from_parts(shape, data))
    }
}

impl Tensor {
    /// The one true constructor: pairs the buffer with its shape and
    /// reports the allocation to the observability layer (matched by the
    /// `Drop` impl / [`Tensor::take_data`]).
    fn from_parts(shape: Shape, data: Vec<f32>) -> Self {
        metalora_obs::counters::track_alloc(data.capacity() * 4);
        Tensor { shape, data }
    }

    /// Moves the buffer out, un-reporting it; the tensor is left empty
    /// so its `Drop` frees (and reports) nothing.
    fn take_data(&mut self) -> Vec<f32> {
        let data = std::mem::take(&mut self.data);
        metalora_obs::counters::track_free(data.capacity() * 4);
        data
    }

    /// Builds a tensor from a flat row-major buffer and a shape.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.num_elements() {
            return Err(TensorError::DataShapeMismatch {
                data_len: data.len(),
                shape: dims.to_vec(),
            });
        }
        Ok(Tensor::from_parts(shape, data))
    }

    /// A tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        Tensor::from_parts(shape, vec![0.0; n])
    }

    /// A tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.num_elements();
        Tensor::from_parts(shape, vec![value; n])
    }

    /// A rank-0 tensor holding one value.
    pub fn scalar(value: f32) -> Self {
        Tensor::from_parts(Shape::new(&[]), vec![value])
    }

    /// The `n×n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Evenly spaced values `start, start+step, …` of length `n`, shaped
    /// `[n]`.
    pub fn arange(start: f32, step: f32, n: usize) -> Self {
        let data = (0..n).map(|i| start + step * i as f32).collect();
        Tensor::from_parts(Shape::new(&[n]), data)
    }

    /// Tensor shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Axis extents as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        self.take_data()
    }

    /// Element at a multi-index.
    pub fn get(&self, idx: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.flat_index(idx)?])
    }

    /// Sets the element at a multi-index.
    pub fn set(&mut self, idx: &[usize], value: f32) -> Result<()> {
        let flat = self.shape.flat_index(idx)?;
        self.data[flat] = value;
        Ok(())
    }

    /// The single value of a rank-0 or one-element tensor.
    pub fn item(&self) -> Result<f32> {
        if self.data.len() == 1 {
            Ok(self.data[0])
        } else {
            Err(TensorError::InvalidArgument(format!(
                "item() on tensor with {} elements",
                self.data.len()
            )))
        }
    }

    /// Reinterprets the buffer under a new shape with the same element
    /// count. O(1) — the buffer is moved, not copied.
    pub fn reshape(mut self, dims: &[usize]) -> Result<Self> {
        let target = Shape::new(dims);
        if target.num_elements() != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.data.len(),
                to: dims.to_vec(),
            });
        }
        Ok(Tensor::from_parts(target, self.take_data()))
    }

    /// Like [`Tensor::reshape`] but borrows and copies.
    pub fn reshaped(&self, dims: &[usize]) -> Result<Self> {
        self.clone().reshape(dims)
    }

    /// Iterator over `(multi_index, value)` pairs in row-major order.
    pub fn indexed_iter(&self) -> impl Iterator<Item = (Vec<usize>, f32)> + '_ {
        IndexIter::new(&self.shape).map(move |idx| {
            let flat = self.shape.flat_index(&idx).expect("iter index in range");
            (idx, self.data[flat])
        })
    }

    /// Extracts the sub-tensor obtained by fixing axis 0 to `index`
    /// (e.g. row of a matrix, sample of a batch).
    pub fn index_axis0(&self, index: usize) -> Result<Tensor> {
        if self.rank() == 0 {
            return Err(TensorError::InvalidArgument(
                "index_axis0 on scalar".into(),
            ));
        }
        let d0 = self.dims()[0];
        if index >= d0 {
            return Err(TensorError::IndexOutOfRange { index, len: d0 });
        }
        let sub: usize = self.dims()[1..].iter().product();
        let data = self.data[index * sub..(index + 1) * sub].to_vec();
        Tensor::from_vec(data, &self.dims()[1..])
    }

    /// Writes `src` into the axis-0 slot `index` (inverse of
    /// [`Tensor::index_axis0`]).
    pub fn set_axis0(&mut self, index: usize, src: &Tensor) -> Result<()> {
        if self.rank() == 0 {
            return Err(TensorError::InvalidArgument("set_axis0 on scalar".into()));
        }
        let d0 = self.dims()[0];
        if index >= d0 {
            return Err(TensorError::IndexOutOfRange { index, len: d0 });
        }
        if src.dims() != &self.dims()[1..] {
            return Err(TensorError::ShapeMismatch {
                op: "set_axis0",
                lhs: self.dims().to_vec(),
                rhs: src.dims().to_vec(),
            });
        }
        let sub: usize = self.dims()[1..].iter().product();
        self.data[index * sub..(index + 1) * sub].copy_from_slice(src.data());
        Ok(())
    }

    /// Stacks equally shaped tensors along a new leading axis.
    pub fn stack(parts: &[Tensor]) -> Result<Tensor> {
        let first = parts.first().ok_or_else(|| {
            TensorError::InvalidArgument("stack of zero tensors".into())
        })?;
        let mut dims = vec![parts.len()];
        dims.extend_from_slice(first.dims());
        let mut out = Tensor::zeros(&dims);
        for (i, p) in parts.iter().enumerate() {
            out.set_axis0(i, p)?;
        }
        Ok(out)
    }

    /// Frobenius norm (√Σx²).
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Returns `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).data(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).data(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 7.0).data(), &[7.0, 7.0]);
        assert_eq!(Tensor::scalar(4.0).item().unwrap(), 4.0);
        let e = Tensor::eye(3);
        assert_eq!(e.get(&[1, 1]).unwrap(), 1.0);
        assert_eq!(e.get(&[1, 2]).unwrap(), 0.0);
        let a = Tensor::arange(1.0, 0.5, 4);
        assert_eq!(a.data(), &[1.0, 1.5, 2.0, 2.5]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 5.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 5.0);
        assert_eq!(t.data()[5], 5.0);
    }

    #[test]
    fn reshape_moves_without_copy_semantics() {
        let t = Tensor::arange(0.0, 1.0, 6).reshape(&[2, 3]).unwrap();
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.get(&[1, 0]).unwrap(), 3.0);
        assert!(t.reshaped(&[4]).is_err());
    }

    #[test]
    fn item_rejects_multielement() {
        assert!(Tensor::zeros(&[2]).item().is_err());
    }

    #[test]
    fn index_axis0_and_set_axis0() {
        let t = Tensor::arange(0.0, 1.0, 6).reshape(&[2, 3]).unwrap();
        let row = t.index_axis0(1).unwrap();
        assert_eq!(row.data(), &[3.0, 4.0, 5.0]);

        let mut u = Tensor::zeros(&[2, 3]);
        u.set_axis0(0, &row).unwrap();
        assert_eq!(u.data()[..3], [3.0, 4.0, 5.0]);
        assert!(u.set_axis0(2, &row).is_err());
        assert!(u.set_axis0(0, &Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn stack_builds_batch() {
        let a = Tensor::ones(&[2]);
        let b = Tensor::full(&[2], 2.0);
        let s = Tensor::stack(&[a, b]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.data(), &[1.0, 1.0, 2.0, 2.0]);
        assert!(Tensor::stack(&[]).is_err());
    }

    #[test]
    fn norm_and_finite_checks() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert!((t.norm() - 5.0).abs() < 1e-6);
        assert!(!t.has_non_finite());
        let bad = Tensor::from_vec(vec![f32::NAN], &[1]).unwrap();
        assert!(bad.has_non_finite());
    }

    #[test]
    fn indexed_iter_row_major() {
        let t = Tensor::arange(0.0, 1.0, 4).reshape(&[2, 2]).unwrap();
        let pairs: Vec<_> = t.indexed_iter().collect();
        assert_eq!(pairs[0], (vec![0, 0], 0.0));
        assert_eq!(pairs[3], (vec![1, 1], 3.0));
    }

    #[test]
    fn serde_roundtrip() {
        let t = Tensor::arange(0.0, 1.0, 6).reshape(&[2, 3]).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
