//! Deterministic parallel execution layer.
//!
//! Two primitives share one thread-count / threshold policy:
//!
//! * [`par_row_blocks`] — the output buffer is split into disjoint,
//!   fixed-size row blocks and a scoped thread team pulls blocks from a
//!   shared queue. Used by the legacy matmul kernels, im2col/col2im, the
//!   large elementwise/reduction ops and the KNN distance matrix.
//! * [`par_task_queue`] — a scoped team (the **calling thread
//!   participates** as worker 0) drains an atomic counter of task
//!   indices; each worker is invoked once and claims tasks until the
//!   queue is dry, so it can hold per-thread state (e.g. a packed-panel
//!   lease from the workspace arena) across many tasks. This is what the
//!   packed GEMM microkernel's tile-grid scheduler runs on.
//!
//! # Determinism guarantee
//!
//! Results are **bitwise identical** to the serial path regardless of the
//! worker count, because the unit of work is a *row* of the output and the
//! kernels invoked here compute each row self-containedly, reading only
//! shared immutable inputs. Block boundaries are a fixed function of the
//! problem shape (never of the thread count), so even a kernel that did
//! couple rows within a block would stay deterministic. No reduction ever
//! combines per-thread partials — ops whose accumulation order would have
//! to change under parallelism (e.g. `sum_all`) deliberately stay serial.
//!
//! # Controls
//!
//! * `METALORA_THREADS` — environment variable fixing the worker count
//!   (read once, first use).
//! * [`set_num_threads`] — programmatic override, takes precedence.
//! * [`set_par_threshold`] / `METALORA_PAR_THRESHOLD` — minimum estimated
//!   flop count below which work stays on the calling thread; small
//!   problems never pay the thread-spawn cost.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Work below this estimated flop count runs serially (tunable via
/// [`set_par_threshold`] or `METALORA_PAR_THRESHOLD`).
pub const DEFAULT_PAR_THRESHOLD: usize = 1 << 19;

/// Upper bound on the number of blocks a problem is split into.
const MAX_BLOCKS: usize = 64;

/// Minimum elements per block, so tiny rows are grouped into chunks big
/// enough to amortise queue traffic.
const MIN_BLOCK_ELEMS: usize = 1 << 12;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static THRESHOLD_OVERRIDE: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Fixes the worker count; `0` reverts to `METALORA_THREADS` / hardware
/// detection. `1` forces fully serial execution.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count parallel sections will use: the [`set_num_threads`]
/// override if set, else `METALORA_THREADS`, else the hardware parallelism.
pub fn num_threads() -> usize {
    let n = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if n > 0 {
        return n;
    }
    static FROM_ENV: OnceLock<usize> = OnceLock::new();
    *FROM_ENV.get_or_init(|| {
        std::env::var("METALORA_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// Sets the serial/parallel flop threshold; `usize::MAX` reverts to
/// `METALORA_PAR_THRESHOLD` / [`DEFAULT_PAR_THRESHOLD`].
pub fn set_par_threshold(flops: usize) {
    THRESHOLD_OVERRIDE.store(flops, Ordering::Relaxed);
}

/// The current serial/parallel flop threshold.
pub fn par_threshold() -> usize {
    let t = THRESHOLD_OVERRIDE.load(Ordering::Relaxed);
    if t != usize::MAX {
        return t;
    }
    static FROM_ENV: OnceLock<usize> = OnceLock::new();
    *FROM_ENV.get_or_init(|| {
        std::env::var("METALORA_PAR_THRESHOLD")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_PAR_THRESHOLD)
    })
}

/// Rows per block: a fixed function of the problem shape only, so the
/// partition (and therefore any block-coupled numerics) is independent of
/// the thread count.
fn block_rows_for(rows: usize, row_len: usize) -> usize {
    let by_count = rows.div_ceil(MAX_BLOCKS);
    let by_elems = MIN_BLOCK_ELEMS.div_ceil(row_len.max(1));
    by_count.max(by_elems).clamp(1, rows.max(1))
}

/// Runs `kernel` over the rows of `out` (`row_len` elements each),
/// possibly in parallel.
///
/// `kernel(first_row, block)` must fill `block` — the rows
/// `first_row .. first_row + block.len() / row_len` — reading only shared
/// inputs and writing only `block`. **Each row must be computed
/// independently of every other row**; that is what makes the parallel
/// schedule bitwise-equal to the serial one.
///
/// `cost_per_row` is an estimated flop count per row; the whole call runs
/// on the calling thread when `rows * cost_per_row` is under
/// [`par_threshold`], when only one worker is configured, or when there is
/// a single block.
pub fn par_row_blocks<T, F>(out: &mut [T], row_len: usize, cost_per_row: usize, kernel: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if out.is_empty() {
        return;
    }
    debug_assert!(row_len > 0 && out.len() % row_len == 0);
    let rows = out.len() / row_len;
    let block = block_rows_for(rows, row_len);
    let n_blocks = rows.div_ceil(block);
    let threads = num_threads().min(n_blocks);
    if threads <= 1 || rows.saturating_mul(cost_per_row) < par_threshold() {
        metalora_obs::counters::record_dispatch(false);
        kernel(0, out);
        return;
    }
    metalora_obs::counters::record_dispatch(true);
    // Timeline hook on the calling thread only: one begin/end pair around
    // the whole team, so traces show when parallel sections ran without a
    // per-block event flood from the workers.
    metalora_obs::trace::begin("par_row_blocks");
    // Fixed-size blocks, dynamically scheduled: workers pull the next
    // (index, slice) pair from a shared iterator. Scheduling order cannot
    // affect results because blocks are disjoint and rows independent.
    let queue = Mutex::new(out.chunks_mut(block * row_len).enumerate());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let next = queue.lock().expect("queue poisoned").next();
                match next {
                    Some((bi, chunk)) => kernel(bi * block, chunk),
                    None => break,
                }
            });
        }
    });
    metalora_obs::trace::end("par_row_blocks");
}

/// A dried-once atomic work queue over task indices `0..total`.
///
/// Claims are a single `fetch_add`; once the counter passes `total` the
/// queue stays empty forever. Which worker claims which index is
/// scheduler-dependent, so callers must make each task's result
/// independent of the claim order (the tile-grid GEMM achieves this by
/// making every task a self-contained C-tile block).
pub struct TaskQueue {
    next: AtomicUsize,
    total: usize,
}

impl TaskQueue {
    /// A fresh queue over `0..total`.
    pub fn new(total: usize) -> TaskQueue {
        TaskQueue { next: AtomicUsize::new(0), total }
    }

    /// Claims the next unclaimed task index, or `None` when the queue is
    /// dry.
    #[inline]
    pub fn claim(&self) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i < self.total {
            Some(i)
        } else {
            None
        }
    }

    /// Number of tasks the queue was created with.
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Runs `worker` over a shared [`TaskQueue`] of `tasks` indices, possibly
/// in parallel.
///
/// Each team member calls `worker(slot, queue)` **exactly once** and is
/// expected to loop on [`TaskQueue::claim`] until the queue is dry —
/// per-thread scratch (packed-panel leases, counter tallies) is set up
/// once per worker, not once per task. `slot` is the team-member index
/// (`0..team size`); the **calling thread participates as slot 0**, so a
/// team of `N` spawns only `N - 1` threads and `METALORA_THREADS=1` (or
/// an estimated cost `tasks * cost_per_task` below [`par_threshold`])
/// runs the whole queue on the calling thread with no spawn at all —
/// the same serial-fallback semantics as [`par_row_blocks`].
///
/// `trace_name` labels the begin/end pair emitted around a parallel team
/// in the obs timeline (e.g. `"tile_grid"`), mirroring the
/// `par_row_blocks` mark.
pub fn par_task_queue<F>(trace_name: &'static str, tasks: usize, cost_per_task: usize, worker: F)
where
    F: Fn(usize, &TaskQueue) + Sync,
{
    if tasks == 0 {
        return;
    }
    let queue = TaskQueue::new(tasks);
    let threads = num_threads().min(tasks);
    if threads <= 1 || tasks.saturating_mul(cost_per_task) < par_threshold() {
        metalora_obs::counters::record_dispatch(false);
        worker(0, &queue);
        return;
    }
    metalora_obs::counters::record_dispatch(true);
    metalora_obs::trace::begin(trace_name);
    std::thread::scope(|s| {
        for slot in 1..threads {
            let queue = &queue;
            let worker = &worker;
            s.spawn(move || worker(slot, queue));
        }
        worker(0, &queue);
    });
    metalora_obs::trace::end(trace_name);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that touch the global overrides and restores the
    /// defaults on drop (the test harness runs tests concurrently).
    struct Guard(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

    fn guard() -> Guard {
        static LOCK: Mutex<()> = Mutex::new(());
        Guard(LOCK.lock().unwrap_or_else(|e| e.into_inner()))
    }

    impl Drop for Guard {
        fn drop(&mut self) {
            set_num_threads(0);
            set_par_threshold(usize::MAX);
        }
    }

    #[test]
    fn serial_fallback_below_threshold() {
        let _g = guard();
        set_num_threads(4);
        set_par_threshold(usize::MAX - 1); // everything is "too small"
        let mut out = vec![0.0f32; 64];
        par_row_blocks(&mut out, 8, 1, |first, block| {
            for (r, row) in block.chunks_mut(8).enumerate() {
                row.fill((first + r) as f32);
            }
        });
        for (r, row) in out.chunks(8).enumerate() {
            assert!(row.iter().all(|&x| x == r as f32));
        }
    }

    #[test]
    fn parallel_covers_all_rows_exactly_once() {
        let _g = guard();
        set_par_threshold(0);
        for threads in [1, 2, 3, 7, 16] {
            set_num_threads(threads);
            let rows = 97; // not a multiple of any block size
            let mut out = vec![-1.0f32; rows * 5];
            par_row_blocks(&mut out, 5, 1000, |first, block| {
                for (r, row) in block.chunks_mut(5).enumerate() {
                    assert!(row.iter().all(|&x| x == -1.0), "row visited twice");
                    row.fill((first + r) as f32);
                }
            });
            for (r, row) in out.chunks(5).enumerate() {
                assert!(
                    row.iter().all(|&x| x == r as f32),
                    "threads={threads} row={r} wrong: {row:?}"
                );
            }
        }
    }

    #[test]
    fn empty_output_invokes_no_work() {
        let _g = guard();
        // The scheduler must return without calling the kernel at all on a
        // zero-size output — even with parallelism forced on.
        for threads in [1, 4] {
            set_num_threads(threads);
            set_par_threshold(0);
            let calls = AtomicUsize::new(0);
            par_row_blocks(&mut [] as &mut [f32], 4, 1, |_, _| {
                calls.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(calls.load(Ordering::SeqCst), 0, "threads={threads}");
        }
    }

    #[test]
    fn block_sizes_are_shape_deterministic() {
        // Only the shape feeds the partition; calling twice must agree.
        assert_eq!(block_rows_for(256, 256), block_rows_for(256, 256));
        assert!(block_rows_for(1, 1) == 1);
        // Tiny rows get grouped; big rows split down to MAX_BLOCKS.
        assert!(block_rows_for(1 << 20, 1) >= MIN_BLOCK_ELEMS);
        assert_eq!(block_rows_for(6400, 512), 100);
    }

    #[test]
    fn task_queue_hands_out_each_index_once() {
        let q = TaskQueue::new(10);
        let claimed: Vec<usize> = std::iter::from_fn(|| q.claim()).collect();
        assert_eq!(claimed, (0..10).collect::<Vec<_>>());
        assert_eq!(q.claim(), None);
        assert_eq!(q.total(), 10);
    }

    #[test]
    fn par_task_queue_covers_all_tasks_exactly_once() {
        let _g = guard();
        set_par_threshold(0);
        for threads in [1, 2, 3, 7] {
            set_num_threads(threads);
            let tasks = 53;
            let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
            par_task_queue("test_queue", tasks, 1000, |_slot, q| {
                while let Some(i) = q.claim() {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                }
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "threads={threads} task={i}");
            }
        }
    }

    #[test]
    fn par_task_queue_serial_fallback_claims_in_order() {
        let _g = guard();
        set_num_threads(4);
        set_par_threshold(usize::MAX - 1); // everything is "too small"
        let order = Mutex::new(Vec::new());
        par_task_queue("test_queue", 6, 1, |slot, q| {
            assert_eq!(slot, 0, "serial fallback must run on the calling thread");
            while let Some(i) = q.claim() {
                order.lock().unwrap().push(i);
            }
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn par_task_queue_calling_thread_is_slot_zero() {
        let _g = guard();
        set_num_threads(3);
        set_par_threshold(0);
        let caller = std::thread::current().id();
        let slot0_on_caller = AtomicUsize::new(0);
        par_task_queue("test_queue", 64, 1000, |slot, q| {
            if slot == 0 && std::thread::current().id() == caller {
                slot0_on_caller.fetch_add(1, Ordering::SeqCst);
            }
            while q.claim().is_some() {}
        });
        assert_eq!(slot0_on_caller.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn par_task_queue_empty_is_a_noop() {
        let _g = guard();
        set_num_threads(4);
        set_par_threshold(0);
        let calls = AtomicUsize::new(0);
        par_task_queue("test_queue", 0, 1, |_, _| {
            calls.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(calls.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn threads_env_override_applies() {
        let _g = guard();
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }
}
