//! Small dense linear algebra, written from scratch: Gaussian solve,
//! Householder QR, one-sided Jacobi SVD and Moore–Penrose pseudo-inverse.
//!
//! These routines power the CP-ALS and TR-SVD decomposition drivers. They
//! target matrices up to a few hundred rows/columns — the regime of every
//! experiment in the reproduction — and favour clarity plus numerical
//! robustness (pivoting, convergence checks) over peak speed.

use crate::ops::{matmul, matmul_transpose_a, transpose2d};
use crate::{Result, Tensor, TensorError};

fn require_matrix(t: &Tensor, what: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::InvalidArgument(format!(
            "{what}: expected a matrix, got rank {}",
            t.rank()
        )));
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// Solves `A·x = b` for square `A` by Gaussian elimination with partial
/// pivoting. `b` may be a vector `[n]` or a matrix `[n, k]` of right-hand
/// sides.
pub fn solve(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (n, n2) = require_matrix(a, "solve lhs")?;
    if n != n2 {
        return Err(TensorError::InvalidArgument(format!(
            "solve: non-square matrix {n}x{n2}"
        )));
    }
    let vector_rhs = b.rank() == 1;
    let b2 = if vector_rhs {
        b.reshaped(&[b.len(), 1])?
    } else {
        b.clone()
    };
    let (bn, k) = require_matrix(&b2, "solve rhs")?;
    if bn != n {
        return Err(TensorError::ShapeMismatch {
            op: "solve",
            lhs: a.dims().to_vec(),
            rhs: b.dims().to_vec(),
        });
    }

    // Augmented working copies.
    let mut m = a.data().to_vec();
    let mut rhs = b2.data().to_vec();

    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        let mut best = m[col * n + col].abs();
        for r in col + 1..n {
            let v = m[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-12 {
            return Err(TensorError::Numerical(format!(
                "solve: singular matrix (pivot {best:e} at column {col})"
            )));
        }
        if piv != col {
            for j in 0..n {
                m.swap(col * n + j, piv * n + j);
            }
            for j in 0..k {
                rhs.swap(col * k + j, piv * k + j);
            }
        }
        let d = m[col * n + col];
        for r in col + 1..n {
            let f = m[r * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                m[r * n + j] -= f * m[col * n + j];
            }
            for j in 0..k {
                rhs[r * k + j] -= f * rhs[col * k + j];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0f32; n * k];
    for row in (0..n).rev() {
        for j in 0..k {
            let mut acc = rhs[row * k + j];
            for c in row + 1..n {
                acc -= m[row * n + c] * x[c * k + j];
            }
            x[row * k + j] = acc / m[row * n + row];
        }
    }
    let out = Tensor::from_vec(x, &[n, k])?;
    if vector_rhs {
        out.reshape(&[n])
    } else {
        Ok(out)
    }
}

/// Thin Householder QR: `A = Q·R` with `Q:[m, r]`, `R:[r, n]`,
/// `r = min(m, n)`. `Q` has orthonormal columns.
pub fn qr(a: &Tensor) -> Result<(Tensor, Tensor)> {
    let (m, n) = require_matrix(a, "qr")?;
    let r_dim = m.min(n);
    let mut r = a.data().to_vec(); // m x n, mutated in place
    // Accumulate Q by applying the Householder reflectors to the identity.
    let mut q = vec![0.0f32; m * m];
    for i in 0..m {
        q[i * m + i] = 1.0;
    }
    let mut v = vec![0.0f32; m];
    for col in 0..r_dim {
        // Householder vector for column `col` below the diagonal.
        let mut norm = 0.0f32;
        for row in col..m {
            norm += r[row * n + col] * r[row * n + col];
        }
        let norm = norm.sqrt();
        if norm < 1e-12 {
            continue; // column already zero below diagonal
        }
        let alpha = if r[col * n + col] >= 0.0 { -norm } else { norm };
        let mut vnorm2 = 0.0f32;
        for row in col..m {
            let x = if row == col {
                r[row * n + col] - alpha
            } else {
                r[row * n + col]
            };
            v[row] = x;
            vnorm2 += x * x;
        }
        if vnorm2 < 1e-24 {
            continue;
        }
        let beta = 2.0 / vnorm2;
        // R ← (I − βvvᵀ) R, only columns ≥ col are affected.
        for j in col..n {
            let mut dot = 0.0f32;
            for row in col..m {
                dot += v[row] * r[row * n + j];
            }
            let s = beta * dot;
            for row in col..m {
                r[row * n + j] -= s * v[row];
            }
        }
        // Q ← Q (I − βvvᵀ).
        for i in 0..m {
            let mut dot = 0.0f32;
            for row in col..m {
                dot += q[i * m + row] * v[row];
            }
            let s = beta * dot;
            for row in col..m {
                q[i * m + row] -= s * v[row];
            }
        }
    }
    // Thin slices.
    let mut q_thin = vec![0.0f32; m * r_dim];
    for i in 0..m {
        q_thin[i * r_dim..(i + 1) * r_dim].copy_from_slice(&q[i * m..i * m + r_dim]);
    }
    let mut r_thin = vec![0.0f32; r_dim * n];
    for i in 0..r_dim {
        for j in 0..n {
            r_thin[i * n + j] = if j >= i { r[i * n + j] } else { 0.0 };
        }
    }
    Ok((
        Tensor::from_vec(q_thin, &[m, r_dim])?,
        Tensor::from_vec(r_thin, &[r_dim, n])?,
    ))
}

/// Result of a singular value decomposition `A = U·diag(s)·Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `[m, r]`, orthonormal columns.
    pub u: Tensor,
    /// Singular values in non-increasing order, length `r = min(m, n)`.
    pub s: Vec<f32>,
    /// Right singular vectors as `Vᵀ`, `[r, n]`, orthonormal rows.
    pub vt: Tensor,
}

/// Thin SVD via one-sided Jacobi rotations on the (possibly transposed)
/// input. Robust and accurate for the moderate sizes used here.
pub fn svd(a: &Tensor) -> Result<Svd> {
    let (m, n) = require_matrix(a, "svd")?;
    // One-sided Jacobi orthogonalises columns; work with the orientation
    // that has fewer columns.
    if n > m {
        // A = U S Vᵀ ⇔ Aᵀ = V S Uᵀ.
        let t = transpose2d(a)?;
        let Svd { u, s, vt } = svd(&t)?;
        return Ok(Svd {
            u: transpose2d(&vt)?,
            s,
            vt: transpose2d(&u)?,
        });
    }

    let mut u = a.data().to_vec(); // m x n, columns rotate toward orthogonal
    let mut v = vec![0.0f32; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let max_sweeps = 60;
    let eps = 1e-10f64;
    for _sweep in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries for the (p,q) column pair.
                let (mut app, mut aqq, mut apq) = (0.0f64, 0.0f64, 0.0f64);
                for i in 0..m {
                    let x = u[i * n + p] as f64;
                    let y = u[i * n + q] as f64;
                    app += x * x;
                    aqq += y * y;
                    apq += x * y;
                }
                off += apq * apq;
                if apq.abs() <= eps * (app * aqq).sqrt() {
                    continue;
                }
                // Jacobi rotation annihilating the (p,q) Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = tau.signum() / (tau.abs() + (1.0 + tau * tau).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..m {
                    let x = u[i * n + p];
                    let y = u[i * n + q];
                    u[i * n + p] = (c as f32) * x - (s as f32) * y;
                    u[i * n + q] = (s as f32) * x + (c as f32) * y;
                }
                for i in 0..n {
                    let x = v[i * n + p];
                    let y = v[i * n + q];
                    v[i * n + p] = (c as f32) * x - (s as f32) * y;
                    v[i * n + q] = (s as f32) * x + (c as f32) * y;
                }
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
    }

    // Column norms are the singular values.
    let mut order: Vec<usize> = (0..n).collect();
    let mut sigmas = vec![0.0f32; n];
    for (j, sig) in sigmas.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for i in 0..m {
            acc += u[i * n + j] * u[i * n + j];
        }
        *sig = acc.sqrt();
    }
    order.sort_by(|&a, &b| sigmas[b].partial_cmp(&sigmas[a]).expect("finite sv"));

    let mut u_out = vec![0.0f32; m * n];
    let mut vt_out = vec![0.0f32; n * n];
    let mut s_out = vec![0.0f32; n];
    for (dst, &src) in order.iter().enumerate() {
        let sig = sigmas[src];
        s_out[dst] = sig;
        if sig > 1e-12 {
            for i in 0..m {
                u_out[i * n + dst] = u[i * n + src] / sig;
            }
        }
        for i in 0..n {
            vt_out[dst * n + i] = v[i * n + src];
        }
    }
    Ok(Svd {
        u: Tensor::from_vec(u_out, &[m, n])?,
        s: s_out,
        vt: Tensor::from_vec(vt_out, &[n, n])?,
    })
}

/// Moore–Penrose pseudo-inverse via the SVD, with singular values below
/// `rcond · s_max` treated as zero.
pub fn pinv(a: &Tensor, rcond: f32) -> Result<Tensor> {
    let (m, n) = require_matrix(a, "pinv")?;
    let Svd { u, s, vt } = svd(a)?;
    let smax = s.first().copied().unwrap_or(0.0);
    let cutoff = rcond * smax;
    let r = s.len();
    // pinv = V · diag(1/s) · Uᵀ  — build V·diag first.
    let v = transpose2d(&vt)?; // n x r
    let mut vs = vec![0.0f32; n * r];
    for i in 0..n {
        for j in 0..r {
            let inv = if s[j] > cutoff && s[j] > 0.0 {
                1.0 / s[j]
            } else {
                0.0
            };
            vs[i * r + j] = v.data()[i * r + j] * inv;
        }
    }
    let vs = Tensor::from_vec(vs, &[n, r])?;
    let ut = transpose2d(&u)?; // r x m
    let out = matmul(&vs, &ut)?;
    debug_assert_eq!(out.dims(), &[n, m]);
    Ok(out)
}

/// Least-squares solution of `A·X = B` (`A:[m,n]`, `B:[m,k]`) via the
/// normal equations with pseudo-inverse fallback for rank deficiency.
pub fn lstsq(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (_, n) = require_matrix(a, "lstsq lhs")?;
    let ata = matmul_transpose_a(a, a)?;
    let atb = matmul_transpose_a(a, b)?;
    match solve(&ata, &atb) {
        Ok(x) => Ok(x),
        Err(TensorError::Numerical(_)) => {
            let p = pinv(&ata, 1e-6)?;
            let x = matmul(&p, &atb)?;
            debug_assert_eq!(x.dims()[0], n);
            Ok(x)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, init};

    #[test]
    fn solve_known_system() {
        let a = Tensor::from_vec(vec![2.0, 1.0, 1.0, 3.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 10.0], &[2]).unwrap();
        let x = solve(&a, &b).unwrap();
        // 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
        assert!((x.data()[0] - 1.0).abs() < 1e-5);
        assert!((x.data()[1] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn solve_multiple_rhs_and_random_roundtrip() {
        let mut r = init::rng(1);
        let a = init::uniform(&[6, 6], -1.0, 1.0, &mut r);
        let x_true = init::uniform(&[6, 3], -1.0, 1.0, &mut r);
        let b = matmul(&a, &x_true).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!(approx_eq(&x, &x_true, 1e-3));
    }

    #[test]
    fn solve_detects_singular() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 2.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        assert!(matches!(solve(&a, &b), Err(TensorError::Numerical(_))));
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero on the initial diagonal — fails without partial pivoting.
        let a = Tensor::from_vec(vec![0.0, 1.0, 1.0, 0.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 7.0], &[2]).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!((x.data()[0] - 7.0).abs() < 1e-6);
        assert!((x.data()[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn qr_reconstructs_and_q_orthonormal() {
        let mut r = init::rng(2);
        for (m, n) in [(5, 3), (3, 5), (4, 4)] {
            let a = init::uniform(&[m, n], -1.0, 1.0, &mut r);
            let (q, rr) = qr(&a).unwrap();
            let back = matmul(&q, &rr).unwrap();
            assert!(approx_eq(&back, &a, 1e-3), "QR reconstruct {m}x{n}");
            let qtq = matmul_transpose_a(&q, &q).unwrap();
            let eye = Tensor::eye(m.min(n));
            assert!(approx_eq(&qtq, &eye, 1e-3), "QᵀQ = I for {m}x{n}");
        }
    }

    #[test]
    fn qr_r_is_upper_triangular() {
        let mut rng = init::rng(4);
        let a = init::uniform(&[5, 4], -1.0, 1.0, &mut rng);
        let (_, r) = qr(&a).unwrap();
        for i in 0..4 {
            for j in 0..i {
                assert!(r.get(&[i, j]).unwrap().abs() < 1e-6);
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn svd_reconstructs() {
        let mut rng = init::rng(3);
        for (m, n) in [(6, 4), (4, 6), (5, 5)] {
            let a = init::uniform(&[m, n], -1.0, 1.0, &mut rng);
            let Svd { u, s, vt } = svd(&a).unwrap();
            let r = s.len();
            assert_eq!(r, m.min(n));
            // U diag(s) Vᵀ.
            let mut us = u.clone();
            for i in 0..m {
                for j in 0..r {
                    let v = us.get(&[i, j]).unwrap() * s[j];
                    us.set(&[i, j], v).unwrap();
                }
            }
            let back = matmul(&us, &vt).unwrap();
            assert!(approx_eq(&back, &a, 1e-3), "SVD reconstruct {m}x{n}");
            // Singular values sorted non-increasing and non-negative.
            for w in s.windows(2) {
                assert!(w[0] >= w[1] - 1e-6);
            }
            assert!(s.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn svd_orthogonality() {
        let mut rng = init::rng(5);
        let a = init::uniform(&[7, 4], -1.0, 1.0, &mut rng);
        let Svd { u, s: _, vt } = svd(&a).unwrap();
        let utu = matmul_transpose_a(&u, &u).unwrap();
        assert!(approx_eq(&utu, &Tensor::eye(4), 1e-3));
        let vvt = matmul(&vt, &transpose2d(&vt).unwrap()).unwrap();
        assert!(approx_eq(&vvt, &Tensor::eye(4), 1e-3));
    }

    #[test]
    fn svd_rank_one() {
        // Known SVD: outer product of unit-ish vectors.
        let a = Tensor::from_vec(vec![2.0, 4.0, 1.0, 2.0], &[2, 2]).unwrap();
        let Svd { s, .. } = svd(&a).unwrap();
        assert!(s[1] < 1e-5, "second sv should vanish, got {}", s[1]);
        let expect = (4.0f32 + 16.0 + 1.0 + 4.0).sqrt();
        assert!((s[0] - expect).abs() < 1e-4);
    }

    #[test]
    fn pinv_satisfies_moore_penrose() {
        let mut rng = init::rng(6);
        let a = init::uniform(&[5, 3], -1.0, 1.0, &mut rng);
        let p = pinv(&a, 1e-6).unwrap();
        assert_eq!(p.dims(), &[3, 5]);
        // A · A⁺ · A = A.
        let apa = matmul(&matmul(&a, &p).unwrap(), &a).unwrap();
        assert!(approx_eq(&apa, &a, 1e-3));
        // A⁺ · A · A⁺ = A⁺.
        let pap = matmul(&matmul(&p, &a).unwrap(), &p).unwrap();
        assert!(approx_eq(&pap, &p, 1e-3));
    }

    #[test]
    fn lstsq_overdetermined() {
        let mut rng = init::rng(7);
        let a = init::uniform(&[10, 3], -1.0, 1.0, &mut rng);
        let x_true = init::uniform(&[3, 2], -1.0, 1.0, &mut rng);
        let b = matmul(&a, &x_true).unwrap();
        let x = lstsq(&a, &b).unwrap();
        assert!(approx_eq(&x, &x_true, 1e-3));
    }

    #[test]
    fn lstsq_rank_deficient_falls_back() {
        // Duplicate column makes AᵀA singular; pinv path must engage.
        let a = Tensor::from_vec(
            vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0],
            &[4, 2],
        )
        .unwrap();
        let b = Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0], &[4, 1]).unwrap();
        let x = lstsq(&a, &b).unwrap();
        // Minimal-norm solution: both coefficients 1.
        let back = matmul(&a, &x).unwrap();
        assert!(approx_eq(&back, &b, 1e-3));
    }
}
