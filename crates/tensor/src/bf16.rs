//! bf16 storage with f32 accumulation.
//!
//! bf16 (bfloat16) is the **top half of an IEEE-754 f32**: 1 sign bit,
//! the same 8 exponent bits, and the 7 highest mantissa bits. That makes
//! the two conversions asymmetric in a way this module leans on:
//!
//! * **Widening (`bf16 → f32`) is exact** — shift the 16 stored bits into
//!   the top of a `u32` and reinterpret. No rounding, no special cases.
//! * **Narrowing (`f32 → bf16`) rounds** — round-to-nearest-even on the
//!   16 truncated mantissa bits (the IEEE default rounding mode, and what
//!   hardware bf16 converters implement). NaNs keep their sign and top
//!   payload bits with the quiet bit forced so a payload of trailing
//!   zeros cannot truncate into an infinity.
//!
//! The mixed-precision contract everywhere in this repo is **bf16
//! storage, f32 accumulation**: bf16 buffers are widened (exactly) to f32
//! at the edge of a kernel — e.g. at GEMM pack time, see
//! `ops::microkernel` — and all arithmetic then runs in the existing f32
//! kernels with their bitwise-pinned accumulation order. Rounding happens
//! only when a result is *stored* as bf16, never inside an accumulation.
//! Consequently a bf16-sourced kernel is bitwise identical to the f32
//! kernel applied to the widened inputs, and the only error vs a pure-f32
//! pipeline is the initial storage rounding: one half-ULP of bf16
//! (relative ≤ 2⁻⁸) per stored value.
//!
//! The serving/bench code gates bf16 storage behind [`enabled`]
//! (`METALORA_BF16=1`, default **off** — f32 stays the golden path).

use crate::{Result, Tensor, TensorError};
use std::sync::atomic::{AtomicU8, Ordering::Relaxed};
use std::sync::OnceLock;

// Tri-state override mirroring `ops::microkernel`'s tile-grid knob: 0/1
// set programmatically, 2 = unset (fall back to METALORA_BF16, then off).
static BF16_OVERRIDE: AtomicU8 = AtomicU8::new(2);

/// Enables/disables the bf16 storage paths programmatically, overriding
/// the `METALORA_BF16` environment variable.
pub fn set_enabled(on: bool) {
    BF16_OVERRIDE.store(on as u8, Relaxed);
}

/// Whether bf16 storage is on (the [`set_enabled`] override if set, else
/// `METALORA_BF16=1` — anything else, including unset, leaves it off).
pub fn enabled() -> bool {
    match BF16_OVERRIDE.load(Relaxed) {
        0 => false,
        1 => true,
        _ => {
            static FROM_ENV: OnceLock<bool> = OnceLock::new();
            *FROM_ENV.get_or_init(|| {
                std::env::var("METALORA_BF16").map(|s| s.trim() == "1").unwrap_or(false)
            })
        }
    }
}

/// Narrows an f32 to bf16 bits, round-to-nearest-even.
#[inline]
pub fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Keep sign + top payload bits; force the quiet bit so the
        // truncated payload can never read back as an infinity.
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Round-to-nearest-even on the 16 dropped bits: add 0x7FFF plus the
    // LSB of the kept half (the tie-to-even term). Cannot overflow u32:
    // the largest non-NaN input is 0xFF80_0000 (−inf). Finite values too
    // large for bf16 correctly round up to the infinity pattern.
    let rounded = bits + 0x7FFF + ((bits >> 16) & 1);
    (rounded >> 16) as u16
}

/// Widens bf16 bits to the exactly-representable f32.
#[inline]
pub fn bf16_to_f32(h: u16) -> f32 {
    f32::from_bits((h as u32) << 16)
}

/// Narrows a slice of f32 into preallocated bf16 storage.
pub fn narrow_slice(src: &[f32], dst: &mut [u16]) {
    assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f32_to_bf16(s);
    }
}

/// Widens a slice of bf16 bits into preallocated f32 storage (exact).
pub fn widen_slice(src: &[u16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = bf16_to_f32(s);
    }
}

/// A packed row-major bf16 buffer — the storage-only sibling of
/// [`Tensor`]: same dims contract, half the bytes, no arithmetic of its
/// own. Kernels widen it (exactly) back to f32 before computing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bf16Buf {
    dims: Vec<usize>,
    data: Vec<u16>,
}

impl Bf16Buf {
    /// Rounds an f32 slice into a new bf16 buffer (RNE per element).
    /// Records the narrowing with the obs bf16 storage counters.
    pub fn from_f32(data: &[f32], dims: &[usize]) -> Result<Self> {
        let n: usize = dims.iter().product();
        if n != data.len() {
            return Err(TensorError::InvalidArgument(format!(
                "Bf16Buf::from_f32: {} values do not fill dims {:?}",
                data.len(),
                dims
            )));
        }
        let mut out = vec![0u16; n];
        narrow_slice(data, &mut out);
        metalora_obs::counters::record_bf16_snapshot(n as u64);
        Ok(Bf16Buf { dims: dims.to_vec(), data: out })
    }

    /// Rounds a tensor into a new bf16 buffer — the snapshot entry point
    /// for frozen backbone weights and adapter factors.
    pub fn from_tensor(t: &Tensor) -> Self {
        Self::from_f32(t.data(), t.dims()).expect("tensor data always fills its dims")
    }

    /// Dimensions, row-major.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The raw bf16 bit patterns, row-major.
    pub fn data(&self) -> &[u16] {
        &self.data
    }

    /// Bytes this buffer actually occupies (2 per element).
    pub fn byte_len(&self) -> usize {
        2 * self.data.len()
    }

    /// Bytes the same values would occupy stored as f32.
    pub fn f32_equiv_byte_len(&self) -> usize {
        4 * self.data.len()
    }

    /// Widens back to an f32 tensor (exact — see module docs).
    pub fn widen(&self) -> Tensor {
        let mut out = vec![0.0f32; self.data.len()];
        widen_slice(&self.data, &mut out);
        Tensor::from_vec(out, &self.dims).expect("len matches dims by construction")
    }

    /// Widens into a preallocated f32 slice (exact).
    pub fn widen_into(&self, dst: &mut [f32]) {
        widen_slice(&self.data, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widen_is_exact_on_all_bf16_patterns() {
        // Every non-NaN bf16 value must round-trip bf16 → f32 → bf16 to
        // the identical bit pattern (widening is exact, and RNE of an
        // exactly-representable value is the value itself).
        for h in 0..=u16::MAX {
            let f = bf16_to_f32(h);
            if f.is_nan() {
                continue;
            }
            assert_eq!(f32_to_bf16(f), h, "pattern {h:#06x} failed to round-trip");
        }
    }

    #[test]
    fn narrow_rounds_to_nearest_even() {
        // 1.0 = 0x3F80_0000. The bf16 step at this magnitude is 2^-7.
        let ulp = 2.0f32.powi(-7);
        // Just below the halfway point rounds down, just above rounds up.
        assert_eq!(f32_to_bf16(1.0 + 0.49 * ulp), f32_to_bf16(1.0));
        assert_eq!(bf16_to_f32(f32_to_bf16(1.0 + 0.51 * ulp)), 1.0 + ulp);
        // Exact ties go to the even mantissa: 1.0 has an even (zero)
        // mantissa LSB, so 1.0 + ulp/2 ties down to 1.0; (1.0 + ulp) has
        // an odd LSB, so (1.0 + ulp) + ulp/2 ties up to 1.0 + 2·ulp.
        assert_eq!(bf16_to_f32(f32_to_bf16(1.0 + 0.5 * ulp)), 1.0);
        assert_eq!(bf16_to_f32(f32_to_bf16(1.0 + 1.5 * ulp)), 1.0 + 2.0 * ulp);
    }

    #[test]
    fn specials_survive() {
        assert_eq!(bf16_to_f32(f32_to_bf16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(bf16_to_f32(f32_to_bf16(f32::NEG_INFINITY)), f32::NEG_INFINITY);
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
        // A NaN whose payload lives entirely in the truncated bits must
        // stay a NaN, not collapse to an infinity.
        let sneaky = f32::from_bits(0x7F80_0001);
        assert!(bf16_to_f32(f32_to_bf16(sneaky)).is_nan());
        // Signed zeros keep their sign bit.
        assert_eq!(f32_to_bf16(-0.0).to_owned() >> 15, 1);
        assert_eq!(f32_to_bf16(0.0) >> 15, 0);
        // Values beyond the largest finite bf16 round up to infinity.
        assert_eq!(bf16_to_f32(f32_to_bf16(f32::MAX)), f32::INFINITY);
    }

    #[test]
    fn relative_error_is_bounded_by_half_ulp() {
        // RNE guarantees |x - bf16(x)| ≤ 2^-8 · |x| for normal x.
        let mut x = 1.234e-20f32;
        while x < 1e20 {
            let err = (bf16_to_f32(f32_to_bf16(x)) - x).abs();
            assert!(err <= x.abs() * 2.0f32.powi(-8), "x={x}: err {err}");
            x *= 3.7;
        }
    }

    #[test]
    fn buf_round_trips_dims_and_values() {
        let t = Tensor::from_vec(vec![0.5, -1.25, 3.0, 0.0, 2.5, -8.0], &[2, 3]).unwrap();
        let b = Bf16Buf::from_tensor(&t);
        assert_eq!(b.dims(), &[2, 3]);
        assert_eq!(b.len(), 6);
        assert_eq!((b.byte_len(), b.f32_equiv_byte_len()), (12, 24));
        // These values are all exactly representable in bf16.
        let w = b.widen();
        assert_eq!(w.data(), t.data());
        assert_eq!(w.dims(), t.dims());
    }

    #[test]
    fn from_f32_validates_dims() {
        assert!(Bf16Buf::from_f32(&[1.0, 2.0], &[3]).is_err());
        assert!(Bf16Buf::from_f32(&[], &[0, 5]).is_ok());
    }

    #[test]
    fn knob_round_trips_and_defaults_off() {
        // Exercises only the programmatic override (the env fallback is
        // cached process-wide and covered by the CI bf16 job).
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
