//! A mini-einsum: readable tensor-network expressions for tests, examples
//! and the figure-verification benches.
//!
//! Grammar: `"ab,bc->ac"` — lowercase ASCII labels, one or more operands,
//! an explicit output. Unlike the fast pairwise [`contract`] kernel, this
//! evaluator is fully general: labels may appear in any number of operands
//! (hyper-edges, as the CP chain `"ir,ro,r->io"` of Eq. 6 requires) and may
//! repeat within an operand (diagonals). Evaluation is direct summation —
//! O(∏out · ∏summed) — which makes `einsum` the *reference oracle* the unit
//! and property tests check the optimised kernels against. Library hot
//! paths use [`contract`] / dedicated kernels instead.
//!
//! [`contract`]: crate::contract::contract

use crate::shape::{IndexIter, Shape};
use crate::{Result, Tensor, TensorError};

/// One parsed operand: its index labels.
type Labels = Vec<char>;

fn parse_spec(spec: &str) -> Result<(Vec<Labels>, Labels)> {
    let (inputs, output) = spec.split_once("->").ok_or_else(|| {
        TensorError::InvalidArgument(format!("einsum spec `{spec}` missing `->`"))
    })?;
    let parse_side = |s: &str| -> Result<Labels> {
        let mut v = Vec::new();
        for ch in s.chars() {
            if !ch.is_ascii_lowercase() {
                return Err(TensorError::InvalidArgument(format!(
                    "einsum label `{ch}` (only a-z allowed)"
                )));
            }
            v.push(ch);
        }
        Ok(v)
    };
    let ins: Result<Vec<Labels>> = inputs.split(',').map(parse_side).collect();
    let ins = ins?;
    let out = parse_side(output)?;
    let mut sorted = out.clone();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != out.len() {
        return Err(TensorError::InvalidArgument(
            "einsum output repeats a label".into(),
        ));
    }
    Ok((ins, out))
}

/// Evaluates an einsum expression over the given operands.
pub fn einsum(spec: &str, operands: &[&Tensor]) -> Result<Tensor> {
    let (input_labels, out_labels) = parse_spec(spec)?;
    if input_labels.len() != operands.len() {
        return Err(TensorError::InvalidArgument(format!(
            "einsum spec has {} operands but {} tensors given",
            input_labels.len(),
            operands.len()
        )));
    }

    // Assign a consistent extent to every label.
    let mut extents: Vec<(char, usize)> = Vec::new();
    for (labels, t) in input_labels.iter().zip(operands) {
        if labels.len() != t.rank() {
            return Err(TensorError::InvalidArgument(format!(
                "einsum operand `{}` has {} labels for rank-{} tensor",
                labels.iter().collect::<String>(),
                labels.len(),
                t.rank()
            )));
        }
        for (axis, &c) in labels.iter().enumerate() {
            let d = t.dims()[axis];
            match extents.iter().find(|(l, _)| *l == c) {
                Some(&(_, e)) if e != d => {
                    return Err(TensorError::ShapeMismatch {
                        op: "einsum",
                        lhs: vec![e],
                        rhs: vec![d],
                    });
                }
                Some(_) => {}
                None => extents.push((c, d)),
            }
        }
    }
    for &c in &out_labels {
        if !extents.iter().any(|(l, _)| *l == c) {
            return Err(TensorError::InvalidArgument(format!(
                "einsum output label `{c}` not present in any operand"
            )));
        }
    }

    let extent_of = |c: char| -> usize {
        extents
            .iter()
            .find(|(l, _)| *l == c)
            .expect("label validated")
            .1
    };
    let sum_labels: Labels = extents
        .iter()
        .map(|&(c, _)| c)
        .filter(|c| !out_labels.contains(c))
        .collect();

    let out_dims: Vec<usize> = out_labels.iter().map(|&c| extent_of(c)).collect();
    let sum_dims: Vec<usize> = sum_labels.iter().map(|&c| extent_of(c)).collect();

    // Pre-resolve, per operand axis, where in (out_idx ++ sum_idx) its
    // index lives — avoids char lookups in the hot loop.
    let slot_of = |c: char| -> usize {
        if let Some(p) = out_labels.iter().position(|&x| x == c) {
            p
        } else {
            out_labels.len() + sum_labels.iter().position(|&x| x == c).expect("covered")
        }
    };
    let operand_slots: Vec<Vec<usize>> = input_labels
        .iter()
        .map(|labels| labels.iter().map(|&c| slot_of(c)).collect())
        .collect();
    let strides: Vec<Vec<usize>> = operands.iter().map(|t| t.shape().strides()).collect();

    let out_shape = Shape::new(&out_dims);
    let sum_shape = Shape::new(&sum_dims);
    let mut out = Tensor::zeros(&out_dims);
    let mut combined = vec![0usize; out_dims.len() + sum_dims.len()];
    for (flat, out_idx) in IndexIter::new(&out_shape).enumerate() {
        combined[..out_idx.len()].copy_from_slice(&out_idx);
        let mut acc = 0.0f32;
        for sum_idx in IndexIter::new(&sum_shape) {
            combined[out_idx.len()..].copy_from_slice(&sum_idx);
            let mut prod = 1.0f32;
            for (op, (slots, st)) in operands.iter().zip(operand_slots.iter().zip(&strides)) {
                let mut off = 0usize;
                for (&slot, &stride) in slots.iter().zip(st) {
                    off += combined[slot] * stride;
                }
                prod *= op.data()[off];
                if prod == 0.0 {
                    break;
                }
            }
            acc += prod;
        }
        out.data_mut()[flat] = acc;
    }
    // Direct summation: each (out, summed) index pair multiplies all
    // operands together and accumulates once.
    let terms = out.len() as u64 * sum_dims.iter().product::<usize>() as u64;
    let in_elems: usize = operands.iter().map(|t| t.len()).sum();
    metalora_obs::counters::record_kernel(
        metalora_obs::counters::Kernel::Einsum,
        terms * (operands.len() as u64 + 1),
        (4 * (in_elems + out.len())) as u64,
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, init, ops};

    #[test]
    fn einsum_matmul() {
        let mut r = init::rng(1);
        let a = init::uniform(&[3, 4], -1.0, 1.0, &mut r);
        let b = init::uniform(&[4, 5], -1.0, 1.0, &mut r);
        let e = einsum("ij,jk->ik", &[&a, &b]).unwrap();
        assert!(approx_eq(&e, &ops::matmul(&a, &b).unwrap(), 1e-5));
    }

    #[test]
    fn einsum_output_permutation() {
        let mut r = init::rng(2);
        let a = init::uniform(&[3, 4], -1.0, 1.0, &mut r);
        let b = init::uniform(&[4, 5], -1.0, 1.0, &mut r);
        let e = einsum("ij,jk->ki", &[&a, &b]).unwrap();
        let m = ops::transpose2d(&ops::matmul(&a, &b).unwrap()).unwrap();
        assert!(approx_eq(&e, &m, 1e-5));
    }

    #[test]
    fn einsum_cp_hyperedge_chain() {
        // The CP chain of Eq. 6: sum_r A[i,r] B[r,o] c[r] — label r appears
        // in all three operands.
        let mut rng = init::rng(3);
        let a = init::uniform(&[6, 3], -1.0, 1.0, &mut rng);
        let b = init::uniform(&[3, 5], -1.0, 1.0, &mut rng);
        let c = init::uniform(&[3], -1.0, 1.0, &mut rng);
        let e = einsum("ir,ro,r->io", &[&a, &b, &c]).unwrap();
        // Oracle: scale B's rows by c, then matmul.
        let mut bs = b.clone();
        for r in 0..3 {
            for o in 0..5 {
                let v = bs.get(&[r, o]).unwrap() * c.data()[r];
                bs.set(&[r, o], v).unwrap();
            }
        }
        let oracle = ops::matmul(&a, &bs).unwrap();
        assert!(approx_eq(&e, &oracle, 1e-4));
    }

    #[test]
    fn einsum_sums_out_free_labels() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let e = einsum("ij->i", &[&m]).unwrap();
        assert_eq!(e.data(), &[3.0, 7.0]);
    }

    #[test]
    fn einsum_trace_and_diagonal() {
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let tr = einsum("ii->", &[&m]).unwrap();
        assert_eq!(tr.item().unwrap(), 5.0);
        let d = einsum("ii->i", &[&m]).unwrap();
        assert_eq!(d.data(), &[1.0, 4.0]);
    }

    #[test]
    fn einsum_batched_outer() {
        // b is a genuine batch label shared across operands and output.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let y = Tensor::from_vec(vec![1.0, 10.0, 100.0, 1000.0], &[2, 2]).unwrap();
        let e = einsum("bi,bj->bij", &[&x, &y]).unwrap();
        assert_eq!(e.dims(), &[2, 2, 2]);
        assert_eq!(e.get(&[0, 0, 1]).unwrap(), 1.0 * 10.0);
        assert_eq!(e.get(&[1, 1, 0]).unwrap(), 4.0 * 100.0);
    }

    #[test]
    fn einsum_outer_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let e = einsum("i,j->ij", &[&a, &b]).unwrap();
        assert_eq!(e.data(), &[3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn einsum_rejects_invalid_specs() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(einsum("ij,jk", &[&t, &t]).is_err()); // missing ->
        assert!(einsum("ij->ii", &[&t]).is_err()); // repeated output
        assert!(einsum("ij->ik", &[&t]).is_err()); // unknown output label
        assert!(einsum("iJ->i", &[&t]).is_err()); // non-lowercase
        assert!(einsum("ijk->i", &[&t]).is_err()); // rank mismatch
        assert!(einsum("ij,jk->ik", &[&t]).is_err()); // operand count
        let u = Tensor::zeros(&[2, 3]);
        assert!(einsum("ij,jk->ik", &[&u, &u]).is_err()); // j: 3 vs 2
    }

    #[test]
    fn einsum_agrees_with_contract_kernel() {
        let mut r = init::rng(8);
        let a = init::uniform(&[3, 4, 5], -1.0, 1.0, &mut r);
        let b = init::uniform(&[5, 4, 2], -1.0, 1.0, &mut r);
        let fast = crate::contract::contract(&a, &b, &[1, 2], &[1, 0]).unwrap();
        let slow = einsum("ijk,kjm->im", &[&a, &b]).unwrap();
        assert!(approx_eq(&fast, &slow, 1e-4));
    }

    #[test]
    fn einsum_tensor_ring_chain() {
        // Eq. 7: sum_{r0,r1,r2} A[r0,i,r1] B[r1,o,r2] C[r2,r0].
        let (r0, i, o) = (2usize, 4usize, 3usize);
        let mut rng = init::rng(5);
        let a = init::uniform(&[r0, i, r0], -1.0, 1.0, &mut rng);
        let b = init::uniform(&[r0, o, r0], -1.0, 1.0, &mut rng);
        let c = init::uniform(&[r0, r0], -1.0, 1.0, &mut rng);
        let e = einsum("xiy,yoz,zx->io", &[&a, &b, &c]).unwrap();
        assert_eq!(e.dims(), &[i, o]);
        let mut oracle = Tensor::zeros(&[i, o]);
        for ii in 0..i {
            for oo in 0..o {
                let mut acc = 0.0;
                for x in 0..r0 {
                    for y in 0..r0 {
                        for z in 0..r0 {
                            acc += a.get(&[x, ii, y]).unwrap()
                                * b.get(&[y, oo, z]).unwrap()
                                * c.get(&[z, x]).unwrap();
                        }
                    }
                }
                oracle.set(&[ii, oo], acc).unwrap();
            }
        }
        assert!(approx_eq(&e, &oracle, 1e-4));
    }
}
