//! Property tests for the bf16 storage layer: conversion round-trips,
//! RNE error bounds, rounding monotonicity, and the mixed-precision GEMM
//! contract (bf16-sourced products are bitwise the f32 products of the
//! widened operands; stored bf16 results round exactly once at the end).

use metalora_tensor::bf16::{bf16_to_f32, f32_to_bf16, Bf16Buf};
use metalora_tensor::ops::{matmul, matmul_bf16, matmul_bf16_weights};
use metalora_tensor::init;
use proptest::prelude::*;

/// Deterministic wide-magnitude f32 from three small draws: covers
/// ~2^-24..2^24 at both signs without drawing raw bit patterns.
fn compose_f32(sign: u32, exp: i32, frac: u32) -> f32 {
    let mag = (1.0 + frac as f32 / 1_000_000.0) * 2.0f32.powi(exp - 24);
    if sign == 0 {
        mag
    } else {
        -mag
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_bf16_patterns_round_trip(h in 0u32..65536) {
        // Widening is exact, so narrow(widen(h)) must reproduce h for
        // every non-NaN pattern (NaNs round-trip to *a* NaN, quiet bit
        // forced — identity of payload bits is not promised).
        let h = h as u16;
        let f = bf16_to_f32(h);
        if f.is_nan() {
            prop_assert!(bf16_to_f32(f32_to_bf16(f)).is_nan());
        } else {
            prop_assert_eq!(f32_to_bf16(f), h);
        }
    }

    #[test]
    fn narrowing_error_is_within_half_bf16_ulp(
        sign in 0u32..2, exp in 0i32..49, frac in 0u32..1_000_000,
    ) {
        // RNE: |x - bf16(x)| ≤ 2^-8·|x| for normal x.
        let x = compose_f32(sign, exp, frac);
        let back = bf16_to_f32(f32_to_bf16(x));
        prop_assert!((back - x).abs() <= x.abs() * 2.0f32.powi(-8),
            "x={} back={}", x, back);
    }

    #[test]
    fn rounding_is_monotonic(
        sign_a in 0u32..2, exp_a in 0i32..49, frac_a in 0u32..1_000_000,
        sign_b in 0u32..2, exp_b in 0i32..49, frac_b in 0u32..1_000_000,
    ) {
        // x ≤ y ⇒ bf16(x) ≤ bf16(y): RNE never reorders values. (Equal
        // inputs trivially round equal; the interesting case is nearby
        // values collapsing onto the same bf16, which is allowed.)
        let (mut x, mut y) = (compose_f32(sign_a, exp_a, frac_a), compose_f32(sign_b, exp_b, frac_b));
        if x > y {
            std::mem::swap(&mut x, &mut y);
        }
        prop_assert!(bf16_to_f32(f32_to_bf16(x)) <= bf16_to_f32(f32_to_bf16(y)),
            "rounding reordered {} and {}", x, y);
    }

    #[test]
    fn buf_round_trips_through_widen(
        rows in 1usize..7, cols in 1usize..9, seed in 0u64..1000,
    ) {
        // narrow → widen → narrow is a fixed point: the second narrowing
        // sees exactly-representable values and must change nothing.
        let mut rng = init::rng(seed);
        let t = init::uniform(&[rows, cols], -8.0, 8.0, &mut rng);
        let b = Bf16Buf::from_tensor(&t);
        let b2 = Bf16Buf::from_tensor(&b.widen());
        prop_assert_eq!(b, b2);
    }

    #[test]
    fn bf16_weights_matmul_is_bitwise_widened_matmul(
        m in 1usize..12, k in 1usize..40, n in 1usize..24, seed in 0u64..1000,
    ) {
        let mut rng = init::rng(seed);
        let x = init::uniform(&[m, k], -2.0, 2.0, &mut rng);
        let w = Bf16Buf::from_tensor(&init::uniform(&[k, n], -2.0, 2.0, &mut rng));
        let got = matmul_bf16_weights(&x, &w).unwrap();
        let expect = matmul(&x, &w.widen()).unwrap();
        prop_assert_eq!(got.dims(), expect.dims());
        prop_assert!(got.data().iter().zip(expect.data())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
            "bf16-weight product diverged from widened f32 product");
    }

    #[test]
    fn bf16_matmul_rounds_the_widened_product_once(
        m in 1usize..10, k in 1usize..40, n in 1usize..20, seed in 0u64..1000,
    ) {
        let mut rng = init::rng(seed);
        let a = Bf16Buf::from_tensor(&init::uniform(&[m, k], -2.0, 2.0, &mut rng));
        let b = Bf16Buf::from_tensor(&init::uniform(&[k, n], -2.0, 2.0, &mut rng));
        let got = matmul_bf16(&a, &b).unwrap();
        let expect = Bf16Buf::from_tensor(&matmul(&a.widen(), &b.widen()).unwrap());
        prop_assert_eq!(got, expect);
    }
}
