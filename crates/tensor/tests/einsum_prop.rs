//! Property tests pinning `einsum` and `contract` to handwritten loop
//! oracles: for random shapes and values, the optimised paths must agree
//! with the O(everything) nested-loop definition of each contraction.

use metalora_tensor::contract::{contract, contract_naive};
use metalora_tensor::einsum::einsum;
use metalora_tensor::{approx_eq, init, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn einsum_matmul_matches_loops(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000,
    ) {
        let mut rng = init::rng(seed);
        let a = init::uniform(&[m, k], -2.0, 2.0, &mut rng);
        let b = init::uniform(&[k, n], -2.0, 2.0, &mut rng);
        let got = einsum("ab,bc->ac", &[&a, &b]).unwrap();

        let mut expect = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for l in 0..k {
                    acc += a.data()[i * k + l] * b.data()[l * n + j];
                }
                expect.data_mut()[i * n + j] = acc;
            }
        }
        prop_assert!(approx_eq(&got, &expect, 1e-4));
    }

    #[test]
    fn einsum_cp_chain_matches_loops(
        i in 1usize..5, r in 1usize..5, o in 1usize..5, seed in 0u64..1000,
    ) {
        // The Eq. 6 kernel: ΔW[i,o] = Σ_r A[i,r]·B[r,o]·c[r].
        let mut rng = init::rng(seed);
        let a = init::uniform(&[i, r], -2.0, 2.0, &mut rng);
        let b = init::uniform(&[r, o], -2.0, 2.0, &mut rng);
        let c = init::uniform(&[r], -2.0, 2.0, &mut rng);
        let got = einsum("ir,ro,r->io", &[&a, &b, &c]).unwrap();

        let mut expect = Tensor::zeros(&[i, o]);
        for ii in 0..i {
            for oo in 0..o {
                let mut acc = 0.0f32;
                for rr in 0..r {
                    acc += a.data()[ii * r + rr] * b.data()[rr * o + oo] * c.data()[rr];
                }
                expect.data_mut()[ii * o + oo] = acc;
            }
        }
        prop_assert!(approx_eq(&got, &expect, 1e-4));
    }

    #[test]
    fn einsum_tr_cores_match_loops(
        i in 1usize..4, o in 1usize..4, r in 1usize..4, seed in 0u64..1000,
    ) {
        // The Eq. 7 kernel: ΔW[i,o] = Σ_{x,y,z} A[x,i,y]·B[y,o,z]·C[z,x].
        let mut rng = init::rng(seed);
        let a = init::uniform(&[r, i, r], -2.0, 2.0, &mut rng);
        let b = init::uniform(&[r, o, r], -2.0, 2.0, &mut rng);
        let c = init::uniform(&[r, r], -2.0, 2.0, &mut rng);
        let got = einsum("xiy,yoz,zx->io", &[&a, &b, &c]).unwrap();

        let mut expect = Tensor::zeros(&[i, o]);
        for ii in 0..i {
            for oo in 0..o {
                let mut acc = 0.0f32;
                for x in 0..r {
                    for y in 0..r {
                        for z in 0..r {
                            acc += a.data()[(x * i + ii) * r + y]
                                * b.data()[(y * o + oo) * r + z]
                                * c.data()[z * r + x];
                        }
                    }
                }
                expect.data_mut()[ii * o + oo] = acc;
            }
        }
        prop_assert!(approx_eq(&got, &expect, 1e-3));
    }

    #[test]
    fn einsum_inner_product_matches_loop(
        n in 1usize..20, seed in 0u64..1000,
    ) {
        let mut rng = init::rng(seed);
        let a = init::uniform(&[n], -2.0, 2.0, &mut rng);
        let b = init::uniform(&[n], -2.0, 2.0, &mut rng);
        let got = einsum("a,a->", &[&a, &b]).unwrap();
        let expect: f32 = a.data().iter().zip(b.data()).map(|(&x, &y)| x * y).sum();
        prop_assert!((got.item().unwrap() - expect).abs() <= 1e-4 * (1.0 + expect.abs()));
    }

    #[test]
    fn contract_matches_naive_single_axis(
        d0 in 1usize..4, d1 in 1usize..4, s in 1usize..4,
        e0 in 1usize..4, seed in 0u64..1000,
        ax_a in 0usize..3, ax_b in 0usize..2,
    ) {
        // a has the shared axis s at position ax_a, b at position ax_b.
        let mut a_dims = vec![d0, d1];
        a_dims.insert(ax_a.min(2), s);
        let mut b_dims = vec![e0];
        b_dims.insert(ax_b.min(1), s);
        let mut rng = init::rng(seed);
        let a = init::uniform(&a_dims, -2.0, 2.0, &mut rng);
        let b = init::uniform(&b_dims, -2.0, 2.0, &mut rng);
        let ia = ax_a.min(2);
        let ib = ax_b.min(1);
        let got = contract(&a, &b, &[ia], &[ib]).unwrap();
        let expect = contract_naive(&a, &b, &[ia], &[ib]).unwrap();
        prop_assert_eq!(got.dims(), expect.dims());
        prop_assert!(approx_eq(&got, &expect, 1e-3));
    }

    #[test]
    fn contract_matches_naive_double_axis(
        m in 1usize..4, s0 in 1usize..4, s1 in 1usize..4, n in 1usize..4,
        seed in 0u64..1000,
    ) {
        let mut rng = init::rng(seed);
        let a = init::uniform(&[m, s0, s1], -2.0, 2.0, &mut rng);
        let b = init::uniform(&[s0, s1, n], -2.0, 2.0, &mut rng);
        let got = contract(&a, &b, &[1, 2], &[0, 1]).unwrap();
        let expect = contract_naive(&a, &b, &[1, 2], &[0, 1]).unwrap();
        prop_assert_eq!(got.dims(), expect.dims());
        prop_assert!(approx_eq(&got, &expect, 1e-3));
    }
}
