//! Workspace-arena behaviour at the 256 MB pooled-bytes cap.
//!
//! The unit tests in `workspace.rs` cover reuse and aliasing; nothing
//! there drives the pool near [`workspace::MAX_POOLED_BYTES`]. These
//! tests live in their own integration binary (own process, own pool) so
//! filling the pool to its cap cannot disturb the pointer-reuse
//! assertions of the unit suite — and they still serialise among
//! themselves because they share that process-wide pool.

use metalora_tensor::workspace::{self, MAX_POOLED_BYTES};
use std::sync::{Mutex, MutexGuard};

/// All tests here mutate the one process-wide pool; run them one at a
/// time and start each from a drained pool.
fn pool_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    workspace::clear();
    g
}

/// Floats whose 4-byte footprint is exactly the pooled-bytes cap.
const CAP_FLOATS: usize = MAX_POOLED_BYTES / 4;

#[test]
fn lease_exactly_at_cap_is_pooled() {
    let _g = pool_lock();
    // `give` keeps a buffer while pooled_bytes + bytes <= cap, so a
    // single buffer of exactly the cap must be accepted...
    let buf: Vec<f32> = Vec::with_capacity(CAP_FLOATS);
    assert_eq!(4 * buf.capacity(), MAX_POOLED_BYTES, "allocator changed the capacity");
    let ptr = buf.as_ptr();
    workspace::give(buf);
    // ...and the next same-bucket checkout gets that very allocation back.
    let lease = workspace::take(CAP_FLOATS);
    assert_eq!(lease.len(), CAP_FLOATS);
    assert_eq!(lease.as_ptr(), ptr, "at-cap buffer must be pooled and reused");
    drop(lease);
    workspace::clear();
}

#[test]
fn one_byte_over_cap_is_dropped() {
    let _g = pool_lock();
    // Fill the pool to the cap exactly.
    workspace::give(Vec::with_capacity(CAP_FLOATS));
    // Any further return — even a single-float buffer — would exceed the
    // cap and must be dropped, not pooled.
    let small: Vec<f32> = vec![7.0; 1];
    let small_ptr = small.as_ptr();
    workspace::give(small);
    // A checkout in the small bucket therefore misses: `take` zero-fills
    // only the grown tail, so a recycled buffer would still hold 7.0.
    let lease = workspace::take(1);
    assert!(
        lease.as_ptr() != small_ptr || lease[0] != 7.0,
        "over-cap return must not have been pooled"
    );
    drop(lease);
    workspace::clear();
}

#[test]
fn recycle_works_again_after_cap_pressure() {
    let _g = pool_lock();
    // Saturate the cap, bounce a return off it...
    workspace::give(Vec::with_capacity(CAP_FLOATS));
    workspace::give(Vec::with_capacity(1024));
    // ...then drain the big buffer out: the pool is empty again and the
    // cap headroom is restored, so recycling must resume normally.
    let big = workspace::take(CAP_FLOATS);
    let t = workspace::zeroed_tensor(&[256]);
    let ptr = t.data().as_ptr();
    workspace::recycle(t);
    let t2 = workspace::zeroed_tensor(&[256]);
    assert_eq!(t2.data().as_ptr(), ptr, "post-cap recycle must reuse the buffer");
    drop(big);
    workspace::clear();
}

#[test]
fn cap_sized_tensor_recycles_through_zeroed_tensor() {
    let _g = pool_lock();
    // The Tensor-based recycle path at the cap boundary: a zeroed tensor
    // of exactly cap bytes parks on recycle (pool empty → fits) and the
    // next zeroed_tensor of the same bucket reuses it, zero-filled.
    let t = workspace::zeroed_tensor(&[CAP_FLOATS]);
    let ptr = t.data().as_ptr();
    workspace::recycle(t);
    let t2 = workspace::zeroed_tensor(&[CAP_FLOATS]);
    assert_eq!(t2.data().as_ptr(), ptr);
    assert!(t2.data().iter().all(|&x| x == 0.0));
    workspace::recycle(t2);
    workspace::clear();
}
