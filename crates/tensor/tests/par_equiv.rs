//! Property tests asserting the parallel kernels are **bitwise identical**
//! to serial execution for every thread count, including more threads than
//! rows, and for degenerate shapes (1×N, N×1, empty dimensions).
//!
//! The threshold is forced to 0 so even tiny random shapes take the
//! parallel path, and a process-wide lock serialises the tests because the
//! thread settings are global.

use metalora_tensor::ops::{
    add_scaled, bmm, bmm_transpose_a, bmm_transpose_b, map, matmul, matmul_transpose_a,
    matmul_transpose_b, matvec, max_axis, sum_axis, zip_with,
};
use metalora_tensor::conv::{col2im, conv2d, im2col, ConvSpec};
use metalora_tensor::{init, par, Tensor};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Thread counts exercised per case: serial, even split, odd split, and
/// far more workers than most generated shapes have rows.
const THREADS: [usize; 4] = [1, 2, 7, 64];

static LOCK: Mutex<()> = Mutex::new(());

struct ParGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

fn force_parallel() -> ParGuard {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    par::set_par_threshold(0);
    ParGuard(g)
}

impl Drop for ParGuard {
    fn drop(&mut self) {
        par::set_num_threads(0);
        par::set_par_threshold(usize::MAX);
    }
}

/// Runs `f` serially and under each thread count, asserting bitwise-equal
/// tensor data every time.
fn assert_bitwise_invariant(f: impl Fn() -> Tensor) {
    par::set_num_threads(1);
    let serial = f();
    for &t in &THREADS[1..] {
        par::set_num_threads(t);
        let parallel = f();
        assert_eq!(
            serial.dims(),
            parallel.dims(),
            "shape changed at {t} threads"
        );
        let same = serial
            .data()
            .iter()
            .zip(parallel.data())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "bitwise mismatch at {t} threads");
    }
}

fn rand_t(dims: &[usize], seed: u64) -> Tensor {
    let mut r = init::rng(seed);
    init::uniform(dims, -1.0, 1.0, &mut r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_family_bitwise(
        m in 1usize..40,
        k in 0usize..40,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let _g = force_parallel();
        let a = rand_t(&[m, k], seed);
        let b = rand_t(&[k, n], seed + 1);
        assert_bitwise_invariant(|| matmul(&a, &b).unwrap());

        let at = rand_t(&[k, m], seed + 2);
        assert_bitwise_invariant(|| matmul_transpose_a(&at, &b).unwrap());

        let bt = rand_t(&[n, k], seed + 3);
        assert_bitwise_invariant(|| matmul_transpose_b(&a, &bt).unwrap());

        let x = rand_t(&[k], seed + 4);
        assert_bitwise_invariant(|| matvec(&a, &x).unwrap());
    }

    #[test]
    fn matmul_degenerate_rows_bitwise(n in 1usize..60, seed in 0u64..1000) {
        let _g = force_parallel();
        // 1×N (single output row — fewer rows than every worker count).
        let a = rand_t(&[1, n], seed);
        let b = rand_t(&[n, n], seed + 1);
        assert_bitwise_invariant(|| matmul(&a, &b).unwrap());
        // N×1 output column.
        let c = rand_t(&[n, n], seed + 2);
        let d = rand_t(&[n, 1], seed + 3);
        assert_bitwise_invariant(|| matmul(&c, &d).unwrap());
        // Empty inner dimension: all-zero output, still must agree.
        let e = Tensor::zeros(&[n, 0]);
        let f = Tensor::zeros(&[0, n]);
        assert_bitwise_invariant(|| matmul(&e, &f).unwrap());
    }

    #[test]
    fn bmm_family_bitwise(
        bs in 1usize..5,
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let _g = force_parallel();
        let a = rand_t(&[bs, m, k], seed);
        let b = rand_t(&[bs, k, n], seed + 1);
        assert_bitwise_invariant(|| bmm(&a, &b).unwrap());

        let at = rand_t(&[bs, k, m], seed + 2);
        assert_bitwise_invariant(|| bmm_transpose_a(&at, &b).unwrap());

        let bt = rand_t(&[bs, n, k], seed + 3);
        assert_bitwise_invariant(|| bmm_transpose_b(&a, &bt).unwrap());
    }

    #[test]
    fn conv_and_im2col_bitwise(
        n in 1usize..3,
        c in 1usize..4,
        hw in 3usize..10,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let _g = force_parallel();
        let spec = ConvSpec::new(k, stride, pad).unwrap();
        let x = rand_t(&[n, c, hw, hw], seed);
        assert_bitwise_invariant(|| im2col(&x, spec, spec).unwrap());

        let w = rand_t(&[k, k, c, 3], seed + 1);
        assert_bitwise_invariant(|| conv2d(&x, &w, spec, spec).unwrap());

        let cols = im2col(&x, spec, spec).unwrap();
        let g = rand_t(cols.dims(), seed + 2);
        assert_bitwise_invariant(|| col2im(&g, n, c, hw, hw, spec, spec).unwrap());
    }

    #[test]
    fn elementwise_and_reduce_bitwise(
        rows in 1usize..30,
        cols in 1usize..30,
        seed in 0u64..1000,
    ) {
        let _g = force_parallel();
        let a = rand_t(&[rows, cols], seed);
        let b = rand_t(&[rows, cols], seed + 1);
        assert_bitwise_invariant(|| map(&a, |x| x.tanh()));
        assert_bitwise_invariant(|| zip_with(&a, &b, |x, y| x * y + 0.5).unwrap());
        assert_bitwise_invariant(|| add_scaled(&a, &b, 0.37).unwrap());
        assert_bitwise_invariant(|| sum_axis(&a, 0).unwrap());
        assert_bitwise_invariant(|| sum_axis(&a, 1).unwrap());
        assert_bitwise_invariant(|| max_axis(&a, 0).unwrap());
    }
}

/// `METALORA_THREADS=1`-style serial runs must reproduce default-config
/// outputs exactly — the acceptance criterion of the threading layer.
#[test]
fn default_threshold_matches_forced_serial_large() {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = ParGuard(g);
    let a = rand_t(&[300, 300], 42);
    let b = rand_t(&[300, 300], 43);
    par::set_num_threads(1);
    let serial = matmul(&a, &b).unwrap();
    // Default threshold, default worker detection: large enough to go
    // parallel on multi-core hosts.
    par::set_num_threads(0);
    let auto = matmul(&a, &b).unwrap();
    assert!(serial
        .data()
        .iter()
        .zip(auto.data())
        .all(|(x, y)| x.to_bits() == y.to_bits()));
}
