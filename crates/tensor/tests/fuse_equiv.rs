//! Property tests asserting the fused GEMM epilogue (bias add +
//! activation applied at the C store) is **bitwise identical** to the
//! separate-pass sequence (`matmul → add → map`) it replaces — across
//! ragged and degenerate shapes (including k = 0), every activation, the
//! packed and the legacy kernel path, f32 and bf16-weight GEMMs, conv2d,
//! and worker counts {1, 2, 4, 7}.
//!
//! The static-plan lease gets its own checks: a plan-warmed arena must
//! serve the kernel's checkouts as hits without moving a bit, and a lease
//! *held across* a kernel call must never alias the kernel's own scratch
//! (the kernel's checkouts land in different buffers because the leased
//! ones are still out).
//!
//! The fuse toggle is process-global, so a lock serialises the tests and
//! a guard restores every global on drop — same idiom as `pack_equiv`.

use metalora_tensor::conv::{conv2d_bias_act, ConvSpec};
use metalora_tensor::ops::{
    matmul_bias_act, matmul_bf16_weights_bias_act, set_fuse_enabled, set_pack_min_flops,
    set_packing_enabled, Activation,
};
use metalora_tensor::plan::PlanBuilder;
use metalora_tensor::{init, par, workspace, Bf16Buf, Tensor};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

struct FuseGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

/// Locks the suite; the guard restores every global knob on drop.
fn lock_globals() -> FuseGuard {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    FuseGuard(g)
}

impl Drop for FuseGuard {
    fn drop(&mut self) {
        set_fuse_enabled(true);
        set_packing_enabled(true);
        set_pack_min_flops(1 << 15);
        par::set_num_threads(0);
        par::set_par_threshold(usize::MAX);
    }
}

/// Runs `f` with fusion off (separate output passes), then with fusion
/// on (epilogue at the store), and asserts the outputs agree to the bit.
fn assert_fuse_equiv(f: impl Fn() -> Tensor) {
    set_fuse_enabled(false);
    let separate = f();
    set_fuse_enabled(true);
    let fused = f();
    assert_eq!(separate.dims(), fused.dims(), "fusion changed the shape");
    let same = separate
        .data()
        .iter()
        .zip(fused.data())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same, "fused epilogue diverged from the separate-pass output");
}

fn rand_t(dims: &[usize], seed: u64) -> Tensor {
    let mut r = init::rng(seed);
    init::uniform(dims, -1.0, 1.0, &mut r)
}

const ACTS: [Option<Activation>; 4] = [
    None,
    Some(Activation::Relu),
    Some(Activation::Gelu),
    Some(Activation::Tanh),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_bias_act_fused_bitwise(
        m in 1usize..40,
        k in 0usize..40,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        // Ragged shapes (1×n, m×1, k = 0) on BOTH kernel paths: the
        // packed store-time epilogue and the legacy per-row one must each
        // reproduce the separate passes exactly, with and without bias,
        // for every activation.
        let _g = lock_globals();
        set_pack_min_flops(0);
        let x = rand_t(&[m, k], seed);
        let w = rand_t(&[k, n], seed + 1);
        let bias = rand_t(&[n], seed + 2);
        for packed in [true, false] {
            set_packing_enabled(packed);
            for act in ACTS {
                for b in [Some(&bias), None] {
                    assert_fuse_equiv(|| matmul_bias_act(&x, &w, b, act).unwrap());
                }
            }
        }
    }

    #[test]
    fn bf16_weights_bias_act_fused_bitwise(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1000,
    ) {
        // The bf16-weight GEMM widens at pack time; its epilogue rides the
        // same store and must match its own separate-pass run bit for bit
        // on both paths.
        let _g = lock_globals();
        set_pack_min_flops(0);
        let x = rand_t(&[m, k], seed);
        let w16 = Bf16Buf::from_tensor(&rand_t(&[k, n], seed + 1));
        let bias = rand_t(&[n], seed + 2);
        for packed in [true, false] {
            set_packing_enabled(packed);
            for act in ACTS {
                for b in [Some(&bias), None] {
                    assert_fuse_equiv(|| {
                        matmul_bf16_weights_bias_act(&x, &w16, b, act).unwrap()
                    });
                }
            }
        }
    }

    #[test]
    fn conv2d_bias_act_fused_bitwise(
        n in 1usize..3,
        c in 1usize..4,
        hw in 3usize..8,
        o in 1usize..5,
        kk in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        // Conv fuses the column epilogue into the pre-permute GEMM; the
        // [O,1,1]-broadcast bias of the separate pass must come out
        // identical through the pure-copy permute.
        let _g = lock_globals();
        set_pack_min_flops(0);
        let spec = ConvSpec::new(kk, 1, pad).unwrap();
        let x = rand_t(&[n, c, hw, hw], seed);
        let w = rand_t(&[kk, kk, c, o], seed + 1);
        let bias = rand_t(&[o], seed + 2);
        for act in ACTS {
            for b in [Some(&bias), None] {
                assert_fuse_equiv(|| conv2d_bias_act(&x, &w, b, act, spec, spec).unwrap());
            }
        }
    }

    #[test]
    fn fused_thread_sweep_is_bitwise(
        m in 1usize..40,
        k in 1usize..80,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        // Thread splits cut through MR row tiles and tile-grid cells; the
        // store-time epilogue is per-element, so no worker count may move
        // a bit vs the single-thread separate-pass run.
        let _g = lock_globals();
        set_pack_min_flops(0);
        set_packing_enabled(true);
        let x = rand_t(&[m, k], seed);
        let w = rand_t(&[k, n], seed + 1);
        let bias = rand_t(&[n], seed + 2);
        set_fuse_enabled(false);
        par::set_num_threads(1);
        let reference = matmul_bias_act(&x, &w, Some(&bias), Some(Activation::Gelu)).unwrap();
        set_fuse_enabled(true);
        par::set_par_threshold(0);
        for threads in [1usize, 2, 4, 7] {
            par::set_num_threads(threads);
            let out = matmul_bias_act(&x, &w, Some(&bias), Some(Activation::Gelu)).unwrap();
            let same = reference
                .data()
                .iter()
                .zip(out.data())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            prop_assert!(same, "fused epilogue at {threads} workers diverged");
        }
    }
}

/// A plan-warmed arena serves the kernel's checkouts as pool hits, and
/// warming changes nothing about the output: bitwise the cold run.
#[test]
fn plan_warmed_gemm_is_bitwise_cold_and_seeds_the_arena() {
    let _g = lock_globals();
    set_pack_min_flops(0);
    set_packing_enabled(true);
    par::set_par_threshold(0);
    par::set_num_threads(3);
    let (m, k, n) = (33usize, 47usize, 29usize);
    let x = rand_t(&[m, k], 1);
    let w = rand_t(&[k, n], 2);
    let bias = rand_t(&[n], 3);
    workspace::clear();
    let cold = matmul_bias_act(&x, &w, Some(&bias), Some(Activation::Gelu)).unwrap();
    workspace::clear();
    metalora_obs::set_enabled(true);
    metalora_obs::reset();
    let mut b = PlanBuilder::new(3);
    b.gemm(m, n, k);
    let plan = b.build();
    plan.warm();
    let warmed = matmul_bias_act(&x, &w, Some(&bias), Some(Activation::Gelu)).unwrap();
    let snap = metalora_obs::counters::snapshot();
    metalora_obs::set_enabled(false);
    metalora_obs::reset();
    let same = cold
        .data()
        .iter()
        .zip(warmed.data())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same, "plan warm-up changed the GEMM output");
    assert_eq!(snap.plans_built, 1);
    assert!(snap.plan_leases >= 1, "warm() leased no buffers: {snap:?}");
    assert!(
        snap.workspace_hits > 0,
        "kernel checkouts missed the plan-warmed pool: {snap:?}"
    );
}

/// A lease held *across* a kernel call never aliases the kernel's own
/// scratch: the leased buffers are checked out, so the kernel takes
/// different ones — and the output stays bitwise identical whether the
/// lease is held or released.
#[test]
fn held_lease_never_aliases_kernel_scratch() {
    let _g = lock_globals();
    set_pack_min_flops(0);
    set_packing_enabled(true);
    par::set_par_threshold(0);
    par::set_num_threads(2);
    let (m, k, n) = (21usize, 35usize, 18usize);
    let x = rand_t(&[m, k], 4);
    let w = rand_t(&[k, n], 5);
    let bias = rand_t(&[n], 6);
    let reference = matmul_bias_act(&x, &w, Some(&bias), Some(Activation::Relu)).unwrap();
    let mut b = PlanBuilder::new(2);
    b.gemm(m, n, k);
    let plan = b.build();
    let nonzero: Vec<usize> = plan.sizes().iter().copied().filter(|&s| s > 0).collect();
    let lease = plan.lease();
    assert_eq!(lease.buffers(), nonzero.len());
    assert_eq!(lease.floats(), nonzero.iter().sum::<usize>());
    let held = matmul_bias_act(&x, &w, Some(&bias), Some(Activation::Relu)).unwrap();
    lease.release();
    let released = matmul_bias_act(&x, &w, Some(&bias), Some(Activation::Relu)).unwrap();
    for (label, out) in [("held", &held), ("released", &released)] {
        let same = reference
            .data()
            .iter()
            .zip(out.data())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(same, "GEMM with lease {label} diverged from the plain run");
    }
}

/// Concurrent plan leases check out simultaneously-live (hence disjoint)
/// buffers on every thread; counts and totals must always match the
/// nonzero request list, with zero-length entries skipped.
#[test]
fn concurrent_plan_leases_stay_consistent() {
    let _g = lock_globals();
    std::thread::scope(|s| {
        for tid in 0..6usize {
            s.spawn(move || {
                for round in 0..200usize {
                    let sizes =
                        [32 + (tid * 53 + round * 17) % 400, 64, 0, 128 + tid];
                    let lease = workspace::lease_all(&sizes);
                    assert_eq!(lease.buffers(), 3, "zero-length entry must be skipped");
                    assert_eq!(
                        lease.floats(),
                        sizes.iter().filter(|&&s| s > 0).sum::<usize>()
                    );
                    lease.release();
                }
            });
        }
    });
}
