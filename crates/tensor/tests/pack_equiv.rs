//! Property tests asserting the packed register-tiled microkernel is
//! **bitwise identical** to the legacy scalar kernels for every
//! matmul-family variant, across ragged shapes (m, n, k not multiples of
//! MR/NR/KC, including 1×n and m×1), and that the workspace arena actually
//! reuses buffers without ever aliasing concurrent checkouts.
//!
//! The pack-gate is forced to 0 so even tiny shapes take the packed path;
//! a process-wide lock serialises the tests because the gates are global.
//!
//! The tile-grid scheduler gets its own sweep here: packed × parallel at
//! worker counts {1, 2, 3, 4, 7} over ragged shapes (including ones that
//! cross the NC column-group boundary), interleaved with arena reuse, must
//! stay bitwise-equal to the legacy serial run, and the obs tallies must
//! show exactly one B pack per GEMM with claims covering the whole grid.

use metalora_tensor::ops::{
    bmm, bmm_transpose_a, bmm_transpose_b, matmul, matmul_transpose_a, matmul_transpose_b,
    matvec, microkernel, set_pack_min_flops, set_packing_enabled,
};
use metalora_tensor::{init, par, workspace, Tensor};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

struct PackGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

/// Locks the suite and forces every product through the packed path.
fn force_packed() -> PackGuard {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_pack_min_flops(0);
    PackGuard(g)
}

impl Drop for PackGuard {
    fn drop(&mut self) {
        set_packing_enabled(true);
        set_pack_min_flops(1 << 15);
        par::set_num_threads(0);
        par::set_par_threshold(usize::MAX);
    }
}

/// Runs `f` on the legacy path, then on the packed path, and asserts the
/// outputs agree to the bit.
fn assert_pack_equiv(f: impl Fn() -> Tensor) {
    set_packing_enabled(false);
    let legacy = f();
    set_packing_enabled(true);
    let packed = f();
    assert_eq!(legacy.dims(), packed.dims(), "packed path changed the shape");
    let same = legacy
        .data()
        .iter()
        .zip(packed.data())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same, "packed result diverged from legacy kernel");
}

fn rand_t(dims: &[usize], seed: u64) -> Tensor {
    let mut r = init::rng(seed);
    init::uniform(dims, -1.0, 1.0, &mut r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_family_packed_bitwise(
        m in 1usize..48,
        k in 0usize..48,
        n in 1usize..48,
        seed in 0u64..1000,
    ) {
        let _g = force_packed();
        let a = rand_t(&[m, k], seed);
        let b = rand_t(&[k, n], seed + 1);
        assert_pack_equiv(|| matmul(&a, &b).unwrap());

        let at = rand_t(&[k, m], seed + 2);
        assert_pack_equiv(|| matmul_transpose_a(&at, &b).unwrap());

        let bt = rand_t(&[n, k], seed + 3);
        assert_pack_equiv(|| matmul_transpose_b(&a, &bt).unwrap());

        let x = rand_t(&[k], seed + 4);
        assert_pack_equiv(|| matvec(&a, &x).unwrap());
    }

    #[test]
    fn matmul_packed_spans_multiple_kc_tiles(
        m in 1usize..10,
        k in 100usize..300,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        // k crosses the KC=128 tile boundary (often several times): the
        // accumulator spill/reload between tiles must not move a bit.
        let _g = force_packed();
        let a = rand_t(&[m, k], seed);
        let b = rand_t(&[k, n], seed + 1);
        assert_pack_equiv(|| matmul(&a, &b).unwrap());
        let bt = rand_t(&[n, k], seed + 2);
        assert_pack_equiv(|| matmul_transpose_b(&a, &bt).unwrap());
    }

    #[test]
    fn matmul_packed_degenerate_shapes(n in 1usize..64, seed in 0u64..1000) {
        let _g = force_packed();
        // 1×n: a single output row, thinner than the MR tile.
        let a = rand_t(&[1, n], seed);
        let b = rand_t(&[n, n], seed + 1);
        assert_pack_equiv(|| matmul(&a, &b).unwrap());
        // m×1: a single output column — every column tile is the ragged
        // edge, same shape matvec takes.
        let c = rand_t(&[n, n], seed + 2);
        let d = rand_t(&[n, 1], seed + 3);
        assert_pack_equiv(|| matmul(&c, &d).unwrap());
        // Empty inner dimension: all-zero output from both paths.
        let e = Tensor::zeros(&[n, 0]);
        let f = Tensor::zeros(&[0, n]);
        assert_pack_equiv(|| matmul(&e, &f).unwrap());
    }

    #[test]
    fn bmm_family_packed_bitwise(
        bs in 1usize..5,
        m in 1usize..14,
        k in 1usize..14,
        n in 1usize..14,
        seed in 0u64..1000,
    ) {
        let _g = force_packed();
        let a = rand_t(&[bs, m, k], seed);
        let b = rand_t(&[bs, k, n], seed + 1);
        assert_pack_equiv(|| bmm(&a, &b).unwrap());

        let at = rand_t(&[bs, k, m], seed + 2);
        assert_pack_equiv(|| bmm_transpose_a(&at, &b).unwrap());

        let bt = rand_t(&[bs, n, k], seed + 3);
        assert_pack_equiv(|| bmm_transpose_b(&a, &bt).unwrap());
    }

    #[test]
    fn packed_composes_with_row_block_parallelism(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        // Thread splits can cut through an MR row tile; per-element k-order
        // is independent of the row partition, so packed ∥ must equal
        // legacy serial bit-for-bit.
        let _g = force_packed();
        let a = rand_t(&[m, k], seed);
        let b = rand_t(&[k, n], seed + 1);
        set_packing_enabled(false);
        par::set_num_threads(1);
        let reference = matmul(&a, &b).unwrap();
        set_packing_enabled(true);
        par::set_par_threshold(0);
        for threads in [2, 7, 64] {
            par::set_num_threads(threads);
            let out = matmul(&a, &b).unwrap();
            let same = reference
                .data()
                .iter()
                .zip(out.data())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            prop_assert!(same, "packed parallel ({threads} threads) diverged");
        }
    }

    #[test]
    fn tile_grid_thread_sweep_is_bitwise(
        m in 1usize..60,
        k in 1usize..150,
        n in 1usize..60,
        seed in 0u64..1000,
    ) {
        // The tile grid hands out (strip, column-group) cells in whatever
        // order the team claims them; no worker count may move a bit.
        let _g = force_packed();
        let a = rand_t(&[m, k], seed);
        let b = rand_t(&[k, n], seed + 1);
        set_packing_enabled(false);
        par::set_num_threads(1);
        let reference = matmul(&a, &b).unwrap();
        set_packing_enabled(true);
        par::set_par_threshold(0);
        for threads in [1usize, 2, 3, 4, 7] {
            par::set_num_threads(threads);
            let out = matmul(&a, &b).unwrap();
            let same = reference
                .data()
                .iter()
                .zip(out.data())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            prop_assert!(same, "tile grid at {threads} workers diverged");
        }
    }

    #[test]
    fn tile_grid_spans_column_groups_bitwise(
        m in 1usize..20,
        k in 1usize..80,
        n in 250usize..300,
        seed in 0u64..1000,
    ) {
        // n crosses NC = 256: at least two column groups per strip, with
        // the ragged NR edge always landing in the last group.
        let _g = force_packed();
        let a = rand_t(&[m, k], seed);
        let b = rand_t(&[k, n], seed + 1);
        set_packing_enabled(false);
        par::set_num_threads(1);
        let reference = matmul(&a, &b).unwrap();
        set_packing_enabled(true);
        par::set_par_threshold(0);
        for threads in [2usize, 3, 7] {
            par::set_num_threads(threads);
            let out = matmul(&a, &b).unwrap();
            let same = reference
                .data()
                .iter()
                .zip(out.data())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            prop_assert!(same, "column-group split at {threads} workers diverged");
        }
    }

    #[test]
    fn tile_grid_bmm_thread_sweep_is_bitwise(
        bs in 1usize..4,
        m in 1usize..12,
        k in 1usize..12,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        // Batched variants share the grid (strips never straddle batches).
        let _g = force_packed();
        let a = rand_t(&[bs, m, k], seed);
        let b = rand_t(&[bs, k, n], seed + 1);
        let at = rand_t(&[bs, k, m], seed + 2);
        let bt = rand_t(&[bs, n, k], seed + 3);
        set_packing_enabled(false);
        par::set_num_threads(1);
        let refs = [
            bmm(&a, &b).unwrap(),
            bmm_transpose_a(&at, &b).unwrap(),
            bmm_transpose_b(&a, &bt).unwrap(),
        ];
        set_packing_enabled(true);
        par::set_par_threshold(0);
        for threads in [1usize, 2, 3, 4, 7] {
            par::set_num_threads(threads);
            let outs = [
                bmm(&a, &b).unwrap(),
                bmm_transpose_a(&at, &b).unwrap(),
                bmm_transpose_b(&a, &bt).unwrap(),
            ];
            for (reference, out) in refs.iter().zip(&outs) {
                let same = reference
                    .data()
                    .iter()
                    .zip(out.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits());
                prop_assert!(same, "bmm tile grid at {threads} workers diverged");
            }
        }
    }

    #[test]
    fn tile_grid_survives_arena_reuse_interleaving(
        m in 1usize..30,
        k in 1usize..60,
        n in 1usize..30,
        seed in 0u64..1000,
    ) {
        // Alternate thread counts call-to-call on the same shapes: the
        // pooled A/B panels from a 7-worker run are recycled into a
        // 2-worker run (and vice versa) and must never leak stale data.
        let _g = force_packed();
        let a = rand_t(&[m, k], seed);
        let b = rand_t(&[k, n], seed + 1);
        set_packing_enabled(false);
        par::set_num_threads(1);
        let reference = matmul(&a, &b).unwrap();
        set_packing_enabled(true);
        par::set_par_threshold(0);
        for &threads in [7usize, 1, 4, 2, 7, 3, 1, 2].iter() {
            par::set_num_threads(threads);
            let out = matmul(&a, &b).unwrap();
            let same = reference
                .data()
                .iter()
                .zip(out.data())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            prop_assert!(same, "arena-interleaved run at {threads} workers diverged");
        }
    }
}

/// The arena really recycles: after a warm-up call populates the pool,
/// identical matmuls must check their packing buffers back out as hits.
#[test]
fn workspace_reuse_shows_up_in_obs_counters() {
    let _g = force_packed();
    metalora_obs::set_enabled(true);
    metalora_obs::reset();
    workspace::clear();
    let a = rand_t(&[64, 48], 7);
    let b = rand_t(&[48, 56], 8);
    for _ in 0..4 {
        let _ = matmul(&a, &b).unwrap();
    }
    let snap = metalora_obs::counters::snapshot();
    metalora_obs::set_enabled(false);
    metalora_obs::reset();
    assert!(
        snap.workspace_hits > 0,
        "no pool hits across repeated identical matmuls: {snap:?}"
    );
    assert!(snap.workspace_bytes_reused > 0);
}

/// The scheduler's accounting invariants: exactly one B pack per packed
/// GEMM, claims covering every cell of every grid, and the per-slot
/// tallies summing to the total.
#[test]
fn tile_grid_counters_account_for_every_cell() {
    let _g = force_packed();
    metalora_obs::set_enabled(true);
    metalora_obs::reset();
    par::set_par_threshold(0);
    par::set_num_threads(3);
    let (m, k, n) = (37usize, 50usize, 300usize);
    let a = rand_t(&[m, k], 11);
    let b = rand_t(&[k, n], 12);
    let gemms = 5u64;
    for _ in 0..gemms {
        let _ = matmul(&a, &b).unwrap();
    }
    let snap = metalora_obs::counters::snapshot();
    metalora_obs::set_enabled(false);
    metalora_obs::reset();
    let grid = (m.div_ceil(microkernel::MR) * n.div_ceil(microkernel::NC)) as u64;
    assert_eq!(snap.tile_bpacks, gemms, "B must be packed exactly once per GEMM");
    assert_eq!(snap.tile_claims, gemms * grid, "claims must cover the whole grid: {snap:?}");
    let per_slot: u64 = snap.tile_claims_per_slot.iter().sum();
    assert_eq!(per_slot, snap.tile_claims, "per-slot tallies must sum to the total");
}

/// Concurrent checkouts must hand out disjoint buffers: each thread stamps
/// its guard with a unique pattern and must read it back intact while
/// other threads are stamping theirs.
#[test]
fn concurrent_checkouts_are_never_aliased() {
    let _g = force_packed();
    std::thread::scope(|s| {
        for tid in 0..6 {
            s.spawn(move || {
                for round in 0..300usize {
                    let len = 32 + (tid * 53 + round * 17) % 900;
                    let mut buf = workspace::take(len);
                    let stamp = (tid * 10_000 + round) as f32;
                    buf.fill(stamp);
                    assert!(
                        buf.iter().all(|&x| x == stamp),
                        "buffer aliased across threads"
                    );
                }
            });
        }
    });
}
