//! Property-based tests for the tensor engine's core invariants.

use metalora_tensor::conv::{conv1d_direct, conv1d_via_dummy, ConvSpec};
use metalora_tensor::contract::{contract, contract_naive};
use metalora_tensor::decomp::{fold, khatri_rao, unfold};
use metalora_tensor::ops::{
    add, matmul, matmul_transpose_a, matmul_transpose_b, permute, scale, sub, transpose2d,
};
use metalora_tensor::{approx_eq, Shape, Tensor};
use proptest::prelude::*;
use proptest::strategy::ValueTree;

/// Strategy: a tensor with the given dims and values in [-10, 10].
fn tensor_with_dims(dims: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = dims.iter().product();
    prop::collection::vec(-10.0f32..10.0, n)
        .prop_map(move |data| Tensor::from_vec(data, &dims).expect("len matches"))
}

/// Strategy: small random shape (rank 1..=4, dims 1..=5).
fn small_dims() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=5, 1..=4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flat_multi_index_roundtrip(dims in small_dims(), frac in 0.0f64..1.0) {
        let shape = Shape::new(&dims);
        let n = shape.num_elements();
        let flat = ((n as f64 - 1.0) * frac) as usize;
        let idx = shape.multi_index(flat).unwrap();
        prop_assert_eq!(shape.flat_index(&idx).unwrap(), flat);
    }

    #[test]
    fn add_commutes_and_sub_inverts(dims in small_dims(), seed in 0u64..1000) {
        let mut rng = metalora_tensor::init::rng(seed);
        let a = metalora_tensor::init::uniform(&dims, -5.0, 5.0, &mut rng);
        let b = metalora_tensor::init::uniform(&dims, -5.0, 5.0, &mut rng);
        let ab = add(&a, &b).unwrap();
        let ba = add(&b, &a).unwrap();
        prop_assert!(approx_eq(&ab, &ba, 1e-6));
        let back = sub(&ab, &b).unwrap();
        prop_assert!(approx_eq(&back, &a, 1e-4));
    }

    #[test]
    fn scale_is_linear(dims in small_dims(), s in -4.0f32..4.0, seed in 0u64..1000) {
        let mut rng = metalora_tensor::init::rng(seed);
        let a = metalora_tensor::init::uniform(&dims, -5.0, 5.0, &mut rng);
        let b = metalora_tensor::init::uniform(&dims, -5.0, 5.0, &mut rng);
        let lhs = scale(&add(&a, &b).unwrap(), s);
        let rhs = add(&scale(&a, s), &scale(&b, s)).unwrap();
        prop_assert!(approx_eq(&lhs, &rhs, 1e-4));
    }

    #[test]
    fn matmul_associative(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, p in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut rng = metalora_tensor::init::rng(seed);
        let a = metalora_tensor::init::uniform(&[m, k], -2.0, 2.0, &mut rng);
        let b = metalora_tensor::init::uniform(&[k, n], -2.0, 2.0, &mut rng);
        let c = metalora_tensor::init::uniform(&[n, p], -2.0, 2.0, &mut rng);
        let left = matmul(&matmul(&a, &b).unwrap(), &c).unwrap();
        let right = matmul(&a, &matmul(&b, &c).unwrap()).unwrap();
        prop_assert!(approx_eq(&left, &right, 1e-3));
    }

    #[test]
    fn transpose_involution_and_product_rule(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000,
    ) {
        let mut rng = metalora_tensor::init::rng(seed);
        let a = metalora_tensor::init::uniform(&[m, k], -2.0, 2.0, &mut rng);
        let b = metalora_tensor::init::uniform(&[k, n], -2.0, 2.0, &mut rng);
        // (AB)ᵀ = BᵀAᵀ.
        let lhs = transpose2d(&matmul(&a, &b).unwrap()).unwrap();
        let rhs = matmul(&transpose2d(&b).unwrap(), &transpose2d(&a).unwrap()).unwrap();
        prop_assert!(approx_eq(&lhs, &rhs, 1e-4));
        // Fused variants agree.
        prop_assert!(approx_eq(
            &matmul_transpose_a(&a, &matmul(&a, &b).unwrap()).unwrap(),
            &matmul(&transpose2d(&a).unwrap(), &matmul(&a, &b).unwrap()).unwrap(),
            1e-4
        ));
        prop_assert!(approx_eq(
            &matmul_transpose_b(&a, &transpose2d(&b).unwrap()).unwrap(),
            &matmul(&a, &b).unwrap(),
            1e-4
        ));
    }

    #[test]
    fn permute_roundtrip(seed in 0u64..1000) {
        let mut rng = metalora_tensor::init::rng(seed);
        let t = metalora_tensor::init::uniform(&[2, 3, 4], -5.0, 5.0, &mut rng);
        let perm = [2usize, 0, 1];
        let p = permute(&t, &perm).unwrap();
        // Inverse permutation restores the original.
        let mut inv = [0usize; 3];
        for (dst, &src) in perm.iter().enumerate() {
            inv[src] = dst;
        }
        let back = permute(&p, &inv).unwrap();
        prop_assert!(approx_eq(&t, &back, 0.0));
    }

    #[test]
    fn contract_fast_matches_naive(
        a_dims in prop::collection::vec(1usize..4, 2..=3),
        b0 in 1usize..4, seed in 0u64..1000,
    ) {
        // Contract a's last axis with b's first axis.
        let mut rng = metalora_tensor::init::rng(seed);
        let a = metalora_tensor::init::uniform(&a_dims, -2.0, 2.0, &mut rng);
        let shared = *a_dims.last().unwrap();
        let b = metalora_tensor::init::uniform(&[shared, b0], -2.0, 2.0, &mut rng);
        let fast = contract(&a, &b, &[a_dims.len() - 1], &[0]).unwrap();
        let slow = contract_naive(&a, &b, &[a_dims.len() - 1], &[0]).unwrap();
        prop_assert!(approx_eq(&fast, &slow, 1e-3));
    }

    #[test]
    fn unfold_fold_roundtrip(dims in prop::collection::vec(1usize..5, 2..=4), seed in 0u64..1000) {
        let mut rng = metalora_tensor::init::rng(seed);
        let t = metalora_tensor::init::uniform(&dims, -5.0, 5.0, &mut rng);
        for mode in 0..dims.len() {
            let u = unfold(&t, mode).unwrap();
            let back = fold(&u, mode, &dims).unwrap();
            prop_assert!(approx_eq(&t, &back, 0.0));
        }
    }

    #[test]
    fn khatri_rao_column_norms_multiply(
        i in 1usize..5, j in 1usize..5, r in 1usize..4, seed in 0u64..1000,
    ) {
        let mut rng = metalora_tensor::init::rng(seed);
        let a = metalora_tensor::init::uniform(&[i, r], -2.0, 2.0, &mut rng);
        let b = metalora_tensor::init::uniform(&[j, r], -2.0, 2.0, &mut rng);
        let kr = khatri_rao(&a, &b).unwrap();
        // ‖kr(:,c)‖ = ‖a(:,c)‖·‖b(:,c)‖ — Kronecker norm identity.
        for c in 0..r {
            let col_norm = |m: &Tensor, rows: usize| -> f32 {
                (0..rows)
                    .map(|row| {
                        let v = m.get(&[row, c]).unwrap();
                        v * v
                    })
                    .sum::<f32>()
                    .sqrt()
            };
            let lhs = col_norm(&kr, i * j);
            let rhs = col_norm(&a, i) * col_norm(&b, j);
            prop_assert!((lhs - rhs).abs() <= 1e-3 * (1.0 + rhs), "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn conv1d_dummy_matches_direct_prop(
        len in 3usize..10, k in 1usize..4, stride in 1usize..3, pad in 0usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(len + 2 * pad >= k);
        let spec = ConvSpec::new(k, stride, pad).unwrap();
        let mut rng = metalora_tensor::init::rng(seed);
        let a = metalora_tensor::init::uniform(&[len], -3.0, 3.0, &mut rng);
        let b = metalora_tensor::init::uniform(&[k], -3.0, 3.0, &mut rng);
        let d = conv1d_direct(&a, &b, spec).unwrap();
        let t = conv1d_via_dummy(&a, &b, spec).unwrap();
        prop_assert!(approx_eq(&d, &t, 1e-3));
    }

    #[test]
    fn tensor_strategy_shape_holds(dims in small_dims()) {
        // Meta-test for the strategy helper itself.
        let t = tensor_with_dims(dims.clone());
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let v = t.new_tree(&mut runner).unwrap().current();
        prop_assert_eq!(v.dims(), &dims[..]);
    }
}
