//! Plain-text table rendering for the bench binaries.

/// Renders an aligned ASCII table. The first row is treated as a header
/// and separated by a rule.
pub fn render_table(headers: &[String], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            if cell.len() > widths[i] {
                widths[i] = cell.len();
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = cells.get(i).unwrap_or(&empty);
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line
    };
    out.push_str(&render_row(headers, &widths));
    out.push('\n');
    let mut rule = String::from("|");
    for w in &widths {
        rule.push_str(&"-".repeat(w + 2));
        rule.push('|');
    }
    out.push_str(&rule);
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with an optional significance star.
pub fn pct(x: f64, star: bool) -> String {
    format!("{:.2}%{}", 100.0 * x, if star { "*" } else { "" })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn renders_aligned_table() {
        let t = render_table(
            &s(&["Method", "Acc"]),
            &[s(&["LoRA", "67.85%"]), s(&["Meta-LoRA TR", "73.24%*"])],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Method"));
        assert!(lines[1].starts_with("|--"));
        assert!(lines[3].contains("73.24%*"));
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.7324, true), "73.24%*");
        assert_eq!(pct(0.5, false), "50.00%");
    }

    #[test]
    fn short_rows_padded() {
        let t = render_table(&s(&["A", "B"]), &[vec!["x".into()]]);
        assert!(t.lines().count() == 3);
    }
}
