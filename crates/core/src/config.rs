//! Experiment configuration.

use metalora_data::task::EpisodeSpec;
use metalora_nn::models::{MixerConfig, ResNetConfig, TransformerConfig};
use metalora_peft::LoraConfig;
use serde::{Deserialize, Serialize};

/// Which backbone a run uses (the two columns of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arch {
    /// The small residual CNN (adapted via Conv-LoRA-family layers).
    ResNet,
    /// The MLP-Mixer (adapted via dense-LoRA-family layers).
    Mixer,
    /// The Vision Transformer (Sec. III-E extension; dense adapters on
    /// the attention projections and MLP layers).
    Transformer,
}

impl Arch {
    /// Display name matching the paper's table header.
    pub fn name(&self) -> &'static str {
        match self {
            Arch::ResNet => "ResNet",
            Arch::Mixer => "MLP-Mixer",
            Arch::Transformer => "ViT",
        }
    }
}

/// All hyper-parameters of one experiment run. Serialisable so every
/// bench binary can dump the exact configuration next to its results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Square image side.
    pub image_size: usize,
    /// ResNet stage widths.
    pub resnet_channels: Vec<usize>,
    /// ResNet blocks per stage.
    pub resnet_blocks: usize,
    /// Mixer patch side.
    pub mixer_patch: usize,
    /// Mixer hidden dimension.
    pub mixer_dim: usize,
    /// Mixer depth.
    pub mixer_depth: usize,
    /// Pretraining epochs on the base (Identity) task.
    pub pretrain_epochs: usize,
    /// Samples per class generated per pretraining epoch.
    pub pretrain_per_class: usize,
    /// Pretraining batch size.
    pub pretrain_batch: usize,
    /// Pretraining learning rate (SGD + momentum 0.9).
    pub pretrain_lr: f32,
    /// Adaptation optimisation steps over the task mixture.
    pub adapt_steps: usize,
    /// Samples per class in each adaptation batch.
    pub adapt_per_class: usize,
    /// Adaptation learning rate (Adam).
    pub adapt_lr: f32,
    /// LoRA-family rank/α.
    pub lora: LoraConfigSer,
    /// Mapping-net hidden width.
    pub map_hidden: usize,
    /// Probe episode geometry.
    pub support_per_class: usize,
    /// Query samples per class in each probe episode.
    pub query_per_class: usize,
    /// Probe rounds (episodes per eval task).
    pub probe_rounds: usize,
    /// Number of training tasks used (truncates the 12-task pool).
    pub n_train_tasks: usize,
    /// Number of evaluation tasks used (truncates the 6-task pool).
    pub n_eval_tasks: usize,
}

/// Serialisable mirror of [`LoraConfig`] (which lives in a crate without
/// serde derives on purpose).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LoraConfigSer {
    /// Rank `R`.
    pub rank: usize,
    /// Scaling numerator `α`.
    pub alpha: f32,
}

impl From<LoraConfigSer> for LoraConfig {
    fn from(c: LoraConfigSer) -> LoraConfig {
        LoraConfig {
            rank: c.rank,
            alpha: c.alpha,
        }
    }
}

impl ExperimentConfig {
    /// The configuration used by the Table I bench: 32×32 images,
    /// moderate backbones, the full 12/6 task family.
    pub fn standard() -> Self {
        ExperimentConfig {
            image_size: 32,
            resnet_channels: vec![12, 24, 48],
            resnet_blocks: 1,
            mixer_patch: 8,
            mixer_dim: 48,
            mixer_depth: 2,
            pretrain_epochs: 10,
            pretrain_per_class: 24,
            pretrain_batch: 32,
            pretrain_lr: 0.05,
            adapt_steps: 250,
            adapt_per_class: 2,
            adapt_lr: 3e-3,
            lora: LoraConfigSer {
                rank: 4,
                alpha: 8.0,
            },
            map_hidden: 32,
            support_per_class: 10,
            query_per_class: 5,
            probe_rounds: 2,
            n_train_tasks: 12,
            n_eval_tasks: 6,
        }
    }

    /// A seconds-scale configuration for tests and examples.
    pub fn quick() -> Self {
        ExperimentConfig {
            image_size: 16,
            resnet_channels: vec![6, 12],
            resnet_blocks: 1,
            mixer_patch: 4,
            mixer_dim: 16,
            mixer_depth: 1,
            pretrain_epochs: 2,
            pretrain_per_class: 6,
            pretrain_batch: 16,
            pretrain_lr: 0.05,
            adapt_steps: 10,
            adapt_per_class: 1,
            adapt_lr: 3e-3,
            lora: LoraConfigSer {
                rank: 2,
                alpha: 4.0,
            },
            map_hidden: 12,
            support_per_class: 3,
            query_per_class: 2,
            probe_rounds: 1,
            n_train_tasks: 4,
            n_eval_tasks: 2,
        }
    }

    /// The `LoraConfig` view.
    pub fn lora_config(&self) -> LoraConfig {
        self.lora.into()
    }

    /// ResNet config for this experiment.
    pub fn resnet(&self) -> ResNetConfig {
        ResNetConfig {
            in_channels: 3,
            channels: self.resnet_channels.clone(),
            blocks_per_stage: self.resnet_blocks,
            num_classes: metalora_data::synth::NUM_CLASSES,
        }
    }

    /// Mixer config for this experiment.
    pub fn mixer(&self) -> MixerConfig {
        MixerConfig {
            in_channels: 3,
            image_size: self.image_size,
            patch_size: self.mixer_patch,
            dim: self.mixer_dim,
            token_hidden: self.mixer_dim * 2 / 3,
            channel_hidden: self.mixer_dim * 2,
            depth: self.mixer_depth,
            num_classes: metalora_data::synth::NUM_CLASSES,
        }
    }

    /// Vision-Transformer config for this experiment (shares the Mixer's
    /// patch/width budget; 4 heads).
    pub fn transformer(&self) -> TransformerConfig {
        TransformerConfig {
            in_channels: 3,
            image_size: self.image_size,
            patch_size: self.mixer_patch,
            dim: self.mixer_dim,
            heads: 4,
            mlp_hidden: self.mixer_dim * 2,
            depth: self.mixer_depth,
            num_classes: metalora_data::synth::NUM_CLASSES,
        }
    }

    /// Probe episode geometry.
    pub fn episode(&self) -> EpisodeSpec {
        EpisodeSpec {
            support_per_class: self.support_per_class,
            query_per_class: self.query_per_class,
            image_size: self.image_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_consistent() {
        for cfg in [ExperimentConfig::standard(), ExperimentConfig::quick()] {
            assert_eq!(cfg.image_size % cfg.mixer_patch, 0);
            assert!(cfg.n_train_tasks <= 12);
            assert!(cfg.n_eval_tasks <= 6);
            assert!(cfg.lora.rank >= 1);
            let lc = cfg.lora_config();
            assert_eq!(lc.rank, cfg.lora.rank);
            assert_eq!(cfg.resnet().num_classes, 8);
            assert_eq!(cfg.mixer().image_size, cfg.image_size);
            assert_eq!(cfg.transformer().dim % cfg.transformer().heads, 0);
            assert_eq!(cfg.episode().image_size, cfg.image_size);
        }
    }

    #[test]
    fn arch_names() {
        assert_eq!(Arch::ResNet.name(), "ResNet");
        assert_eq!(Arch::Mixer.name(), "MLP-Mixer");
        assert_eq!(Arch::Transformer.name(), "ViT");
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = ExperimentConfig::standard();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.image_size, cfg.image_size);
        assert_eq!(back.resnet_channels, cfg.resnet_channels);
    }
}
