//! The method axis of the evaluation.

use serde::{Deserialize, Serialize};

/// Adaptation method — the rows of Table I plus full fine-tuning for the
/// A2 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Frozen pretrained backbone, no adaptation.
    Original,
    /// One shared LoRA / Conv-LoRA per injected layer.
    Lora,
    /// A bank of adapters, one per training task, routed by feature
    /// centroid at evaluation time.
    MultiLora,
    /// MetaLoRA with CP-format integration (Eq. 6).
    MetaLoraCp,
    /// MetaLoRA with Tensor-Ring-format integration (Eq. 7).
    MetaLoraTr,
    /// Every backbone parameter trainable (A2 upper-bound ablation).
    FullFineTune,
}

impl Method {
    /// The five rows of Table I, in paper order.
    pub fn table1() -> [Method; 5] {
        [
            Method::Original,
            Method::Lora,
            Method::MultiLora,
            Method::MetaLoraCp,
            Method::MetaLoraTr,
        ]
    }

    /// Display name matching the paper's table.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Original => "Original",
            Method::Lora => "LoRA",
            Method::MultiLora => "Multi-LoRA",
            Method::MetaLoraCp => "Meta-LoRA CP",
            Method::MetaLoraTr => "Meta-LoRA TR",
            Method::FullFineTune => "Full fine-tune",
        }
    }

    /// Whether the method is one of the paper's baselines (the set the
    /// t-test compares the meta methods against).
    pub fn is_baseline(&self) -> bool {
        matches!(self, Method::Original | Method::Lora | Method::MultiLora)
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_in_paper_order() {
        let rows = Method::table1();
        assert_eq!(rows[0], Method::Original);
        assert_eq!(rows[4], Method::MetaLoraTr);
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn baseline_partition() {
        assert!(Method::Original.is_baseline());
        assert!(Method::Lora.is_baseline());
        assert!(Method::MultiLora.is_baseline());
        assert!(!Method::MetaLoraCp.is_baseline());
        assert!(!Method::MetaLoraTr.is_baseline());
        assert!(!Method::FullFineTune.is_baseline());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Method::MetaLoraTr.to_string(), "Meta-LoRA TR");
        assert_eq!(Method::MultiLora.name(), "Multi-LoRA");
    }
}
