//! The Table I protocol: pretrain → adapt → KNN probe.

use crate::config::{Arch, ExperimentConfig};
use crate::methods::Method;
use crate::Result;
use metalora_autograd::{Graph, ParamRef};
use metalora_data::dataset::{generate, LabeledImages};
use metalora_data::knn::{Distance, KnnClassifier};
use metalora_data::task::{sample_episode, sample_mixture_batch, TaskFamily};
use metalora_nn::models::{Mixer, ResNet, VisionTransformer};
use metalora_nn::train::train_epoch;
use metalora_nn::{Adam, Backbone, Ctx, Module, Optimizer, Sgd};
use metalora_peft::inject;
use metalora_peft::meta::{MetaFormat, MetaLora};
use metalora_tensor::{init, ops, Tensor, TensorError};

/// The KNN K values reported by Table I.
pub const TABLE1_KS: [usize; 2] = [5, 10];

/// A pretrained backbone of either architecture.
pub enum AnyBackbone {
    /// Residual CNN.
    ResNet(ResNet),
    /// MLP-Mixer.
    Mixer(Mixer),
    /// Vision Transformer (Sec. III-E extension).
    Transformer(VisionTransformer),
}

impl Module for AnyBackbone {
    fn forward(&self, g: &mut Graph, x: metalora_autograd::Var, ctx: &Ctx) -> Result<metalora_autograd::Var> {
        match self {
            AnyBackbone::ResNet(m) => m.forward(g, x, ctx),
            AnyBackbone::Mixer(m) => m.forward(g, x, ctx),
            AnyBackbone::Transformer(m) => m.forward(g, x, ctx),
        }
    }
    fn params(&self) -> Vec<ParamRef> {
        match self {
            AnyBackbone::ResNet(m) => m.params(),
            AnyBackbone::Mixer(m) => m.params(),
            AnyBackbone::Transformer(m) => m.params(),
        }
    }
    fn buffers(&self) -> Vec<ParamRef> {
        match self {
            AnyBackbone::ResNet(m) => m.buffers(),
            AnyBackbone::Mixer(m) => m.buffers(),
            AnyBackbone::Transformer(m) => m.buffers(),
        }
    }
}

impl Backbone for AnyBackbone {
    fn features(&self, g: &mut Graph, x: metalora_autograd::Var, ctx: &Ctx) -> Result<metalora_autograd::Var> {
        match self {
            AnyBackbone::ResNet(m) => m.features(g, x, ctx),
            AnyBackbone::Mixer(m) => m.features(g, x, ctx),
            AnyBackbone::Transformer(m) => m.features(g, x, ctx),
        }
    }
    fn feature_dim(&self) -> usize {
        match self {
            AnyBackbone::ResNet(m) => m.feature_dim(),
            AnyBackbone::Mixer(m) => m.feature_dim(),
            AnyBackbone::Transformer(m) => m.feature_dim(),
        }
    }
}

/// Pretrains a backbone on the base (Identity-shift) distribution.
pub fn pretrain(cfg: &ExperimentConfig, arch: Arch, seed: u64) -> Result<AnyBackbone> {
    let _span = metalora_obs::span!("pretrain");
    let mut rng = init::rng(seed.wrapping_mul(31).wrapping_add(17));
    let net = match arch {
        Arch::ResNet => AnyBackbone::ResNet(ResNet::new(&cfg.resnet(), &mut rng)?),
        Arch::Mixer => AnyBackbone::Mixer(Mixer::new(&cfg.mixer(), &mut rng)?),
        Arch::Transformer => {
            AnyBackbone::Transformer(VisionTransformer::new(&cfg.transformer(), &mut rng)?)
        }
    };
    let mut opt = Sgd::with_momentum(net.params(), cfg.pretrain_lr, 0.9, 1e-4);
    for _epoch in 0..cfg.pretrain_epochs {
        // Constant span name: all epochs aggregate under "pretrain/epoch",
        // whose count/quantiles give the per-epoch duration distribution.
        let _epoch_span = metalora_obs::span!("epoch");
        let data = generate(
            metalora_data::Shift::Identity,
            cfg.pretrain_per_class,
            cfg.image_size,
            &mut rng,
        )?;
        train_epoch(
            &net,
            &data.images,
            &data.labels,
            cfg.pretrain_batch,
            &mut opt,
            &mut rng,
        )?;
    }
    Ok(net)
}

/// Per-training-task base-feature centroids for Multi-LoRA routing.
struct Routing {
    centroids: Vec<Tensor>, // each [D]
}

impl Routing {
    /// Index of the training task nearest (L2) to the episode centroid.
    fn route(&self, episode_centroid: &Tensor) -> usize {
        let mut best = 0usize;
        let mut best_d = f32::INFINITY;
        for (k, c) in self.centroids.iter().enumerate() {
            let d: f32 = c
                .data()
                .iter()
                .zip(episode_centroid.data())
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            if d < best_d {
                best_d = d;
                best = k;
            }
        }
        best
    }
}

enum AdaptedModel {
    Plain(AnyBackbone),
    Meta(MetaLora),
}

/// An adapted model ready for probing.
pub struct Adapted {
    model: AdaptedModel,
    /// Which method produced it.
    pub method: Method,
    /// Trainable parameters the adaptation phase optimised (empty for
    /// `Original`).
    pub adapter_params: Vec<ParamRef>,
    routing: Option<Routing>,
    family: TaskFamily,
}

impl Adapted {
    /// The adapted model's total parameter census (base + adapters).
    pub fn param_report(&self) -> metalora_peft::ParamReport {
        match &self.model {
            AdaptedModel::Plain(m) => metalora_peft::ParamReport::of(m),
            AdaptedModel::Meta(m) => metalora_peft::ParamReport::of(m),
        }
    }

    /// Embeds an image batch with the method's default (non-routed)
    /// context — what downstream applications use to index new data.
    /// Multi-LoRA callers that want per-episode routing should go through
    /// [`probe`] instead.
    pub fn embed_images(&self, images: &Tensor) -> Result<Tensor> {
        self.embed(images, &Ctx::none())
    }

    /// Mean L2 norm of the per-input seeds MetaLoRA generates for this
    /// batch. Errors for non-meta methods (they generate no seeds).
    pub fn seed_summary(&self, images: &Tensor) -> Result<f32> {
        match &self.model {
            AdaptedModel::Meta(m) => {
                let mut g = Graph::inference();
                let x = g.input(images.clone());
                let s = m.generate_seed(&mut g, x)?;
                let v = g.value(s);
                let n = v.dims()[0].max(1);
                let d = v.len() / n;
                let mut acc = 0.0f32;
                for i in 0..n {
                    let row = &v.data()[i * d..(i + 1) * d];
                    acc += row.iter().map(|&x| x * x).sum::<f32>().sqrt();
                }
                Ok(acc / n as f32)
            }
            AdaptedModel::Plain(_) => Err(TensorError::InvalidArgument(format!(
                "{:?} generates no parameter seeds",
                self.method
            ))),
        }
    }

    /// Embeds an image batch in inference mode under the given context.
    fn embed(&self, images: &Tensor, ctx: &Ctx) -> Result<Tensor> {
        let mut g = Graph::inference();
        let x = g.input(images.clone());
        let f = match &self.model {
            AdaptedModel::Plain(m) => m.features(&mut g, x, ctx)?,
            AdaptedModel::Meta(m) => m.features(&mut g, x, ctx)?,
        };
        Ok(g.value(f))
    }

    /// Embeds with the method's evaluation-time context policy; for
    /// Multi-LoRA this routes the episode via its support centroid.
    fn embed_episode(&self, support: &LabeledImages, query: &LabeledImages) -> Result<(Tensor, Tensor)> {
        let ctx = match (&self.routing, self.method) {
            (Some(r), Method::MultiLora) => {
                let base = self.embed(&support.images, &Ctx::none())?;
                let centroid = ops::mean_axis(&base, 0)?;
                Ctx::with_adapter(r.route(&centroid))
            }
            _ => Ctx::none(),
        };
        Ok((
            self.embed(&support.images, &ctx)?,
            self.embed(&query.images, &ctx)?,
        ))
    }
}

/// Shared adaptation loop: Adam over `params` on the training-task
/// mixture, with a per-step context derived from the sampled task id.
///
/// When instrumentation is enabled the whole run is pushed to the obs
/// metrics sink as one record (mean step loss / accuracy / grad norm)
/// under the current span path; the extra readouts only happen while
/// observing and never feed back into the computation.
fn adapt_train(
    model: &dyn Module,
    family: &TaskFamily,
    cfg: &ExperimentConfig,
    params: Vec<ParamRef>,
    ctx_of: impl Fn(usize) -> Ctx,
    rng: &mut rand::rngs::StdRng,
) -> Result<()> {
    let observing = metalora_obs::enabled();
    let t0 = observing.then(std::time::Instant::now);
    let (mut loss_sum, mut acc_sum, mut grad_sum) = (0.0f64, 0.0f64, 0.0f64);
    let mut opt = Adam::new(params.clone(), cfg.adapt_lr);
    for _ in 0..cfg.adapt_steps {
        // Constant span name: steps aggregate under "adapt/<Method>/step"
        // with per-step duration quantiles.
        let _step_span = metalora_obs::span!("step");
        let (batch, tid) = sample_mixture_batch(family, cfg.adapt_per_class, cfg.image_size, rng)?;
        let mut g = Graph::new();
        let x = g.input(batch.images);
        let logits = model.forward(&mut g, x, &ctx_of(tid))?;
        let loss = g.softmax_cross_entropy(logits, &batch.labels)?;
        g.backward(loss)?;
        g.flush_grads();
        if observing {
            loss_sum += g.value(loss).item()? as f64;
            acc_sum +=
                metalora_nn::train::accuracy(&g.value(logits), &batch.labels)? as f64;
            grad_sum += metalora_nn::train::grad_norm(&params);
        }
        opt.step();
    }
    if let Some(t0) = t0 {
        let steps = cfg.adapt_steps.max(1) as f64;
        let phase = metalora_obs::span::current_path();
        let phase = if phase.is_empty() { "adapt" } else { &phase };
        metalora_obs::metrics::record_epoch(
            phase,
            loss_sum / steps,
            acc_sum / steps,
            grad_sum / steps,
            t0.elapsed().as_secs_f64(),
        );
    }
    Ok(())
}

/// Adapts a pretrained backbone with the requested method.
pub fn adapt(backbone: AnyBackbone, method: Method, cfg: &ExperimentConfig, seed: u64) -> Result<Adapted> {
    let _span = metalora_obs::span!("adapt/{method:?}");
    let mut rng = init::rng(seed.wrapping_mul(7919).wrapping_add(101));
    let family = TaskFamily::reduced(cfg.n_train_tasks, cfg.n_eval_tasks);
    let lora = cfg.lora_config();

    match method {
        Method::Original => {
            backbone.set_trainable(false);
            Ok(Adapted {
                model: AdaptedModel::Plain(backbone),
                method,
                adapter_params: Vec::new(),
                routing: None,
                family,
            })
        }
        Method::FullFineTune => {
            backbone.set_trainable(true);
            let params = backbone.params();
            adapt_train(&backbone, &family, cfg, params.clone(), |_| Ctx::none(), &mut rng)?;
            Ok(Adapted {
                model: AdaptedModel::Plain(backbone),
                method,
                adapter_params: params,
                routing: None,
                family,
            })
        }
        Method::Lora => {
            let mut backbone = backbone;
            let inj = match &mut backbone {
                AnyBackbone::ResNet(net) => inject::lora_into_resnet(net, lora, &mut rng)?,
                AnyBackbone::Mixer(net) => inject::lora_into_mixer(net, lora, &mut rng)?,
                AnyBackbone::Transformer(net) => {
                    inject::lora_into_transformer(net, lora, &mut rng)?
                }
            };
            adapt_train(
                &backbone,
                &family,
                cfg,
                inj.adapter_params.clone(),
                |_| Ctx::none(),
                &mut rng,
            )?;
            Ok(Adapted {
                model: AdaptedModel::Plain(backbone),
                method,
                adapter_params: inj.adapter_params,
                routing: None,
                family,
            })
        }
        Method::MultiLora => {
            let banks = family.train.len();
            let mut backbone = backbone;
            let inj = match &mut backbone {
                AnyBackbone::ResNet(net) => {
                    inject::multi_into_resnet(net, banks, lora, &mut rng)?
                }
                AnyBackbone::Mixer(net) => {
                    inject::multi_into_mixer(net, banks, lora, &mut rng)?
                }
                AnyBackbone::Transformer(net) => {
                    inject::multi_into_transformer(net, banks, lora, &mut rng)?
                }
            };
            adapt_train(
                &backbone,
                &family,
                cfg,
                inj.adapter_params.clone(),
                Ctx::with_adapter,
                &mut rng,
            )?;
            // Base-feature centroids per training task for eval routing.
            let mut centroids = Vec::with_capacity(banks);
            for task in &family.train {
                let data = generate(task.shift, 4, cfg.image_size, &mut rng)?;
                let mut g = Graph::inference();
                let x = g.input(data.images);
                let f = backbone.features(&mut g, x, &Ctx::none())?;
                centroids.push(ops::mean_axis(&g.value(f), 0)?);
            }
            Ok(Adapted {
                model: AdaptedModel::Plain(backbone),
                method,
                adapter_params: inj.adapter_params,
                routing: Some(Routing { centroids }),
                family,
            })
        }
        Method::MetaLoraCp | Method::MetaLoraTr => {
            let format = if method == Method::MetaLoraCp {
                MetaFormat::Cp
            } else {
                MetaFormat::Tr
            };
            let (meta, inj) = match backbone {
                AnyBackbone::ResNet(net) => {
                    inject::meta_into_resnet(net, format, lora, cfg.map_hidden, &mut rng)?
                }
                AnyBackbone::Mixer(net) => {
                    inject::meta_into_mixer(net, format, lora, cfg.map_hidden, &mut rng)?
                }
                AnyBackbone::Transformer(net) => {
                    inject::meta_into_transformer(net, format, lora, cfg.map_hidden, &mut rng)?
                }
            };
            adapt_train(
                &meta,
                &family,
                cfg,
                inj.adapter_params.clone(),
                |_| Ctx::none(),
                &mut rng,
            )?;
            Ok(Adapted {
                model: AdaptedModel::Meta(meta),
                method,
                adapter_params: inj.adapter_params,
                routing: None,
                family,
            })
        }
    }
}

/// Probe accuracies per K, averaged over eval tasks and rounds.
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// The K values probed.
    pub ks: Vec<usize>,
    /// `accs[i]` = accuracies for `ks[i]`, one per (task, round) episode.
    pub accs: Vec<Vec<f32>>,
    /// Eval-task id of each episode, aligned with the entries of
    /// `accs[i]`.
    pub task_ids: Vec<usize>,
}

impl ProbeResult {
    /// Mean accuracy for a K.
    pub fn mean_accuracy(&self, k: usize) -> Option<f32> {
        let i = self.ks.iter().position(|&x| x == k)?;
        let xs = &self.accs[i];
        if xs.is_empty() {
            return None;
        }
        Some(xs.iter().sum::<f32>() / xs.len() as f32)
    }

    /// All episode accuracies for a K (for significance testing).
    pub fn episodes(&self, k: usize) -> Option<&[f32]> {
        let i = self.ks.iter().position(|&x| x == k)?;
        Some(&self.accs[i])
    }

    /// Mean accuracy for a K restricted to one evaluation task.
    pub fn task_accuracy(&self, k: usize, task_id: usize) -> Option<f32> {
        let i = self.ks.iter().position(|&x| x == k)?;
        let xs: Vec<f32> = self.accs[i]
            .iter()
            .zip(&self.task_ids)
            .filter(|(_, &t)| t == task_id)
            .map(|(&a, _)| a)
            .collect();
        if xs.is_empty() {
            return None;
        }
        Some(xs.iter().sum::<f32>() / xs.len() as f32)
    }
}

/// Runs the KNN probe of Table I over the held-out evaluation tasks.
pub fn probe(adapted: &Adapted, cfg: &ExperimentConfig, seed: u64) -> Result<ProbeResult> {
    let _span = metalora_obs::span!("probe/{:?}", adapted.method);
    if adapted.family.eval.is_empty() {
        return Err(TensorError::InvalidArgument(
            "no evaluation tasks configured".into(),
        ));
    }
    let spec = cfg.episode();
    let mut accs = vec![Vec::new(); TABLE1_KS.len()];
    let mut task_ids = Vec::new();
    for task in &adapted.family.eval {
        for round in 0..cfg.probe_rounds {
            let ep = sample_episode(task, spec, seed, round as u64)?;
            let (support_emb, query_emb) = adapted.embed_episode(&ep.support, &ep.query)?;
            let knn =
                KnnClassifier::fit(support_emb, ep.support.labels.clone(), Distance::L2)?;
            for (i, &k) in TABLE1_KS.iter().enumerate() {
                accs[i].push(knn.accuracy(&query_emb, &ep.query.labels, k)?);
            }
            task_ids.push(task.id);
        }
    }
    Ok(ProbeResult {
        ks: TABLE1_KS.to_vec(),
        accs,
        task_ids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretrain_learns_base_task() {
        let mut cfg = ExperimentConfig::quick();
        cfg.pretrain_epochs = 6;
        cfg.pretrain_per_class = 8;
        let net = pretrain(&cfg, Arch::ResNet, 0).unwrap();
        // Accuracy on fresh base-task data beats chance (1/8).
        let mut rng = init::rng(999);
        let data = generate(metalora_data::Shift::Identity, 4, cfg.image_size, &mut rng).unwrap();
        let acc =
            metalora_nn::train::evaluate(&net, &data.images, &data.labels, 16).unwrap();
        assert!(acc > 0.25, "pretrain accuracy {acc}");
    }

    #[test]
    fn adapt_and_probe_all_methods_run() {
        let cfg = ExperimentConfig::quick();
        for method in [
            Method::Original,
            Method::Lora,
            Method::MultiLora,
            Method::MetaLoraCp,
            Method::MetaLoraTr,
            Method::FullFineTune,
        ] {
            let net = pretrain(&cfg, Arch::ResNet, 1).unwrap();
            let adapted = adapt(net, method, &cfg, 1).unwrap();
            assert_eq!(adapted.method, method);
            if method == Method::Original {
                assert!(adapted.adapter_params.is_empty());
            } else {
                assert!(!adapted.adapter_params.is_empty());
            }
            let p = probe(&adapted, &cfg, 1).unwrap();
            for &k in &TABLE1_KS {
                let m = p.mean_accuracy(k).unwrap();
                assert!((0.0..=1.0).contains(&m), "{method:?} k={k} acc={m}");
                assert_eq!(
                    p.episodes(k).unwrap().len(),
                    cfg.n_eval_tasks * cfg.probe_rounds
                );
            }
        }
    }

    #[test]
    fn mixer_pipeline_runs() {
        let cfg = ExperimentConfig::quick();
        let net = pretrain(&cfg, Arch::Mixer, 2).unwrap();
        let adapted = adapt(net, Method::MetaLoraTr, &cfg, 2).unwrap();
        let p = probe(&adapted, &cfg, 2).unwrap();
        assert!(p.mean_accuracy(5).is_some());
        assert!(p.mean_accuracy(3).is_none());
    }

    #[test]
    fn original_keeps_backbone_frozen() {
        let cfg = ExperimentConfig::quick();
        let net = pretrain(&cfg, Arch::ResNet, 3).unwrap();
        let snapshot: Vec<Tensor> = net.params().iter().map(|p| p.value()).collect();
        let adapted = adapt(net, Method::Original, &cfg, 3).unwrap();
        let now = match &adapted.model {
            AdaptedModel::Plain(m) => m.params(),
            _ => unreachable!(),
        };
        for (a, p) in snapshot.iter().zip(&now) {
            assert!(metalora_tensor::approx_eq(a, &p.value(), 0.0));
        }
        let report = adapted.param_report();
        assert_eq!(report.trainable, 0);
    }

    #[test]
    fn multi_lora_routing_picks_nearest() {
        let r = Routing {
            centroids: vec![
                Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap(),
                Tensor::from_vec(vec![10.0, 0.0], &[2]).unwrap(),
            ],
        };
        let q = Tensor::from_vec(vec![8.0, 1.0], &[2]).unwrap();
        assert_eq!(r.route(&q), 1);
        let q = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        assert_eq!(r.route(&q), 0);
    }
}
