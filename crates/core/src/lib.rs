//! # metalora
//!
//! The facade crate of the MetaLoRA reproduction: it re-exports every
//! subsystem and hosts the experiment harness that regenerates the
//! paper's results.
//!
//! ## Layout
//!
//! * [`config`] — experiment configuration (backbone, sizes, schedules).
//! * [`methods`] — the method column of Table I (Original, LoRA,
//!   Multi-LoRA, MetaLoRA-CP, MetaLoRA-TR) plus full fine-tuning for the
//!   A2 ablation.
//! * [`pipeline`] — the pretrain → adapt → KNN-probe protocol.
//! * [`table1`] — multi-seed Table I runner with Welch t-test stars.
//! * [`report`] — plain-text table rendering.
//!
//! ## Quickstart
//!
//! ```no_run
//! use metalora::config::ExperimentConfig;
//! use metalora::methods::Method;
//! use metalora::pipeline;
//!
//! let cfg = ExperimentConfig::quick();
//! let backbone = pipeline::pretrain(&cfg, metalora::Arch::ResNet, 0).unwrap();
//! let adapted = pipeline::adapt(backbone, Method::MetaLoraTr, &cfg, 0).unwrap();
//! let probe = pipeline::probe(&adapted, &cfg, 0).unwrap();
//! println!("K=5 accuracy: {:.2}%", 100.0 * probe.mean_accuracy(5).unwrap());
//! ```

pub mod config;
pub mod methods;
pub mod pipeline;
pub mod report;
pub mod table1;

pub use config::{Arch, ExperimentConfig};
pub use methods::Method;
pub use pipeline::{Adapted, AnyBackbone, ProbeResult};
pub use table1::{run_table1, Table1Options, Table1Result};

// Re-export the subsystem crates under stable names.
pub use metalora_autograd as autograd;
pub use metalora_data as data;
pub use metalora_nn as nn;
pub use metalora_peft as peft;
pub use metalora_tensor as tensor;

/// Crate-wide result alias (errors are tensor errors).
pub type Result<T> = std::result::Result<T, metalora_tensor::TensorError>;
