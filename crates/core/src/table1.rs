//! The Table I runner: every method × both architectures × multiple
//! seeds, with Welch-t-test significance stars against the best baseline.

use crate::config::{Arch, ExperimentConfig};
use crate::methods::Method;
use crate::pipeline::{adapt, pretrain, probe, TABLE1_KS};
use crate::report;
use crate::Result;
use metalora_data::stats::welch_t_test;
use serde::{Deserialize, Serialize};

/// What to run.
#[derive(Debug, Clone)]
pub struct Table1Options {
    /// Experiment configuration shared by all cells.
    pub cfg: ExperimentConfig,
    /// Seeds; each seed is a full pretrain+adapt+probe replication.
    pub seeds: Vec<u64>,
    /// Architectures (columns).
    pub archs: Vec<Arch>,
    /// Methods (rows).
    pub methods: Vec<Method>,
    /// Significance level for the star.
    pub alpha: f64,
}

impl Table1Options {
    /// The paper's full grid at the given scale.
    pub fn new(cfg: ExperimentConfig, seeds: Vec<u64>) -> Self {
        Table1Options {
            cfg,
            seeds,
            archs: vec![Arch::ResNet, Arch::Mixer],
            methods: Method::table1().to_vec(),
            alpha: 0.05,
        }
    }
}

/// One cell: per-episode accuracies pooled over seeds.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cell {
    /// Episode accuracies (as fractions) pooled across seeds/rounds/tasks.
    pub samples: Vec<f64>,
    /// Whether the cell is significantly above the best baseline.
    pub significant: bool,
}

impl Cell {
    /// Mean accuracy of the cell.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }
}

/// The full table: `cells[arch][k][method]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    /// Method names in row order.
    pub methods: Vec<String>,
    /// Architecture names in column-group order.
    pub archs: Vec<String>,
    /// K values per architecture.
    pub ks: Vec<usize>,
    /// `cells[a][k_idx][m]` — one per (arch, K, method).
    pub cells: Vec<Vec<Vec<Cell>>>,
}

impl Table1Result {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut headers = vec!["Method".to_string()];
        for a in &self.archs {
            for k in &self.ks {
                headers.push(format!("{a} K={k}"));
            }
        }
        let mut rows = Vec::new();
        for (mi, m) in self.methods.iter().enumerate() {
            let mut row = vec![m.clone()];
            for (ai, _) in self.archs.iter().enumerate() {
                for (ki, _) in self.ks.iter().enumerate() {
                    let cell = &self.cells[ai][ki][mi];
                    row.push(report::pct(cell.mean(), cell.significant));
                }
            }
            rows.push(row);
        }
        report::render_table(&headers, &rows)
    }

    /// Mean accuracy of `(arch_idx, k, method_idx)`.
    pub fn mean(&self, arch_idx: usize, k: usize, method_idx: usize) -> Option<f64> {
        let ki = self.ks.iter().position(|&x| x == k)?;
        Some(self.cells.get(arch_idx)?.get(ki)?.get(method_idx)?.mean())
    }
}

/// Runs the full grid. This is the expensive entry point behind the
/// `table1` bench binary; with `ExperimentConfig::quick()` it also powers
/// the integration test.
pub fn run_table1(opts: &Table1Options) -> Result<Table1Result> {
    let mut cells =
        vec![vec![vec![Cell::default(); opts.methods.len()]; TABLE1_KS.len()]; opts.archs.len()];

    for (ai, &arch) in opts.archs.iter().enumerate() {
        for (mi, &method) in opts.methods.iter().enumerate() {
            for &seed in &opts.seeds {
                let net = pretrain(&opts.cfg, arch, seed)?;
                let adapted = adapt(net, method, &opts.cfg, seed)?;
                let result = probe(&adapted, &opts.cfg, seed)?;
                for (ki, &k) in TABLE1_KS.iter().enumerate() {
                    let eps = result.episodes(k).expect("fixed K set");
                    cells[ai][ki][mi]
                        .samples
                        .extend(eps.iter().map(|&x| x as f64));
                }
            }
        }
    }

    // Significance stars: each non-baseline method vs the best baseline
    // (by mean) in the same (arch, K) column.
    for arch_cells in cells.iter_mut() {
        for k_cells in arch_cells.iter_mut() {
            let best_baseline = opts
                .methods
                .iter()
                .enumerate()
                .filter(|(_, m)| m.is_baseline())
                .max_by(|(i, _), (j, _)| {
                    k_cells[*i]
                        .mean()
                        .partial_cmp(&k_cells[*j].mean())
                        .expect("finite means")
                })
                .map(|(i, _)| i);
            if let Some(bi) = best_baseline {
                let baseline_samples = k_cells[bi].samples.clone();
                for (mi, m) in opts.methods.iter().enumerate() {
                    if m.is_baseline() {
                        continue;
                    }
                    if let Some(t) = welch_t_test(&k_cells[mi].samples, &baseline_samples) {
                        k_cells[mi].significant = t.significantly_greater(opts.alpha);
                    }
                }
            }
        }
    }

    Ok(Table1Result {
        methods: opts.methods.iter().map(|m| m.name().to_string()).collect(),
        archs: opts.archs.iter().map(|a| a.name().to_string()).collect(),
        ks: TABLE1_KS.to_vec(),
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_mean() {
        let c = Cell {
            samples: vec![0.5, 0.7],
            significant: false,
        };
        assert!((c.mean() - 0.6).abs() < 1e-12);
        assert_eq!(Cell::default().mean(), 0.0);
    }

    #[test]
    fn render_shape_of_result() {
        let r = Table1Result {
            methods: vec!["Original".into(), "Meta-LoRA TR".into()],
            archs: vec!["ResNet".into()],
            ks: vec![5, 10],
            cells: vec![vec![
                vec![
                    Cell {
                        samples: vec![0.6],
                        significant: false,
                    },
                    Cell {
                        samples: vec![0.73],
                        significant: true,
                    },
                ],
                vec![
                    Cell {
                        samples: vec![0.61],
                        significant: false,
                    },
                    Cell {
                        samples: vec![0.71],
                        significant: false,
                    },
                ],
            ]],
        };
        let s = r.render();
        assert!(s.contains("ResNet K=5"));
        assert!(s.contains("73.00%*"));
        assert!(s.contains("71.00%"));
        assert_eq!(r.mean(0, 5, 1), Some(0.73));
        assert_eq!(r.mean(0, 7, 1), None);
    }

    // The end-to-end quick-grid run lives in tests/integration_pipeline.rs
    // to keep unit tests fast.
}
