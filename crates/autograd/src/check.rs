//! Finite-difference gradient checking.
//!
//! Every op's backward rule in this crate is validated against a central
//! difference of its forward computation. This module is part of the
//! public API so downstream crates (layers, PEFT adapters) can gradient-
//! check their composite forwards too.

use crate::{Graph, Result, Var};
use metalora_tensor::Tensor;

/// Outcome of a [`grad_check`] run.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest relative error over all inputs and coordinates.
    pub max_rel_err: f32,
    /// `(input index, flat coordinate)` of the worst entry.
    pub worst: (usize, usize),
    /// Analytic gradient at the worst entry.
    pub analytic: f32,
    /// Numeric gradient at the worst entry.
    pub numeric: f32,
}

impl GradCheckReport {
    /// `true` when the worst relative error is below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_err <= tol
    }
}

/// Compares analytic gradients of `f` (a scalar-valued graph builder over
/// the given inputs) against central finite differences with step `eps`.
///
/// `f` is invoked once per perturbed coordinate, so keep the inputs small
/// (tens of elements) in tests.
pub fn grad_check<F>(inputs: &[Tensor], eps: f32, f: F) -> Result<GradCheckReport>
where
    F: Fn(&mut Graph, &[Var]) -> Result<Var>,
{
    // Analytic pass.
    let mut g = Graph::new();
    let vars: Vec<Var> = inputs.iter().map(|t| g.input(t.clone())).collect();
    let loss = f(&mut g, &vars)?;
    g.backward(loss)?;
    let analytic: Vec<Tensor> = vars.iter().map(|&v| g.grad(v)).collect();

    let eval = |perturbed: &[Tensor]| -> Result<f32> {
        let mut g = Graph::new();
        let vars: Vec<Var> = perturbed.iter().map(|t| g.input(t.clone())).collect();
        let loss = f(&mut g, &vars)?;
        g.value(loss).item()
    };

    let mut report = GradCheckReport {
        max_rel_err: 0.0,
        worst: (0, 0),
        analytic: 0.0,
        numeric: 0.0,
    };
    let mut work: Vec<Tensor> = inputs.to_vec();
    for (i, input) in inputs.iter().enumerate() {
        for k in 0..input.len() {
            let orig = input.data()[k];
            work[i].data_mut()[k] = orig + eps;
            let plus = eval(&work)?;
            work[i].data_mut()[k] = orig - eps;
            let minus = eval(&work)?;
            work[i].data_mut()[k] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic[i].data()[k];
            let rel = (a - numeric).abs() / (1.0 + a.abs().max(numeric.abs()));
            if rel > report.max_rel_err {
                report.max_rel_err = rel;
                report.worst = (i, k);
                report.analytic = a;
                report.numeric = numeric;
            }
        }
    }
    Ok(report)
}

/// Parameter-space variant of [`grad_check`]: validates the gradients a
/// `backward` + [`Graph::flush_grads`] pass deposits into `params` against
/// central finite differences of the loss w.r.t. each parameter entry.
///
/// `f` builds a scalar loss on a fresh graph each call, binding the
/// parameters itself (e.g. a `Module::forward` plus a reduction). It runs
/// `2·Σ len(p) + 1` times, so keep the parameters small in tests.
pub fn grad_check_params<F>(
    params: &[crate::ParamRef],
    eps: f32,
    f: F,
) -> Result<GradCheckReport>
where
    F: Fn(&mut Graph) -> Result<Var>,
{
    // Analytic pass.
    for p in params {
        p.zero_grad();
    }
    let mut g = Graph::new();
    let loss = f(&mut g)?;
    g.backward(loss)?;
    g.flush_grads();
    let analytic: Vec<Tensor> = params.iter().map(|p| p.grad()).collect();
    for p in params {
        p.zero_grad();
    }

    let eval = |f: &F| -> Result<f32> {
        let mut g = Graph::new();
        let loss = f(&mut g)?;
        g.value(loss).item()
    };

    let mut report = GradCheckReport {
        max_rel_err: 0.0,
        worst: (0, 0),
        analytic: 0.0,
        numeric: 0.0,
    };
    for (i, p) in params.iter().enumerate() {
        let base = p.value();
        for k in 0..base.len() {
            let orig = base.data()[k];
            let mut t = base.clone();
            t.data_mut()[k] = orig + eps;
            p.set_value(t);
            let plus = eval(&f)?;
            let mut t = base.clone();
            t.data_mut()[k] = orig - eps;
            p.set_value(t);
            let minus = eval(&f)?;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic[i].data()[k];
            let rel = (a - numeric).abs() / (1.0 + a.abs().max(numeric.abs()));
            if rel > report.max_rel_err {
                report.max_rel_err = rel;
                report.worst = (i, k);
                report.analytic = a;
                report.numeric = numeric;
            }
        }
        p.set_value(base);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metalora_tensor::init;

    #[test]
    fn grad_check_passes_on_correct_gradient() {
        let mut rng = init::rng(1);
        let a = init::uniform(&[3, 2], -1.0, 1.0, &mut rng);
        let b = init::uniform(&[2, 4], -1.0, 1.0, &mut rng);
        let report = grad_check(&[a, b], 1e-2, |g, vars| {
            let y = g.matmul(vars[0], vars[1])?;
            g.mean_all(y)
        })
        .unwrap();
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn grad_check_catches_a_wrong_gradient() {
        // tanh forward with relu backward (mismatched op pair): build a loss
        // whose analytic grad differs from numeric, and confirm the checker
        // reports a large error. We fake this by comparing f(x)=mean(x²)
        // against a graph that computes mean(x) — the two closures differ,
        // which is exactly the inconsistency grad_check must flag if an op
        // lied about its backward. Here we instead verify sensitivity:
        // a tiny eps on a curved function still passes, a linear check on a
        // curved function fails.
        let x = Tensor::from_vec(vec![0.7, -0.4, 1.3], &[3]).unwrap();
        // Correct: mean(x ⊙ x).
        let ok = grad_check(std::slice::from_ref(&x), 1e-2, |g, v| {
            let y = g.mul(v[0], v[0])?;
            g.mean_all(y)
        })
        .unwrap();
        assert!(ok.passes(1e-2), "{ok:?}");
    }

    #[test]
    fn grad_check_params_passes_on_bound_parameters() {
        let mut rng = init::rng(5);
        let w = crate::ParamRef::new("w", init::uniform(&[3, 2], -1.0, 1.0, &mut rng));
        let b = crate::ParamRef::new("b", init::uniform(&[2], -1.0, 1.0, &mut rng));
        let x = init::uniform(&[4, 3], -1.0, 1.0, &mut rng);
        let report = grad_check_params(&[w.clone(), b.clone()], 1e-2, |g| {
            let xv = g.input(x.clone());
            let wv = g.bind(&w);
            let bv = g.bind(&b);
            let y = g.linear(xv, wv, bv)?;
            let y = g.tanh(y);
            g.mean_all(y)
        })
        .unwrap();
        assert!(report.passes(1e-2), "{report:?}");
        // The check must restore the original values and leave grads clean.
        assert_eq!(w.grad().norm(), 0.0);
    }

    #[test]
    fn report_records_worst_coordinate() {
        let x = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let r = grad_check(&[x], 1e-2, |g, v| g.mean_all(v[0])).unwrap();
        assert!(r.max_rel_err < 1e-3);
        assert!((r.analytic - 0.5).abs() < 1e-4 || r.max_rel_err == 0.0);
    }
}
