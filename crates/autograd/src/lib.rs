//! # metalora-autograd
//!
//! Reverse-mode automatic differentiation over [`metalora_tensor::Tensor`].
//!
//! The design is a classic *tape*: a [`Graph`] owns an append-only arena of
//! nodes; building an op records its inputs and any saved activations;
//! [`Graph::backward`] walks the arena in reverse, accumulating gradients.
//! Construction order is a valid topological order by construction, so no
//! explicit sort is needed.
//!
//! Training loops create a fresh graph per step, *bind* shared parameters
//! ([`ParamRef`], [`Graph::bind`]) as leaves, run forward + backward, then
//! [`Graph::flush_grads`] accumulates leaf gradients back into the shared
//! parameter cells where optimisers (in `metalora-nn`) consume them.
//!
//! The op set is exactly what the MetaLoRA reproduction needs: dense and
//! convolutional layers, the activations/normalisations of ResNet and
//! MLP-Mixer, softmax cross-entropy, and the broadcast elementwise algebra
//! that the CP / Tensor-Ring adapter contractions lower to.
//!
//! [`check::grad_check`] provides finite-difference verification; every op
//! carries a gradient-check test.

mod backward;
pub mod check;
pub mod graph;
pub mod param;

pub use graph::{gelu_fwd, Graph, Var};
pub use param::ParamRef;

/// Crate-wide result alias (errors are tensor errors).
pub type Result<T> = std::result::Result<T, metalora_tensor::TensorError>;
